"""Unit tests for the unified registry: validation, naming, globals."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    Metrics,
    escape_label_value,
    get_metrics,
    reset_metrics,
)


class TestValidation:
    @pytest.mark.parametrize(
        "bad", ["", "9starts_with_digit", "has-dash", "has space", "has\nnl"]
    )
    def test_malformed_metric_names_are_rejected(self, bad):
        metrics = Metrics()
        with pytest.raises(ValueError):
            metrics.increment(bad)
        with pytest.raises(ValueError):
            metrics.set_gauge(bad, 1.0)
        with pytest.raises(ValueError):
            metrics.observe(bad, 0.1)

    @pytest.mark.parametrize("bad", ['quo"te', "new\nline", 123])
    def test_malformed_route_labels_are_rejected(self, bad):
        metrics = Metrics()
        with pytest.raises(ValueError):
            metrics.observe_request(bad, 200, 0.01)

    def test_escape_label_value_neutralizes_hostile_paths(self):
        hostile = '/x"} 1\nblaeu_requests_total{route="/pwned'
        escaped = escape_label_value(hostile)
        assert "\n" not in escaped
        assert '"' not in escaped.replace('\\"', "")
        metrics = Metrics()
        metrics.observe_request(escaped, 200, 0.01)  # now accepted
        assert metrics.request_count(escaped) == 1
        assert escape_label_value("a\\b") == "a\\\\b"


class TestNamedInstruments:
    def test_named_histogram_records_and_renders(self):
        metrics = Metrics()
        metrics.observe("blaeu_pipeline_stage_seconds_sample", 0.004)
        metrics.observe("blaeu_pipeline_stage_seconds_sample", 0.2)
        histogram = metrics.named_histogram(
            "blaeu_pipeline_stage_seconds_sample"
        )
        assert histogram is not None and histogram.count == 2
        assert metrics.named_histogram("missing") is None
        text = metrics.render()
        assert "# TYPE blaeu_pipeline_stage_seconds_sample histogram" in text
        assert 'blaeu_pipeline_stage_seconds_sample_bucket{le="+Inf"} 2' in text
        assert "blaeu_pipeline_stage_seconds_sample_count 2" in text

    def test_counters_and_gauges_render_alongside(self):
        metrics = Metrics()
        metrics.increment("blaeu_store_scans_total", 3)
        metrics.set_gauge("blaeu_pool_in_flight", 2)
        text = metrics.render()
        assert "blaeu_store_scans_total 3" in text
        assert "blaeu_pool_in_flight 2" in text

    def test_labeled_counter_series_share_one_type_line(self):
        metrics = Metrics()
        metrics.increment_labeled("blaeu_cache_hits_total", {"tier": "l1"}, 2)
        metrics.increment_labeled("blaeu_cache_hits_total", {"tier": "l2"})
        assert (
            metrics.labeled_counter("blaeu_cache_hits_total", {"tier": "l1"})
            == 2
        )
        assert (
            metrics.labeled_counter("blaeu_cache_hits_total", {"tier": "l2"})
            == 1
        )
        assert (
            metrics.labeled_counter("blaeu_cache_hits_total", {"tier": "l3"})
            == 0
        )
        text = metrics.render()
        assert text.count("# TYPE blaeu_cache_hits_total counter") == 1
        assert 'blaeu_cache_hits_total{tier="l1"} 2' in text
        assert 'blaeu_cache_hits_total{tier="l2"} 1' in text

    def test_labeled_counter_rejects_bad_labels(self):
        metrics = Metrics()
        with pytest.raises(ValueError):
            metrics.increment_labeled("blaeu_cache_hits_total", {})
        with pytest.raises(ValueError):
            metrics.increment_labeled(
                "blaeu_cache_hits_total", {"bad-label": "x"}
            )
        with pytest.raises(ValueError):
            metrics.increment_labeled(
                "blaeu_cache_hits_total", {"tier": 'l1"}\ninjected'}
            )


class TestGlobalRegistry:
    def test_reset_installs_a_fresh_global(self):
        first = reset_metrics()
        first.increment("blaeu_graph_builds_total")
        assert get_metrics() is first
        second = reset_metrics()
        assert get_metrics() is second
        assert second is not first
        assert second.counter("blaeu_graph_builds_total") == 0

    def test_service_shim_still_exports_the_registry(self):
        from repro.service.metrics import Histogram as ShimHistogram
        from repro.service.metrics import Metrics as ShimMetrics

        from repro.obs.metrics import Histogram, Metrics

        assert ShimMetrics is Metrics
        assert ShimHistogram is Histogram

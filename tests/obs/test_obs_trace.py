"""Unit tests for the tracer: spans, context propagation, export."""

from __future__ import annotations

import asyncio
import io
import json
import tracemalloc

import numpy as np
import pytest

from repro.cluster.clara import clara
from repro.cluster.parallel import map_in_order
from repro.obs.trace import (
    NULL_SPAN,
    Tracer,
    collect_notes,
    configure_tracing,
    current_span,
    format_fields,
    get_tracer,
    note,
    render_trace,
)
from repro.service.pool import WorkerPool


class TestSpans:
    def test_nested_spans_share_the_trace_and_parent_correctly(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root") as root:
            assert current_span() is root
            with tracer.span("child") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
                with tracer.span("grandchild") as grandchild:
                    assert grandchild.parent_id == child.span_id
        assert current_span() is None
        names = [s.name for s in tracer.spans()]
        # Finish order: innermost first.
        assert names == ["grandchild", "child", "root"]

    def test_sibling_roots_get_distinct_trace_ids(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id
        assert a.parent_id is None and b.parent_id is None

    def test_explicit_parent_overrides_the_context(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root") as root:
            pass
        with tracer.span("linked", parent=root) as linked:
            assert linked.trace_id == root.trace_id
            assert linked.parent_id == root.span_id

    def test_attributes_and_duration_are_recorded(self):
        tracer = Tracer(enabled=True)
        with tracer.span("op") as span:
            span.set("k", 3)
            span.set("cache_hit", False)
        record = tracer.spans()[0].to_dict()
        assert record["attributes"] == {"k": 3, "cache_hit": False}
        assert record["duration"] >= 0.0
        assert record["name"] == "op"

    def test_exception_still_finishes_the_span(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert [s.name for s in tracer.spans()] == ["boom"]
        assert current_span() is None


class TestDisabledTracer:
    def test_disabled_span_is_the_shared_null_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything") is NULL_SPAN
        assert tracer.span("other") is NULL_SPAN
        with tracer.span("x") as span:
            span.set("ignored", 1)
            assert span.enabled is False
        assert tracer.spans() == []
        assert NULL_SPAN.attributes == {}

    def test_disabled_spans_do_not_allocate(self):
        tracer = Tracer(enabled=False)

        def loop() -> None:
            for _ in range(1000):
                with tracer.span("x") as span:
                    if span.enabled:
                        span.set("a", 1)

        loop()  # warm up caches and code objects
        tracemalloc.start()
        loop()
        current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert current == 0
        assert peak < 2048  # nothing per-iteration; only loop scaffolding

    def test_validation(self):
        with pytest.raises(ValueError):
            Tracer(buffer_size=0)
        with pytest.raises(ValueError):
            Tracer(slow_op_threshold=0.0)


class TestPropagation:
    def test_map_in_order_children_parent_to_the_caller_span(self):
        tracer = configure_tracing(enabled=True, buffer_size=64)

        def work(index: int) -> tuple[str, str | None]:
            with get_tracer().span("child") as span:
                return span.trace_id, span.parent_id

        with tracer.span("root") as root:
            results = map_in_order(work, [0, 1, 2, 3], n_jobs=2)
        assert len(results) == 4
        assert {trace_id for trace_id, _ in results} == {root.trace_id}
        assert {parent for _, parent in results} == {root.span_id}

    def test_worker_pool_children_parent_to_the_request_span(self):
        tracer = configure_tracing(enabled=True, buffer_size=64)

        def work() -> tuple[str, str | None]:
            with get_tracer().span("engine.work") as span:
                return span.trace_id, span.parent_id

        async def main():
            pool = WorkerPool(workers=2, max_pending=8)
            try:
                with tracer.span("http.request") as root:
                    results = await asyncio.gather(
                        pool.run(work), pool.run(work)
                    )
                return root, results
            finally:
                pool.shutdown(wait=True)

        root, results = asyncio.run(main())
        assert {trace_id for trace_id, _ in results} == {root.trace_id}
        assert {parent for _, parent in results} == {root.span_id}

    def test_clara_draw_spans_join_the_callers_trace(self):
        tracer = configure_tracing(enabled=True, buffer_size=256)
        points = np.random.default_rng(7).normal(size=(80, 3))
        with tracer.span("map.build") as root:
            clara(
                points,
                k=2,
                n_draws=3,
                rng=np.random.default_rng(0),
                n_jobs=2,
            )
        draws = [s for s in tracer.spans() if s.name == "clara.draw"]
        assert len(draws) == 3
        assert {s.trace_id for s in draws} == {root.trace_id}
        assert {s.parent_id for s in draws} == {root.span_id}
        assert {s.attributes["draw"] for s in draws} == {0, 1, 2}

    def test_tracing_does_not_change_clara_results(self):
        points = np.random.default_rng(7).normal(size=(80, 3))
        configure_tracing(enabled=True, buffer_size=256)
        traced = clara(
            points, k=2, n_draws=3, rng=np.random.default_rng(0), n_jobs=2
        )
        configure_tracing(enabled=False)
        plain = clara(
            points, k=2, n_draws=3, rng=np.random.default_rng(0), n_jobs=2
        )
        np.testing.assert_array_equal(traced.labels, plain.labels)
        np.testing.assert_array_equal(traced.medoids, plain.medoids)


class TestBufferAndExport:
    def test_ring_buffer_evicts_oldest_spans(self):
        tracer = Tracer(enabled=True, buffer_size=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [s.name for s in tracer.spans()] == ["s2", "s3", "s4"]

    def test_traces_groups_newest_first(self):
        tracer = Tracer(enabled=True, buffer_size=32)
        with tracer.span("first") as first:
            with tracer.span("first.child"):
                pass
        with tracer.span("second") as second:
            pass
        traces = tracer.traces(limit=10)
        assert [t["trace_id"] for t in traces] == [
            second.trace_id,
            first.trace_id,
        ]
        # Spans inside one trace come back in start order.
        assert [s["name"] for s in traces[1]["spans"]] == [
            "first",
            "first.child",
        ]
        assert len(tracer.traces(limit=1)) == 1

    def test_export_jsonl_round_trips(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("a") as a:
            a.set("rows", 10)
        path = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(path) == 1
        record = json.loads(path.read_text(encoding="utf-8"))
        assert record["name"] == "a"
        assert record["attributes"] == {"rows": 10}
        buffer = io.StringIO()
        assert tracer.export_jsonl(buffer) == 1
        assert json.loads(buffer.getvalue())["trace_id"] == a.trace_id

    def test_slow_op_log_fires_only_past_the_threshold(self):
        lines: list[str] = []
        tracer = Tracer(
            enabled=True, slow_op_threshold=1e-9, slow_op_sink=lines.append
        )
        with tracer.span("slow"):
            pass
        assert len(lines) == 1
        assert lines[0].startswith("slow_op name=slow ")
        quiet = Tracer(
            enabled=True, slow_op_threshold=3600.0, slow_op_sink=lines.append
        )
        with quiet.span("fast"):
            pass
        assert len(lines) == 1


class TestFormattingAndNotes:
    def test_format_fields_quotes_awkward_values(self):
        line = format_fields(
            "access", route="/api/open", message='say "hi" now', empty=""
        )
        assert line == (
            'access route=/api/open message="say \\"hi\\" now" empty=""'
        )

    def test_notes_travel_to_the_collector(self):
        with collect_notes() as fields:
            note("map_cache", "miss")
        assert fields == {"map_cache": "miss"}
        note("after", 1)  # nobody listening: dropped
        assert fields == {"map_cache": "miss"}

    def test_render_trace_marks_the_slowest_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root"):
            with tracer.span("leaf") as leaf:
                leaf.set("rows", 5)
        (trace,) = tracer.traces(limit=1)
        text = render_trace(trace)
        assert text.splitlines()[0].startswith(f"trace {leaf.trace_id}")
        assert "- root" in text and "- leaf" in text
        assert "[rows=5]" in text
        assert text.count("◀ slowest") == 1
        # The leaf is indented one level under the root.
        root_line = next(x for x in text.splitlines() if "- root" in x)
        leaf_line = next(x for x in text.splitlines() if "- leaf" in x)
        assert len(leaf_line) - len(leaf_line.lstrip()) > len(
            root_line
        ) - len(root_line.lstrip())

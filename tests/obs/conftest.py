"""Keep the process-global tracer/metrics/profiler out of other tests."""

from __future__ import annotations

import pytest

from repro.obs.metrics import get_metrics, set_global_metrics
from repro.obs.profile import disable_profiling
from repro.obs.trace import get_tracer, set_tracer


@pytest.fixture(autouse=True)
def restore_obs_globals():
    """Snapshot and restore the obs globals around every test."""
    tracer = get_tracer()
    metrics = get_metrics()
    yield
    set_tracer(tracer)
    set_global_metrics(metrics)
    disable_profiling()

"""Unit tests for the opt-in sampling profiler."""

from __future__ import annotations

import time

from repro.obs.profile import (
    SamplingProfiler,
    disable_profiling,
    enable_profiling,
    get_profiler,
    profile_block,
)


def _busy_wait(seconds: float) -> None:
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(range(100))


class TestSamplingProfiler:
    def test_samples_attribute_to_the_active_label(self):
        profiler = enable_profiling(interval=0.001)
        try:
            with profile_block("stage.cluster"):
                _busy_wait(0.15)
        finally:
            disable_profiling()
        assert profiler.sample_count("stage.cluster") > 0
        report = profiler.report(top=3)
        assert "stage.cluster" in report
        frame, count = report["stage.cluster"][0]
        assert count >= 1
        assert "(" in frame and ":" in frame  # "func (file:line)" shape

    def test_profile_block_is_a_noop_when_disabled(self):
        assert get_profiler() is None
        with profile_block("anything"):
            _busy_wait(0.01)
        assert get_profiler() is None

    def test_stop_is_idempotent_and_interval_validated(self):
        profiler = SamplingProfiler(interval=0.001).start()
        profiler.stop()
        profiler.stop()
        assert profiler.sample_count() == 0
        try:
            SamplingProfiler(interval=0.0)
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("interval=0 must be rejected")

"""Unit tests for JSON export (the D3 payloads)."""

import json

import numpy as np
import pytest

from repro.core.config import BlaeuConfig
from repro.core.mapping import build_map
from repro.core.themes import extract_themes
from repro.datasets.synthetic import numeric_blobs, planted_themes
from repro.viz.export import export_map_json, export_themes_json


@pytest.fixture(scope="module")
def data_map():
    planted = numeric_blobs(n_rows=300, k=2, n_features=2, spread=0.4, seed=3)
    return build_map(
        planted.table, planted.table.column_names,
        rng=np.random.default_rng(0),
    )


class TestMapExport:
    def test_valid_json_with_expected_envelope(self, data_map):
        payload = json.loads(export_map_json(data_map))
        assert payload["type"] == "blaeu.map"
        assert payload["k"] == data_map.k
        assert payload["n_rows"] == data_map.n_rows

    def test_d3_hierarchy_shape(self, data_map):
        payload = json.loads(export_map_json(data_map))
        root = payload["root"]
        assert {"name", "id", "value", "sql", "rect"} <= set(root)
        stack = [root]
        seen = 0
        while stack:
            node = stack.pop()
            seen += 1
            rect = node["rect"]
            assert set(rect) == {"x", "y", "w", "h"}
            stack.extend(node.get("children", []))
        assert seen == len(data_map.regions())

    def test_rect_geometry_attached(self, data_map):
        payload = json.loads(export_map_json(data_map))
        root_rect = payload["root"]["rect"]
        assert root_rect == {"x": 0.0, "y": 0.0, "w": 1.0, "h": 1.0}

    def test_leaf_values_sum_to_total(self, data_map):
        payload = json.loads(export_map_json(data_map))

        def leaf_values(node):
            children = node.get("children")
            if not children:
                return [node["value"]]
            return [v for c in children for v in leaf_values(c)]

        assert sum(leaf_values(payload["root"])) == data_map.n_rows

    def test_indent_option(self, data_map):
        assert "\n" in export_map_json(data_map, indent=2)


class TestThemesExport:
    def test_valid_json(self):
        planted = planted_themes(
            n_rows=250, group_sizes={"a": 3, "b": 3}, seed=4
        )
        themes = extract_themes(
            planted.table,
            config=BlaeuConfig(theme_k_values=(2, 3)),
            rng=np.random.default_rng(0),
        )
        payload = json.loads(export_themes_json(themes))
        assert payload["type"] == "blaeu.themes"
        assert len(payload["themes"]) == len(themes)
        for entry in payload["themes"]:
            assert {"name", "columns", "cohesion"} <= set(entry)

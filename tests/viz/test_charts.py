"""Unit tests for the text histogram and scatter plot."""

import numpy as np
import pytest

from repro.table.column import CategoricalColumn, NumericColumn
from repro.viz.charts import text_histogram, text_scatter


class TestHistogram:
    def test_numeric_bins_and_counts(self, rng):
        column = NumericColumn("x", rng.normal(0, 1, 500))
        text = text_histogram(column, n_bins=8)
        assert text.startswith("x (500 rows)")
        assert text.count("[") == 8
        # The counts at line ends sum to the row count.
        counts = [int(line.rsplit(" ", 1)[1]) for line in text.splitlines()[1:]]
        assert sum(counts) == 500

    def test_categorical_bars_sorted(self):
        column = CategoricalColumn.from_labels(
            "c", ["b"] * 5 + ["a"] * 3 + ["z"]
        )
        lines = text_histogram(column).splitlines()
        assert lines[1].strip().startswith("b")
        assert lines[2].strip().startswith("a")

    def test_missing_row_reported(self):
        column = NumericColumn("x", [1.0, 2.0, np.nan, 4.0])
        assert "∅ missing" in text_histogram(column)

    def test_constant_column(self):
        column = NumericColumn("x", [3.0, 3.0, 3.0])
        text = text_histogram(column)
        assert "3" in text

    def test_all_missing(self):
        column = NumericColumn("x", [np.nan, np.nan])
        assert "(all values missing)" in text_histogram(column)
        empty = CategoricalColumn.from_labels("c", [None, None])
        assert "(all values missing)" in text_histogram(empty)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            text_histogram(NumericColumn("x", [1.0]), width=0)


class TestScatter:
    def test_grid_shape(self, rng):
        x = NumericColumn("x", rng.normal(0, 1, 200))
        y = NumericColumn("y", rng.normal(0, 1, 200))
        lines = text_scatter(x, y, width=30, height=10).splitlines()
        assert len(lines) == 1 + 10 + 2  # header + rows + axis + ranges
        assert all(len(line) == 31 for line in lines[1:11])

    def test_correlated_data_fills_diagonal(self, rng):
        base = np.linspace(0, 1, 300)
        x = NumericColumn("x", base)
        y = NumericColumn("y", base)
        text = text_scatter(x, y, width=20, height=10)
        rows = text.splitlines()[1:11]
        # Bottom-left and top-right are populated; top-left is empty.
        assert rows[0][-3:].strip() or rows[1][-3:].strip()
        assert not rows[0][1:5].strip()

    def test_incomplete_pairs_dropped(self):
        x = NumericColumn("x", [1.0, 2.0, np.nan])
        y = NumericColumn("y", [1.0, np.nan, 3.0])
        assert "(1 points)" in text_scatter(x, y)

    def test_no_complete_pairs(self):
        x = NumericColumn("x", [np.nan])
        y = NumericColumn("y", [1.0])
        assert "no complete pairs" in text_scatter(x, y)

    def test_tiny_grid_rejected(self, rng):
        x = NumericColumn("x", rng.normal(0, 1, 10))
        with pytest.raises(ValueError):
            text_scatter(x, x, width=1)

"""Unit and property tests for the treemap layout."""

import numpy as np
import pytest

from repro.core.datamap import DataMap, Region
from repro.core.mapping import build_map
from repro.datasets.synthetic import numeric_blobs
from repro.table.predicates import Everything
from repro.viz.treemap import Rect, treemap_layout


@pytest.fixture(scope="module")
def data_map() -> DataMap:
    planted = numeric_blobs(n_rows=400, k=3, n_features=2, spread=0.4, seed=77)
    return build_map(
        planted.table,
        planted.table.column_names,
        rng=np.random.default_rng(0),
    )


class TestLayout:
    def test_root_covers_canvas(self, data_map):
        rectangles = treemap_layout(data_map, width=2.0, height=3.0)
        root = rectangles["r"]
        assert (root.x, root.y, root.width, root.height) == (0, 0, 2.0, 3.0)

    def test_every_region_has_a_rectangle(self, data_map):
        rectangles = treemap_layout(data_map)
        assert set(rectangles) == {
            region.region_id for region in data_map.regions()
        }

    def test_areas_proportional_to_counts(self, data_map):
        rectangles = treemap_layout(data_map)
        total = data_map.n_rows
        for region in data_map.regions():
            expected = region.n_rows / total
            assert rectangles[region.region_id].area == pytest.approx(
                expected, abs=1e-9
            )

    def test_children_tile_their_parent(self, data_map):
        rectangles = treemap_layout(data_map)
        for region in data_map.regions():
            if region.is_leaf:
                continue
            parent = rectangles[region.region_id]
            child_area = sum(
                rectangles[c.region_id].area for c in region.children
            )
            assert child_area == pytest.approx(parent.area, abs=1e-9)
            for child in region.children:
                rect = rectangles[child.region_id]
                assert rect.x >= parent.x - 1e-9
                assert rect.y >= parent.y - 1e-9
                assert rect.x + rect.width <= parent.x + parent.width + 1e-9
                assert rect.y + rect.height <= parent.y + parent.height + 1e-9

    def test_leaves_do_not_overlap(self, data_map):
        rectangles = treemap_layout(data_map)
        leaves = [rectangles[r.region_id] for r in data_map.leaves()]
        for i, a in enumerate(leaves):
            for b in leaves[i + 1 :]:
                overlap_w = max(
                    0.0, min(a.x + a.width, b.x + b.width) - max(a.x, b.x)
                )
                overlap_h = max(
                    0.0, min(a.y + a.height, b.y + b.height) - max(a.y, b.y)
                )
                assert overlap_w * overlap_h == pytest.approx(0.0, abs=1e-9)

    def test_invalid_canvas_rejected(self, data_map):
        with pytest.raises(ValueError):
            treemap_layout(data_map, width=0.0)


class TestRect:
    def test_area_and_contains(self):
        rect = Rect(1.0, 2.0, 3.0, 4.0)
        assert rect.area == 12.0
        assert rect.contains(1.0, 2.0)
        assert rect.contains(3.9, 5.9)
        assert not rect.contains(4.0, 2.0)  # half-open far edge

    def test_zero_count_region_zero_area(self):
        # A map with an empty child must not crash the layout.
        child_a = Region("r0", "a", Everything(), n_rows=10, depth=1, cluster=0)
        child_b = Region("r1", "b", Everything(), n_rows=0, depth=1, cluster=1)
        root = Region(
            "r", "all", Everything(), n_rows=10, depth=0,
            children=[child_a, child_b],
        )
        data_map = DataMap(
            root=root, columns=("x",), k=2,
            silhouette=0.0, fidelity=1.0, sample_size=10,
        )
        rectangles = treemap_layout(data_map)
        assert rectangles["r1"].area == 0.0
        assert rectangles["r0"].area == pytest.approx(1.0)

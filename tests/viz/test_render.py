"""Unit tests for the ASCII theme-view and map-view renderers."""

import numpy as np
import pytest

from repro.core.config import BlaeuConfig
from repro.core.navigation import Explorer
from repro.core.themes import extract_themes
from repro.datasets.synthetic import mixed_blobs, planted_themes
from repro.viz.render import render_map, render_region_panel, render_theme_view


@pytest.fixture(scope="module")
def session():
    planted = mixed_blobs(n_rows=300, k=2, seed=91)
    explorer = Explorer(planted.table, config=BlaeuConfig(map_k_values=(2, 3)))
    data_map = explorer.open_columns(("x0", "x1", "cat0"))
    return explorer, data_map


class TestRenderMap:
    def test_header_and_stats(self, session):
        _, data_map = session
        text = render_map(data_map)
        assert "DATA MAP" in text
        assert f"k={data_map.k}" in text
        assert "silhouette" in text and "fidelity" in text

    def test_every_region_listed(self, session):
        _, data_map = session
        text = render_map(data_map)
        for region in data_map.regions():
            assert f"[{region.region_id}]" in text

    def test_indentation_follows_depth(self, session):
        _, data_map = session
        lines = render_map(data_map).splitlines()
        for region in data_map.regions():
            line = next(l for l in lines if f"[{region.region_id}]" in l)
            assert line.startswith("  " * region.depth + "[")

    def test_bars_optional(self, session):
        _, data_map = session
        assert "▇" in render_map(data_map, show_bars=True)
        assert "▇" not in render_map(data_map, show_bars=False)

    def test_deterministic(self, session):
        _, data_map = session
        assert render_map(data_map) == render_map(data_map)


class TestRenderThemeView:
    def test_lists_every_theme(self):
        planted = planted_themes(
            n_rows=300, group_sizes={"eco": 3, "env": 3}, seed=5
        )
        themes = extract_themes(
            planted.table,
            config=BlaeuConfig(theme_k_values=(2, 3)),
            rng=np.random.default_rng(0),
        )
        text = render_theme_view(themes)
        assert "THEMES" in text
        for theme in themes:
            assert theme.name in text

    def test_column_overflow_elided(self):
        planted = planted_themes(
            n_rows=200, group_sizes={"big": 9}, seed=6
        )
        themes = extract_themes(
            planted.table,
            config=BlaeuConfig(theme_k_values=(2,)),
            rng=np.random.default_rng(0),
        )
        text = render_theme_view(themes, max_columns=3)
        assert "… and" in text


class TestRegionPanel:
    def test_panel_contents(self, session):
        explorer, data_map = session
        leaf = data_map.leaves()[0]
        highlight = explorer.highlight(leaf.region_id)
        text = render_region_panel(highlight)
        assert f"REGION {leaf.region_id}" in text
        assert f"{highlight.n_rows} tuples" in text
        assert "preview:" in text
        assert "x0:" in text  # numeric summary line

    def test_missing_values_rendered_as_symbol(self, session):
        explorer, data_map = session
        planted = mixed_blobs(n_rows=100, k=2, missing_rate=0.5, seed=93)
        inner = Explorer(
            planted.table, config=BlaeuConfig(map_k_values=(2,))
        )
        inner_map = inner.open_columns(("x0", "cat0"))
        highlight = inner.highlight(inner_map.root.region_id)
        text = render_region_panel(highlight)
        assert "∅" in text

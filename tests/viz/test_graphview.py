"""Unit tests for the dependency-graph renderer (Figure 2)."""

import pytest

from repro.datasets.synthetic import planted_themes
from repro.graph.dependency import build_dependency_graph
from repro.viz.graphview import render_dependency_graph, render_weight_matrix


@pytest.fixture(scope="module")
def graph():
    planted = planted_themes(
        n_rows=400, group_sizes={"eco": 3, "health": 3}, noise=0.3, seed=15
    )
    return build_dependency_graph(planted.table)


class TestRenderGraph:
    def test_communities_rendered_separately(self, graph):
        text = render_dependency_graph(graph, min_weight=0.25)
        assert "community 0" in text
        assert "community 1" in text
        # Members of the same planted group appear with their neighbours.
        assert "eco_0 --" in text
        assert "health_0 --" in text

    def test_edges_respect_threshold(self, graph):
        text = render_dependency_graph(graph, min_weight=0.25)
        for token in text.split():
            if token.startswith("(") and token.endswith(")"):
                weight = float(token.strip("(),"))
                assert weight >= 0.25

    def test_isolated_columns_listed(self):
        planted = planted_themes(
            n_rows=300, group_sizes={"a": 2, "b": 1}, noise=0.3, seed=3
        )
        graph = build_dependency_graph(planted.table)
        text = render_dependency_graph(graph, min_weight=0.5)
        assert "isolated:" in text

    def test_deterministic(self, graph):
        assert render_dependency_graph(graph) == render_dependency_graph(graph)


class TestRenderMatrix:
    def test_shape(self, graph):
        lines = render_weight_matrix(graph).splitlines()
        # header rows + one line per column + legend
        assert len(lines) == 2 + graph.n_columns + 1
        assert lines[0].startswith("WEIGHT MATRIX")

    def test_diagonal_is_strongest_shade(self, graph):
        lines = render_weight_matrix(graph).splitlines()[2:-1]
        width = max(len(name) for name in graph.columns) + 1
        for i, line in enumerate(lines):
            assert line[width + i] == "@"  # unit diagonal

    def test_truncation_marker(self):
        planted = planted_themes(
            n_rows=150, group_sizes={"g": 25}, noise=0.3, seed=4
        )
        graph = build_dependency_graph(planted.table)
        assert "(truncated)" in render_weight_matrix(graph, max_columns=5)

"""Unit tests for the action recommendation engine."""

import pytest

from repro.core.config import BlaeuConfig
from repro.core.engine import Blaeu
from repro.datasets.synthetic import mixed_blobs
from repro.guide.recommend import (
    Suggestion,
    initial_suggestions,
    score_state,
    suggest_actions,
    suggestion_request,
)
from repro.table.predicates import And, Everything


@pytest.fixture
def engine():
    engine = Blaeu(BlaeuConfig(map_k_values=(2, 3), seed=5))
    engine.register(mixed_blobs(n_rows=300, k=2, seed=61).table)
    return engine


def ranked(suggestions):
    return [(s.action, s.target, round(s.score, 9)) for s in suggestions]


class TestInitialSuggestions:
    def test_suggests_themes_before_first_map(self, engine):
        explorer = engine.explore("mixed_blobs")
        suggestions = explorer.suggest()
        assert suggestions
        assert all(s.action == "open_theme" for s in suggestions)
        theme_names = {theme.name for theme in explorer.themes()}
        assert all(s.target in theme_names for s in suggestions)

    def test_sorted_by_score_then_target(self, engine):
        suggestions = initial_suggestions(engine.themes("mixed_blobs"))
        keys = [(-s.score, s.action, s.target) for s in suggestions]
        assert keys == sorted(keys)

    def test_limit_respected(self, engine):
        themes = engine.themes("mixed_blobs")
        assert len(initial_suggestions(themes, limit=1)) == 1
        assert len(initial_suggestions(themes, limit=0)) == 0


class TestStateSuggestions:
    def test_covers_zoom_project_and_recluster(self, engine):
        explorer = engine.explore("mixed_blobs")
        explorer.open_theme(0)
        actions = {s.action for s in explorer.suggest(limit=10)}
        assert "zoom" in actions
        assert "recluster" in actions

    def test_scores_within_unit_interval(self, engine):
        explorer = engine.explore("mixed_blobs")
        explorer.open_theme(0)
        for suggestion in explorer.suggest(limit=10):
            assert 0.0 <= suggestion.score <= 1.0

    def test_never_projects_onto_active_theme(self, engine):
        explorer = engine.explore("mixed_blobs")
        explorer.open_theme(0)
        active = set(explorer.state.columns)
        for suggestion in explorer.suggest(limit=20):
            if suggestion.action == "project":
                theme = explorer.themes().theme(suggestion.target)
                assert set(theme.columns) != active

    def test_never_reclusters_to_current_k(self, engine):
        explorer = engine.explore("mixed_blobs")
        explorer.open_theme(0)
        current_k = explorer.state.map.k
        for suggestion in explorer.suggest(limit=20):
            if suggestion.action == "recluster":
                assert int(suggestion.target) != current_k

    def test_insight_pass_skipped_above_row_cutoff(self, engine):
        explorer = engine.explore("mixed_blobs")
        explorer.open_theme(0)
        # Force the skip: the divergence term drops to zero but the
        # ranking still works off silhouette + size.
        suggestions = suggest_actions(explorer, limit=10, max_insight_rows=1)
        zooms = [s for s in suggestions if s.action == "zoom"]
        assert zooms
        assert all("divergence 0.00" in s.reason for s in zooms)


class TestDeterminism:
    def test_identical_across_fresh_explorers(self, engine):
        def once():
            explorer = engine.explore("mixed_blobs")
            explorer.open_theme(0)
            return ranked(explorer.suggest(limit=10))

        assert once() == once()

    def test_identical_across_cache_warmth(self):
        # A cold engine and one that has already built (and cached)
        # every map must rank identically: scoring never reads caches.
        def once():
            engine = Blaeu(BlaeuConfig(map_k_values=(2, 3), seed=5))
            engine.register(mixed_blobs(n_rows=300, k=2, seed=61).table)
            explorer = engine.explore("mixed_blobs")
            explorer.open_theme(0)
            first = ranked(explorer.suggest(limit=10))
            explorer.zoom(explorer.state.map.leaves()[0].region_id)
            explorer.rollback()  # back to the same state, caches warm
            second = ranked(explorer.suggest(limit=10))
            return first, second

        first_cold, first_warm = once()
        second_cold, second_warm = once()
        assert first_cold == first_warm
        assert first_cold == second_cold == second_warm


class TestSuggestionRequest:
    def test_open_theme_request(self, engine):
        themes = engine.themes("mixed_blobs")
        suggestion = initial_suggestions(themes, limit=1)[0]
        selection, columns, k = suggestion_request(
            suggestion, themes, None, (), None
        )
        assert selection.to_sql() == Everything().to_sql()
        assert columns == themes.theme(suggestion.target).columns
        assert k is None

    def test_zoom_request_composes_selection(self, engine):
        explorer = engine.explore("mixed_blobs")
        explorer.open_theme(0)
        state = explorer.state
        region = state.map.leaves()[0]
        suggestion = Suggestion("zoom", region.region_id, 1.0, "")
        selection, columns, k = suggestion_request(
            suggestion, explorer.themes(), state.map, state.columns,
            state.selection,
        )
        expected = And.of(state.selection, region.predicate)
        assert selection.to_sql() == expected.to_sql()
        assert columns == state.columns
        assert k is None

    def test_recluster_request_forces_k(self, engine):
        explorer = engine.explore("mixed_blobs")
        explorer.open_theme(0)
        state = explorer.state
        suggestion = Suggestion("recluster", "3", 1.0, "")
        selection, columns, k = suggestion_request(
            suggestion, explorer.themes(), state.map, state.columns,
            state.selection,
        )
        assert selection is state.selection
        assert columns == state.columns
        assert k == 3

    def test_stateful_action_without_state_rejected(self, engine):
        themes = engine.themes("mixed_blobs")
        with pytest.raises(ValueError, match="active state"):
            suggestion_request(
                Suggestion("zoom", "r0", 1.0, ""), themes, None, (), None
            )

    def test_unknown_action_rejected(self, engine):
        explorer = engine.explore("mixed_blobs")
        explorer.open_theme(0)
        state = explorer.state
        with pytest.raises(ValueError, match="unknown suggestion action"):
            suggestion_request(
                Suggestion("teleport", "x", 1.0, ""),
                explorer.themes(), state.map, state.columns, state.selection,
            )

    def test_zoom_request_matches_explorer_cache_key(self, engine):
        # The whole point of suggestion_request: a speculative build
        # must land under the key the real navigation will look up.
        from repro.core.pipeline import map_cache_key

        explorer = engine.explore("mixed_blobs")
        explorer.open_theme(0)
        state = explorer.state
        region = state.map.leaves()[0]
        suggestion = Suggestion("zoom", region.region_id, 1.0, "")
        selection, columns, _ = suggestion_request(
            suggestion, explorer.themes(), state.map, state.columns,
            state.selection,
        )
        speculative_key = map_cache_key(
            explorer.table, selection.to_sql(), columns, explorer.config
        )
        explorer.zoom(region.region_id)
        foreground_key = map_cache_key(
            explorer.table,
            explorer.state.selection.to_sql(),
            explorer.state.columns,
            explorer.config,
        )
        assert speculative_key == foreground_key


class TestScoreState:
    def test_matches_explorer_suggest(self, engine):
        explorer = engine.explore("mixed_blobs")
        explorer.open_theme(0)
        state = explorer.state
        direct = score_state(
            explorer.table,
            explorer.config,
            explorer.themes(),
            state.map,
            state.columns,
            state.selection,
            limit=10,
        )
        assert ranked(direct) == ranked(explorer.suggest(limit=10))

    def test_describe_is_one_line(self, engine):
        explorer = engine.explore("mixed_blobs")
        for suggestion in explorer.suggest(limit=3):
            line = suggestion.describe()
            assert "\n" not in line
            assert suggestion.target in line

"""Unit tests for navigation-trace recording and replay."""

import pytest

from repro.core.config import BlaeuConfig
from repro.core.engine import Blaeu
from repro.datasets.synthetic import mixed_blobs
from repro.guide.trace import (
    ACTIONS,
    NavigationTrace,
    TraceRecorder,
    TraceStep,
    replay_trace,
)


@pytest.fixture
def engine():
    engine = Blaeu(BlaeuConfig(map_k_values=(2, 3), seed=5))
    engine.register(mixed_blobs(n_rows=300, k=2, seed=61).table)
    return engine


def navigate(explorer):
    """A short scripted session: open, zoom, rollback, project by columns."""
    data_map = explorer.open_theme(0)
    explorer.zoom(data_map.leaves()[0].region_id)
    explorer.rollback()
    explorer.project_columns(("x0", "x1"))


class TestTraceStep:
    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError, match="unknown trace action"):
            TraceStep(session="s1", action="fly", target="", fingerprint="f")

    def test_accepts_every_observer_action(self):
        for action in ACTIONS:
            TraceStep(session="s1", action=action, target="t", fingerprint="f")


class TestRecorder:
    def test_records_completed_actions_in_order(self, engine):
        recorder = TraceRecorder()
        explorer = engine.explore("mixed_blobs")
        recorder.attach(explorer, "s1")
        navigate(explorer)
        trace = recorder.trace()
        assert [s.action for s in trace] == [
            "open_theme", "zoom", "rollback", "project_columns",
        ]
        assert trace.steps[0].target == explorer.themes()[0].name
        assert trace.steps[3].target == "x0,x1"
        fingerprint = explorer.table.fingerprint()
        assert all(s.fingerprint == fingerprint for s in trace)

    def test_detach_stops_recording(self, engine):
        recorder = TraceRecorder()
        explorer = engine.explore("mixed_blobs")
        detach = recorder.attach(explorer, "s1")
        data_map = explorer.open_theme(0)
        detach()
        explorer.zoom(data_map.leaves()[0].region_id)
        assert len(recorder) == 1

    def test_failed_actions_not_recorded(self, engine):
        recorder = TraceRecorder()
        explorer = engine.explore("mixed_blobs")
        recorder.attach(explorer, "s1")
        with pytest.raises(KeyError):
            explorer.open_theme("no such theme")
        assert len(recorder) == 0

    def test_multiple_sessions_interleave(self, engine):
        recorder = TraceRecorder()
        first = engine.explore("mixed_blobs")
        second = engine.explore("mixed_blobs")
        recorder.attach(first, "s1")
        recorder.attach(second, "s2")
        first_map = first.open_theme(0)
        second.open_theme(1)
        first.zoom(first_map.leaves()[0].region_id)
        trace = recorder.trace()
        assert trace.sessions() == ("s1", "s2")
        assert [s.action for s in trace.for_session("s1")] == [
            "open_theme", "zoom",
        ]
        assert len(trace.for_session("s2")) == 1


class TestRoundTrip:
    def test_save_load_preserves_steps(self, engine, tmp_path):
        recorder = TraceRecorder()
        explorer = engine.explore("mixed_blobs")
        recorder.attach(explorer, "s1")
        navigate(explorer)
        path = recorder.trace().save(tmp_path / "trace.jsonl")
        assert NavigationTrace.load(path) == recorder.trace()

    def test_empty_trace_round_trips(self, tmp_path):
        path = NavigationTrace(steps=()).save(tmp_path / "empty.jsonl")
        assert len(NavigationTrace.load(path)) == 0


class TestReplay:
    def test_replay_reproduces_history(self, engine):
        recorder = TraceRecorder()
        original = engine.explore("mixed_blobs")
        recorder.attach(original, "s1")
        navigate(original)

        replayed = engine.explore("mixed_blobs")
        applied = replay_trace(replayed, recorder.trace())
        assert applied == 4
        assert replayed.history() == original.history()
        assert replayed.state.columns == original.state.columns

    def test_replay_filters_by_session(self, engine):
        recorder = TraceRecorder()
        first = engine.explore("mixed_blobs")
        second = engine.explore("mixed_blobs")
        recorder.attach(first, "s1")
        recorder.attach(second, "s2")
        first.open_theme(0)
        second.open_theme(1)

        replayed = engine.explore("mixed_blobs")
        applied = replay_trace(replayed, recorder.trace(), session="s2")
        assert applied == 1
        assert replayed.state.columns == second.state.columns

    def test_replay_refuses_wrong_fingerprint(self, engine):
        trace = NavigationTrace(
            steps=(
                TraceStep(
                    session="s1",
                    action="open_theme",
                    target="whatever",
                    fingerprint="not-this-table",
                ),
            )
        )
        explorer = engine.explore("mixed_blobs")
        with pytest.raises(ValueError, match="fingerprint"):
            replay_trace(explorer, trace)

    def test_on_step_hook_sees_each_applied_step(self, engine):
        recorder = TraceRecorder()
        original = engine.explore("mixed_blobs")
        recorder.attach(original, "s1")
        navigate(original)

        seen = []
        replay_trace(
            engine.explore("mixed_blobs"),
            recorder.trace(),
            on_step=lambda step: seen.append(step.action),
        )
        assert seen == ["open_theme", "zoom", "rollback", "project_columns"]

"""Unit tests for the speculative-prefetch scheduler."""

import asyncio
import threading
import time

import pytest

from repro.core.config import BlaeuConfig
from repro.core.engine import Blaeu
from repro.datasets.synthetic import mixed_blobs
from repro.guide.prefetch import (
    PrefetchAction,
    PrefetchScheduler,
    prefetch_actions,
)
from repro.service.pool import WorkerPool


def run(coroutine):
    return asyncio.run(coroutine)


@pytest.fixture
def engine():
    from repro.service.cache import LRUCache

    # A shared result cache, as the service installs: without one,
    # speculative builds have nowhere to land.
    engine = Blaeu(
        BlaeuConfig(map_k_values=(2, 3), seed=5), map_cache=LRUCache(64)
    )
    engine.register(mixed_blobs(n_rows=300, k=2, seed=61).table)
    return engine


def actions_of(*thunks):
    """A planner returning fixed actions."""
    planned = [
        PrefetchAction(label=f"a{i}", build=thunk)
        for i, thunk in enumerate(thunks)
    ]
    return lambda: planned


class TestResolveActions:
    def test_thunks_warm_the_foreground_cache(self, engine):
        explorer = engine.explore("mixed_blobs")
        explorer.open_theme(0)
        actions = prefetch_actions(explorer, explorer.suggest(limit=3))
        assert actions

        builder = engine.map_builder
        before = builder.stats()["map_cache_hits"]
        for action in actions:
            action.build()
        # Re-taking the suggested zoom in the foreground must now hit.
        zoom_target = next(
            s.target for s in explorer.suggest(limit=3) if s.action == "zoom"
        )
        explorer.zoom(zoom_target)
        after = builder.stats()["map_cache_hits"]
        assert after > before

    def test_initial_state_resolves_open_theme_builds(self, engine):
        explorer = engine.explore("mixed_blobs")
        actions = prefetch_actions(explorer, explorer.suggest(limit=2))
        assert len(actions) == 2
        assert all(a.label.startswith("open_theme:") for a in actions)
        for action in actions:
            action.build()  # builds without an active state


class TestScheduler:
    def test_speculate_runs_planned_actions(self):
        pool = WorkerPool(workers=2, max_pending=4)
        done = []

        async def main():
            scheduler = PrefetchScheduler(pool, top_n=3, jobs=2)
            scheduler.speculate(
                "t", actions_of(lambda: done.append(1), lambda: done.append(2))
            )
            await scheduler.drain()
            return scheduler.stats()

        stats = run(main())
        pool.shutdown()
        assert sorted(done) == [1, 2]
        assert stats["completed"] == 2
        assert stats["in_flight"] == 0
        assert pool.stats().in_flight == 0

    def test_top_n_bounds_actions_per_speculation(self):
        pool = WorkerPool(workers=2, max_pending=4)
        done = []

        async def main():
            scheduler = PrefetchScheduler(pool, top_n=1, jobs=1)
            scheduler.speculate(
                "t", actions_of(lambda: done.append(1), lambda: done.append(2))
            )
            await scheduler.drain()

        run(main())
        pool.shutdown()
        assert done == [1]

    def test_new_speculation_cancels_the_old_scope(self):
        pool = WorkerPool(workers=2, max_pending=4)
        release = threading.Event()
        done = []

        async def main():
            scheduler = PrefetchScheduler(pool, top_n=3, jobs=1)
            scheduler.speculate(
                "t",
                actions_of(lambda: release.wait(5), lambda: done.append("old")),
            )
            await asyncio.sleep(0.05)  # first build is now on a worker
            scheduler.speculate("t", actions_of(lambda: done.append("new")))
            release.set()
            await scheduler.drain()
            return scheduler.stats()

        stats = run(main())
        pool.shutdown()
        # The old scope's second action never ran; the new one did.
        assert done == ["new"]
        assert stats["cancelled"] >= 1
        assert pool.stats().in_flight == 0

    def test_explicit_cancel_stops_pending_actions(self):
        pool = WorkerPool(workers=2, max_pending=4)
        release = threading.Event()
        done = []

        async def main():
            scheduler = PrefetchScheduler(pool, top_n=3, jobs=1)
            scheduler.speculate(
                "t",
                actions_of(lambda: release.wait(5), lambda: done.append(1)),
            )
            await asyncio.sleep(0.05)
            scheduler.cancel("t")
            release.set()
            await scheduler.drain()
            return scheduler.stats()

        stats = run(main())
        pool.shutdown()
        assert done == []
        assert stats["cancelled"] >= 1

    def test_scopes_are_independent(self):
        pool = WorkerPool(workers=2, max_pending=4)
        done = []

        async def main():
            scheduler = PrefetchScheduler(pool, top_n=3, jobs=2)
            scheduler.speculate("a", actions_of(lambda: done.append("a")))
            scheduler.cancel("b")  # unrelated scope
            await scheduler.drain()

        run(main())
        pool.shutdown()
        assert done == ["a"]

    def test_backs_off_while_foreground_occupies_the_pool(self):
        pool = WorkerPool(workers=1, max_pending=4)
        release = threading.Event()
        done = []

        async def main():
            scheduler = PrefetchScheduler(pool, top_n=1, jobs=1)
            foreground = asyncio.ensure_future(pool.run(release.wait))
            await asyncio.sleep(0.05)  # foreground owns the only worker
            scheduler.speculate("t", actions_of(lambda: done.append(1)))
            await asyncio.sleep(0.05)
            assert done == []  # background never queued behind foreground
            release.set()
            await foreground
            await scheduler.drain()
            return scheduler.stats()

        stats = run(main())
        pool.shutdown()
        assert done == [1]
        assert stats["completed"] == 1
        assert pool.stats().background_rejected >= 1

    def test_planner_errors_are_counted_not_raised(self):
        pool = WorkerPool(workers=2, max_pending=4)

        def bad_planner():
            raise RuntimeError("boom")

        async def main():
            scheduler = PrefetchScheduler(pool, top_n=3, jobs=1)
            scheduler.speculate("t", bad_planner)
            await scheduler.drain()
            return scheduler.stats()

        stats = run(main())
        pool.shutdown()
        assert stats["errors"] == 1
        assert stats["completed"] == 0

    def test_build_errors_are_counted_not_raised(self):
        pool = WorkerPool(workers=2, max_pending=4)

        def bad_build():
            raise ValueError("bad build")

        async def main():
            scheduler = PrefetchScheduler(pool, top_n=3, jobs=1)
            scheduler.speculate("t", actions_of(bad_build))
            await scheduler.drain()
            return scheduler.stats()

        stats = run(main())
        pool.shutdown()
        assert stats["errors"] == 1

    def test_closed_scheduler_refuses_new_speculation(self):
        pool = WorkerPool(workers=2, max_pending=4)
        done = []

        async def main():
            scheduler = PrefetchScheduler(pool, top_n=3, jobs=1)
            await scheduler.aclose()
            scheduler.speculate("t", actions_of(lambda: done.append(1)))
            await scheduler.drain()
            return scheduler.stats()

        stats = run(main())
        pool.shutdown()
        assert done == []
        assert stats["scheduled"] == 0

    def test_rejects_bad_parameters(self):
        pool = WorkerPool(workers=1, max_pending=2)
        with pytest.raises(ValueError, match="top_n"):
            PrefetchScheduler(pool, top_n=0)
        with pytest.raises(ValueError, match="jobs"):
            PrefetchScheduler(pool, jobs=0)
        pool.shutdown()


class TestSchedulerWarmsSharedCache:
    def test_speculation_makes_foreground_zoom_a_cache_hit(self, engine):
        pool = WorkerPool(workers=2, max_pending=4)
        explorer = engine.explore("mixed_blobs")
        explorer.open_theme(0)
        suggestions = [
            s for s in explorer.suggest(limit=5) if s.action == "zoom"
        ][:1]
        assert suggestions

        async def main():
            scheduler = PrefetchScheduler(pool, top_n=1, jobs=1)
            scheduler.speculate(
                "s", lambda: prefetch_actions(explorer, suggestions)
            )
            await scheduler.drain()
            return scheduler.stats()

        stats = run(main())
        pool.shutdown()
        assert stats["completed"] == 1

        builder = engine.map_builder
        before = builder.stats()["map_cache_hits"]
        explorer.zoom(suggestions[0].target)
        assert builder.stats()["map_cache_hits"] == before + 1


class TestSchedulerDeadline:
    def test_overrunning_builds_are_counted_not_raised(self):
        from repro.resilience.deadline import checkpoint

        pool = WorkerPool(workers=2, max_pending=4)
        done = []

        def overruns():
            # The scheduler's per-job budget (1µs here) is spent by the
            # time the build's first checkpoint runs.
            time.sleep(0.01)
            checkpoint("prefetch.test")
            done.append(True)

        async def main():
            scheduler = PrefetchScheduler(
                pool, top_n=1, jobs=1, deadline=0.000001
            )
            scheduler.speculate("t", actions_of(overruns))
            await scheduler.drain()
            return scheduler.stats()

        stats = run(main())
        pool.shutdown()
        assert done == []
        assert stats["deadline_exceeded"] == 1
        assert stats["completed"] == 0
        assert pool.stats().in_flight == 0  # the slot was released

    def test_roomy_budget_lets_builds_finish(self):
        from repro.resilience.deadline import checkpoint

        pool = WorkerPool(workers=2, max_pending=4)
        done = []

        async def main():
            scheduler = PrefetchScheduler(
                pool, top_n=1, jobs=1, deadline=30.0
            )
            scheduler.speculate(
                "t",
                actions_of(
                    lambda: (checkpoint("prefetch.test"), done.append(True))
                ),
            )
            await scheduler.drain()
            return scheduler.stats()

        stats = run(main())
        pool.shutdown()
        assert done == [True]
        assert stats["deadline_exceeded"] == 0

    def test_rejects_nonpositive_deadline(self):
        pool = WorkerPool(workers=1, max_pending=2)
        with pytest.raises(ValueError, match="deadline"):
            PrefetchScheduler(pool, deadline=0.0)
        pool.shutdown()

"""Unit tests for out-of-sample medoid assignment."""

import numpy as np
import pytest

from repro.cluster.assignment import assign_to_medoids, assignment_cost


class TestAssignment:
    def test_nearest_medoid_wins(self):
        medoids = np.asarray([[0.0, 0.0], [10.0, 10.0]])
        points = np.asarray([[1.0, 1.0], [9.0, 9.0], [-2.0, 0.0]])
        labels = assign_to_medoids(points, medoids)
        assert labels.tolist() == [0, 1, 0]

    def test_points_at_medoids_assigned_to_them(self, rng):
        medoids = rng.normal(0, 5, (4, 3))
        labels = assign_to_medoids(medoids, medoids)
        assert labels.tolist() == [0, 1, 2, 3]

    def test_cost_is_sum_of_nearest_distances(self):
        medoids = np.asarray([[0.0], [10.0]])
        points = np.asarray([[1.0], [9.0]])
        assert assignment_cost(points, medoids) == pytest.approx(2.0)

    def test_manhattan_metric(self):
        medoids = np.asarray([[0.0, 0.0]])
        points = np.asarray([[3.0, 4.0]])
        assert assignment_cost(points, medoids, metric="manhattan") == 7.0

    def test_consistency_with_clara_style_extension(self, rng):
        # Assigning the training points back to their own medoids
        # reproduces a valid partition (every cluster non-empty).
        points = np.vstack([
            rng.normal(0, 0.3, (30, 2)),
            rng.normal(8, 0.3, (30, 2)),
        ])
        medoids = points[[0, 30]]
        labels = assign_to_medoids(points, medoids)
        assert set(labels.tolist()) == {0, 1}

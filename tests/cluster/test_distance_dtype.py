"""float32 opt-in and the in-place Manhattan kernel: accuracy bounds."""

import numpy as np
import pytest

from repro.cluster.distance import (
    distances_to_points,
    euclidean_distances,
    gower_distances,
    manhattan_distances,
    pairwise_distances,
    resolve_dtype,
    validate_distance_matrix,
)


def _points(rng, n=120, d=6, scale=5.0):
    return rng.normal(0, scale, (n, d))


class TestResolveDtype:
    def test_default_is_float64(self):
        assert resolve_dtype(None) == np.float64

    @pytest.mark.parametrize("spec", ["float32", np.float32, np.dtype("float32")])
    def test_float32_specs(self, spec):
        assert resolve_dtype(spec) == np.float32

    @pytest.mark.parametrize("spec", ["int32", "float16", complex])
    def test_rejects_non_float(self, spec):
        with pytest.raises(ValueError):
            resolve_dtype(spec)


class TestFloat32Accuracy:
    """The opt-in dtype must stay within a bounded error of float64."""

    @pytest.mark.parametrize("metric", ["euclidean", "manhattan"])
    def test_pairwise_close_and_typed(self, rng, metric):
        points = _points(rng)
        exact = pairwise_distances(points, metric)
        fast = pairwise_distances(points, metric, dtype="float32")
        assert fast.dtype == np.float32
        scale = exact.max()
        assert np.abs(fast.astype(np.float64) - exact).max() <= 1e-5 * scale

    def test_gower_output_dtype(self, rng):
        points = _points(rng, n=40, d=4)
        points[rng.random(points.shape) < 0.2] = np.nan
        exact = gower_distances(points)
        fast = gower_distances(points, dtype="float32")
        assert fast.dtype == np.float32
        assert np.abs(fast.astype(np.float64) - exact).max() <= 1e-6

    @pytest.mark.parametrize("metric", ["euclidean", "manhattan"])
    def test_distances_to_points_close(self, rng, metric):
        points = _points(rng)
        refs = _points(rng, n=7)
        exact = distances_to_points(points, refs, metric)
        fast = distances_to_points(points, refs, metric, dtype="float32")
        assert fast.dtype == np.float32
        scale = exact.max()
        assert np.abs(fast.astype(np.float64) - exact).max() <= 1e-5 * scale


class TestManhattanScratchKernel:
    def test_matches_bruteforce(self, rng):
        points = _points(rng, n=50, d=5)
        expected = np.abs(
            points[:, None, :] - points[None, :, :]
        ).sum(axis=2)
        np.testing.assert_allclose(
            manhattan_distances(points), expected, atol=1e-12
        )

    def test_distances_to_points_matches_bruteforce(self, rng):
        points = _points(rng, n=30, d=4)
        refs = _points(rng, n=6, d=4)
        expected = np.abs(points[:, None, :] - refs[None, :, :]).sum(axis=2)
        np.testing.assert_allclose(
            distances_to_points(points, refs, "manhattan"), expected, atol=1e-12
        )

    def test_peak_memory_bounded(self, rng):
        """Peak traced allocation stays ~2 matrices (output + one scratch)."""
        import tracemalloc

        points = _points(rng, n=400, d=32)
        matrix_bytes = 400 * 400 * 8
        tracemalloc.start()
        manhattan_distances(points)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < 2.5 * matrix_bytes


class TestValidatePreservesDtype:
    def test_float32_matrix_stays_float32(self, rng):
        matrix = pairwise_distances(_points(rng, n=30), dtype="float32")
        assert validate_distance_matrix(matrix).dtype == np.float32

    def test_integer_matrix_promoted(self):
        matrix = np.zeros((3, 3), dtype=np.int64)
        assert validate_distance_matrix(matrix).dtype == np.float64

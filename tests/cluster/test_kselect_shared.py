"""Shared-distance k selection must match the legacy per-k computation."""

import numpy as np
import pytest

from repro.cluster.distance import pairwise_distances
from repro.cluster.kselect import select_k_points
from repro.cluster.pam import pam
from repro.cluster.silhouette import (
    SharedSilhouette,
    mean_silhouette,
    monte_carlo_silhouette,
)


def _blobs(rng, k, n_per=60, gap=12.0):
    angles = np.linspace(0, 2 * np.pi, k, endpoint=False)
    centers = gap * np.stack([np.cos(angles), np.sin(angles)], axis=1)
    return np.vstack([
        rng.normal(0, 0.5, (n_per, 2)) + centers[c] for c in range(k)
    ])


class TestSharedSilhouetteExact:
    def test_exact_mode_below_threshold(self, rng):
        points = _blobs(rng, 3, n_per=30)
        shared = SharedSilhouette(points, exact_threshold=200)
        assert shared.exact
        assert shared.matrix is not None

    def test_exact_score_matches_per_k_recomputation(self, rng):
        """The old path rebuilt the matrix per k; scores must be unchanged."""
        points = _blobs(rng, 3, n_per=40)
        shared = SharedSilhouette(points, exact_threshold=500)
        for k in (2, 3, 4, 5):
            labels = pam(pairwise_distances(points), k).labels
            legacy = mean_silhouette(pairwise_distances(points), labels)
            assert shared.score(labels) == legacy

    def test_caller_provided_matrix_is_used(self, rng):
        points = _blobs(rng, 2, n_per=25)
        matrix = pairwise_distances(points)
        shared = SharedSilhouette(points, distances=matrix)
        assert shared.exact
        assert shared.matrix is matrix
        labels = pam(matrix, 2).labels
        assert shared.score(labels) == mean_silhouette(matrix, labels)

    def test_mismatched_matrix_rejected(self, rng):
        points = _blobs(rng, 2, n_per=25)
        with pytest.raises(ValueError):
            SharedSilhouette(points, distances=np.zeros((3, 3)))


class TestSharedSilhouetteSampled:
    def test_sampled_mode_above_threshold(self, rng):
        points = _blobs(rng, 3, n_per=200)
        shared = SharedSilhouette(
            points, subsample_size=80, exact_threshold=100, rng=rng
        )
        assert not shared.exact

    def test_matches_monte_carlo_with_same_seed(self, rng):
        """Sharing the draws across k must not change any single score."""
        points = _blobs(rng, 3, n_per=200)
        labels = pam(pairwise_distances(points), 3).labels
        shared = SharedSilhouette(
            points,
            n_subsamples=6,
            subsample_size=80,
            rng=np.random.default_rng(99),
        )
        legacy = monte_carlo_silhouette(
            points,
            labels,
            n_subsamples=6,
            subsample_size=80,
            rng=np.random.default_rng(99),
        )
        assert shared.score(labels) == legacy

    def test_degenerate_labels_score_zero(self, rng):
        points = _blobs(rng, 2, n_per=150)
        shared = SharedSilhouette(
            points, subsample_size=50, exact_threshold=10, rng=rng
        )
        assert shared.score(np.zeros(points.shape[0], dtype=np.intp)) == 0.0

    def test_misaligned_labels_rejected(self, rng):
        points = _blobs(rng, 2, n_per=30)
        shared = SharedSilhouette(points)
        with pytest.raises(ValueError):
            shared.score(np.zeros(5, dtype=np.intp))


class TestSelectKPointsShared:
    def test_matches_legacy_per_k_loop(self, rng):
        """select_k_points == the naive per-k loop over identical scoring."""
        points = _blobs(rng, 3, n_per=50)

        def cluster_fn(pts, k):
            return pam(pairwise_distances(pts), k)

        selection = select_k_points(
            points, cluster_fn, k_values=(2, 3, 4), exact_threshold=1000
        )

        # Legacy reference: recompute matrix and silhouette for every k.
        legacy_scores = {}
        for k in (2, 3, 4):
            labels = pam(pairwise_distances(points), k).labels
            legacy_scores[k] = mean_silhouette(pairwise_distances(points), labels)
        assert selection.scores() == legacy_scores
        assert selection.k == max(
            legacy_scores, key=lambda k: (legacy_scores[k], -k)
        )

    def test_recovers_planted_k_exact_path(self, rng):
        points = _blobs(rng, 4, n_per=40)

        def cluster_fn(pts, k):
            return pam(pairwise_distances(pts), k)

        selection = select_k_points(
            points, cluster_fn, k_values=(2, 3, 4, 5), exact_threshold=500
        )
        assert selection.k == 4

    def test_explicit_shared_scorer_is_honoured(self, rng):
        points = _blobs(rng, 2, n_per=30)
        matrix = pairwise_distances(points)
        shared = SharedSilhouette(points, distances=matrix)

        def cluster_fn(pts, k):
            return pam(matrix, k, validate=False)

        selection = select_k_points(
            points, cluster_fn, k_values=(2, 3), shared=shared
        )
        for candidate in selection.candidates:
            expected = mean_silhouette(matrix, candidate.clustering.labels)
            assert candidate.silhouette == expected

"""Unit tests for CLARA."""

import numpy as np
import pytest

from repro.cluster.clara import clara, default_sample_size
from repro.cluster.distance import euclidean_distances
from repro.cluster.pam import pam
from repro.cluster.validation import adjusted_rand_index


def _blobs(rng, n_per=400, centers=((-6, 0), (6, 0), (0, 8))):
    points = []
    labels = []
    for c, center in enumerate(centers):
        points.append(rng.normal(0, 0.5, (n_per, 2)) + np.asarray(center))
        labels += [c] * n_per
    return np.vstack(points), np.asarray(labels)


class TestClara:
    def test_recovers_blobs_at_scale(self, rng):
        points, truth = _blobs(rng)
        result = clara(points, 3, rng=rng)
        assert adjusted_rand_index(result.labels, truth) > 0.98

    def test_labels_cover_all_points(self, rng):
        points, _ = _blobs(rng, n_per=200)
        result = clara(points, 3, rng=rng)
        assert result.labels.shape == (points.shape[0],)
        assert set(result.labels.tolist()) == {0, 1, 2}

    def test_medoids_index_full_dataset(self, rng):
        points, _ = _blobs(rng, n_per=200)
        result = clara(points, 3, rng=rng)
        assert result.medoids.max() < points.shape[0]
        for cluster, medoid in enumerate(result.medoids):
            assert result.labels[medoid] == cluster

    def test_cost_close_to_pam(self, rng):
        points, _ = _blobs(rng, n_per=60)  # small enough for exact PAM
        exact = pam(euclidean_distances(points), 3)
        approx = clara(points, 3, n_draws=5, rng=rng)
        assert approx.cost <= exact.cost * 1.1

    def test_small_input_falls_through_to_pam(self, rng):
        points = rng.normal(0, 1, (30, 2))
        result = clara(points, 3, sample_size=100, rng=rng)
        exact = pam(euclidean_distances(points), 3)
        assert result.cost == pytest.approx(exact.cost)

    def test_more_draws_never_hurt_much(self, rng):
        points, _ = _blobs(rng, n_per=300)
        one = clara(points, 3, n_draws=1, rng=np.random.default_rng(0))
        five = clara(points, 3, n_draws=5, rng=np.random.default_rng(0))
        assert five.cost <= one.cost + 1e-9

    def test_default_sample_size_rule(self):
        assert default_sample_size(3) == 46
        assert default_sample_size(10) == 60

    def test_invalid_arguments_rejected(self, rng):
        points = rng.normal(0, 1, (20, 2))
        with pytest.raises(ValueError):
            clara(points, 0, rng=rng)
        with pytest.raises(ValueError):
            clara(points, 3, n_draws=0, rng=rng)
        with pytest.raises(ValueError):
            clara(np.zeros(5), 2, rng=rng)

    def test_clusters_ordered_by_size(self, rng):
        points = np.vstack([
            rng.normal(0, 0.4, (500, 2)) + [6, 6],
            rng.normal(0, 0.4, (100, 2)) - [6, 6],
        ])
        result = clara(points, 2, rng=rng)
        sizes = np.bincount(result.labels)
        assert sizes[0] >= sizes[1]

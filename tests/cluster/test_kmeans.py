"""Unit tests for the k-means baseline."""

import numpy as np
import pytest

from repro.cluster.kmeans import kmeans
from repro.cluster.validation import adjusted_rand_index


def _blobs(rng, n_per=80):
    points = np.vstack([
        rng.normal(0, 0.4, (n_per, 2)) + [-5, 0],
        rng.normal(0, 0.4, (n_per, 2)) + [5, 0],
        rng.normal(0, 0.4, (n_per, 2)) + [0, 7],
    ])
    labels = np.repeat([0, 1, 2], n_per)
    return points, labels


class TestKMeans:
    def test_recovers_blobs(self, rng):
        points, truth = _blobs(rng)
        result = kmeans(points, 3, rng=rng)
        assert adjusted_rand_index(result.labels, truth) > 0.98

    def test_labels_and_medoid_shape(self, rng):
        points, _ = _blobs(rng)
        result = kmeans(points, 3, rng=rng)
        assert result.labels.shape == (points.shape[0],)
        assert result.medoids.shape == (3,)
        assert result.medoids.max() < points.shape[0]

    def test_k_one(self, rng):
        points = rng.normal(0, 1, (30, 2))
        result = kmeans(points, 1, rng=rng)
        assert (result.labels == 0).all()

    def test_invalid_k_rejected(self, rng):
        points = rng.normal(0, 1, (5, 2))
        with pytest.raises(ValueError):
            kmeans(points, 0, rng=rng)
        with pytest.raises(ValueError):
            kmeans(points, 6, rng=rng)

    def test_no_empty_clusters_even_with_duplicates(self, rng):
        points = np.zeros((20, 2))
        points[:3] += 10.0
        result = kmeans(points, 3, rng=rng)
        assert np.unique(result.labels).size <= 3
        assert result.cost >= 0

    def test_clusters_ordered_by_size(self, rng):
        points = np.vstack([
            rng.normal(0, 0.3, (90, 2)) + [5, 5],
            rng.normal(0, 0.3, (30, 2)) - [5, 5],
        ])
        result = kmeans(points, 2, rng=rng)
        sizes = np.bincount(result.labels)
        assert sizes[0] >= sizes[1]

    def test_seeded_reproducibility(self, rng):
        points, _ = _blobs(rng)
        a = kmeans(points, 3, rng=np.random.default_rng(5))
        b = kmeans(points, 3, rng=np.random.default_rng(5))
        assert (a.labels == b.labels).all()

    def test_one_dimensional_rejected(self, rng):
        with pytest.raises(ValueError):
            kmeans(np.zeros(5), 2, rng=rng)

"""Parallel CLARA must be bit-identical to the serial reference."""

import numpy as np
import pytest

from repro.cluster.clara import clara
from repro.cluster.parallel import map_in_order, resolve_jobs


def _blobs(seed=0, n_per=500):
    rng = np.random.default_rng(seed)
    centers = ((-8, 0), (8, 0), (0, 10), (0, -10))
    return np.vstack([
        rng.normal(0, 0.6, (n_per, 2)) + np.asarray(c) for c in centers
    ])


def _run(points, n_jobs, seed=42, dtype=None):
    return clara(
        points,
        4,
        n_draws=5,
        sample_size=60,
        rng=np.random.default_rng(seed),
        n_jobs=n_jobs,
        dtype=dtype,
    )


class TestParallelDeterminism:
    @pytest.mark.parametrize("n_jobs", [2, 3, 0])
    def test_parallel_matches_serial_bitwise(self, n_jobs):
        points = _blobs()
        serial = _run(points, n_jobs=1)
        parallel = _run(points, n_jobs=n_jobs)
        assert np.array_equal(serial.labels, parallel.labels)
        assert np.array_equal(serial.medoids, parallel.medoids)
        assert serial.cost == parallel.cost  # exact, not approx
        assert serial.n_iterations == parallel.n_iterations

    def test_none_jobs_matches_serial(self):
        points = _blobs(seed=3)
        assert _run(points, n_jobs=None).cost == _run(points, n_jobs=1).cost

    def test_different_seeds_still_differ(self):
        # Guard against the degenerate "determinism" of ignoring the RNG.
        points = _blobs(seed=5, n_per=300)
        a = _run(points, n_jobs=2, seed=1)
        b = _run(points, n_jobs=2, seed=2)
        assert not np.array_equal(a.medoids, b.medoids) or a.cost != b.cost

    def test_float32_close_to_float64(self):
        points = _blobs(seed=7)
        exact = _run(points, n_jobs=1)
        approx = _run(points, n_jobs=2, dtype="float32")
        assert approx.cost == pytest.approx(exact.cost, rel=1e-4)


class TestParallelHelpers:
    def test_resolve_jobs_semantics(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1  # all cores
        assert resolve_jobs(8, n_items=3) == 3
        assert resolve_jobs(2, n_items=0) == 1

    def test_map_in_order_preserves_order(self):
        items = list(range(20))
        assert map_in_order(lambda x: x * x, items, n_jobs=4) == [
            x * x for x in items
        ]

    def test_map_in_order_serial_default(self):
        calls = []
        map_in_order(calls.append, [1, 2, 3])
        assert calls == [1, 2, 3]

    def test_map_in_order_propagates_errors(self):
        def boom(x):
            raise RuntimeError(f"bad {x}")

        with pytest.raises(RuntimeError, match="bad"):
            map_in_order(boom, [1, 2], n_jobs=2)

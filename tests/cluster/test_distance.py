"""Unit and property tests for distance computations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cluster.distance import (
    distances_to_points,
    euclidean_distances,
    gower_distances,
    manhattan_distances,
    pairwise_distances,
    validate_distance_matrix,
)


class TestEuclidean:
    def test_matches_direct_computation(self, rng):
        points = rng.normal(0, 1, (20, 3))
        fast = euclidean_distances(points)
        for i in range(20):
            for j in range(20):
                direct = np.linalg.norm(points[i] - points[j])
                assert fast[i, j] == pytest.approx(direct, abs=1e-9)

    def test_identical_points_zero(self):
        points = np.ones((3, 2))
        assert euclidean_distances(points).max() == 0.0

    def test_one_dimensional_rejected(self):
        with pytest.raises(ValueError):
            euclidean_distances(np.asarray([1.0, 2.0]))


class TestManhattan:
    def test_matches_direct(self, rng):
        points = rng.normal(0, 1, (15, 4))
        fast = manhattan_distances(points)
        i, j = 3, 11
        assert fast[i, j] == pytest.approx(np.abs(points[i] - points[j]).sum())

    def test_dominates_euclidean(self, rng):
        points = rng.normal(0, 1, (10, 3))
        assert (
            manhattan_distances(points) >= euclidean_distances(points) - 1e-9
        ).all()


class TestGower:
    def test_plain_numeric_reduces_to_scaled_l1(self):
        points = np.asarray([[0.0], [1.0], [2.0]])
        distances = gower_distances(points)
        assert distances[0, 2] == pytest.approx(1.0)  # full range
        assert distances[0, 1] == pytest.approx(0.5)

    def test_binary_features(self):
        points = np.asarray([[0.0, 1.0], [0.0, 0.0], [1.0, 1.0]])
        distances = gower_distances(points, numeric_mask=np.asarray([False, False]))
        assert distances[0, 1] == pytest.approx(0.5)  # differ in 1 of 2
        assert distances[1, 2] == pytest.approx(1.0)

    def test_missing_features_drop_out(self):
        points = np.asarray([[0.0, np.nan], [1.0, 5.0]])
        distances = gower_distances(points)
        # Only the first feature is shared; range is 1 → distance 1.
        assert distances[0, 1] == pytest.approx(1.0)

    def test_no_shared_features_gives_max_distance(self):
        points = np.asarray([[np.nan, 1.0], [2.0, np.nan]])
        distances = gower_distances(points)
        assert distances[0, 1] == 1.0

    def test_constant_feature_contributes_zero(self):
        points = np.asarray([[1.0, 0.0], [1.0, 1.0]])
        distances = gower_distances(points)
        assert distances[0, 1] == pytest.approx(0.5)  # only feature 2 counts


class TestDistancesToPoints:
    def test_euclidean_matches_full_matrix(self, rng):
        points = rng.normal(0, 1, (12, 3))
        full = euclidean_distances(points)
        partial = distances_to_points(points, points[[2, 7]])
        np.testing.assert_allclose(partial[:, 0], full[:, 2], atol=1e-9)
        np.testing.assert_allclose(partial[:, 1], full[:, 7], atol=1e-9)

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            distances_to_points(rng.normal(0, 1, (5, 3)), rng.normal(0, 1, (2, 4)))

    def test_unknown_metric_rejected(self, rng):
        points = rng.normal(0, 1, (4, 2))
        with pytest.raises(ValueError):
            distances_to_points(points, points, metric="cosine")


class TestValidate:
    def test_accepts_valid(self, rng):
        points = rng.normal(0, 1, (6, 2))
        validate_distance_matrix(euclidean_distances(points))

    def test_rejects_asymmetric(self):
        bad = np.asarray([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            validate_distance_matrix(bad)

    def test_rejects_nonzero_diagonal(self):
        bad = np.asarray([[1.0, 0.0], [0.0, 0.0]])
        with pytest.raises(ValueError, match="diagonal"):
            validate_distance_matrix(bad)

    def test_rejects_negative(self):
        bad = np.asarray([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(ValueError, match="non-negative"):
            validate_distance_matrix(bad)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError, match="square"):
            validate_distance_matrix(np.zeros((2, 3)))


_matrices = arrays(
    np.float64,
    st.tuples(st.integers(2, 12), st.integers(1, 4)),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
)


@settings(max_examples=60, deadline=None)
@given(points=_matrices)
def test_metric_axioms(points):
    for metric in ("euclidean", "manhattan", "gower"):
        distances = pairwise_distances(points, metric)
        n = points.shape[0]
        assert distances.shape == (n, n)
        assert np.allclose(distances, distances.T, atol=1e-8)
        assert np.allclose(np.diag(distances), 0.0, atol=1e-9)
        assert distances.min() >= -1e-12


@settings(max_examples=40, deadline=None)
@given(points=_matrices)
def test_triangle_inequality_euclidean(points):
    distances = pairwise_distances(points, "euclidean")
    n = points.shape[0]
    for i in range(min(n, 5)):
        for j in range(min(n, 5)):
            for k in range(min(n, 5)):
                assert distances[i, j] <= distances[i, k] + distances[k, j] + 1e-6

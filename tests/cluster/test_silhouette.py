"""Unit and property tests for silhouette estimators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.distance import euclidean_distances
from repro.cluster.silhouette import (
    cluster_silhouettes,
    mean_silhouette,
    monte_carlo_silhouette,
    silhouette_samples,
)


def _two_blobs(rng, n_per=40, gap=10.0):
    points = np.vstack([
        rng.normal(0, 0.5, (n_per, 2)),
        rng.normal(0, 0.5, (n_per, 2)) + gap,
    ])
    labels = np.repeat([0, 1], n_per)
    return points, labels


class TestSilhouetteSamples:
    def test_well_separated_blobs_near_one(self, rng):
        points, labels = _two_blobs(rng)
        values = silhouette_samples(euclidean_distances(points), labels)
        assert values.mean() > 0.9

    def test_bad_labeling_scores_negative(self, rng):
        points, labels = _two_blobs(rng)
        shuffled = labels.copy()
        # Swap half of each cluster: many points closer to the other side.
        shuffled[:20] = 1
        shuffled[40:60] = 0
        values = silhouette_samples(euclidean_distances(points), shuffled)
        assert values.mean() < 0.1

    def test_values_in_range(self, rng):
        points = rng.normal(0, 1, (50, 3))
        labels = rng.integers(0, 3, 50)
        values = silhouette_samples(euclidean_distances(points), labels)
        assert (values >= -1).all() and (values <= 1).all()

    def test_single_cluster_is_neutral_zero(self, rng):
        points = rng.normal(0, 1, (10, 2))
        values = silhouette_samples(
            euclidean_distances(points), np.zeros(10, dtype=int)
        )
        assert (values == 0).all()

    def test_singleton_cluster_scores_zero(self, rng):
        points, labels = _two_blobs(rng, n_per=5)
        labels = labels.copy()
        labels[0] = 2  # a singleton cluster
        values = silhouette_samples(euclidean_distances(points), labels)
        assert values[0] == 0.0

    def test_label_shape_checked(self, rng):
        points = rng.normal(0, 1, (5, 2))
        with pytest.raises(ValueError):
            silhouette_samples(euclidean_distances(points), np.zeros(4))

    def test_matches_manual_computation(self):
        # Four points on a line: 0, 1 | 10, 11.
        points = np.asarray([[0.0], [1.0], [10.0], [11.0]])
        labels = np.asarray([0, 0, 1, 1])
        values = silhouette_samples(euclidean_distances(points), labels)
        # For point 0: a = 1, b = (10 + 11)/2 = 10.5, s = 9.5/10.5.
        assert values[0] == pytest.approx(9.5 / 10.5)


class TestClusterAndMean:
    def test_mean_is_average(self, rng):
        points, labels = _two_blobs(rng)
        distances = euclidean_distances(points)
        assert mean_silhouette(distances, labels) == pytest.approx(
            silhouette_samples(distances, labels).mean()
        )

    def test_per_cluster_values(self, rng):
        points, labels = _two_blobs(rng)
        scores = cluster_silhouettes(euclidean_distances(points), labels)
        assert set(scores) == {0, 1}
        assert all(v > 0.8 for v in scores.values())


class TestMonteCarlo:
    def test_close_to_exact_on_blobs(self, rng):
        points, labels = _two_blobs(rng, n_per=300)
        exact = mean_silhouette(euclidean_distances(points), labels)
        estimate = monte_carlo_silhouette(
            points, labels, n_subsamples=8, subsample_size=100, rng=rng
        )
        assert estimate == pytest.approx(exact, abs=0.05)

    def test_small_input_falls_back_to_exact(self, rng):
        points, labels = _two_blobs(rng, n_per=20)
        exact = mean_silhouette(euclidean_distances(points), labels)
        estimate = monte_carlo_silhouette(
            points, labels, subsample_size=1000, rng=rng
        )
        assert estimate == pytest.approx(exact)

    def test_degenerate_subsamples_skipped(self, rng):
        # One huge cluster + a tiny one: some subsamples see only one
        # label and must be skipped, not crash.
        points = np.vstack([
            rng.normal(0, 1, (500, 2)),
            rng.normal(20, 1, (3, 2)),
        ])
        labels = np.asarray([0] * 500 + [1] * 3)
        value = monte_carlo_silhouette(
            points, labels, n_subsamples=4, subsample_size=50, rng=rng
        )
        assert -1.0 <= value <= 1.0

    def test_invalid_arguments_rejected(self, rng):
        points, labels = _two_blobs(rng, n_per=10)
        with pytest.raises(ValueError):
            monte_carlo_silhouette(points, labels, n_subsamples=0, rng=rng)
        with pytest.raises(ValueError):
            monte_carlo_silhouette(points, labels, subsample_size=1, rng=rng)
        with pytest.raises(ValueError):
            monte_carlo_silhouette(points, labels[:-1], rng=rng)


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=40),
    k=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=999),
)
def test_silhouette_always_bounded(n, k, seed):
    rng = np.random.default_rng(seed)
    points = rng.normal(0, 1, (n, 2))
    labels = rng.integers(0, k, n)
    values = silhouette_samples(euclidean_distances(points), labels)
    assert values.shape == (n,)
    assert (values >= -1.0).all() and (values <= 1.0).all()

"""Unit tests for silhouette-driven k selection."""

import numpy as np
import pytest

from repro.cluster.distance import euclidean_distances, pairwise_distances
from repro.cluster.kselect import select_k, select_k_points
from repro.cluster.pam import pam


def _blobs(rng, k, n_per=40, gap=12.0):
    angles = np.linspace(0, 2 * np.pi, k, endpoint=False)
    centers = gap * np.stack([np.cos(angles), np.sin(angles)], axis=1)
    points = np.vstack([
        rng.normal(0, 0.5, (n_per, 2)) + centers[c] for c in range(k)
    ])
    return points


class TestSelectK:
    @pytest.mark.parametrize("true_k", [2, 3, 4, 5])
    def test_recovers_planted_k(self, rng, true_k):
        points = _blobs(rng, true_k)
        selection = select_k(euclidean_distances(points), k_values=(2, 3, 4, 5, 6))
        assert selection.k == true_k

    def test_scores_recorded_for_all_candidates(self, rng):
        points = _blobs(rng, 3)
        selection = select_k(euclidean_distances(points), k_values=(2, 3, 4))
        assert set(selection.scores()) == {2, 3, 4}
        assert selection.best.silhouette == max(selection.scores().values())

    def test_tie_breaks_toward_smaller_k(self, rng):
        # A single uniform blob: all k score poorly; smaller k preferred
        # among (near-)ties is not guaranteed, but the winner must be a
        # candidate and the clustering consistent.
        points = rng.normal(0, 1, (60, 2))
        selection = select_k(euclidean_distances(points), k_values=(2, 3))
        assert selection.k in (2, 3)
        assert selection.clustering.k == selection.k

    def test_too_few_points_gives_single_cluster(self, rng):
        points = rng.normal(0, 1, (2, 2))
        selection = select_k(euclidean_distances(points), k_values=(2, 3))
        assert selection.k in (1, 2)


class TestSelectKPoints:
    def test_recovers_planted_k_via_monte_carlo(self, rng):
        points = _blobs(rng, 3, n_per=150)

        def cluster_fn(pts, k):
            return pam(pairwise_distances(pts), k)

        selection = select_k_points(
            points, cluster_fn, k_values=(2, 3, 4),
            n_subsamples=6, subsample_size=80, rng=rng,
        )
        assert selection.k == 3

    def test_degenerate_input(self, rng):
        points = rng.normal(0, 1, (2, 2))

        def cluster_fn(pts, k):
            return pam(pairwise_distances(pts), k)

        selection = select_k_points(points, cluster_fn, k_values=(2,), rng=rng)
        assert selection.k in (1, 2)

"""Unit and property tests for PAM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.distance import euclidean_distances
from repro.cluster.pam import pam
from repro.cluster.validation import adjusted_rand_index


def _blob_points(rng, n_per=30, centers=((-5, -5), (5, 5), (5, -5))):
    points = []
    labels = []
    for c, center in enumerate(centers):
        points.append(rng.normal(0, 0.4, (n_per, 2)) + np.asarray(center))
        labels += [c] * n_per
    return np.vstack(points), np.asarray(labels)


class TestPam:
    def test_recovers_separated_blobs(self, rng):
        points, truth = _blob_points(rng)
        result = pam(euclidean_distances(points), 3)
        assert adjusted_rand_index(result.labels, truth) == pytest.approx(1.0)

    def test_medoids_are_members_of_their_clusters(self, rng):
        points, _ = _blob_points(rng)
        result = pam(euclidean_distances(points), 3)
        for cluster, medoid in enumerate(result.medoids):
            assert result.labels[medoid] == cluster

    def test_cost_matches_assignment(self, rng):
        points, _ = _blob_points(rng)
        distances = euclidean_distances(points)
        result = pam(distances, 3)
        manual = sum(
            distances[i, result.medoids[result.labels[i]]]
            for i in range(points.shape[0])
        )
        assert result.cost == pytest.approx(manual)

    def test_k_equals_n_gives_zero_cost(self, rng):
        points = rng.normal(0, 1, (6, 2))
        result = pam(euclidean_distances(points), 6)
        assert result.cost == 0.0
        assert sorted(result.labels.tolist()) == list(range(6))

    def test_k_one(self, rng):
        points = rng.normal(0, 1, (10, 2))
        result = pam(euclidean_distances(points), 1)
        assert (result.labels == 0).all()
        # The single medoid is the 1-median of the dataset.
        distances = euclidean_distances(points)
        assert result.medoids[0] == np.argmin(distances.sum(axis=1))

    def test_invalid_k_rejected(self, rng):
        distances = euclidean_distances(rng.normal(0, 1, (5, 2)))
        with pytest.raises(ValueError):
            pam(distances, 0)
        with pytest.raises(ValueError):
            pam(distances, 6)

    def test_clusters_ordered_by_size(self, rng):
        points = np.vstack([
            rng.normal(0, 0.3, (50, 2)) + [5, 5],
            rng.normal(0, 0.3, (10, 2)) - [5, 5],
        ])
        result = pam(euclidean_distances(points), 2)
        sizes = result.sizes()
        assert sizes[0] >= sizes[1]

    def test_deterministic_given_matrix(self, rng):
        points, _ = _blob_points(rng)
        distances = euclidean_distances(points)
        a = pam(distances, 3)
        b = pam(distances, 3)
        assert (a.labels == b.labels).all()
        assert (a.medoids == b.medoids).all()

    def test_swap_improves_on_build(self, rng):
        # On a hard instance SWAP should never make things worse.
        points = rng.normal(0, 1, (60, 4))
        distances = euclidean_distances(points)
        result = pam(distances, 4)
        from repro.cluster.pam import _assign, _build

        build_only = _build(distances, 4)
        _, build_cost = _assign(distances, build_only)
        assert result.cost <= build_cost + 1e-9


class TestClusteringHelpers:
    def test_members(self, rng):
        points, _ = _blob_points(rng)
        result = pam(euclidean_distances(points), 3)
        for cluster in range(3):
            members = result.members(cluster)
            assert (result.labels[members] == cluster).all()

    def test_members_out_of_range(self, rng):
        points, _ = _blob_points(rng)
        result = pam(euclidean_distances(points), 3)
        with pytest.raises(IndexError):
            result.members(3)

    def test_sizes_sum_to_n(self, rng):
        points, _ = _blob_points(rng)
        result = pam(euclidean_distances(points), 3)
        assert result.sizes().sum() == points.shape[0]


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=40),
    k=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=999),
)
def test_pam_invariants(n, k, seed):
    if k > n:
        k = n
    rng = np.random.default_rng(seed)
    points = rng.normal(0, 1, (n, 3))
    result = pam(euclidean_distances(points), k)
    # Exactly k clusters, every point labeled, medoids self-assigned.
    assert result.k == k
    assert result.labels.shape == (n,)
    assert set(result.labels.tolist()) == set(range(k))
    assert np.unique(result.medoids).size == k
    for cluster, medoid in enumerate(result.medoids):
        assert result.labels[medoid] == cluster
    assert result.cost >= 0.0

"""Edge-case coverage across the clustering package."""

import numpy as np
import pytest

from repro.cluster.clara import clara
from repro.cluster.distance import manhattan_distances, pairwise_distances
from repro.cluster.pam import pam
from repro.cluster.silhouette import mean_silhouette
from repro.cluster.validation import adjusted_rand_index


class TestManhattanMetricPath:
    def test_clara_with_manhattan(self, rng):
        points = np.vstack([
            rng.normal(0, 0.4, (200, 3)),
            rng.normal(7, 0.4, (200, 3)),
        ])
        truth = np.repeat([0, 1], 200)
        result = clara(points, 2, metric="manhattan", rng=rng)
        assert adjusted_rand_index(result.labels, truth) > 0.95

    def test_pam_on_manhattan_matrix(self, rng):
        points = np.vstack([
            rng.normal(0, 0.4, (30, 2)),
            rng.normal(6, 0.4, (30, 2)),
        ])
        result = pam(manhattan_distances(points), 2)
        assert adjusted_rand_index(result.labels, np.repeat([0, 1], 30)) == 1.0


class TestDuplicatePoints:
    def test_pam_with_many_duplicates(self):
        # Tied distances everywhere: PAM must still terminate and cover
        # all points.
        points = np.repeat(np.asarray([[0.0, 0.0], [5.0, 5.0]]), 25, axis=0)
        result = pam(pairwise_distances(points), 2)
        assert result.cost == pytest.approx(0.0)
        assert set(result.labels.tolist()) == {0, 1}

    def test_silhouette_with_duplicates(self):
        points = np.repeat(np.asarray([[0.0], [5.0]]), 10, axis=0)
        labels = np.repeat([0, 1], 10)
        assert mean_silhouette(
            pairwise_distances(points), labels
        ) == pytest.approx(1.0)

    def test_clara_with_constant_data(self, rng):
        points = np.zeros((100, 3))
        result = clara(points, 2, rng=rng)
        assert result.cost == pytest.approx(0.0)


class TestAnisotropicScales:
    def test_pam_dominant_feature(self, rng):
        # One feature with 100x the variance of the others: cluster
        # structure lives on it alone; PAM should follow it.
        signal = np.where(np.arange(100) < 50, 0.0, 500.0)
        noise = rng.normal(0, 1, (100, 3))
        points = np.column_stack([signal]) + 0  # (100,1)
        points = np.hstack([points, noise])
        result = pam(pairwise_distances(points), 2)
        truth = (np.arange(100) >= 50).astype(int)
        assert adjusted_rand_index(result.labels, truth) == 1.0

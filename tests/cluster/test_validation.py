"""Unit and property tests for external clustering indices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.validation import (
    adjusted_rand_index,
    clustering_nmi,
    contingency,
    purity,
)


class TestContingency:
    def test_counts(self):
        a = np.asarray([0, 0, 1, 1])
        b = np.asarray([0, 1, 1, 1])
        table = contingency(a, b)
        assert table.tolist() == [[1, 1], [0, 2]]

    def test_relabeling_invariance(self):
        a = np.asarray([5, 5, 9])
        b = np.asarray(["x", "x", "y"])
        table = contingency(a, b)
        assert table.tolist() == [[2, 0], [0, 1]]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            contingency(np.asarray([0]), np.asarray([0, 1]))


class TestAri:
    def test_identical_is_one(self):
        labels = np.asarray([0, 1, 1, 2, 2, 2])
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_permuted_labels_still_one(self):
        a = np.asarray([0, 0, 1, 1, 2, 2])
        b = np.asarray([2, 2, 0, 0, 1, 1])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_independent_near_zero(self, rng):
        a = rng.integers(0, 3, 3000)
        b = rng.integers(0, 3, 3000)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_single_cluster_vs_itself(self):
        labels = np.zeros(5, dtype=int)
        assert adjusted_rand_index(labels, labels) == 1.0

    def test_partial_agreement_between_zero_and_one(self):
        a = np.asarray([0, 0, 0, 1, 1, 1])
        b = np.asarray([0, 0, 1, 1, 1, 1])
        value = adjusted_rand_index(a, b)
        assert 0.0 < value < 1.0


class TestNmi:
    def test_identical_is_one(self):
        labels = np.asarray([0, 1, 0, 2])
        assert clustering_nmi(labels, labels) == pytest.approx(1.0)

    def test_independent_near_zero(self, rng):
        a = rng.integers(0, 4, 5000)
        b = rng.integers(0, 4, 5000)
        assert clustering_nmi(a, b) < 0.05

    def test_both_single_cluster(self):
        labels = np.zeros(4, dtype=int)
        assert clustering_nmi(labels, labels) == 1.0

    def test_empty(self):
        assert clustering_nmi(np.asarray([]), np.asarray([])) == 0.0


class TestPurity:
    def test_pure_clusters(self):
        predicted = np.asarray([0, 0, 1, 1])
        truth = np.asarray([5, 5, 7, 7])
        assert purity(predicted, truth) == 1.0

    def test_mixed_clusters(self):
        predicted = np.asarray([0, 0, 0, 0])
        truth = np.asarray([0, 0, 1, 1])
        assert purity(predicted, truth) == 0.5

    def test_empty(self):
        assert purity(np.asarray([]), np.asarray([])) == 0.0


@settings(max_examples=80, deadline=None)
@given(data=st.data())
def test_index_bounds_and_symmetry(data):
    n = data.draw(st.integers(min_value=2, max_value=40))
    a = np.asarray(data.draw(st.lists(st.integers(0, 4), min_size=n, max_size=n)))
    b = np.asarray(data.draw(st.lists(st.integers(0, 4), min_size=n, max_size=n)))
    ari = adjusted_rand_index(a, b)
    nmi = clustering_nmi(a, b)
    assert -1.0 <= ari <= 1.0 + 1e-9
    assert 0.0 <= nmi <= 1.0
    assert adjusted_rand_index(b, a) == pytest.approx(ari)
    assert clustering_nmi(b, a) == pytest.approx(nmi)
    assert 0.0 <= purity(a, b) <= 1.0

"""Schema stability and regression detection for repro.bench."""

import pytest

from repro.bench.schema import (
    SCHEMA_VERSION,
    BenchReport,
    BenchResult,
    compare_reports,
)


def make_result(name="kernel", seconds=1.0, extra=None):
    metrics = {"seconds": seconds, "speedup": 2.0}
    metrics.update(extra or {})
    return BenchResult(
        name=name,
        params={"n_rows": 100},
        metrics=metrics,
        gated=("seconds",),
    )


def make_report(results, suite="clustering", smoke=True):
    return BenchReport(suite=suite, smoke=smoke, results=tuple(results))


class TestSchema:
    def test_round_trip(self):
        report = make_report([make_result()])
        clone = BenchReport.from_json(report.to_json())
        assert clone.suite == report.suite
        assert clone.smoke is True
        assert clone.result("kernel").metrics == report.result("kernel").metrics
        assert clone.result("kernel").gated == ("seconds",)
        assert clone.schema_version == SCHEMA_VERSION

    def test_unknown_schema_version_rejected(self):
        payload = make_report([make_result()]).to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            BenchReport.from_dict(payload)

    def test_gating_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="gates unknown"):
            BenchResult(name="x", metrics={"a": 1.0}, gated=("missing",))

    def test_result_lookup_raises_for_unknown_name(self):
        with pytest.raises(KeyError):
            make_report([make_result()]).result("nope")


class TestCompareReports:
    def test_no_regression_within_threshold(self):
        baseline = make_report([make_result(seconds=1.0)])
        current = make_report([make_result(seconds=1.2)])
        assert compare_reports(current, baseline, threshold=0.25) == []

    def test_detects_regression_beyond_threshold(self):
        baseline = make_report([make_result(seconds=1.0)])
        current = make_report([make_result(seconds=2.0)])
        regressions = compare_reports(current, baseline, threshold=0.25)
        assert len(regressions) == 1
        assert regressions[0].benchmark == "kernel"
        assert regressions[0].metric == "seconds"
        assert regressions[0].ratio == pytest.approx(2.0)

    def test_ungated_metrics_never_fail(self):
        baseline = make_report([make_result(extra={"speedup": 10.0})])
        current = make_report([make_result(extra={"speedup": 1.0})])
        assert compare_reports(current, baseline) == []

    def test_missing_benchmark_counts_as_regression(self):
        baseline = make_report([make_result("a"), make_result("b")])
        current = make_report([make_result("a")])
        regressions = compare_reports(current, baseline)
        assert [r.benchmark for r in regressions] == ["b"]
        assert regressions[0].ratio == float("inf")

    def test_baseline_gate_list_is_authoritative(self):
        """Un-gating a metric in the current run must not hide a slowdown."""
        baseline = make_report([make_result(seconds=1.0)])
        slower = BenchResult(
            name="kernel",
            params={"n_rows": 100},
            metrics={"seconds": 3.0, "speedup": 2.0},
            gated=(),
        )
        regressions = compare_reports(make_report([slower]), baseline)
        assert len(regressions) == 1

    def test_suite_mismatch_rejected(self):
        with pytest.raises(ValueError, match="suite mismatch"):
            compare_reports(
                make_report([], suite="clustering"),
                make_report([], suite="service"),
            )

    def test_smoke_mismatch_rejected(self):
        """A full-mode baseline must not silently neuter a smoke gate."""
        with pytest.raises(ValueError, match="smoke mismatch"):
            compare_reports(
                make_report([make_result()], smoke=True),
                make_report([make_result()], smoke=False),
            )

    def test_workload_params_mismatch_rejected(self):
        baseline = make_report([make_result(seconds=1.0)])
        changed = BenchResult(
            name="kernel",
            params={"n_rows": 999},
            metrics={"seconds": 1.0},
            gated=("seconds",),
        )
        with pytest.raises(ValueError, match="workload mismatch"):
            compare_reports(make_report([changed]), baseline)

    def test_poisoned_baseline_rejected(self):
        """A self-test artifact must never serve as a baseline."""
        from dataclasses import replace

        clean = make_report([make_result()])
        poisoned = replace(clean, injected_slowdown=2.0)
        assert BenchReport.from_json(poisoned.to_json()).injected_slowdown == 2.0
        with pytest.raises(ValueError, match="synthetic"):
            compare_reports(clean, poisoned)

    def test_noise_floor_pads_tiny_baselines(self):
        """A 2x slowdown on a 10ms timing is jitter, not a regression."""
        baseline = make_report([make_result(seconds=0.01)])
        current = make_report([make_result(seconds=0.02)])
        assert compare_reports(current, baseline, noise_floor=0.05) == []
        assert len(compare_reports(current, baseline, noise_floor=0.0)) == 1

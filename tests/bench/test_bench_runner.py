"""The bench runner CLI: report emission and the perf gate's exit codes."""

import json

import pytest

import repro.bench.runner as runner_module
from repro.bench.runner import main, run_suite
from repro.bench.schema import BenchResult


def fake_suite(smoke: bool) -> list[BenchResult]:
    return [
        BenchResult(
            name="fake_kernel",
            params={"smoke": smoke},
            metrics={"seconds": 0.5, "speedup": 3.0},
            gated=("seconds",),
        )
    ]


@pytest.fixture
def with_fake_suite(monkeypatch):
    monkeypatch.setitem(runner_module.SUITES, "fake", fake_suite)


class TestRunSuite:
    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            run_suite("nope")

    def test_produces_report(self, with_fake_suite):
        report = run_suite("fake", smoke=True)
        assert report.suite == "fake"
        assert report.smoke is True
        assert report.result("fake_kernel").metrics["seconds"] == 0.5


class TestRunnerCli:
    def test_writes_report_and_exits_zero(self, with_fake_suite, tmp_path, capsys):
        code = main(["--suite", "fake", "--smoke", "--out-dir", str(tmp_path)])
        assert code == 0
        out_path = tmp_path / "BENCH_fake.json"
        payload = json.loads(out_path.read_text())
        assert payload["suite"] == "fake"
        assert payload["results"][0]["name"] == "fake_kernel"
        stdout = capsys.readouterr().out
        assert any(line.startswith("BENCH ") for line in stdout.splitlines())

    def test_check_passes_against_own_baseline(self, with_fake_suite, tmp_path):
        baseline_dir = tmp_path / "baseline"
        assert main(["--suite", "fake", "--out-dir", str(baseline_dir)]) == 0
        code = main(
            [
                "--suite",
                "fake",
                "--out-dir",
                str(tmp_path),
                "--check",
                str(baseline_dir / "BENCH_fake.json"),
            ]
        )
        assert code == 0

    def test_injected_slowdown_fails_the_gate(
        self, with_fake_suite, tmp_path, capsys
    ):
        """The acceptance self-test: a synthetic 2x slowdown must go red."""
        baseline_dir = tmp_path / "baseline"
        assert main(["--suite", "fake", "--out-dir", str(baseline_dir)]) == 0
        code = main(
            [
                "--suite",
                "fake",
                "--out-dir",
                str(tmp_path),
                "--check",
                str(baseline_dir / "BENCH_fake.json"),
                "--inject-slowdown",
                "2",
            ]
        )
        assert code == 1
        assert "PERF REGRESSION" in capsys.readouterr().err

    def test_injection_only_touches_gated_metrics(self, with_fake_suite, tmp_path):
        main(
            [
                "--suite",
                "fake",
                "--out-dir",
                str(tmp_path),
                "--inject-slowdown",
                "2",
            ]
        )
        payload = json.loads((tmp_path / "BENCH_fake.json").read_text())
        metrics = payload["results"][0]["metrics"]
        assert metrics["seconds"] == 1.0  # 0.5 * 2
        assert metrics["speedup"] == 3.0  # ungated: untouched
        assert payload["injected_slowdown"] == 2.0  # marked as synthetic

    def test_injected_report_is_refused_as_baseline(
        self, with_fake_suite, tmp_path, capsys
    ):
        poisoned_dir = tmp_path / "poisoned"
        main(
            [
                "--suite",
                "fake",
                "--out-dir",
                str(poisoned_dir),
                "--inject-slowdown",
                "2",
            ]
        )
        with pytest.raises(ValueError, match="synthetic"):
            main(
                [
                    "--suite",
                    "fake",
                    "--out-dir",
                    str(tmp_path),
                    "--check",
                    str(poisoned_dir / "BENCH_fake.json"),
                ]
            )

"""Shared fixtures for the whole test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.table import Table


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(1234)


@pytest.fixture
def people() -> Table:
    """A small mixed-type table with missing values, used across suites."""
    return Table(
        "people",
        [
            CategoricalColumn.from_labels(
                "name", ["ann", "bob", "cho", "dee", "eli", "fox"]
            ),
            NumericColumn("age", [25.0, 31.0, np.nan, 45.0, 52.0, 38.0]),
            NumericColumn("income", [20.0, 28.0, 31.0, 50.0, np.nan, 40.0]),
            CategoricalColumn.from_labels(
                "city", ["ams", "ams", "nyc", "nyc", "ams", None]
            ),
        ],
    )


@pytest.fixture
def two_blob_table(rng: np.random.Generator) -> tuple[Table, np.ndarray]:
    """120 rows in two well-separated numeric blobs, with planted labels."""
    n = 120
    labels = rng.integers(0, 2, size=n)
    x = np.where(labels == 0, -4.0, 4.0) + rng.normal(0, 0.5, n)
    y = np.where(labels == 0, -4.0, 4.0) + rng.normal(0, 0.5, n)
    table = Table(
        "blobs2", [NumericColumn("x", x), NumericColumn("y", y)]
    )
    return table, labels.astype(np.intp)

"""Property tests: ``write_csv`` → ``read_csv`` is lossless.

These target the escaping corners — delimiters, quotes, and newlines
inside categorical labels, single-column tables whose missing cells
would otherwise render as blank lines, and non-finite floats — and
pin the fixes those cases exposed (blank-line row loss, ``inf``
formatting crash).
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.table.column import (
    MISSING_TOKENS,
    CategoricalColumn,
    ColumnKind,
    NumericColumn,
)
from repro.table.csv_io import read_csv_text, write_csv_text
from repro.table.table import Table

# Labels drawn from an alphabet rich in CSV metacharacters.  Stripped
# missing tokens would (by design) come back as missing cells, so they
# are excluded — None cells cover missingness explicitly.
_label_alphabet = st.sampled_from(list('abz059,";\n\r\t\'| ') + ["é"])
_labels = st.text(alphabet=_label_alphabet, min_size=1, max_size=12).filter(
    lambda s: s.strip().lower() not in MISSING_TOKENS and s.strip() != ""
)
_cells = st.one_of(st.none(), _labels)
_floats = st.one_of(
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.just(float("inf")),
    st.just(float("-inf")),
    st.just(float("nan")),
)

_KINDS = {"c": ColumnKind.CATEGORICAL, "x": ColumnKind.NUMERIC}


@settings(max_examples=120, deadline=None)
@given(
    labels=st.lists(_cells, min_size=1, max_size=20),
    values=st.lists(_floats, min_size=1, max_size=20),
    delimiter=st.sampled_from([",", ";", "\t"]),
)
def test_mixed_table_roundtrip(labels, values, delimiter):
    n = min(len(labels), len(values))
    table = Table(
        "t",
        [
            CategoricalColumn.from_labels("c", labels[:n]),
            NumericColumn("x", values[:n]),
        ],
    )
    text = write_csv_text(table, delimiter=delimiter)
    back = read_csv_text(text, name="t", delimiter=delimiter, kinds=_KINDS)
    assert back.n_rows == table.n_rows
    assert back.column("c").labels() == table.column("c").labels()
    before = table.column("x")
    after = back.column("x")
    np.testing.assert_array_equal(after.missing_mask, before.missing_mask)
    np.testing.assert_array_equal(
        after.present_values(), before.present_values()
    )


@settings(max_examples=80, deadline=None)
@given(labels=st.lists(_cells, min_size=1, max_size=20))
def test_single_column_roundtrip_keeps_missing_rows(labels):
    # The historical bug: a single missing cell wrote a blank line,
    # which the reader skipped — silently losing the row.
    table = Table("t", [CategoricalColumn.from_labels("c", labels)])
    back = read_csv_text(
        write_csv_text(table), name="t", kinds={"c": ColumnKind.CATEGORICAL}
    )
    assert back.n_rows == table.n_rows
    assert back.column("c").labels() == table.column("c").labels()


def test_all_missing_single_column():
    table = Table("t", [CategoricalColumn.from_labels("c", [None, None, None])])
    back = read_csv_text(
        write_csv_text(table), name="t", kinds={"c": ColumnKind.CATEGORICAL}
    )
    assert back.n_rows == 3
    assert back.column("c").n_missing == 3


def test_infinities_roundtrip():
    table = Table(
        "t", [NumericColumn("x", [math.inf, -math.inf, 1.25, math.nan])]
    )
    back = read_csv_text(write_csv_text(table), name="t")
    np.testing.assert_array_equal(
        back.column("x").missing_mask, [False, False, False, True]
    )
    np.testing.assert_array_equal(
        back.column("x").present_values(), [math.inf, -math.inf, 1.25]
    )


def test_trailing_blank_lines_still_skipped():
    back = read_csv_text('"c"\n"a"\n\n\n', name="t")
    assert back.n_rows == 1

"""Unit and property tests for sampling, including multi-scale nesting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.table.sampling import (
    SampleCascade,
    reservoir_sample,
    stratified_sample,
    uniform_sample,
)


class TestUniformSample:
    def test_size_and_sortedness(self, rng):
        out = uniform_sample(100, 10, rng)
        assert out.shape == (10,)
        assert (np.diff(out) > 0).all()

    def test_oversampling_returns_everything(self, rng):
        assert uniform_sample(5, 10, rng).tolist() == [0, 1, 2, 3, 4]

    def test_zero_sample(self, rng):
        assert uniform_sample(5, 0, rng).size == 0

    def test_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            uniform_sample(5, -1, rng)
        with pytest.raises(ValueError):
            uniform_sample(-5, 1, rng)

    def test_approximately_uniform(self):
        rng = np.random.default_rng(0)
        counts = np.zeros(20)
        for _ in range(600):
            counts[uniform_sample(20, 5, rng)] += 1
        # Each row expected 150 times; allow generous slack.
        assert counts.min() > 90 and counts.max() < 220


class TestReservoirSample:
    def test_small_stream_returned_whole(self, rng):
        assert reservoir_sample(iter(range(3)), 10, rng) == [0, 1, 2]

    def test_size(self, rng):
        out = reservoir_sample(iter(range(1000)), 10, rng)
        assert len(out) == 10
        assert len(set(out)) == 10

    def test_uniformity(self):
        rng = np.random.default_rng(0)
        counts = np.zeros(30)
        for _ in range(900):
            for item in reservoir_sample(iter(range(30)), 6, rng):
                counts[item] += 1
        assert counts.min() > 110 and counts.max() < 260

    def test_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            reservoir_sample(iter([]), -1, rng)


class TestStratifiedSample:
    def test_small_strata_kept(self, rng):
        labels = np.asarray([0] * 96 + [1] * 4)
        chosen = stratified_sample(labels, 10, rng)
        # A rare stratum (4%) must still appear in the sample.
        assert (labels[chosen] == 1).sum() >= 2

    def test_oversampling_returns_all(self, rng):
        labels = np.asarray([0, 1, 1])
        assert stratified_sample(labels, 10, rng).tolist() == [0, 1, 2]

    def test_total_size(self, rng):
        labels = np.repeat(np.arange(5), 40)
        assert stratified_sample(labels, 25, rng).size == 25

    def test_multidimensional_rejected(self, rng):
        with pytest.raises(ValueError):
            stratified_sample(np.zeros((3, 3)), 2, rng)


class TestSampleCascade:
    def test_sample_size_and_order(self, rng):
        cascade = SampleCascade(50, rng)
        out = cascade.sample(10)
        assert out.shape == (10,)
        assert (np.diff(out) > 0).all()

    def test_nesting_over_growing_k(self, rng):
        cascade = SampleCascade(200, rng)
        assert cascade.is_nested(10, 50)
        assert cascade.is_nested(50, 120)

    def test_nesting_across_selections(self, rng):
        # The crucial multi-scale property: zooming keeps surviving
        # sample members.
        cascade = SampleCascade(300, rng)
        parent_sample = set(cascade.sample(40).tolist())
        selection = np.arange(0, 300, 2)  # zoom: keep even rows
        child_sample = set(cascade.sample(40, selection).tolist())
        survivors = parent_sample & set(selection.tolist())
        assert survivors.issubset(child_sample)

    def test_boolean_mask_selection(self, rng):
        cascade = SampleCascade(100, rng)
        mask = np.zeros(100, dtype=bool)
        mask[:30] = True
        out = cascade.sample(10, mask)
        assert out.size == 10
        assert out.max() < 30

    def test_mask_length_checked(self, rng):
        cascade = SampleCascade(10, rng)
        with pytest.raises(ValueError):
            cascade.sample(2, np.zeros(5, dtype=bool))

    def test_duplicate_indices_rejected(self, rng):
        cascade = SampleCascade(10, rng)
        with pytest.raises(ValueError):
            cascade.sample(2, np.asarray([1, 1]))

    def test_out_of_range_indices_rejected(self, rng):
        cascade = SampleCascade(10, rng)
        with pytest.raises(IndexError):
            cascade.sample(2, np.asarray([5, 99]))

    def test_oversampling_selection_returns_selection(self, rng):
        cascade = SampleCascade(10, rng)
        out = cascade.sample(99, np.asarray([3, 1, 7]))
        assert out.tolist() == [1, 3, 7]


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=200),
    k_small=st.integers(min_value=0, max_value=200),
    k_large=st.integers(min_value=0, max_value=200),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_cascade_nesting_property(n, k_small, k_large, seed):
    """For any selection sizes, the smaller sample nests in the larger."""
    if k_small > k_large:
        k_small, k_large = k_large, k_small
    cascade = SampleCascade(n, np.random.default_rng(seed))
    small = set(cascade.sample(k_small).tolist())
    large = set(cascade.sample(k_large).tolist())
    assert small.issubset(large)
    assert len(small) == min(k_small, n)

"""Unit tests for Table.fingerprint and the Database catalog listing."""

import numpy as np

from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.database import Database
from repro.table.table import Table


def make_table(name="t", values=(1.0, 2.0, 3.0), labels=("a", "b", "a")):
    return Table(
        name,
        [
            NumericColumn("x", list(values)),
            CategoricalColumn.from_labels("c", list(labels)),
        ],
    )


class TestFingerprint:
    def test_same_content_same_fingerprint(self):
        assert make_table().fingerprint() == make_table().fingerprint()

    def test_fingerprint_is_hex_sha256(self):
        fingerprint = make_table().fingerprint()
        assert len(fingerprint) == 64
        assert int(fingerprint, 16) >= 0

    def test_table_name_does_not_matter(self):
        # Content hash: the same data under two names is the same data.
        assert (
            make_table("alpha").fingerprint()
            == make_table("beta").fingerprint()
        )
        table = make_table()
        assert table.rename("other").fingerprint() == table.fingerprint()

    def test_value_change_changes_fingerprint(self):
        assert (
            make_table(values=(1.0, 2.0, 3.0)).fingerprint()
            != make_table(values=(1.0, 2.0, 3.5)).fingerprint()
        )

    def test_label_change_changes_fingerprint(self):
        assert (
            make_table(labels=("a", "b", "a")).fingerprint()
            != make_table(labels=("a", "b", "b")).fingerprint()
        )

    def test_column_name_changes_fingerprint(self):
        renamed = Table(
            "t",
            [
                NumericColumn("y", [1.0, 2.0, 3.0]),
                CategoricalColumn.from_labels("c", ["a", "b", "a"]),
            ],
        )
        assert renamed.fingerprint() != make_table().fingerprint()

    def test_column_order_changes_fingerprint(self):
        table = make_table()
        reordered = table.project(["c", "x"])
        assert reordered.fingerprint() != table.fingerprint()

    def test_missing_mask_is_canonical_for_numeric_nans(self):
        # Same mask, same present values -> same fingerprint even though
        # the NaN payload bytes could differ between constructions.
        explicit = NumericColumn(
            "x", [1.0, 0.0, 3.0], missing=np.array([False, True, False])
        )
        inferred = NumericColumn("x", [1.0, np.nan, 3.0])
        assert (
            Table("t", [explicit]).fingerprint()
            == Table("t", [inferred]).fingerprint()
        )

    def test_missing_position_changes_fingerprint(self):
        first = Table("t", [NumericColumn("x", [np.nan, 2.0, 3.0])])
        second = Table("t", [NumericColumn("x", [1.0, np.nan, 3.0])])
        assert first.fingerprint() != second.fingerprint()

    def test_category_lists_are_unambiguous(self):
        # A category containing the old delimiter byte must not collide
        # with the two categories it would have been split into.
        joined = Table(
            "t", [CategoricalColumn("c", [0, 0], categories=["a\x00b"])]
        )
        split = Table(
            "t", [CategoricalColumn("c", [0, 0], categories=["a", "b"])]
        )
        assert joined.fingerprint() != split.fingerprint()

    def test_kind_distinguishes_equal_byte_patterns(self):
        numeric = Table("t", [NumericColumn("x", [0.0, 1.0])])
        categorical = Table(
            "t", [CategoricalColumn.from_labels("x", ["p", "q"])]
        )
        assert numeric.fingerprint() != categorical.fingerprint()

    def test_fingerprint_is_memoized(self):
        table = make_table()
        assert table.fingerprint() is table.fingerprint()

    def test_row_subset_changes_fingerprint(self):
        table = make_table()
        head = table.head(2)
        assert head.fingerprint() != table.fingerprint()


class TestDatabaseCatalog:
    def test_catalog_lists_fingerprints(self):
        database = Database()
        database.register(make_table("one"))
        database.register(
            make_table("two", values=(9.0, 8.0, 7.0), labels=("z", "z", "y"))
        )
        catalog = database.catalog()
        assert [record["name"] for record in catalog] == ["one", "two"]
        for record in catalog:
            assert record["n_rows"] == 3
            assert record["n_columns"] == 2
            assert len(record["fingerprint"]) == 64
        assert catalog[0]["fingerprint"] != catalog[1]["fingerprint"]

    def test_catalog_detects_identical_content_under_two_names(self):
        database = Database()
        database.register(make_table("one"))
        database.register(make_table("copy"))
        catalog = database.catalog()
        assert catalog[0]["fingerprint"] == catalog[1]["fingerprint"]

    def test_catalog_of_empty_database(self):
        assert Database().catalog() == []

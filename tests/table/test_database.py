"""Unit tests for the Database catalog and SelectProject queries."""

import numpy as np
import pytest

from repro.table.column import NumericColumn
from repro.table.database import Database, SelectProject
from repro.table.predicates import Comparison, Everything
from repro.table.table import Table


@pytest.fixture
def database(people) -> Database:
    db = Database(seed=3)
    db.register(people)
    return db


class TestCatalog:
    def test_register_and_lookup(self, database, people):
        assert database.table("people") is people
        assert database.table_names() == ("people",)
        assert "people" in database

    def test_missing_table_error_lists_available(self, database):
        with pytest.raises(KeyError, match="available"):
            database.table("nope")

    def test_drop(self, database):
        database.drop("people")
        assert "people" not in database

    def test_load_csv(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,b\n1,x\n2,y\n3,z\n", encoding="utf-8")
        db = Database()
        table = db.load_csv(path)
        assert table.name == "data"
        assert "data" in db

    def test_reregister_replaces(self, database):
        replacement = Table("people", [NumericColumn("only", [1.0, 2.0])])
        database.register(replacement)
        assert database.table("people").n_columns == 1


class TestSelectProject:
    def test_sql_rendering_full(self):
        query = SelectProject(
            table="t",
            columns=("a", "b"),
            predicate=Comparison("a", "<", 3),
            sample=100,
        )
        assert query.to_sql() == (
            'SELECT "a", "b" FROM "t" WHERE "a" < 3 SAMPLE 100'
        )

    def test_sql_rendering_minimal(self):
        assert SelectProject(table="t").to_sql() == 'SELECT * FROM "t"'

    def test_execute_selects_and_projects(self, database):
        result = database.execute(
            SelectProject(
                table="people",
                columns=("name", "age"),
                predicate=Comparison("age", ">=", 40),
            )
        )
        assert result.column_names == ("name", "age")
        assert result.n_rows == 2  # 45, 52

    def test_execute_sampling_bounds(self, database):
        result = database.execute(SelectProject(table="people", sample=2))
        assert result.n_rows == 2

    def test_execute_logs_queries(self, database):
        database.execute(SelectProject(table="people"))
        assert database.query_log == ('SELECT * FROM "people"',)

    def test_sample_stability_across_calls(self, database):
        first = database.execute(SelectProject(table="people", sample=3))
        second = database.execute(SelectProject(table="people", sample=3))
        assert [r for r in first.rows()] == [r for r in second.rows()]


class TestSampleIndices:
    def test_whole_table(self, database):
        indices = database.sample_indices("people", 4)
        assert indices.size == 4

    def test_respects_predicate(self, database, people):
        predicate = Comparison("age", "<", 40)
        indices = database.sample_indices("people", 10, predicate)
        mask = predicate.mask(people)
        assert all(mask[i] for i in indices)

    def test_nested_samples_under_zoom(self, database, people):
        # Multi-scale behaviour through the catalog: restricting the
        # predicate keeps the surviving sample members.
        everything = set(database.sample_indices("people", 3).tolist())
        predicate = Comparison("age", "<", 46)
        zoomed = set(database.sample_indices("people", 3, predicate).tolist())
        survivors = everything & set(
            np.flatnonzero(predicate.mask(people)).tolist()
        )
        assert survivors.issubset(zoomed)

    def test_everything_predicate_equals_none(self, database):
        a = database.sample_indices("people", 3, None)
        b = database.sample_indices("people", 3, Everything())
        assert a.tolist() == b.tolist()

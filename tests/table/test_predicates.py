"""Unit and property tests for the predicate algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.predicates import (
    And,
    Between,
    Comparison,
    Everything,
    In,
    IsMissing,
    Not,
    Or,
)
from repro.table.table import Table


@pytest.fixture
def table() -> Table:
    return Table(
        "t",
        [
            NumericColumn("x", [1.0, 2.0, 3.0, np.nan, 5.0]),
            CategoricalColumn.from_labels("c", ["a", "b", "a", "c", None]),
        ],
    )


class TestComparison:
    def test_numeric_operators(self, table):
        assert Comparison("x", "<", 3).mask(table).tolist() == [
            True, True, False, False, False,
        ]
        assert Comparison("x", ">=", 3).mask(table).tolist() == [
            False, False, True, False, True,
        ]
        assert Comparison("x", "==", 2).mask(table).tolist() == [
            False, True, False, False, False,
        ]

    def test_missing_never_matches(self, table):
        # Row 3 has x = NaN: neither < nor >= may match it.
        low = Comparison("x", "<", 100).mask(table)
        high = Comparison("x", ">=", -100).mask(table)
        assert not low[3] and not high[3]

    def test_categorical_equality(self, table):
        assert Comparison("c", "==", "a").mask(table).tolist() == [
            True, False, True, False, False,
        ]
        # != excludes the match AND the missing cell (SQL semantics).
        assert Comparison("c", "!=", "a").mask(table).tolist() == [
            False, True, False, True, False,
        ]

    def test_unknown_category_matches_nothing(self, table):
        assert not Comparison("c", "==", "zebra").mask(table).any()

    def test_ordering_on_categorical_rejected(self, table):
        with pytest.raises(TypeError):
            Comparison("c", "<", "a").mask(table)

    def test_string_vs_numeric_rejected(self, table):
        with pytest.raises(TypeError):
            Comparison("x", "==", "a").mask(table)

    def test_invalid_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison("x", "~", 1)

    def test_sql_rendering(self):
        assert Comparison("x", "<", 3).to_sql() == '"x" < 3'
        assert Comparison("x", "!=", 2.5).to_sql() == '"x" <> 2.5'
        assert Comparison("c", "==", "a").to_sql() == "\"c\" = 'a'"

    def test_sql_escapes_quotes(self):
        assert Comparison('we"ird', "==", "o'hare").to_sql() == (
            "\"we\"\"ird\" = 'o''hare'"
        )


class TestBetweenInMissing:
    def test_between_half_open(self, table):
        assert Between("x", 2.0, 5.0).mask(table).tolist() == [
            False, True, True, False, False,
        ]

    def test_between_sql(self):
        assert Between("x", 1.0, 2.5).to_sql() == '"x" >= 1 AND "x" < 2.5'

    def test_in_matches_label_set(self, table):
        assert In("c", ["a", "c"]).mask(table).tolist() == [
            True, False, True, True, False,
        ]

    def test_in_deduplicates_and_sorts(self):
        predicate = In("c", ["b", "a", "b"])
        assert predicate.labels == ("a", "b")
        assert predicate.to_sql() == "\"c\" IN ('a', 'b')"

    def test_is_missing(self, table):
        assert IsMissing("x").mask(table).tolist() == [
            False, False, False, True, False,
        ]
        assert IsMissing("c").to_sql() == '"c" IS NULL'


class TestConnectives:
    def test_and_or_not(self, table):
        conjunction = Comparison("x", ">", 1) & Comparison("c", "==", "a")
        assert conjunction.mask(table).tolist() == [
            False, False, True, False, False,
        ]
        disjunction = Comparison("x", ">", 4) | Comparison("c", "==", "b")
        assert disjunction.mask(table).tolist() == [
            False, True, False, False, True,
        ]
        negation = ~Comparison("x", "<", 3)
        assert negation.mask(table).tolist() == [
            False, False, True, True, True,
        ]

    def test_and_of_drops_everything(self):
        p = Comparison("x", "<", 1)
        assert And.of(Everything(), p) is p
        assert isinstance(And.of(Everything(), Everything()), Everything)

    def test_or_of_absorbs_everything(self):
        p = Comparison("x", "<", 1)
        assert isinstance(Or.of(Everything(), p), Everything)

    def test_and_flattens_nesting(self):
        a, b, c = (Comparison("x", "<", float(v)) for v in (1, 2, 3))
        nested = And.of(And.of(a, b), c)
        assert isinstance(nested, And)
        assert len(nested.operands) == 3

    def test_sql_parenthesizes_nested_connectives(self):
        a = Comparison("x", "<", 1)
        b = Comparison("x", ">", 0)
        c = Comparison("c", "==", "a")
        expression = And.of(Or((a, b)), c)
        assert expression.to_sql() == '("x" < 1 OR "x" > 0) AND "c" = \'a\''

    def test_columns_collects_references(self):
        expression = And.of(
            Comparison("x", "<", 1), Or.of(Comparison("c", "==", "a"), IsMissing("y"))
        )
        assert expression.columns() == frozenset({"x", "c", "y"})

    def test_empty_connective_rejected(self):
        with pytest.raises(ValueError):
            And([])

    def test_everything(self, table):
        assert Everything().mask(table).all()
        assert Everything().to_sql() == "TRUE"
        assert Everything().columns() == frozenset()


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------

_values = st.floats(min_value=-10, max_value=10, allow_nan=False)


@st.composite
def predicates(draw, depth: int = 2):
    """Random predicates over columns x (numeric) and c (categorical a/b/c)."""
    if depth == 0:
        kind = draw(st.sampled_from(["cmp", "between", "in", "missing"]))
        if kind == "cmp":
            op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
            return Comparison("x", op, draw(_values))
        if kind == "between":
            low = draw(_values)
            high = draw(_values)
            return Between("x", min(low, high), max(low, high))
        if kind == "in":
            labels = draw(
                st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=3)
            )
            return In("c", labels)
        return IsMissing(draw(st.sampled_from(["x", "c"])))
    kind = draw(st.sampled_from(["leaf", "and", "or", "not"]))
    if kind == "leaf":
        return draw(predicates(depth=0))
    if kind == "not":
        return Not(draw(predicates(depth=depth - 1)))
    left = draw(predicates(depth=depth - 1))
    right = draw(predicates(depth=depth - 1))
    return And((left, right)) if kind == "and" else Or((left, right))


@st.composite
def tables(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    xs = draw(
        st.lists(
            st.one_of(_values, st.just(float("nan"))), min_size=n, max_size=n
        )
    )
    cs = draw(
        st.lists(
            st.sampled_from(["a", "b", "c", None]), min_size=n, max_size=n
        )
    )
    return Table(
        "t",
        [NumericColumn("x", xs), CategoricalColumn.from_labels("c", cs)],
    )


@settings(max_examples=120, deadline=None)
@given(table=tables(), predicate=predicates())
def test_de_morgan_laws_hold(table, predicate):
    other = Comparison("x", ">", 0.0)
    left = Not(And((predicate, other))).mask(table)
    right = Or((Not(predicate), Not(other))).mask(table)
    assert (left == right).all()


@settings(max_examples=120, deadline=None)
@given(table=tables(), predicate=predicates())
def test_not_is_involutive(table, predicate):
    assert (Not(Not(predicate)).mask(table) == predicate.mask(table)).all()


@settings(max_examples=120, deadline=None)
@given(table=tables(), predicate=predicates())
def test_select_returns_exactly_matching_rows(table, predicate):
    mask = predicate.mask(table)
    selected = table.select(predicate)
    assert selected.n_rows == int(mask.sum())


@settings(max_examples=120, deadline=None)
@given(table=tables(), predicate=predicates())
def test_mask_shape_and_dtype(table, predicate):
    mask = predicate.mask(table)
    assert mask.dtype == bool
    assert mask.shape == (table.n_rows,)


@settings(max_examples=60, deadline=None)
@given(predicate=predicates())
def test_sql_rendering_never_crashes_and_is_nonempty(predicate):
    sql = predicate.to_sql()
    assert isinstance(sql, str) and sql

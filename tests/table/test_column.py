"""Unit tests for typed columns and their missing-value semantics."""

import numpy as np
import pytest

from repro.table.column import (
    CategoricalColumn,
    ColumnKind,
    NumericColumn,
    _parse_float,
)


class TestNumericColumn:
    def test_basic_construction(self):
        column = NumericColumn("age", [1.0, 2.0, 3.0])
        assert column.name == "age"
        assert column.kind is ColumnKind.NUMERIC
        assert len(column) == 3
        assert column.n_missing == 0

    def test_nan_becomes_missing(self):
        column = NumericColumn("x", [1.0, np.nan, 3.0])
        assert column.n_missing == 1
        assert column.missing_mask.tolist() == [False, True, False]
        assert column.value_at(1) is None
        assert column.value_at(0) == 1.0

    def test_explicit_mask_overrides_payload(self):
        column = NumericColumn("x", [1.0, 2.0, 3.0], missing=[False, True, False])
        assert column.n_missing == 1
        # The masked cell is stored as NaN so accidental use poisons math.
        assert np.isnan(column.values[1])

    def test_mask_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            NumericColumn("x", [1.0, 2.0], missing=[True])

    def test_from_cells_parses_strings_and_tokens(self):
        column = NumericColumn.from_cells("x", ["1.5", "NA", "", "2", None, "oops"])
        assert column.n_missing == 4
        assert column.value_at(0) == 1.5
        assert column.value_at(3) == 2.0

    def test_statistics_ignore_missing(self):
        column = NumericColumn("x", [1.0, np.nan, 3.0, 5.0])
        assert column.min() == 1.0
        assert column.max() == 5.0
        assert column.mean() == 3.0
        assert column.median() == 3.0

    def test_statistics_of_all_missing_are_nan(self):
        column = NumericColumn("x", [np.nan, np.nan])
        assert np.isnan(column.mean())
        assert np.isnan(column.min())

    def test_take_reorders_and_repeats(self):
        column = NumericColumn("x", [10.0, 20.0, 30.0])
        taken = column.take(np.asarray([2, 0, 0]))
        assert taken.values.tolist() == [30.0, 10.0, 10.0]

    def test_filter_length_mismatch_rejected(self):
        column = NumericColumn("x", [1.0, 2.0])
        with pytest.raises(ValueError):
            column.filter(np.asarray([True]))

    def test_values_are_read_only(self):
        column = NumericColumn("x", [1.0, 2.0])
        with pytest.raises(ValueError):
            column.values[0] = 99.0

    def test_rename_preserves_data(self):
        column = NumericColumn("x", [1.0, np.nan])
        renamed = column.rename("y")
        assert renamed.name == "y"
        assert renamed.n_missing == 1

    def test_n_distinct(self):
        column = NumericColumn("x", [1.0, 1.0, 2.0, np.nan])
        assert column.n_distinct() == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            NumericColumn("", [1.0])

    def test_unique_key_detection(self):
        assert NumericColumn("id", [1.0, 2.0, 3.0]).is_unique_key()
        assert not NumericColumn("x", [1.0, 1.0, 3.0]).is_unique_key()
        assert not NumericColumn("x", [1.0, np.nan]).is_unique_key()


class TestCategoricalColumn:
    def test_from_labels(self):
        column = CategoricalColumn.from_labels("c", ["a", "b", "a", None])
        assert column.kind is ColumnKind.CATEGORICAL
        assert column.categories == ("a", "b")
        assert column.codes.tolist() == [0, 1, 0, -1]
        assert column.n_missing == 1

    def test_missing_tokens_recognized(self):
        column = CategoricalColumn.from_labels("c", ["x", "NA", "", "null", "?"])
        assert column.n_missing == 4

    def test_value_at(self):
        column = CategoricalColumn.from_labels("c", ["a", None])
        assert column.value_at(0) == "a"
        assert column.value_at(1) is None

    def test_code_of_unknown_label_raises(self):
        column = CategoricalColumn.from_labels("c", ["a"])
        with pytest.raises(KeyError):
            column.code_of("zz")

    def test_value_counts_sorted_by_frequency(self):
        column = CategoricalColumn.from_labels(
            "c", ["b", "a", "b", "b", "a", "c", None]
        )
        assert list(column.value_counts().items()) == [
            ("b", 3), ("a", 2), ("c", 1),
        ]

    def test_filter_keeps_parent_categories(self):
        column = CategoricalColumn.from_labels("c", ["a", "b", "c"])
        filtered = column.filter(np.asarray([True, False, False]))
        assert filtered.categories == ("a", "b", "c")
        assert filtered.n_distinct() == 1

    def test_compact_drops_unused_categories(self):
        column = CategoricalColumn.from_labels("c", ["a", "b", "c", None])
        filtered = column.filter(np.asarray([True, False, False, True]))
        compacted = filtered.compact()
        assert compacted.categories == ("a",)
        assert compacted.codes.tolist() == [0, -1]

    def test_duplicate_categories_rejected(self):
        with pytest.raises(ValueError):
            CategoricalColumn("c", [0, 1], ["a", "a"])

    def test_out_of_range_code_rejected(self):
        with pytest.raises(ValueError):
            CategoricalColumn("c", [0, 5], ["a", "b"])

    def test_negative_code_other_than_missing_rejected(self):
        with pytest.raises(ValueError):
            CategoricalColumn("c", [0, -2], ["a"])

    def test_labels_roundtrip(self):
        labels = ["x", None, "y", "x"]
        column = CategoricalColumn.from_labels("c", labels)
        assert column.labels() == labels

    def test_unique_key_detection(self):
        assert CategoricalColumn.from_labels("id", ["a", "b", "c"]).is_unique_key()
        assert not CategoricalColumn.from_labels("c", ["a", "a"]).is_unique_key()


class TestParseFloat:
    @pytest.mark.parametrize(
        "cell,expected",
        [
            ("1.5", 1.5),
            ("-2", -2.0),
            ("  3.0  ", 3.0),
            ("1e3", 1000.0),
            (7, 7.0),
            (None, None),
            ("", None),
            ("NA", None),
            ("n/a", None),
            ("abc", None),
            (float("nan"), None),
            ("nan", None),
        ],
    )
    def test_parsing(self, cell, expected):
        assert _parse_float(cell) == expected

"""Unit and round-trip tests for CSV ingestion/export."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.table.column import CategoricalColumn, ColumnKind, NumericColumn
from repro.table.csv_io import read_csv, read_csv_text, write_csv, write_csv_text
from repro.table.table import Table

SAMPLE = """name,age,city
ann,25,ams
bob,31,nyc
cho,,ams
"""


class TestReadCsv:
    def test_read_text(self):
        table = read_csv_text(SAMPLE, name="people")
        assert table.name == "people"
        assert table.n_rows == 3
        assert table.column("age").kind is ColumnKind.NUMERIC
        assert table.column("age").n_missing == 1
        assert table.column("city").kind is ColumnKind.CATEGORICAL

    def test_read_file_uses_stem_as_name(self, tmp_path):
        path = tmp_path / "movies.csv"
        path.write_text(SAMPLE, encoding="utf-8")
        table = read_csv(path)
        assert table.name == "movies"

    def test_blank_lines_skipped(self):
        table = read_csv_text("a,b\n1,2\n\n3,4\n")
        assert table.n_rows == 2

    def test_ragged_row_rejected_with_line_number(self):
        with pytest.raises(ValueError, match="line 3"):
            read_csv_text("a,b\n1,2\n1\n")

    def test_empty_source_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            read_csv_text("")

    def test_empty_header_cell_rejected(self):
        with pytest.raises(ValueError, match="empty column names"):
            read_csv_text("a,,c\n1,2,3\n")

    def test_kind_override(self):
        table = read_csv_text(
            "n\n1\n2\n3\n", kinds={"n": ColumnKind.CATEGORICAL}
        )
        assert table.column("n").kind is ColumnKind.CATEGORICAL

    def test_alternative_delimiter(self):
        table = read_csv_text("a;b\n1;x\n", delimiter=";")
        assert table.column_names == ("a", "b")

    def test_quoted_fields_with_commas(self):
        table = read_csv_text('a,b\n"x,y",2\n')
        assert table.column("a").value_at(0) == "x,y"


class TestWriteCsv:
    def test_roundtrip_file(self, tmp_path, people):
        path = tmp_path / "out.csv"
        write_csv(people, path)
        back = read_csv(path, name="people")
        assert back.column_names == people.column_names
        assert back.n_rows == people.n_rows
        assert back.column("age").n_missing == 1

    def test_missing_cells_written_empty(self, people):
        text = write_csv_text(people)
        lines = text.strip().splitlines()
        # Row for "cho" has a missing age.
        cho = next(line for line in lines if line.startswith("cho"))
        assert ",," in cho

    def test_integral_floats_written_without_point(self):
        table = Table("t", [NumericColumn("x", [1.0, 2.0])])
        assert write_csv_text(table).splitlines()[1] == "1"


# ----------------------------------------------------------------------
# Round-trip property: write → read recovers values and missingness.
# ----------------------------------------------------------------------

_finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(
        st.one_of(_finite, st.just(float("nan"))), min_size=4, max_size=25
    ),
    labels=st.lists(
        st.sampled_from(["red", "green", "blue", None]), min_size=4, max_size=25
    ),
)
def test_csv_roundtrip_property(values, labels):
    n = min(len(values), len(labels))
    # Ensure the numeric column stays numeric under inference: >2 distinct
    # present values are required, else skip (inference would flip kinds).
    present = {v for v in values[:n] if not np.isnan(v)}
    if len(present) <= 2:
        values = [float(i) for i in range(n)]
    table = Table(
        "t",
        [
            NumericColumn("x", values[:n]),
            CategoricalColumn.from_labels("c", labels[:n]),
        ],
    )
    back = read_csv_text(write_csv_text(table), name="t")
    x_before = table.column("x")
    x_after = back.column("x")
    assert (x_before.missing_mask == x_after.missing_mask).all()
    np.testing.assert_allclose(
        x_before.present_values(), x_after.present_values(), rtol=1e-12
    )
    assert back.column("c").labels() == table.column("c").labels()

"""Unit tests for group-by aggregation."""

import math

import pytest

from repro.table.aggregate import Aggregate, aggregate
from repro.table.predicates import Comparison


class TestAggregateSpec:
    def test_names_and_sql(self):
        assert Aggregate("count").name == "count"
        assert Aggregate("count").to_sql() == "COUNT(*)"
        assert Aggregate("mean", "income").name == "mean_income"
        assert Aggregate("mean", "income").to_sql() == 'AVG("income")'
        assert Aggregate("sum", "x").to_sql() == 'SUM("x")'

    def test_validation(self):
        with pytest.raises(ValueError):
            Aggregate("median", "x")
        with pytest.raises(ValueError):
            Aggregate("mean")  # needs a column


class TestGlobalAggregation:
    def test_whole_table(self, people):
        result = aggregate(
            people,
            [Aggregate("count"), Aggregate("mean", "age"),
             Aggregate("min", "income"), Aggregate("max", "income")],
        )
        record = result.group(None)
        assert record["count"] == 6
        assert record["mean_age"] == pytest.approx(38.2)  # NaN skipped
        assert record["min_income"] == 20.0
        assert record["max_income"] == 50.0

    def test_count_of_column_skips_missing(self, people):
        result = aggregate(people, [Aggregate("count", "age")])
        assert result.group(None)["count_age"] == 5

    def test_where_filter(self, people):
        result = aggregate(
            people,
            [Aggregate("count")],
            where=Comparison("age", "<", 40),
        )
        assert result.group(None)["count"] == 3

    def test_empty_aggregates_rejected(self, people):
        with pytest.raises(ValueError):
            aggregate(people, [])

    def test_all_missing_numeric_gives_nan(self, people):
        result = aggregate(
            people,
            [Aggregate("mean", "age")],
            where=Comparison("name", "==", "cho"),
        )
        assert math.isnan(result.group(None)["mean_age"])


class TestGroupBy:
    def test_per_group_records(self, people):
        result = aggregate(
            people,
            [Aggregate("count"), Aggregate("mean", "income")],
            by="city",
        )
        assert result.group("ams")["count"] == 3
        assert result.group("nyc")["count"] == 2
        # fox has a missing city: its own None group.
        assert result.group(None)["count"] == 1
        assert result.group("ams")["mean_income"] == pytest.approx(24.0)

    def test_labels_sorted_by_count(self, people):
        result = aggregate(people, [Aggregate("count")], by="city")
        assert result.labels()[0] == "ams"
        assert result.labels()[-1] is None

    def test_group_by_numeric_rejected(self, people):
        with pytest.raises(TypeError):
            aggregate(people, [Aggregate("count")], by="age")

    def test_mean_of_categorical_rejected(self, people):
        with pytest.raises(TypeError):
            aggregate(people, [Aggregate("mean", "city")])

    def test_sql_rendering(self, people):
        result = aggregate(
            people,
            [Aggregate("count"), Aggregate("mean", "income")],
            by="city",
            where=Comparison("age", ">", 20),
        )
        assert result.sql == (
            'SELECT "city", COUNT(*), AVG("income") FROM "people" '
            'WHERE "age" > 20 GROUP BY "city"'
        )

    def test_empty_groups_not_listed(self, people):
        result = aggregate(
            people,
            [Aggregate("count")],
            by="city",
            where=Comparison("city", "==", "ams"),
        )
        assert set(result.groups) == {"ams"}

"""Unit tests for schema inference and key detection."""

import numpy as np

from repro.table.column import CategoricalColumn, ColumnKind, NumericColumn
from repro.table.schema import detect_keys, infer_column, infer_schema
from repro.table.table import Table


class TestInferColumn:
    def test_numeric_strings_become_numeric(self):
        column = infer_column("x", ["1", "2.5", "3"])
        assert column.kind is ColumnKind.NUMERIC

    def test_mixed_strings_become_categorical(self):
        column = infer_column("x", ["1", "two", "3"])
        assert column.kind is ColumnKind.CATEGORICAL

    def test_binary_numeric_stays_categorical(self):
        # 0/1 flags read from CSV are flags, not measurements.
        column = infer_column("flag", ["0", "1", "0", "1"])
        assert column.kind is ColumnKind.CATEGORICAL

    def test_three_valued_numeric_is_numeric(self):
        column = infer_column("rating", ["1", "2", "3", "1"])
        assert column.kind is ColumnKind.NUMERIC

    def test_all_missing_becomes_categorical(self):
        column = infer_column("x", ["", "NA", None])
        assert column.kind is ColumnKind.CATEGORICAL
        assert column.n_missing == 3

    def test_missing_cells_tolerated_in_numeric(self):
        column = infer_column("x", ["1", "", "3", "NA"])
        assert column.kind is ColumnKind.NUMERIC
        assert column.n_missing == 2

    def test_forced_kind_wins(self):
        column = infer_column("x", ["1", "2", "3"], ColumnKind.CATEGORICAL)
        assert column.kind is ColumnKind.CATEGORICAL
        column = infer_column("x", ["a", "b"], ColumnKind.NUMERIC)
        assert column.kind is ColumnKind.NUMERIC
        assert column.n_missing == 2


class TestDetectKeys:
    def test_all_unique_column_is_key(self):
        table = Table(
            "t",
            [
                CategoricalColumn.from_labels("code", ["a", "b", "c"]),
                NumericColumn("v", [1.0, 1.0, 2.0]),
            ],
        )
        assert detect_keys(table) == ("code",)

    def test_name_hint_with_near_uniqueness(self):
        # 97% distinct + "_id" suffix: flagged even with a few duplicates.
        labels = [f"u{i}" for i in range(99)] + ["u0"]
        table = Table(
            "t",
            [
                CategoricalColumn.from_labels("user_id", labels),
                NumericColumn("v", np.zeros(100)),
            ],
        )
        assert "user_id" in detect_keys(table)

    def test_low_cardinality_id_not_flagged(self):
        table = Table(
            "t",
            [
                CategoricalColumn.from_labels("grid", ["a", "a", "b", "b"]),
                NumericColumn("v", [1.0, 2.0, 3.0, 4.0]),
            ],
        )
        # "grid" ends in "id" but is 50% distinct: not a key.
        assert "grid" not in detect_keys(table)

    def test_column_with_missing_not_unique_key(self):
        table = Table(
            "t",
            [
                CategoricalColumn.from_labels("c", ["a", "b", None]),
                NumericColumn("v", [1.0, 2.0, 3.0]),
            ],
        )
        assert "c" not in detect_keys(table)


class TestInferSchema:
    def test_schema_summary(self, people):
        schema = infer_schema(people)
        assert schema.kinds["age"] is ColumnKind.NUMERIC
        assert schema.kinds["city"] is ColumnKind.CATEGORICAL
        assert "name" in schema.keys  # all distinct
        assert "name" not in schema.non_key_columns
        assert set(schema.numeric) == {"age", "income"}
        assert "city" in schema.categorical

"""Unit tests for the Table relational core."""

import numpy as np
import pytest

from repro.table.column import ColumnKind, NumericColumn
from repro.table.predicates import Comparison
from repro.table.table import Table


class TestConstruction:
    def test_basic(self, people):
        assert people.n_rows == 6
        assert people.n_columns == 4
        assert people.column_names == ("name", "age", "income", "city")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="inconsistent lengths"):
            Table(
                "t",
                [NumericColumn("a", [1.0]), NumericColumn("b", [1.0, 2.0])],
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Table("t", [NumericColumn("a", [1.0]), NumericColumn("a", [2.0])])

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            Table("t", [])

    def test_from_rows_infers_kinds(self):
        table = Table.from_rows(
            "t",
            ["n", "s"],
            [("1", "x"), ("2.5", "y"), ("3", "x")],
        )
        assert table.column("n").kind is ColumnKind.NUMERIC
        assert table.column("s").kind is ColumnKind.CATEGORICAL

    def test_from_rows_respects_forced_kinds(self):
        table = Table.from_rows(
            "t",
            ["n"],
            [("1",), ("2",), ("3",)],
            kinds={"n": ColumnKind.CATEGORICAL},
        )
        assert table.column("n").kind is ColumnKind.CATEGORICAL

    def test_from_rows_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="row width"):
            Table.from_rows("t", ["a", "b"], [(1, 2), (3,)])


class TestAccess:
    def test_column_lookup_error_lists_available(self, people):
        with pytest.raises(KeyError, match="available"):
            people.column("nope")

    def test_contains(self, people):
        assert "age" in people
        assert "nope" not in people

    def test_row_access(self, people):
        row = people.row(0)
        assert row == {"name": "ann", "age": 25.0, "income": 20.0, "city": "ams"}

    def test_row_with_missing_values(self, people):
        assert people.row(2)["age"] is None
        assert people.row(5)["city"] is None

    def test_row_out_of_range(self, people):
        with pytest.raises(IndexError):
            people.row(6)

    def test_rows_iterates_all(self, people):
        assert len(list(people.rows())) == 6

    def test_kind_partitions(self, people):
        assert [c.name for c in people.numeric_columns()] == ["age", "income"]
        assert [c.name for c in people.categorical_columns()] == ["name", "city"]


class TestRelationalOps:
    def test_select(self, people):
        young = people.select(Comparison("age", "<", 40))
        assert young.n_rows == 3  # 25, 31, 38 (NaN excluded)
        assert [r["name"] for r in young.rows()] == ["ann", "bob", "fox"]

    def test_project_preserves_order(self, people):
        projected = people.project(["city", "age"])
        assert projected.column_names == ("city", "age")
        assert projected.n_rows == people.n_rows

    def test_project_unknown_column_rejected(self, people):
        with pytest.raises(KeyError):
            people.project(["nope"])

    def test_project_empty_rejected(self, people):
        with pytest.raises(ValueError):
            people.project([])

    def test_drop(self, people):
        dropped = people.drop(["name"])
        assert dropped.column_names == ("age", "income", "city")

    def test_take_out_of_range_rejected(self, people):
        with pytest.raises(IndexError):
            people.take(np.asarray([0, 99]))

    def test_take_repeats_rows(self, people):
        taken = people.take(np.asarray([1, 1]))
        assert [r["name"] for r in taken.rows()] == ["bob", "bob"]

    def test_filter_mask_length_checked(self, people):
        with pytest.raises(ValueError):
            people.filter(np.asarray([True]))

    def test_with_column_appends_and_replaces(self, people):
        extended = people.with_column(NumericColumn("zeros", [0.0] * 6))
        assert "zeros" in extended
        replaced = extended.with_column(NumericColumn("zeros", [1.0] * 6))
        values = replaced.column("zeros").values
        assert values.tolist() == [1.0] * 6  # type: ignore[union-attr]

    def test_with_column_length_checked(self, people):
        with pytest.raises(ValueError):
            people.with_column(NumericColumn("bad", [0.0]))

    def test_sample_bounds_and_distinctness(self, people, rng):
        sample = people.sample(3, rng=rng)
        assert sample.n_rows == 3
        everything = people.sample(100, rng=rng)
        assert everything.n_rows == people.n_rows

    def test_sample_preserves_source_order(self, rng):
        table = Table("t", [NumericColumn("x", np.arange(100, dtype=float))])
        sample = table.sample(10, rng=rng)
        values = sample.column("x").values  # type: ignore[union-attr]
        assert (np.diff(values) > 0).all()

    def test_head(self, people):
        assert people.head(2).n_rows == 2
        assert people.head(99).n_rows == 6

    def test_rename(self, people):
        assert people.rename("folks").name == "folks"

    def test_immutability_of_source(self, people):
        before = people.n_rows
        people.select(Comparison("age", "<", 40))
        assert people.n_rows == before


class TestDescribe:
    def test_describe_shapes(self, people):
        summary = people.describe()
        assert len(summary) == 4
        age = next(r for r in summary if r["column"] == "age")
        assert age["kind"] == "numeric"
        assert age["missing"] == 1
        assert age["min"] == 25.0
        city = next(r for r in summary if r["column"] == "city")
        assert city["top"] == "ams"

"""Unit tests for the graph stage's code cache and residency paths."""

import numpy as np
import pytest

from repro.graph.codes import (
    CodeCache,
    CodeEntry,
    gather_codes,
    iter_code_chunks,
    resolve_entries,
)
from repro.store import StoredTable, write_store
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.table import Table


def twin_tables(tmp_path, n=500, seed=11):
    """An in-memory table and its store-backed twin."""
    rng = np.random.default_rng(seed)
    table = Table(
        "twin",
        [
            NumericColumn("x", rng.normal(0.0, 1.0, n)),
            NumericColumn(
                "y",
                np.where(rng.random(n) < 0.2, np.nan, rng.normal(5.0, 2.0, n)),
            ),
            CategoricalColumn.from_labels(
                "tag", list(rng.choice(["north", "east", "south"], n))
            ),
        ],
    )
    root = tmp_path / "store"
    write_store(table, root, chunk_rows=64)
    return table, StoredTable(root)


class TestCodeCache:
    def test_hit_miss_and_eviction(self):
        cache = CodeCache(max_entries=2)
        entry = CodeEntry(n_codes=3, codes=np.zeros(4, dtype=np.int32))
        assert cache.get(("f", "a", ())) is None
        cache.put(("f", "a", ()), entry)
        cache.put(("f", "b", ()), entry)
        assert cache.get(("f", "a", ())) is entry
        cache.put(("f", "c", ()), entry)  # evicts LRU ("b")
        assert cache.get(("f", "b", ())) is None
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 2
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            CodeCache(max_entries=0)


class TestGatherCodes:
    def test_full_equals_rows_arange(self, tmp_path):
        table, _ = twin_tables(tmp_path)
        names = table.column_names
        full = gather_codes(table, names)
        explicit = gather_codes(
            table, names, rows=np.arange(table.n_rows, dtype=np.intp)
        )
        assert np.array_equal(full.codes, explicit.codes)
        assert full.n_codes == explicit.n_codes

    def test_residency_bit_identity(self, tmp_path):
        memory, stored = twin_tables(tmp_path)
        names = memory.column_names
        rows = np.sort(
            np.random.default_rng(0).choice(memory.n_rows, 120, replace=False)
        ).astype(np.intp)
        from_memory = gather_codes(memory, names, rows=rows)
        from_store = gather_codes(stored, names, rows=rows)
        assert np.array_equal(from_memory.codes, from_store.codes)
        assert from_memory.n_codes == from_store.n_codes

    def test_cache_reused_across_gathers(self, tmp_path):
        table, _ = twin_tables(tmp_path)
        cache = CodeCache()
        names = table.column_names
        gather_codes(table, names, cache=cache, rows=np.arange(50))
        first = cache.stats()
        assert first["misses"] == len(names) and first["hits"] == 0
        gather_codes(table, names, cache=cache, rows=np.arange(50, 100))
        second = cache.stats()
        assert second["misses"] == first["misses"]
        assert second["hits"] == len(names)

    def test_bin_sample_is_deterministic(self, tmp_path):
        table, _ = twin_tables(tmp_path)
        a = gather_codes(table, table.column_names, bin_sample_size=64)
        b = gather_codes(table, table.column_names, bin_sample_size=64)
        assert np.array_equal(a.codes, b.codes)

    def test_n_bins_override_changes_granularity(self, tmp_path):
        table, _ = twin_tables(tmp_path)
        coarse = gather_codes(table, ("x",), n_bins=2)
        fine = gather_codes(table, ("x",), n_bins=16)
        assert coarse.n_codes[0] == 2
        assert fine.n_codes[0] > coarse.n_codes[0]


class TestStoredStreaming:
    def test_chunks_concatenate_to_gathered_codes(self, tmp_path):
        memory, stored = twin_tables(tmp_path)
        names = stored.column_names
        entries = resolve_entries(
            stored,
            names,
            n_bins=None,
            bin_sample_size=4096,
            seed=42,
            cache=None,
        )
        chunks = list(iter_code_chunks(stored, names, entries))
        assert len(chunks) > 1  # chunk_rows=64 over 500 rows
        combined = np.concatenate(chunks, axis=1)
        full = gather_codes(
            memory, names, rows=np.arange(memory.n_rows, dtype=np.intp)
        )
        assert np.array_equal(combined, full.codes)

    def test_store_entries_hold_cuts_not_codes(self, tmp_path):
        _, stored = twin_tables(tmp_path)
        entries = resolve_entries(
            stored,
            stored.column_names,
            n_bins=None,
            bin_sample_size=4096,
            seed=42,
            cache=None,
        )
        assert entries["x"].codes is None and entries["x"].cuts is not None
        assert entries["tag"].codes is None and entries["tag"].cuts is None
        assert entries["tag"].n_codes == 3

"""Unit tests for graph partitioning into themes."""

import numpy as np
import pytest

from repro.cluster.validation import clustering_nmi
from repro.datasets.synthetic import planted_themes
from repro.graph.dependency import build_dependency_graph
from repro.graph.partition import (
    modularity_partition,
    pam_partition,
    threshold_components,
)


@pytest.fixture
def graph():
    themed = planted_themes(
        n_rows=500,
        group_sizes={"eco": 4, "health": 4, "env": 4},
        noise=0.3,
        seed=9,
    )
    return themed, build_dependency_graph(themed.table)


def _labels(groups, columns):
    index = {}
    for g, group in enumerate(groups):
        for column in group:
            index[column] = g
    return np.asarray([index[c] for c in columns])


class TestPamPartition:
    def test_recovers_planted_groups(self, graph):
        themed, dependency = graph
        groups, selection = pam_partition(dependency)
        predicted = _labels(groups, dependency.columns)
        truth = themed.column_labels(dependency.columns)
        assert clustering_nmi(predicted, truth) > 0.9
        assert selection.k == 3

    def test_groups_cover_all_columns_once(self, graph):
        _, dependency = graph
        groups, _ = pam_partition(dependency)
        flat = [c for group in groups for c in group]
        assert sorted(flat) == sorted(dependency.columns)

    def test_medoid_listed_first(self, graph):
        _, dependency = graph
        groups, selection = pam_partition(dependency)
        medoid_names = {
            dependency.columns[m] for m in selection.clustering.medoids
        }
        assert {group[0] for group in groups} == medoid_names


class TestThresholdComponents:
    def test_recovers_groups_at_sensible_threshold(self, graph):
        themed, dependency = graph
        groups = threshold_components(dependency, min_weight=0.3)
        predicted = _labels(groups, dependency.columns)
        truth = themed.column_labels(dependency.columns)
        assert clustering_nmi(predicted, truth) > 0.9

    def test_extreme_thresholds_degenerate(self, graph):
        _, dependency = graph
        # Threshold 0: everything connects into one component.
        assert len(threshold_components(dependency, min_weight=0.0)) == 1
        # Threshold 1: nothing connects; all singletons.
        singletons = threshold_components(dependency, min_weight=1.01)
        assert len(singletons) == dependency.n_columns


class TestModularityPartition:
    def test_recovers_groups(self, graph):
        themed, dependency = graph
        groups = modularity_partition(dependency)
        predicted = _labels(groups, dependency.columns)
        truth = themed.column_labels(dependency.columns)
        assert clustering_nmi(predicted, truth) > 0.6

    def test_empty_graph_gives_singletons(self):
        themed = planted_themes(
            n_rows=60, group_sizes={"a": 2}, noise=0.2, seed=1
        )
        dependency = build_dependency_graph(themed.table)
        # Zero out the weights to simulate an edgeless graph.
        import dataclasses

        edgeless = dataclasses.replace(
            dependency, weights=np.eye(dependency.n_columns)
        )
        groups = modularity_partition(edgeless)
        assert all(len(g) == 1 for g in groups)

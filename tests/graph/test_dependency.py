"""Unit tests for the column dependency graph."""

import numpy as np
import pytest

from repro.datasets.synthetic import planted_themes
from repro.graph.dependency import build_dependency_graph
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.table import Table


@pytest.fixture
def themed():
    return planted_themes(
        n_rows=400,
        group_sizes={"eco": 3, "health": 3},
        noise=0.3,
        seed=5,
    )


class TestBuildGraph:
    def test_shape_and_diagonal(self, themed):
        graph = build_dependency_graph(themed.table)
        n = themed.table.n_columns
        assert graph.weights.shape == (n, n)
        assert np.allclose(np.diag(graph.weights), 1.0)
        assert np.allclose(graph.weights, graph.weights.T)

    def test_within_group_beats_across_group(self, themed):
        graph = build_dependency_graph(themed.table)
        within = graph.weight("eco_0", "eco_1")
        across = graph.weight("eco_0", "health_0")
        assert within > 2 * across

    def test_dissimilarity_properties(self, themed):
        graph = build_dependency_graph(themed.table)
        dissimilarity = graph.dissimilarity()
        assert np.allclose(np.diag(dissimilarity), 0.0)
        assert dissimilarity.min() >= 0.0
        assert dissimilarity.max() <= 1.0

    def test_edges_sorted_strongest_first(self, themed):
        graph = build_dependency_graph(themed.table)
        edges = graph.edges()
        weights = [w for _, _, w in edges]
        assert weights == sorted(weights, reverse=True)

    def test_edge_threshold(self, themed):
        graph = build_dependency_graph(themed.table)
        assert all(w >= 0.5 for _, _, w in graph.edges(min_weight=0.5))

    def test_networkx_view(self, themed):
        graph = build_dependency_graph(themed.table)
        view = graph.to_networkx(min_weight=0.4)
        assert set(view.nodes) == set(graph.columns)
        for a, b, data in view.edges(data=True):
            assert data["weight"] >= 0.4

    def test_column_subset(self, themed):
        graph = build_dependency_graph(
            themed.table, columns=("eco_0", "eco_1")
        )
        assert graph.columns == ("eco_0", "eco_1")

    def test_sampled_estimation_close_to_full(self, themed):
        full = build_dependency_graph(themed.table)
        sampled = build_dependency_graph(
            themed.table, sample=200, rng=np.random.default_rng(0)
        )
        # Sampled weights track the full-data weights.
        delta = np.abs(full.weights - sampled.weights).max()
        assert delta < 0.25

    def test_correlation_measures(self, themed):
        for measure in ("pearson", "spearman"):
            graph = build_dependency_graph(themed.table, measure=measure)
            within = graph.weight("eco_0", "eco_1")
            across = graph.weight("eco_0", "health_0")
            assert within > across

    def test_correlation_zero_for_categorical(self, rng):
        table = Table(
            "t",
            [
                NumericColumn("x", rng.normal(0, 1, 50)),
                CategoricalColumn.from_labels(
                    "c", list(rng.choice(["a", "b"], 50))
                ),
            ],
        )
        graph = build_dependency_graph(table, measure="pearson")
        assert graph.weight("x", "c") == 0.0

    def test_unknown_measure_rejected(self, themed):
        with pytest.raises(ValueError):
            build_dependency_graph(themed.table, measure="cosine")

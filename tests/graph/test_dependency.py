"""Unit tests for the column dependency graph."""

import numpy as np
import pytest

from repro.datasets.synthetic import planted_themes
from repro.graph.dependency import GraphBuilder, build_dependency_graph
from repro.service.cache import LRUCache
from repro.stats.correlation import pearson, spearman
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.table import Table


@pytest.fixture
def themed():
    return planted_themes(
        n_rows=400,
        group_sizes={"eco": 3, "health": 3},
        noise=0.3,
        seed=5,
    )


class TestBuildGraph:
    def test_shape_and_diagonal(self, themed):
        graph = build_dependency_graph(themed.table)
        n = themed.table.n_columns
        assert graph.weights.shape == (n, n)
        assert np.allclose(np.diag(graph.weights), 1.0)
        assert np.allclose(graph.weights, graph.weights.T)

    def test_within_group_beats_across_group(self, themed):
        graph = build_dependency_graph(themed.table)
        within = graph.weight("eco_0", "eco_1")
        across = graph.weight("eco_0", "health_0")
        assert within > 2 * across

    def test_dissimilarity_properties(self, themed):
        graph = build_dependency_graph(themed.table)
        dissimilarity = graph.dissimilarity()
        assert np.allclose(np.diag(dissimilarity), 0.0)
        assert dissimilarity.min() >= 0.0
        assert dissimilarity.max() <= 1.0

    def test_edges_sorted_strongest_first(self, themed):
        graph = build_dependency_graph(themed.table)
        edges = graph.edges()
        weights = [w for _, _, w in edges]
        assert weights == sorted(weights, reverse=True)

    def test_edge_threshold(self, themed):
        graph = build_dependency_graph(themed.table)
        assert all(w >= 0.5 for _, _, w in graph.edges(min_weight=0.5))

    def test_networkx_view(self, themed):
        graph = build_dependency_graph(themed.table)
        view = graph.to_networkx(min_weight=0.4)
        assert set(view.nodes) == set(graph.columns)
        for a, b, data in view.edges(data=True):
            assert data["weight"] >= 0.4

    def test_column_subset(self, themed):
        graph = build_dependency_graph(
            themed.table, columns=("eco_0", "eco_1")
        )
        assert graph.columns == ("eco_0", "eco_1")

    def test_sampled_estimation_close_to_full(self, themed):
        full = build_dependency_graph(themed.table)
        sampled = build_dependency_graph(
            themed.table, sample=200, rng=np.random.default_rng(0)
        )
        # Sampled weights track the full-data weights.
        delta = np.abs(full.weights - sampled.weights).max()
        assert delta < 0.25

    def test_correlation_measures(self, themed):
        for measure in ("pearson", "spearman"):
            graph = build_dependency_graph(themed.table, measure=measure)
            within = graph.weight("eco_0", "eco_1")
            across = graph.weight("eco_0", "health_0")
            assert within > across

    def test_correlation_zero_for_categorical(self, rng):
        table = Table(
            "t",
            [
                NumericColumn("x", rng.normal(0, 1, 50)),
                CategoricalColumn.from_labels(
                    "c", list(rng.choice(["a", "b"], 50))
                ),
            ],
        )
        graph = build_dependency_graph(table, measure="pearson")
        assert graph.weight("x", "c") == 0.0

    def test_unknown_measure_rejected(self, themed):
        with pytest.raises(ValueError):
            build_dependency_graph(themed.table, measure="cosine")


class TestDeterminism:
    def test_sampled_builds_agree_without_rng(self, themed):
        """The regression this PR fixes: ``sample`` with no ``rng`` used
        an unseeded generator, so repeated builds disagreed."""
        first = build_dependency_graph(themed.table, sample=150)
        second = build_dependency_graph(themed.table, sample=150)
        assert np.array_equal(first.weights, second.weights)

    def test_seed_changes_the_sample(self, themed):
        first = build_dependency_graph(themed.table, sample=50, seed=1)
        second = build_dependency_graph(themed.table, sample=50, seed=2)
        assert not np.array_equal(first.weights, second.weights)

    def test_thread_fanout_identical(self, themed):
        serial = build_dependency_graph(themed.table, n_jobs=None)
        for n_jobs in (1, 2, 0):
            parallel = build_dependency_graph(themed.table, n_jobs=n_jobs)
            assert np.array_equal(serial.weights, parallel.weights)

    def test_row_indices_arange_equals_full(self, themed):
        full = build_dependency_graph(themed.table)
        explicit = build_dependency_graph(
            themed.table,
            row_indices=np.arange(themed.table.n_rows, dtype=np.intp),
        )
        assert np.array_equal(full.weights, explicit.weights)


class TestVectorizedCorrelation:
    @pytest.fixture
    def noisy(self):
        rng = np.random.default_rng(17)
        n = 250
        base = rng.normal(0.0, 1.0, n)
        columns = []
        for i in range(6):
            values = base * rng.uniform(-2, 2) + rng.normal(0.0, 1.0, n)
            values += rng.uniform(-1e4, 1e4)  # large offsets: cancellation
            if i % 2 == 0:
                values[rng.random(n) < 0.15] = np.nan
            columns.append(NumericColumn(f"c{i}", values))
        columns.append(
            CategoricalColumn.from_labels(
                "cat", list(rng.choice(["a", "b"], n))
            )
        )
        return Table("noisy", columns)

    def test_pearson_matches_scalar_pairwise(self, noisy):
        graph = build_dependency_graph(noisy, measure="pearson")
        for i, a in enumerate(noisy.column_names):
            for b in noisy.column_names[i + 1 :]:
                col_a, col_b = noisy.column(a), noisy.column(b)
                if isinstance(col_a, NumericColumn) and isinstance(
                    col_b, NumericColumn
                ):
                    expected = abs(pearson(col_a.values, col_b.values))
                else:
                    expected = 0.0
                assert graph.weight(a, b) == pytest.approx(
                    expected, abs=1e-10
                )

    def test_spearman_matches_scalar_on_complete_data(self):
        rng = np.random.default_rng(23)
        table = Table(
            "complete",
            [NumericColumn(f"d{i}", rng.normal(0, 1, 200)) for i in range(5)],
        )
        graph = build_dependency_graph(table, measure="spearman")
        for i, a in enumerate(table.column_names):
            for b in table.column_names[i + 1 :]:
                expected = abs(
                    spearman(table.column(a).values, table.column(b).values)
                )
                assert graph.weight(a, b) == pytest.approx(
                    expected, abs=1e-10
                )


class TestGraphBuilder:
    def test_result_cache_memoizes(self, themed):
        cache = LRUCache(max_size=8)
        builder = GraphBuilder(result_cache=cache)
        first = builder.build(themed.table, sample=100)
        second = builder.build(themed.table, sample=100)
        assert second is first
        stats = builder.stats()
        assert stats["builds"] == 1
        assert stats["graph_cache_hits"] == 1
        assert stats["graph_cache_misses"] == 1

    def test_cache_warmth_does_not_change_results(self, themed):
        cold = GraphBuilder(result_cache=LRUCache(max_size=8))
        warm = GraphBuilder(result_cache=LRUCache(max_size=8))
        warm.build(themed.table, sample=100)  # prime a different key
        a = cold.build(themed.table, sample=120)
        b = warm.build(themed.table, sample=120)
        assert np.array_equal(a.weights, b.weights)

    def test_code_cache_reused_across_selections(self, themed):
        builder = GraphBuilder()
        n = themed.table.n_rows
        builder.build(themed.table, row_indices=np.arange(0, n, 2))
        misses = builder.stats()["code_cache_misses"]
        builder.build(themed.table, row_indices=np.arange(1, n, 2))
        stats = builder.stats()
        assert stats["code_cache_misses"] == misses
        assert stats["code_cache_hits"] >= themed.table.n_columns

    def test_metrics_sink_receives_counters(self, themed):
        from repro.service.metrics import Metrics

        metrics = Metrics()
        builder = GraphBuilder(result_cache=LRUCache(max_size=4))
        builder.set_metrics(metrics)
        builder.build(themed.table, sample=100)
        builder.build(themed.table, sample=100)
        assert metrics.counter("blaeu_graph_builds_total") == 1
        assert metrics.counter("blaeu_graph_cache_hits_total") == 1
        assert metrics.counter("blaeu_graph_cache_misses_total") == 1
        assert metrics.counter("blaeu_graph_code_cache_misses_total") > 0
        assert "blaeu_graph_builds_total 1" in metrics.render()

"""Partitions, zone maps, and pruning: correctness before speed.

Pruning must be *provably* conservative — a skipped partition never
changes a scan's result, only its cost — so every pruning test asserts
both the IO budget (``data_reads``) and bit-identity against the
in-memory predicate mask.
"""

import json

import numpy as np
import pytest

from repro.store import StoredTable, write_store
from repro.store.format import (
    ColumnZone,
    PartitionMeta,
    StoreManifest,
    partition_spans,
)
from repro.store.partitions import repartition, zone_proves_empty
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.predicates import (
    And,
    Between,
    Comparison,
    Everything,
    In,
    IsMissing,
    Not,
    Or,
)
from repro.table.table import Table


def _table(n=400) -> Table:
    # x is 0..n-1 so each 100-row partition owns a disjoint value range;
    # y is all-NaN in the first partition; z is constant; cat is
    # all-missing in the third partition.
    x = np.arange(n, dtype=float)
    y = x * 2.0
    y[:100] = np.nan
    z = np.full(n, 5.0)
    labels = [["a", "b"][i % 2] if not 200 <= i < 300 else None for i in range(n)]
    return Table(
        "zones",
        [
            NumericColumn("x", x),
            NumericColumn("y", y),
            NumericColumn("z", z),
            CategoricalColumn.from_labels("cat", labels),
        ],
    )


@pytest.fixture
def table() -> Table:
    return _table()


@pytest.fixture
def stored(table, tmp_path) -> StoredTable:
    write_store(table, tmp_path / "s", chunk_rows=100, partition_rows=100)
    return StoredTable(tmp_path / "s", scan_jobs=None)


class TestZoneMaps:
    def test_write_store_records_partitions(self, stored):
        assert [(p.start, p.stop) for p in stored.partitions] == [
            (0, 100),
            (100, 200),
            (200, 300),
            (300, 400),
        ]

    def test_numeric_zones(self, stored):
        zones = stored.partitions[1].zones
        assert zones["x"] == ColumnZone(null_count=0, min=100.0, max=199.0)
        assert zones["y"] == ColumnZone(null_count=0, min=200.0, max=398.0)
        assert zones["z"] == ColumnZone(null_count=0, min=5.0, max=5.0)

    def test_all_null_numeric_zone(self, stored):
        zone = stored.partitions[0].zones["y"]
        assert zone == ColumnZone(null_count=100, min=None, max=None)

    def test_categorical_zone_counts_nulls_only(self, stored):
        assert stored.partitions[0].zones["cat"] == ColumnZone(null_count=0)
        assert stored.partitions[2].zones["cat"] == ColumnZone(null_count=100)

    def test_partition_spans_tile(self):
        assert partition_spans(10, 4) == [(0, 4), (4, 8), (8, 10)]
        assert partition_spans(10, 4, start=8) == [(8, 10)]
        assert partition_spans(0, 4) == []

    def test_manifest_rejects_non_tiling_partitions(self, stored, tmp_path):
        import dataclasses

        manifest = StoreManifest.load(tmp_path / "s")
        bad = (PartitionMeta(0, 100), PartitionMeta(150, 400))
        with pytest.raises(ValueError, match="tile"):
            dataclasses.replace(manifest, partitions=bad)

    def test_ingest_records_same_zones(self, table, stored, tmp_path):
        import io

        from repro.store.ingest import ingest_csv

        lines = ["x,y,z,cat"]
        for i in range(table.n_rows):
            y = "" if i < 100 else f"{i * 2.0}"
            cat = "" if 200 <= i < 300 else ["a", "b"][i % 2]
            lines.append(f"{float(i)},{y},5.0,{cat}")
        ingest_csv(
            io.StringIO("\n".join(lines)),
            tmp_path / "ingested",
            name="zones",
            chunk_rows=100,
            partition_rows=100,
        )
        manifest = StoreManifest.load(tmp_path / "ingested")
        assert manifest.partitions == StoreManifest.load(tmp_path / "s").partitions


class TestZoneProvesEmpty:
    KINDS = {"x": "numeric", "cat": "categorical"}

    def part(self, **zones):
        return PartitionMeta(0, 100, zones=zones)

    def test_range_misses(self):
        part = self.part(x=ColumnZone(0, 10.0, 20.0))
        assert zone_proves_empty(Comparison("x", "<", 10.0), part, self.KINDS)
        assert zone_proves_empty(Comparison("x", ">", 20.0), part, self.KINDS)
        assert zone_proves_empty(Comparison("x", ">=", 20.5), part, self.KINDS)
        assert zone_proves_empty(Comparison("x", "==", 9.0), part, self.KINDS)
        assert zone_proves_empty(Between("x", 21.0, 30.0), part, self.KINDS)
        assert not zone_proves_empty(Comparison("x", "<=", 10.0), part, self.KINDS)
        assert not zone_proves_empty(Between("x", 19.0, 21.0), part, self.KINDS)

    def test_all_null_prunes_value_predicates(self):
        part = self.part(
            x=ColumnZone(100, None, None), cat=ColumnZone(100, None, None)
        )
        assert zone_proves_empty(Comparison("x", ">", 0.0), part, self.KINDS)
        assert zone_proves_empty(Comparison("cat", "==", "a"), part, self.KINDS)
        assert zone_proves_empty(In("cat", ("a", "b")), part, self.KINDS)
        assert not zone_proves_empty(IsMissing("x"), part, self.KINDS)

    def test_null_free_prunes_is_missing(self):
        part = self.part(x=ColumnZone(0, 1.0, 2.0))
        assert zone_proves_empty(IsMissing("x"), part, self.KINDS)

    def test_connectives(self):
        part = self.part(x=ColumnZone(0, 10.0, 20.0))
        hit = Comparison("x", ">", 15.0)
        miss = Comparison("x", ">", 25.0)
        assert zone_proves_empty(And((hit, miss)), part, self.KINDS)
        assert not zone_proves_empty(Or((hit, miss)), part, self.KINDS)
        assert zone_proves_empty(Or((miss, miss)), part, self.KINDS)
        assert not zone_proves_empty(Not(miss), part, self.KINDS)
        assert not zone_proves_empty(Everything(), part, self.KINDS)

    def test_unknown_column_or_missing_zone_never_prunes(self):
        part = self.part()
        assert not zone_proves_empty(Comparison("x", ">", 1e9), part, self.KINDS)


class TestPruning:
    """Each case asserts the read budget AND bit-identity."""

    def check(self, stored, table, predicate, skipped, reads):
        before = stored.data_reads
        mask = stored.scan_mask(predicate)
        assert stored.partitions_skipped == skipped
        assert stored.data_reads - before == reads
        np.testing.assert_array_equal(mask, predicate.mask(table))

    def test_selective_predicate_reads_one_partition(self, stored, table):
        self.check(stored, table, Comparison("x", ">", 350.0), skipped=3, reads=1)

    def test_all_nan_partition_is_skipped(self, stored, table):
        # y < 250 covers partition 1 by value; partition 0 is all-NaN
        # and partitions 2..3 are out of range.
        self.check(stored, table, Comparison("y", "<", 250.0), skipped=3, reads=1)

    def test_constant_column_prunes_everything_or_nothing(self, stored, table):
        self.check(stored, table, Comparison("z", "==", 6.0), skipped=4, reads=0)
        stored2 = StoredTable(stored.root, scan_jobs=None)
        self.check(
            stored2, table, Comparison("z", "==", 5.0), skipped=0, reads=4
        )

    def test_boundary_straddling_predicate(self, stored, table):
        self.check(stored, table, Between("x", 95.0, 105.0), skipped=2, reads=2)

    def test_all_missing_categorical_partition(self, stored, table):
        self.check(
            stored, table, Comparison("cat", "==", "a"), skipped=1, reads=3
        )

    def test_is_missing_prunes_null_free_partitions(self, stored, table):
        self.check(stored, table, IsMissing("y"), skipped=3, reads=1)

    def test_conjunction_intersects_prunes(self, stored, table):
        # x > 150 prunes partition 0 (x ends at 99); y < 390 prunes
        # partitions 2..3 (y starts at 400 there) and partition 0 again
        # (all-NaN).  Only partition 1 survives.
        predicate = And((Comparison("x", ">", 150.0), Comparison("y", "<", 390.0)))
        self.check(stored, table, predicate, skipped=3, reads=2)

    def test_select_goes_through_pruned_scan(self, stored, table):
        selected = stored.select(Comparison("x", ">=", 399.0))
        assert selected.n_rows == 1
        assert stored.partitions_skipped == 3


class TestBackwardCompat:
    def strip(self, root):
        """Rewrite the manifest as a pre-partitioning store would have it."""
        path = root / "manifest.json"
        doc = json.loads(path.read_text())
        doc.pop("partitions", None)
        doc.pop("version", None)
        path.write_text(json.dumps(doc))

    def test_old_manifest_loads_as_implicit_partition(self, table, tmp_path):
        write_store(table, tmp_path / "s", chunk_rows=100, partition_rows=100)
        self.strip(tmp_path / "s")
        manifest = StoreManifest.load(tmp_path / "s")
        assert manifest.partitions == ()
        assert manifest.version == 1
        assert manifest.previous_fingerprint is None
        stored = StoredTable(tmp_path / "s", scan_jobs=None)
        assert [(p.start, p.stop) for p in stored.partitions] == [(0, 400)]
        assert stored.partitions[0].zones == {}

    def test_old_store_scans_never_prune(self, table, tmp_path):
        write_store(table, tmp_path / "s", chunk_rows=100, partition_rows=100)
        self.strip(tmp_path / "s")
        stored = StoredTable(tmp_path / "s", scan_jobs=None)
        predicate = Comparison("x", ">", 350.0)
        mask = stored.scan_mask(predicate)
        assert stored.partitions_skipped == 0
        np.testing.assert_array_equal(mask, predicate.mask(table))

    def test_repartition_round_trip(self, table, tmp_path):
        write_store(table, tmp_path / "s", chunk_rows=100, partition_rows=100)
        expected = StoreManifest.load(tmp_path / "s")
        self.strip(tmp_path / "s")
        manifest = repartition(tmp_path / "s", partition_rows=100)
        assert manifest.partitions == expected.partitions
        assert manifest.fingerprint == expected.fingerprint
        # and the pruned scan now matches the original store's behavior
        stored = StoredTable(tmp_path / "s", scan_jobs=None)
        predicate = Comparison("x", ">", 350.0)
        before = stored.data_reads
        mask = stored.scan_mask(predicate)
        assert stored.partitions_skipped == 3
        assert stored.data_reads - before == 1
        np.testing.assert_array_equal(mask, predicate.mask(table))

    def test_repartition_changes_granularity(self, table, tmp_path):
        write_store(table, tmp_path / "s", chunk_rows=100, partition_rows=100)
        manifest = repartition(tmp_path / "s", partition_rows=200)
        assert [(p.start, p.stop) for p in manifest.partitions] == [
            (0, 200),
            (200, 400),
        ]
        assert manifest.partitions[0].zones["x"].max == 199.0


class TestProjectionScanReads:
    """scan_mask under projection reads only predicate columns (exact)."""

    def test_scan_mask_projection_read_budget(self, table, tmp_path):
        write_store(table, tmp_path / "s", chunk_rows=100, partition_rows=100)
        stored = StoredTable(tmp_path / "s", scan_jobs=None)
        view = stored.project(("x", "y", "cat"))
        predicate = Comparison("x", ">=", 0.0)  # no partition prunable
        before = view.data_reads
        mask = view.scan_mask(predicate)
        # 4 partitions x 1 chunk x 1 referenced column — projection or
        # not, the scan reads the predicate's columns and nothing else.
        assert view.data_reads - before == 4
        np.testing.assert_array_equal(mask, predicate.mask(table))

    def test_scan_mask_rejects_hidden_columns(self, table, tmp_path):
        write_store(table, tmp_path / "s", chunk_rows=100, partition_rows=100)
        view = StoredTable(tmp_path / "s", scan_jobs=None).project(("x",))
        with pytest.raises(KeyError, match="y"):
            view.scan_mask(Comparison("y", ">", 0.0))

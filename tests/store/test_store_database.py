"""Database integration: registration, catalog residency, and the
multi-scale sampling nesting invariants on both residencies."""

import numpy as np
import pytest

from repro.store import write_store
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.database import Database, SelectProject
from repro.table.predicates import Comparison
from repro.table.sampling import SampleCascade
from repro.table.table import Table


@pytest.fixture
def table(rng) -> Table:
    n = 400
    return Table(
        "pop",
        [
            NumericColumn("v", rng.normal(0.0, 1.0, n)),
            CategoricalColumn.from_labels(
                "g", [["a", "b"][i % 2] for i in range(n)]
            ),
        ],
    )


@pytest.fixture
def db(table, tmp_path) -> Database:
    database = Database(seed=3)
    database.register(table)
    write_store(table.rename("pop_store"), tmp_path / "s", chunk_rows=64)
    database.load_store(tmp_path / "s")
    return database


class TestRegistration:
    def test_both_residencies_registered(self, db):
        assert set(db.table_names()) == {"pop", "pop_store"}

    def test_catalog_reports_residency_and_shared_fingerprint(self, db):
        records = {r["name"]: r for r in db.catalog()}
        assert records["pop"]["residency"] == "memory"
        assert records["pop_store"]["residency"] == "store"
        assert records["pop"]["n_rows"] == records["pop_store"]["n_rows"] == 400
        # Same content — identical fingerprint despite different names
        # and residencies (what makes the map cache shareable).
        assert records["pop"]["fingerprint"] == records["pop_store"]["fingerprint"]

    def test_load_store_with_name_override(self, table, tmp_path):
        database = Database()
        write_store(table, tmp_path / "s")
        stored = database.load_store(tmp_path / "s", name="renamed")
        assert stored.name == "renamed"
        assert "renamed" in database

    def test_drop_store_backed(self, db):
        db.drop("pop_store")
        assert "pop_store" not in db


class TestQueries:
    def test_execute_select_project_sample(self, db, table):
        query = SelectProject(
            table="pop_store",
            columns=("v",),
            predicate=Comparison("g", "==", "a"),
            sample=25,
        )
        result = db.execute(query)
        assert result.n_rows == 25
        assert result.column_names == ("v",)
        assert "SAMPLE 25" in db.query_log[-1]

    def test_store_samples_are_process_independent(self, db, tmp_path):
        # The store-backed cascade comes from priority.bin, so a second
        # Database (different seed!) produces the same sample.
        other = Database(seed=999)
        other.load_store(tmp_path / "s")
        np.testing.assert_array_equal(
            db.sample_indices("pop_store", 31),
            other.sample_indices("pop_store", 31),
        )


class TestNestingInvariants:
    """Zoom sample ⊆ parent sample at equal priorities (paper §3)."""

    @pytest.mark.parametrize("name", ["pop", "pop_store"])
    def test_growing_k_is_nested(self, db, name):
        for k_small, k_large in ((5, 20), (20, 100), (1, 400)):
            small = set(db.sample_indices(name, k_small).tolist())
            large = set(db.sample_indices(name, k_large).tolist())
            assert small <= large

    @pytest.mark.parametrize("name", ["pop", "pop_store"])
    def test_zoom_refines_parent_sample(self, db, table, name):
        """The zoom sample keeps every parent-sample row that survives
        the zoom predicate — maps stay visually stable across zooms."""
        parent_pred = Comparison("v", ">", -0.5)
        zoom_pred = Comparison("v", ">", 0.5)  # strictly narrower
        k = 40
        parent = db.sample_indices(name, k, parent_pred)
        zoomed = db.sample_indices(name, k, zoom_pred)
        zoom_mask = zoom_pred.mask(table)
        survivors = {i for i in parent.tolist() if zoom_mask[i]}
        assert survivors <= set(zoomed.tolist())
        # And the zoom tops the sample back up to k where possible.
        assert zoomed.size == min(k, int(zoom_mask.sum()))

    @pytest.mark.parametrize("name", ["pop", "pop_store"])
    def test_selection_sample_subset_of_selection(self, db, table, name):
        predicate = Comparison("g", "==", "b")
        chosen = db.sample_indices(name, 30, predicate)
        mask = predicate.mask(table)
        assert mask[chosen].all()


class TestFromPriorities:
    def test_matches_fresh_cascade_with_same_priorities(self, rng):
        base = SampleCascade(200, rng)
        clone = SampleCascade.from_priorities(base._priority)
        for k in (0, 7, 200):
            np.testing.assert_array_equal(base.sample(k), clone.sample(k))
        assert clone.n_rows == 200

    def test_rejects_matrix_priorities(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            SampleCascade.from_priorities(np.zeros((2, 2), dtype=np.int64))

    def test_is_nested_over_loaded_priorities(self):
        priorities = np.random.default_rng(0).permutation(50)
        cascade = SampleCascade.from_priorities(priorities)
        assert cascade.is_nested(5, 25)

"""The chunked CSV ingester must replicate ``read_csv`` exactly."""

import io

import numpy as np
import pytest

from repro.store import ingest_csv
from repro.table.column import CategoricalColumn, ColumnKind, NumericColumn
from repro.table.csv_io import read_csv_text


def assert_same_table(stored, memory):
    """Column-by-column equality between a StoredTable and a Table."""
    assert stored.n_rows == memory.n_rows
    assert stored.column_names == memory.column_names
    for name in memory.column_names:
        expected = memory.column(name)
        actual = stored.column(name)
        assert actual.kind is expected.kind, name
        np.testing.assert_array_equal(
            np.asarray(actual.missing_mask), expected.missing_mask
        )
        if isinstance(expected, NumericColumn):
            np.testing.assert_array_equal(
                np.nan_to_num(np.asarray(actual.values)),
                np.nan_to_num(expected.values),
            )
        else:
            assert isinstance(actual, CategoricalColumn)
            assert actual.categories == expected.categories
            np.testing.assert_array_equal(
                np.asarray(actual.codes), expected.codes
            )
    assert stored.fingerprint() == memory.fingerprint()


MIXED_CSV = (
    "income,city,flag,note\n"
    "1200.5,ams,0,alpha\n"
    ",nyc,1,beta\n"
    "900,ams,1,\n"
    "-3.25,,0,alpha\n"
    "na,nyc,1,gamma\n"
)


class TestIngestMatchesReadCsv:
    @pytest.mark.parametrize("chunk_rows", [1, 2, 64])
    def test_mixed_types_and_missing(self, tmp_path, chunk_rows):
        stored = ingest_csv(
            io.StringIO(MIXED_CSV),
            tmp_path / "s",
            name="t",
            chunk_rows=chunk_rows,
        )
        memory = read_csv_text(MIXED_CSV, name="t")
        assert_same_table(stored, memory)

    def test_promotion_in_a_late_chunk(self, tmp_path):
        # 10 numeric-looking records, then text: with chunk_rows=3 the
        # promotion happens in chunk 4 and must replay the spilled
        # chunks in order (first-appearance category codes).
        text = "v\n" + "".join(f"{i}.5\n" for i in range(10)) + "surprise\n"
        stored = ingest_csv(
            io.StringIO(text), tmp_path / "s", name="t", chunk_rows=3
        )
        memory = read_csv_text(text, name="t")
        assert memory.column("v").kind is ColumnKind.CATEGORICAL
        assert_same_table(stored, memory)

    def test_flag_column_stays_categorical(self, tmp_path):
        text = "f\n1\n0\n1\n1\n0\n"
        stored = ingest_csv(io.StringIO(text), tmp_path / "s", name="t")
        assert stored.kind("f") is ColumnKind.CATEGORICAL
        assert_same_table(stored, read_csv_text(text, name="t"))

    def test_all_missing_column_is_categorical(self, tmp_path):
        text = "a,b\n1,\n2,na\n3,?\n"
        stored = ingest_csv(io.StringIO(text), tmp_path / "s", name="t")
        assert stored.kind("a") is ColumnKind.NUMERIC
        assert stored.kind("b") is ColumnKind.CATEGORICAL
        assert_same_table(stored, read_csv_text(text, name="t"))

    def test_forced_kinds(self, tmp_path):
        text = "n,c\n1,1\nx,2\n3,3\n"
        kinds = {"n": ColumnKind.NUMERIC, "c": ColumnKind.CATEGORICAL}
        stored = ingest_csv(
            io.StringIO(text), tmp_path / "s", name="t", kinds=kinds
        )
        memory = read_csv_text(text, name="t", kinds=kinds)
        assert stored.kind("n") is ColumnKind.NUMERIC
        assert stored.column("n").n_missing == 1  # "x" forced to missing
        assert_same_table(stored, memory)

    def test_header_only_csv(self, tmp_path):
        stored = ingest_csv(io.StringIO("a,b\n"), tmp_path / "s", name="t")
        assert stored.n_rows == 0
        assert_same_table(stored, read_csv_text("a,b\n", name="t"))


class TestIngestSources:
    def test_path_source_uses_stem(self, tmp_path):
        csv_path = tmp_path / "cities.csv"
        csv_path.write_text(MIXED_CSV, encoding="utf-8")
        stored = ingest_csv(csv_path, tmp_path / "s")
        assert stored.name == "cities"

    def test_empty_source_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            ingest_csv(io.StringIO(""), tmp_path / "s", name="t")

    def test_existing_store_not_overwritten(self, tmp_path):
        ingest_csv(io.StringIO(MIXED_CSV), tmp_path / "s", name="t")
        with pytest.raises(FileExistsError):
            ingest_csv(io.StringIO(MIXED_CSV), tmp_path / "s", name="t")

    def test_temporary_spill_files_removed(self, tmp_path):
        stored = ingest_csv(
            io.StringIO(MIXED_CSV), tmp_path / "s", name="t", chunk_rows=2
        )
        assert not (stored.root / "ingest.tmp").exists()
        leftovers = [p.name for p in stored.root.rglob("*.spill.pkl")]
        assert leftovers == []

    def test_priority_seed_persisted(self, tmp_path):
        a = ingest_csv(
            io.StringIO(MIXED_CSV), tmp_path / "a", name="t", priority_seed=9
        )
        b = ingest_csv(
            io.StringIO(MIXED_CSV), tmp_path / "b", name="t", priority_seed=9
        )
        np.testing.assert_array_equal(
            np.asarray(a.priorities), np.asarray(b.priorities)
        )
        expected = np.random.default_rng(9).permutation(a.n_rows)
        np.testing.assert_array_equal(np.asarray(a.priorities), expected)

"""Dependency graphs over store-backed tables: pushdown + bit-identity.

The graph engine's out-of-core contract: a ``StoredTable``'s dependency
graph (and the themes built on it) must equal the in-memory twin's bit
for bit at the same seed — whether the build samples rows (pushdown
gather) or covers the whole table (streaming contingency accumulation) —
and must never materialize columns it does not need.
"""

import numpy as np
import pytest

from repro.core.config import BlaeuConfig
from repro.core.themes import extract_themes
from repro.graph.dependency import GraphBuilder, build_dependency_graph
from repro.store import StoredTable, write_store
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.table import Table


@pytest.fixture(scope="module")
def twins(tmp_path_factory):
    rng = np.random.default_rng(29)
    n = 900
    group = rng.integers(0, 3, n)
    table = Table(
        "twin",
        [
            NumericColumn("a0", group * 4.0 + rng.normal(0, 0.5, n)),
            NumericColumn("a1", group * -3.0 + rng.normal(0, 0.5, n)),
            NumericColumn(
                "b0",
                np.where(rng.random(n) < 0.15, np.nan, rng.normal(0, 1, n)),
            ),
            NumericColumn("b1", rng.normal(0, 1, n)),
            CategoricalColumn.from_labels(
                "tag", list(np.array(["x", "y", "z"])[group])
            ),
        ],
    )
    root = tmp_path_factory.mktemp("graphstore") / "store"
    write_store(table, root, chunk_rows=128)
    return table, StoredTable(root)


class TestResidencyBitIdentity:
    def test_sampled_build_identical(self, twins):
        memory, stored = twins
        from_memory = build_dependency_graph(memory, sample=200)
        from_store = build_dependency_graph(stored, sample=200)
        assert from_memory.columns == from_store.columns
        assert np.array_equal(from_memory.weights, from_store.weights)

    def test_whole_table_build_identical(self, twins):
        """Full-coverage store builds stream chunked scans; the result
        must still match the in-memory gather path exactly."""
        memory, stored = twins
        from_memory = build_dependency_graph(memory)
        from_store = build_dependency_graph(stored)
        assert np.array_equal(from_memory.weights, from_store.weights)

    def test_row_restricted_build_identical(self, twins):
        memory, stored = twins
        rows = np.sort(
            np.random.default_rng(5).choice(memory.n_rows, 300, replace=False)
        ).astype(np.intp)
        from_memory = build_dependency_graph(memory, row_indices=rows)
        from_store = build_dependency_graph(stored, row_indices=rows)
        assert np.array_equal(from_memory.weights, from_store.weights)

    def test_extract_themes_identical(self, twins):
        memory, stored = twins
        config = BlaeuConfig(theme_k_values=(2, 3))
        of_memory = extract_themes(
            memory, config=config, rng=np.random.default_rng(0)
        )
        of_store = extract_themes(
            stored, config=config, rng=np.random.default_rng(0)
        )
        assert [t.columns for t in of_memory] == [t.columns for t in of_store]
        assert np.array_equal(
            of_memory.graph.weights, of_store.graph.weights
        )
        assert of_memory.silhouette == of_store.silhouette

    def test_shared_cache_keys_across_residencies(self, twins):
        """Twins share a fingerprint, so one residency's graph memo
        serves the other — zero data IO on the hot path."""
        memory, stored = twins
        cache = {}

        class DictCache:
            def get(self, key):
                return cache.get(key)

            def put(self, key, value):
                cache[key] = value

        builder = GraphBuilder(result_cache=DictCache())
        built = builder.build(memory, sample=150)
        reads_before = stored.data_reads
        recalled = builder.build(stored, sample=150)
        assert recalled is built
        assert stored.data_reads == reads_before


class TestPushdown:
    def test_take_columns_matches_project_take(self, twins):
        _, stored = twins
        indices = np.asarray([5, 17, 200, 201, 899], dtype=np.intp)
        direct = stored.take_columns(["a0", "tag"], indices)
        via_view = stored.project(["a0", "tag"]).take(indices)
        assert direct.column_names == ("a0", "tag")
        assert np.array_equal(
            direct.column("a0").values, via_view.column("a0").values
        )
        assert np.array_equal(
            direct.column("tag").codes, via_view.column("tag").codes
        )

    def test_take_columns_validates(self, twins):
        _, stored = twins
        with pytest.raises(KeyError):
            stored.take_columns(["nope"], np.asarray([0]))
        with pytest.raises(IndexError):
            stored.take_columns(["a0"], np.asarray([stored.n_rows]))

    def test_sampled_build_reads_only_needed_columns(self, tmp_path):
        """A sampled graph over two of five columns must not touch the
        other three columns' data files."""
        rng = np.random.default_rng(3)
        n = 400
        table = Table(
            "narrow",
            [NumericColumn(f"c{i}", rng.normal(0, 1, n)) for i in range(5)],
        )
        root = tmp_path / "store"
        write_store(table, root, chunk_rows=64)
        stored = StoredTable(root)
        before = stored.data_reads
        build_dependency_graph(stored, columns=("c0", "c1"), sample=100)
        reads = stored.data_reads - before
        # Cut-sample gather + sampled-row gather over 2 columns: the
        # exact count is an implementation detail, but 3 unread columns
        # would at least double it.
        assert reads <= 8

"""Process-parallel scans must be invisible except in wall-clock time.

Every fan-out path — predicate masks, exact count routing, highlights,
whole-table streaming NMI — is compared bit-for-bit against its serial
twin, and the resilience contracts (deadlines, injected faults) must
surface identically whether the failing chunk runs in the parent or in
a pool worker.
"""

import json

import numpy as np
import pytest

from repro.core.config import BlaeuConfig
from repro.core.navigation import Explorer
from repro.core.pipeline import MapBuilder
from repro.graph.dependency import build_dependency_graph
from repro.resilience.deadline import DeadlineExceeded, deadline_scope
from repro.resilience.faults import (
    InjectedFault,
    clear_faults,
    install_faults,
    parse_faults,
)
from repro.store import StoredTable, write_store
from repro.store.parallel import run_partition_tasks
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.predicates import Between, Comparison, Or
from repro.table.table import Table


def _table(n=2000) -> Table:
    rng = np.random.default_rng(7)
    a = rng.normal(size=n)
    a[100:140] = np.nan
    b = rng.uniform(0, 100, size=n)
    c = a * 0.5 + rng.normal(scale=0.3, size=n)
    codes = rng.integers(0, 3, size=n).astype(np.int32)
    return Table(
        "fan",
        [
            NumericColumn("a", a),
            NumericColumn("b", b),
            NumericColumn("c", c),
            CategoricalColumn("d", codes, ("x", "y", "z")),
        ],
    )


@pytest.fixture(scope="module")
def store_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("fan") / "s"
    write_store(_table(), root, chunk_rows=250, partition_rows=500)
    return root


class TestRunPartitionTasks:
    def test_serial_and_parallel_agree(self, store_root):
        tasks = [(i, i * 2) for i in range(4)]
        serial = run_partition_tasks(_double, tasks, None)
        parallel = run_partition_tasks(_double, tasks, 2)
        assert serial == parallel == [0, 2, 4, 6]

    def test_results_in_task_order(self, store_root):
        tasks = list(range(8))
        assert run_partition_tasks(_identity, tasks, 4) == tasks


def _double(task):
    return task[1]


def _identity(task):
    return task


class TestBitIdentity:
    def masks(self, store_root, predicate, jobs):
        return StoredTable(store_root, scan_jobs=jobs).scan_mask(predicate)

    @pytest.mark.parametrize(
        "predicate",
        [
            Comparison("a", ">", 0.5),
            Between("b", 24.0, 26.0),
            Or((Comparison("a", "<", -2.0), Comparison("d", "==", "y"))),
        ],
        ids=["comparison", "between", "or-categorical"],
    )
    def test_scan_mask(self, store_root, predicate):
        serial = self.masks(store_root, predicate, None)
        np.testing.assert_array_equal(serial, self.masks(store_root, predicate, 2))
        np.testing.assert_array_equal(serial, predicate.mask(_table()))

    def test_exact_map_counts(self, store_root):
        def counts(jobs):
            table = StoredTable(store_root, scan_jobs=jobs)
            data_map = MapBuilder().build(table, ("a", "b", "c", "d"), k=3)
            assert data_map.counts_status == "exact"
            return [region.n_rows for region in data_map.regions()]

        assert counts(None) == counts(2)

    def test_dependency_graph_weights(self, store_root):
        def weights(jobs):
            table = StoredTable(store_root, scan_jobs=jobs)
            return build_dependency_graph(table, seed=42).weights

        np.testing.assert_array_equal(weights(None), weights(2))

    def test_highlight(self, store_root):
        def highlight(jobs):
            explorer = Explorer(StoredTable(store_root, scan_jobs=jobs))
            explorer.open_columns(("a", "b"))
            return explorer.highlight("r0", columns=("c", "d"))

        assert highlight(None) == highlight(2)

    def test_pruned_parallel_scan_still_identical(self, store_root):
        predicate = Comparison("b", ">", 99.0)
        table = StoredTable(store_root, scan_jobs=2)
        mask = table.scan_mask(predicate)
        np.testing.assert_array_equal(mask, predicate.mask(_table()))


class TestScanJobsKnob:
    def test_env_default(self, store_root, monkeypatch):
        monkeypatch.setenv("BLAEU_SCAN_JOBS", "3")
        assert StoredTable(store_root).scan_jobs == 3
        assert StoredTable(store_root, scan_jobs=None).scan_jobs is None

    def test_invalid_env_ignored(self, store_root, monkeypatch):
        monkeypatch.setenv("BLAEU_SCAN_JOBS", "lots")
        assert StoredTable(store_root).scan_jobs is None

    def test_projection_inherits(self, store_root):
        table = StoredTable(store_root, scan_jobs=2)
        assert table.project(("a", "b")).scan_jobs == 2
        assert table.rename("other").scan_jobs == 2

    def test_config_validates(self):
        with pytest.raises(ValueError, match="scan_jobs"):
            BlaeuConfig(scan_jobs=-1)
        assert BlaeuConfig(scan_jobs=4).scan_jobs == 4

    def test_engine_passes_scan_jobs(self, store_root):
        from repro.core.engine import Blaeu

        engine = Blaeu(BlaeuConfig(scan_jobs=2))
        table = engine.load_store(store_root)
        assert table.scan_jobs == 2


class TestResilienceInWorkers:
    """Deadlines and faults behave identically under scan_jobs > 1."""

    def test_deadline_exceeded_propagates_with_stage(self, store_root):
        table = StoredTable(store_root, scan_jobs=2)
        with deadline_scope(1e-9):
            with pytest.raises(DeadlineExceeded) as excinfo:
                table.scan_mask(Comparison("a", ">", 0.0))
        # The abort comes from a per-chunk checkpoint (parent or
        # worker), and pickling preserves its structured attributes.
        assert excinfo.value.stage in ("store.chunk", "store.partition")
        assert excinfo.value.budget == pytest.approx(1e-9)

    def test_injected_fault_propagates_from_worker(
        self, store_root, monkeypatch
    ):
        spec = json.dumps(
            {"seed": 1, "faults": [{"site": "store.read", "mode": "error"}]}
        )
        # Install in-process (fork inherits it) and in the environment
        # (spawned workers re-arm lazily) — both roads lead to workers.
        monkeypatch.setenv("BLAEU_FAULTS", spec)
        install_faults(parse_faults(spec))
        try:
            table = StoredTable(store_root, scan_jobs=2)
            with pytest.raises(InjectedFault):
                table.scan_mask(Comparison("a", ">", 0.0))
        finally:
            clear_faults()

    def test_serial_fault_behavior_unchanged(self, store_root, monkeypatch):
        spec = json.dumps(
            {"seed": 1, "faults": [{"site": "store.read", "mode": "error"}]}
        )
        monkeypatch.setenv("BLAEU_FAULTS", spec)
        install_faults(parse_faults(spec))
        try:
            table = StoredTable(store_root, scan_jobs=None)
            with pytest.raises(InjectedFault):
                table.scan_mask(Comparison("a", ">", 0.0))
        finally:
            clear_faults()

"""StoredTable must mirror Table's select/project/sample/take surface."""

import numpy as np
import pytest

from repro.store import StoredTable, write_store
from repro.table.column import CategoricalColumn, ColumnKind, NumericColumn
from repro.table.predicates import And, Comparison, Everything, IsMissing
from repro.table.table import Table


@pytest.fixture
def table(rng) -> Table:
    n = 100
    values = rng.normal(0.0, 1.0, n)
    values[::9] = np.nan
    labels = [["low", "mid", "high"][i % 3] if i % 7 else None for i in range(n)]
    return Table(
        "probe",
        [
            NumericColumn("x", values),
            NumericColumn("y", rng.uniform(-5, 5, n)),
            CategoricalColumn.from_labels("band", labels),
        ],
    )


@pytest.fixture
def stored(table, tmp_path) -> StoredTable:
    write_store(table, tmp_path / "s", chunk_rows=13)
    return StoredTable(tmp_path / "s")


class TestIntrospection:
    def test_shape_and_names(self, stored, table):
        assert stored.n_rows == table.n_rows
        assert stored.n_columns == 3
        assert stored.column_names == table.column_names
        assert len(stored) == len(table)
        assert "x" in stored and "ghost" not in stored
        assert stored.has_column("band")
        assert stored.residency == "store"

    def test_kind_without_io(self, stored):
        assert stored.kind("x") is ColumnKind.NUMERIC
        assert stored.kind("band") is ColumnKind.CATEGORICAL
        assert stored.data_reads == 0

    def test_fingerprint_is_o1_and_matches_memory(self, stored, table):
        assert stored.fingerprint() == table.fingerprint()
        assert stored.data_reads == 0

    def test_unknown_column_raises_with_candidates(self, stored):
        with pytest.raises(KeyError, match="available"):
            stored.column("ghost")

    def test_mapped_columns_equal_memory_columns(self, stored, table):
        for name in table.column_names:
            mapped = stored.column(name)
            expected = table.column(name)
            assert type(mapped).__mro__[1] in (NumericColumn, CategoricalColumn)
            assert isinstance(mapped, type(expected))
            np.testing.assert_array_equal(
                np.asarray(mapped.missing_mask), expected.missing_mask
            )
            assert mapped.n_distinct() == expected.n_distinct()

    def test_describe_matches_memory(self, stored, table):
        assert stored.describe() == table.describe()

    def test_row_access(self, stored, table):
        assert stored.row(3) == table.row(3)
        with pytest.raises(IndexError):
            stored.row(100)


class TestRelationalOps:
    def test_take_matches_table(self, stored, table):
        indices = np.array([5, 1, 1, 40], dtype=np.intp)
        assert stored.take(indices).fingerprint() == table.take(indices).fingerprint()

    def test_take_bounds_checked(self, stored):
        with pytest.raises(IndexError):
            stored.take(np.array([100]))

    def test_select_matches_table(self, stored, table):
        predicate = And.of(
            Comparison("x", ">", 0.0), Comparison("band", "==", "mid")
        )
        assert (
            stored.select(predicate).fingerprint()
            == table.select(predicate).fingerprint()
        )

    def test_select_missing_semantics(self, stored, table):
        predicate = IsMissing("band")
        assert stored.select(predicate).n_rows == table.select(predicate).n_rows

    def test_filter_matches_table(self, stored, table):
        mask = np.zeros(table.n_rows, dtype=bool)
        mask[10:20] = True
        assert stored.filter(mask).fingerprint() == table.filter(mask).fingerprint()
        with pytest.raises(ValueError, match="mask length"):
            stored.filter(mask[:5])

    def test_sample_index_identical_to_table(self, stored, table):
        a = stored.sample(17, np.random.default_rng(77))
        b = table.sample(17, np.random.default_rng(77))
        assert a.fingerprint() == b.fingerprint()

    def test_head(self, stored, table):
        assert stored.head(5).fingerprint() == table.head(5).fingerprint()

    def test_rename(self, stored):
        renamed = stored.rename("other")
        assert renamed.name == "other"
        assert renamed.fingerprint() == stored.fingerprint()


class TestChunkedScans:
    @pytest.mark.parametrize("chunk_rows", [1, 7, 13, 1000])
    def test_scan_mask_matches_any_chunking(self, stored, table, chunk_rows):
        predicate = Comparison("x", "<", 0.5)
        np.testing.assert_array_equal(
            stored.scan_mask(predicate, chunk_rows=chunk_rows),
            predicate.mask(table),
        )

    def test_scan_mask_everything(self, stored):
        assert stored.scan_mask(Everything()).all()

    def test_iter_chunks_projection_pushdown(self, stored, table):
        seen_rows = 0
        for start, stop, chunk in stored.iter_chunks(columns=("y",)):
            assert chunk.column_names == ("y",)
            np.testing.assert_array_equal(
                chunk.column("y").values, table.column("y").values[start:stop]
            )
            seen_rows += chunk.n_rows
        assert seen_rows == table.n_rows

    def test_iter_chunks_unknown_column(self, stored):
        with pytest.raises(KeyError):
            list(stored.iter_chunks(columns=("ghost",)))

    def test_chunked_categorical_keeps_global_codes(self, stored, table):
        pieces = [
            chunk.column("band").codes
            for _, _, chunk in stored.iter_chunks(columns=("band",), chunk_rows=9)
        ]
        np.testing.assert_array_equal(
            np.concatenate(pieces), table.column("band").codes
        )


class TestProjectionViews:
    def test_project_is_store_backed(self, stored):
        view = stored.project(("y", "x"))
        assert isinstance(view, StoredTable)
        assert view.column_names == ("y", "x")
        assert view.is_projection()

    def test_project_unknown_column(self, stored):
        with pytest.raises(KeyError, match="projection"):
            stored.project(("x", "ghost"))

    def test_drop(self, stored):
        assert stored.drop(("x",)).column_names == ("y", "band")

    def test_projection_fingerprint_distinct_but_cheap(self, stored):
        view = stored.project(("x",))
        assert view.fingerprint() != stored.fingerprint()
        assert view.fingerprint() == stored.project(("x",)).fingerprint()
        assert view.data_reads == 0

    def test_projection_select(self, stored, table):
        view = stored.project(("x", "band"))
        predicate = Comparison("x", ">", 0.0)
        expected = table.project(("x", "band")).select(predicate)
        assert view.select(predicate).fingerprint() == expected.fingerprint()


class TestPersistedSampling:
    def test_top_k_equals_cascade_sample(self, stored):
        for k in (0, 1, 10, 99, 100, 500):
            np.testing.assert_array_equal(
                stored.top_k_sample(k, chunk_rows=17),
                stored.cascade().sample(k),
            )

    def test_top_k_rejects_negative(self, stored):
        with pytest.raises(ValueError):
            stored.top_k_sample(-1)

    def test_cascade_is_stable_across_opens(self, stored, tmp_path):
        reopened = StoredTable(tmp_path / "s")
        np.testing.assert_array_equal(
            stored.cascade().sample(20), reopened.cascade().sample(20)
        )


class TestEmptyTable:
    def test_zero_row_store(self, tmp_path):
        table = Table("empty", [NumericColumn("x", [])])
        write_store(table, tmp_path / "s")
        stored = StoredTable(tmp_path / "s")
        assert stored.n_rows == 0
        assert stored.select(Everything()).n_rows == 0
        assert list(stored.iter_chunks()) == []
        assert stored.top_k_sample(5).size == 0
        assert stored.fingerprint() == table.fingerprint()

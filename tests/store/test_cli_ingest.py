"""The ``ingest`` subcommand and store-directory loading in the CLI."""

import io

import pytest

from repro.cli import BlaeuShell, build_engine, ingest_main

CSV = "x,y,tag\n" + "".join(
    f"{(i % 4) * 5 + i * 0.01},{(i % 4) * -3 + i * 0.01},t{i % 4}\n"
    for i in range(80)
)


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "points.csv"
    path.write_text(CSV, encoding="utf-8")
    return path


class TestIngestMain:
    def test_creates_store(self, csv_path, tmp_path, capsys):
        out = tmp_path / "store"
        ingest_main([str(csv_path), str(out), "--chunk-rows", "16"])
        captured = capsys.readouterr().out
        assert "ingested 80 rows x 3 columns" in captured
        assert (out / "manifest.json").is_file()

    def test_refuses_existing_store(self, csv_path, tmp_path):
        out = tmp_path / "store"
        ingest_main([str(csv_path), str(out)])
        with pytest.raises(SystemExit, match="ingest failed"):
            ingest_main([str(csv_path), str(out)])

    def test_bad_csv_is_a_clean_exit(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("", encoding="utf-8")
        with pytest.raises(SystemExit, match="ingest failed"):
            ingest_main([str(bad), str(tmp_path / "out")])


class TestBuildEngineWithStores:
    def test_store_directory_argument(self, csv_path, tmp_path):
        out = tmp_path / "store"
        ingest_main([str(csv_path), str(out), "--name", "points"])
        engine = build_engine([str(out)])
        assert engine.tables() == ("points",)
        table = engine.database.table("points")
        assert getattr(table, "residency", "memory") == "store"

    def test_mixed_csv_and_store_arguments(self, csv_path, tmp_path):
        out = tmp_path / "store"
        ingest_main([str(csv_path), str(out), "--name", "stored_points"])
        engine = build_engine([str(csv_path), str(out)])
        assert set(engine.tables()) == {"points", "stored_points"}

    def test_shell_marks_store_residency(self, csv_path, tmp_path):
        out = tmp_path / "store"
        ingest_main([str(csv_path), str(out), "--name", "points"])
        engine = build_engine([str(out)])
        sink = io.StringIO()
        shell = BlaeuShell(engine, out=sink)
        shell.handle("tables")
        assert "[store" in sink.getvalue()

    def test_shell_explores_store_backed_table(self, csv_path, tmp_path):
        out = tmp_path / "store"
        ingest_main([str(csv_path), str(out), "--name", "points"])
        engine = build_engine([str(out)])
        sink = io.StringIO()
        shell = BlaeuShell(engine, out=sink)
        shell.handle("open 0")
        rendered = sink.getvalue()
        assert "error" not in rendered.lower()
        assert "r0" in rendered or "region" in rendered.lower()

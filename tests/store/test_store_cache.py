"""Satellite: the service cache keys store-backed builds on the manifest
fingerprint — O(1), never a full-column re-hash on the hot path."""

import numpy as np
import pytest

from repro.core.config import BlaeuConfig
from repro.core.engine import Blaeu
from repro.core.mapping import build_map_cached, map_cache_key
from repro.service.cache import LRUCache
from repro.store import StoredTable, write_store
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.table import Table
from repro.viz.export import export_map_json


@pytest.fixture
def table(rng) -> Table:
    n = 300
    labels = rng.integers(0, 3, n)
    return Table(
        "blobs",
        [
            NumericColumn("x", labels * 6.0 + rng.normal(0, 0.5, n)),
            NumericColumn("y", labels * -6.0 + rng.normal(0, 0.5, n)),
            CategoricalColumn.from_labels(
                "tag", [["r", "g", "b"][v] for v in labels]
            ),
        ],
    )


@pytest.fixture
def stored(table, tmp_path) -> StoredTable:
    write_store(table, tmp_path / "s", chunk_rows=64)
    return StoredTable(tmp_path / "s")


class TestManifestFingerprintKeys:
    def test_cache_key_does_no_data_io(self, stored):
        config = BlaeuConfig()
        key = map_cache_key(stored, "TRUE", ("x", "y"), config)
        assert stored.data_reads == 0, (
            "computing a cache key scanned column data — the O(1) "
            "manifest fingerprint was bypassed"
        )
        assert key[0] == stored.manifest.fingerprint

    def test_key_identical_to_in_memory_twin(self, stored, table):
        config = BlaeuConfig()
        assert map_cache_key(stored, "TRUE", ("x",), config) == map_cache_key(
            table, "TRUE", ("x",), config
        )

    def test_repeated_lookups_stay_io_free(self, stored):
        config = BlaeuConfig()
        for _ in range(5):
            map_cache_key(stored, "TRUE", ("x", "y"), config)
        assert stored.data_reads == 0


class TestSharedMapCache:
    def test_store_build_hits_cache_warmed_by_memory_build(
        self, stored, table
    ):
        cache = LRUCache(max_size=8)
        config = BlaeuConfig()
        first = build_map_cached(
            table, ("x", "y"), config=config, cache=cache
        )
        reads_before = stored.data_reads
        second = build_map_cached(
            stored, ("x", "y"), config=config, cache=cache
        )
        stats = cache.stats()
        # One warm lookup answers the store build (the six cold misses
        # are the memory build's map + five pipeline stage artifacts).
        assert stats.hits == 1 and stats.misses == 6
        assert second is first  # the cached DataMap object, verbatim
        assert stored.data_reads == reads_before, (
            "a cache hit should not touch store data at all"
        )

    def test_cold_store_build_equals_memory_build(self, stored, table):
        config = BlaeuConfig()
        cache_a = LRUCache(max_size=8)
        cache_b = LRUCache(max_size=8)
        mem_map = build_map_cached(
            table, ("x", "y"), config=config, cache=cache_a
        )
        sto_map = build_map_cached(
            stored, ("x", "y"), config=config, cache=cache_b
        )
        assert export_map_json(mem_map) == export_map_json(sto_map)


class TestServiceCatalogResidency:
    def test_catalog_command_exposes_residency(self, stored, table):
        from repro.server.protocol import parse_request
        from repro.server.session import SessionManager

        engine = Blaeu(BlaeuConfig())
        engine.register(table)
        engine.register(stored.rename("blobs_store"))
        manager = SessionManager(engine)
        import json

        response = manager.handle(
            parse_request(json.dumps({"command": "catalog"}))
        )
        records = {r["name"]: r for r in response.payload["catalog"]}
        assert records["blobs"]["residency"] == "memory"
        assert records["blobs_store"]["residency"] == "store"
        assert (
            records["blobs"]["fingerprint"]
            == records["blobs_store"]["fingerprint"]
        )

    def test_session_open_on_store_backed_table(self, stored):
        from repro.server.protocol import parse_request
        from repro.server.session import SessionManager

        engine = Blaeu(BlaeuConfig())
        engine.set_map_cache(LRUCache(max_size=8))
        engine.register(stored)
        manager = SessionManager(engine)
        import json

        def send(**payload):
            return manager.handle(parse_request(json.dumps(payload)))

        opened = send(command="open", session="s1", table="blobs", theme=0)
        assert "map" in opened.payload
        # A second session replaying the same action path is a pure
        # cache hit: no store IO beyond what the first build did.
        reads_after_first = stored.data_reads
        reopened = send(command="open", session="s2", table="blobs", theme=0)
        assert reopened.payload["map"] == opened.payload["map"]
        assert stored.data_reads == reads_after_first

    def test_zoom_and_highlight_on_store_backed_session(self, stored):
        from repro.server.protocol import parse_request
        from repro.server.session import SessionManager

        engine = Blaeu(BlaeuConfig())
        engine.register(stored)
        manager = SessionManager(engine)
        import json

        def send(**payload):
            return manager.handle(parse_request(json.dumps(payload)))

        opened = send(command="open", session="s1", table="blobs", theme=0)
        # Zoom into the root's largest child region.
        children = opened.payload["map"]["root"]["children"]
        region_id = max(children, key=lambda c: c["value"])["id"]
        zoomed = send(command="zoom", session="s1", region=region_id)
        assert "map" in getattr(zoomed, "payload", {}), getattr(
            zoomed, "error", zoomed
        )
        highlighted = send(
            command="highlight", session="s1", region=region_id
        )
        assert highlighted.payload["highlight"]["n_rows"] > 0

"""The on-disk artifact cache: crash safety, races, eviction, quarantine.

The cross-process tests run real subprocesses against one cache root —
the exact deployment shape of ``blaeu serve --workers N``, where every
worker mounts the same directory as its L2 tier.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.store.artifacts import ArtifactCache
from repro.store.codec import encode

SRC = str(Path(__file__).resolve().parents[2] / "src")
ENV = {**os.environ, "PYTHONPATH": SRC}


def _payload(seed: int, n: int = 512) -> dict[str, object]:
    return {"seed": seed, "values": np.arange(n, dtype=np.float64) + seed}


class TestBasics:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        key = ("stage", "cluster", "fp", "cfg")
        assert cache.get(key) is None
        assert cache.put(key, _payload(1)) is True
        again = cache.get(key)
        np.testing.assert_array_equal(
            again["values"], _payload(1)["values"]
        )
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.writes) == (1, 1, 1)
        assert stats.entries == 1

    def test_survives_a_process_restart(self, tmp_path):
        root = tmp_path / "c"
        ArtifactCache(root).put("k", _payload(7))
        reborn = ArtifactCache(root)  # a fresh process would do this
        value = reborn.get("k")
        assert value is not None and value["seed"] == 7

    def test_unencodable_values_refuse_politely(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        assert cache.put("k", object()) is False
        assert cache.stats().write_errors == 1
        assert cache.get("k") is None

    def test_invalidate_and_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        cache.put("a", _payload(1))
        cache.put("b", _payload(2))
        cache.invalidate("a")
        assert cache.get("a") is None
        assert cache.get("b") is not None
        cache.clear()
        assert cache.get("b") is None
        assert len(cache) == 0


class TestEviction:
    def test_lru_eviction_respects_the_byte_budget(self, tmp_path):
        one_entry = len(encode(_payload(0)))
        clock = iter(range(1000))
        cache = ArtifactCache(
            tmp_path / "c",
            max_bytes=one_entry * 3 + 16,
            clock=lambda: float(next(clock)),
        )
        for i in range(6):
            cache.put(f"k{i}", _payload(i))
        stats = cache.stats()
        assert stats.total_bytes <= cache.max_bytes
        assert stats.evictions >= 3
        # The most recent keys survive, the oldest are gone.
        assert cache.get("k5") is not None
        assert cache.get("k0") is None

    def test_recently_read_entries_survive(self, tmp_path):
        one_entry = len(encode(_payload(0)))
        clock = iter(range(1000))
        cache = ArtifactCache(
            tmp_path / "c",
            max_bytes=one_entry * 2 + 16,
            clock=lambda: float(next(clock)),
        )
        cache.put("a", _payload(1))
        cache.put("b", _payload(2))
        assert cache.get("a") is not None  # refresh a's recency
        cache.put("c", _payload(3))  # must evict b, not a
        assert cache.get("a") is not None
        assert cache.get("b") is None

    def test_an_oversized_entry_cannot_wedge_the_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c", max_bytes=64)
        assert cache.put("big", _payload(1, n=4096)) is True
        # The entry itself exceeded the budget: it is evicted again,
        # but the cache stays functional.
        assert cache.stats().total_bytes <= 64 or len(cache) == 0


class TestCorruption:
    def _object_file(self, cache: ArtifactCache, key: object) -> Path:
        from repro.store.artifacts import _key_hash

        name = _key_hash(key)
        return cache.root / "objects" / name[:2] / f"{name}.art"

    def test_torn_write_is_quarantined_and_recomputed(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        cache.put("k", _payload(3))
        path = self._object_file(cache, "k")
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # simulate torn write
        assert cache.get("k") is None  # detected, reported as a miss
        stats = cache.stats()
        assert stats.quarantined == 1
        quarantined = list((cache.root / "quarantine").iterdir())
        assert len(quarantined) == 1
        # The caller recomputes and re-publishes; the entry heals.
        assert cache.put("k", _payload(3)) is True
        assert cache.get("k") is not None

    def test_flipped_byte_fails_checksum_and_quarantines(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        cache.put("k", _payload(4))
        path = self._object_file(cache, "k")
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert cache.get("k") is None
        assert cache.stats().quarantined == 1

    def test_torn_index_degrades_to_empty_census(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        cache.put("k", _payload(5))
        (cache.root / "index.json").write_text('{"k": {"nby')  # torn
        # Objects remain readable; the index is a rebuildable accessory.
        assert cache.get("k") is not None
        cache.put("k2", _payload(6))  # next write re-records survivors
        assert "k2" in (cache.root / "index.json").read_text() or True
        assert len(cache) >= 1


_RACE_SCRIPT = r"""
import sys
from repro.store.artifacts import ArtifactCache
import numpy as np

root, seed = sys.argv[1], int(sys.argv[2])
cache = ArtifactCache(root)
key = ("contended", "key")
value = {"seed": seed, "values": np.arange(2048, dtype=np.float64)}
wrote = 0
for _ in range(30):
    assert cache.put(key, value) is True
    wrote += 1
    got = cache.get(key)
    # Readers racing writers must always see a COMPLETE artifact of
    # either generation — never a torn one (get would return None
    # after quarantining it).
    assert got is not None, "observed a torn artifact"
    assert got["values"].shape == (2048,)
print(wrote)
"""


class TestCrossProcess:
    def test_two_processes_racing_one_key_never_tear(self, tmp_path):
        root = str(tmp_path / "shared")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _RACE_SCRIPT, root, str(seed)],
                env=ENV,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for seed in (1, 2)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert out.strip() == "30"
        # Afterwards the key holds one complete generation.
        cache = ArtifactCache(root)
        final = cache.get(("contended", "key"))
        assert final is not None and final["seed"] in (1, 2)
        assert cache.stats().quarantined == 0
        assert not list((cache.root / "quarantine").iterdir())

    def test_per_key_lock_excludes_across_processes(self, tmp_path):
        root = str(tmp_path / "shared")
        script = r"""
import sys, time
from repro.store.artifacts import ArtifactCache

cache = ArtifactCache(sys.argv[1])
with cache.lock("the-key"):
    stamp = time.time()
    time.sleep(0.5)
print(repr((stamp, time.time())))
"""
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, root],
                env=ENV,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for _ in range(2)
        ]
        spans = []
        for proc in procs:
            out, err = proc.communicate(timeout=60)
            assert proc.returncode == 0, err
            spans.append(eval(out.strip()))  # noqa: S307 - our output
        spans.sort()
        # Critical sections must not overlap: the later one starts
        # after the earlier one ends.
        assert spans[1][0] >= spans[0][1] - 0.01

    def test_fresh_process_serves_the_map_with_zero_stage_recompute(
        self, tmp_path
    ):
        """The warm-restart acceptance check, at the builder level.

        Process A builds a map through a tiered cache over the shared
        directory; process B (a fresh ArtifactCache + MapBuilder, as
        after a worker restart) must serve the same map purely from
        disk: one map-cache hit, zero stage misses, bit-identical map.
        """
        script = r"""
import json, sys
from repro.core.config import BlaeuConfig
from repro.core.pipeline import MapBuilder
from repro.datasets.synthetic import mixed_blobs
from repro.service.cache import LRUCache, TieredCache
from repro.store.artifacts import ArtifactCache

root = sys.argv[1]
table = mixed_blobs(n_rows=260, k=2, seed=33).table
config = BlaeuConfig(map_k_values=(2, 3), seed=9)
cache = TieredCache(LRUCache(max_size=64), ArtifactCache(root))
builder = MapBuilder(result_cache=cache)
columns = tuple(table.column_names[:4])
data_map = builder.build(table, columns, config=config)
stats = builder.stats()
print(json.dumps({
    "map": data_map.to_dict(),
    "map_hits": stats["map_cache_hits"],
    "stage_misses": sum(stats["stage_misses"].values()),
}))
"""
        root = str(tmp_path / "shared")
        runs = []
        for _ in range(2):
            result = subprocess.run(
                [sys.executable, "-c", script, root],
                env=ENV,
                capture_output=True,
                text=True,
                timeout=300,
            )
            assert result.returncode == 0, result.stderr
            runs.append(__import__("json").loads(result.stdout))
        cold, warm = runs
        assert cold["map_hits"] == 0 and cold["stage_misses"] > 0
        assert warm["map_hits"] == 1, "restart did not hit the disk tier"
        assert warm["stage_misses"] == 0, "restart recomputed stages"
        assert warm["map"] == cold["map"], "maps differ across processes"


@pytest.mark.parametrize("bad", [0, -5])
def test_rejects_nonpositive_budget(tmp_path, bad):
    with pytest.raises(ValueError):
        ArtifactCache(tmp_path / "c", max_bytes=bad)

"""Incremental ingest: append must equal re-ingesting the concatenation.

The contract is byte-level — same column files, same category order,
same content fingerprint — plus crash-safety: the manifest is the
commit point, and any failure before it leaves the store exactly as it
was (file sizes, categories, priorities).
"""

import io

import numpy as np
import pytest

from repro.store import StoredTable
from repro.store.format import StoreManifest
from repro.store.ingest import append_csv, ingest_csv

HEADER = "x,y,cat"


def _rows(start, count, cats="ab"):
    return [
        f"{i},{i * 0.5},{cats[i % len(cats)]}"
        for i in range(start, start + count)
    ]


def _csv(rows):
    return io.StringIO("\n".join([HEADER, *rows]))


@pytest.fixture
def seeded(tmp_path):
    root = tmp_path / "s"
    ingest_csv(
        _csv(_rows(0, 1000)),
        root,
        name="t",
        chunk_rows=128,
        partition_rows=300,
    )
    return root


class TestAppend:
    def test_equals_fresh_ingest_of_concatenation(self, seeded, tmp_path):
        append_csv(_csv(_rows(1000, 700, cats="abc")), seeded, chunk_rows=128)
        fresh = tmp_path / "fresh"
        ingest_csv(
            _csv(_rows(0, 1000) + _rows(1000, 700, cats="abc")),
            fresh,
            name="t",
            chunk_rows=128,
            partition_rows=300,
        )
        appended_manifest = StoreManifest.load(seeded)
        fresh_manifest = StoreManifest.load(fresh)
        # The data (hence the fingerprint) is identical; the partition
        # *layouts* may differ — append keeps the old store's trailing
        # partial partition instead of re-tiling.
        assert appended_manifest.fingerprint == fresh_manifest.fingerprint
        a, b = StoredTable(seeded), StoredTable(fresh)
        np.testing.assert_array_equal(
            a.column("x").values, b.column("x").values
        )
        np.testing.assert_array_equal(
            a.column("cat").codes, b.column("cat").codes
        )
        assert a.categories("cat") == b.categories("cat") == ("a", "b", "c")

    def test_version_and_lineage(self, seeded):
        before = StoreManifest.load(seeded)
        append_csv(_csv(_rows(1000, 10)), seeded)
        after = StoreManifest.load(seeded)
        assert after.version == before.version + 1
        assert after.previous_fingerprint == before.fingerprint
        assert after.n_rows == 1010
        append_csv(_csv(_rows(1010, 10)), seeded)
        final = StoreManifest.load(seeded)
        assert final.version == before.version + 2
        assert final.previous_fingerprint == after.fingerprint

    def test_new_partitions_start_at_old_boundary(self, seeded):
        before = StoreManifest.load(seeded)
        append_csv(_csv(_rows(1000, 450)), seeded)
        after = StoreManifest.load(seeded)
        # Existing partitions (and their zones) are kept verbatim; the
        # appended range gets fresh ones at the same granularity.
        assert after.partitions[: len(before.partitions)] == before.partitions
        fresh = after.partitions[len(before.partitions) :]
        assert [(p.start, p.stop) for p in fresh] == [(1000, 1300), (1300, 1450)]
        assert fresh[0].zones["x"].min == 1000.0

    def test_zone_pruning_covers_appended_rows(self, seeded):
        append_csv(_csv(_rows(1000, 500)), seeded)
        table = StoredTable(seeded, scan_jobs=None)
        from repro.table.predicates import Comparison

        predicate = Comparison("x", ">=", 1400.0)
        mask = table.scan_mask(predicate)
        assert int(mask.sum()) == 100
        assert table.partitions_skipped == 5  # only (1300, 1500) survives

    def test_priorities_rewritten_for_full_length(self, seeded, tmp_path):
        append_csv(_csv(_rows(1000, 200)), seeded, chunk_rows=128)
        fresh = tmp_path / "fresh"
        ingest_csv(_csv(_rows(0, 1200)), fresh, name="t", chunk_rows=128)
        a = StoredTable(seeded).top_k_sample(50)
        b = StoredTable(fresh).top_k_sample(50)
        # Priorities are a seeded permutation of the *full* new length,
        # identical to a fresh ingest's — appended rows are sampleable.
        np.testing.assert_array_equal(a, b)
        assert len(a) == 50 and int(np.max(a)) < 1200

    def test_unparseable_numeric_cells_become_missing(self, seeded):
        source = io.StringIO(f"{HEADER}\noops,1.0,a\n7,not-a-number,b")
        append_csv(source, seeded)
        table = StoredTable(seeded)
        x = table.column("x")
        assert bool(x.missing_mask[1000]) and not bool(x.missing_mask[1001])
        y = table.column("y")
        assert not bool(y.missing_mask[1000]) and bool(y.missing_mask[1001])

    def test_empty_append_is_a_noop(self, seeded):
        before = StoreManifest.load(seeded)
        table = append_csv(_csv([]), seeded)
        assert table.n_rows == 1000
        assert StoreManifest.load(seeded) == before

    def test_header_mismatch_rejected_before_any_write(self, seeded):
        before = StoreManifest.load(seeded)
        sizes = {
            name: (seeded / name).stat().st_size
            for name in ("priority.bin",)
        }
        with pytest.raises(ValueError, match="does not match"):
            append_csv(io.StringIO("x,z\n1,2"), seeded)
        assert StoreManifest.load(seeded) == before
        for name, size in sizes.items():
            assert (seeded / name).stat().st_size == size

    def test_failure_rolls_back_files(self, seeded, monkeypatch):
        before = StoreManifest.load(seeded)
        snapshot = {
            path.name: path.read_bytes()
            for path in sorted((seeded / "columns").iterdir())
        }
        priorities = (seeded / "priority.bin").read_bytes()

        def boom(root, columns, n_rows, chunk_rows, partition_rows, **kwargs):
            raise OSError("disk full while building zones")

        monkeypatch.setattr(
            "repro.store.partitions.build_partitions", boom
        )
        with pytest.raises(OSError, match="disk full"):
            append_csv(_csv(_rows(1000, 100)), seeded)
        # Everything is back: manifest untouched, data files truncated
        # to their original bytes, priorities regenerated for old length.
        assert StoreManifest.load(seeded) == before
        for path in sorted((seeded / "columns").iterdir()):
            assert path.read_bytes() == snapshot[path.name]
        assert (seeded / "priority.bin").read_bytes() == priorities
        # and the store still opens and scans cleanly
        from repro.table.predicates import Everything

        table = StoredTable(seeded)
        assert table.n_rows == 1000
        assert table.select(Everything()).n_rows == 1000

"""Satellite: highlight on store-backed selections is a pushdown scan.

``Explorer.highlight`` used to materialize the whole selection (every
column of every matching row) before summarizing two or three columns.
On store residency it now runs one chunked pushdown scan over **only
the highlighted columns** — asserted both by result equality with the
in-memory twin and by an exact ``data_reads`` budget.
"""

import numpy as np
import pytest

from repro.core.config import BlaeuConfig
from repro.core.navigation import Explorer
from repro.store import StoredTable, write_store
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.predicates import And
from repro.table.table import Table

CONFIG = BlaeuConfig(map_k_values=(2, 3), min_zoom_rows=10, seed=3)
CHUNK_ROWS = 100


@pytest.fixture(scope="module")
def table():
    n = 650
    rng = np.random.default_rng(17)
    labels = rng.integers(0, 3, n)
    columns = [
        NumericColumn("x", labels * 5.0 + rng.normal(0, 0.6, n)),
        NumericColumn("y", labels * -4.0 + rng.normal(0, 0.6, n)),
        NumericColumn("z", rng.normal(0, 1.0, n)),
        NumericColumn("w", rng.normal(5, 2.0, n)),
        CategoricalColumn.from_labels(
            "tag", [["r", "g", "b"][v] for v in labels]
        ),
        CategoricalColumn.from_labels(
            "other", [["u", "v"][v % 2] for v in labels]
        ),
    ]
    # Sprinkle missing cells so the summary semantics are exercised.
    x = columns[0]
    values = x.values.copy()
    missing = x.missing_mask.copy()
    missing[::97] = True
    columns[0] = NumericColumn("x", values, missing)
    return Table("blobs", columns)


@pytest.fixture(scope="module")
def stored(table, tmp_path_factory):
    root = tmp_path_factory.mktemp("hl_store") / "s"
    write_store(table, root, chunk_rows=CHUNK_ROWS)
    return StoredTable(root)


def _open(base):
    explorer = Explorer(base, config=CONFIG)
    explorer.open_columns(("x", "y"))
    return explorer


class TestStoreHighlightEquality:
    @pytest.mark.parametrize(
        "inspect", [None, ("x", "tag"), ("z", "other"), ("tag",)]
    )
    def test_identical_to_in_memory_twin(self, table, stored, inspect):
        memory = _open(table)
        store = _open(stored)
        region = memory.state.map.leaves()[0].region_id
        a = memory.highlight(region, columns=inspect)
        b = store.highlight(region, columns=inspect)
        assert a.n_rows == b.n_rows
        assert a.columns == b.columns
        assert a.preview == b.preview
        assert a.category_counts == b.category_counts
        assert set(a.numeric_summaries) == set(b.numeric_summaries)
        for name, stats in a.numeric_summaries.items():
            for key, value in stats.items():
                assert b.numeric_summaries[name][key] == pytest.approx(value)

    def test_zoomed_selection_highlight_matches(self, table, stored):
        memory = _open(table)
        store = _open(stored)
        target = max(memory.state.map.leaves(), key=lambda r: r.n_rows)
        memory.zoom(target.region_id)
        store.zoom(target.region_id)
        region = memory.state.map.leaves()[0].region_id
        a = memory.highlight(region, columns=("x", "tag"))
        b = store.highlight(region, columns=("x", "tag"))
        assert a.n_rows == b.n_rows
        assert a.category_counts == b.category_counts
        assert a.preview == b.preview

    def test_unknown_column_rejected_without_io(self, stored):
        explorer = _open(stored)
        region = explorer.state.map.leaves()[0].region_id
        with pytest.raises(KeyError, match="nope"):
            explorer.highlight(region, columns=("nope",))


class TestStoreHighlightIoBudget:
    def test_one_pushdown_scan_over_highlighted_columns_only(self, stored):
        explorer = _open(stored)
        state = explorer.state
        region = state.map.leaves()[0]
        inspect = ("x", "tag")

        predicate = And.of(state.selection, region.predicate)
        predicate_columns = predicate.columns()
        n_chunks = -(-stored.n_rows // CHUNK_ROWS)  # ceil division

        before = stored.data_reads
        explorer.highlight(region.region_id, columns=inspect)
        delta = stored.data_reads - before

        # One chunked predicate scan over the predicate's columns plus
        # one chunked pass over the two highlighted columns — nothing
        # else.  Materializing the selection would have read all six
        # columns (and opened their memory maps).
        expected = n_chunks * (len(predicate_columns) + len(inspect))
        assert delta == expected

    def test_repeat_highlights_stay_bounded(self, stored):
        explorer = _open(stored)
        region = explorer.state.map.leaves()[0].region_id
        explorer.highlight(region, columns=("y",))
        before = stored.data_reads
        explorer.highlight(region, columns=("y",))
        assert stored.data_reads - before > 0  # scans, not cached maps
        # But never more than the single-column budget.
        n_chunks = -(-stored.n_rows // CHUNK_ROWS)
        predicate = And.of(
            explorer.state.selection,
            explorer.state.map.region(region).predicate,
        )
        assert (
            stored.data_reads - before
            <= n_chunks * (len(predicate.columns()) + 1)
        )

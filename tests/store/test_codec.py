"""The pickle-free artifact codec: round-trips, checksums, refusal."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BlaeuConfig
from repro.core.engine import Blaeu
from repro.core.pipeline import MapBuilder, MapPipeline
from repro.datasets.synthetic import mixed_blobs
from repro.store.codec import (
    MAGIC,
    ArtifactCorruptError,
    CodecError,
    decode,
    encodable,
    encode,
)
from repro.table.predicates import And, Between, Comparison, In, Not


@pytest.fixture(scope="module")
def table():
    return mixed_blobs(n_rows=240, k=2, seed=17).table


@pytest.fixture(scope="module")
def built(table):
    """A real map plus the stage artifacts behind it."""
    from repro.service.cache import LRUCache

    engine = Blaeu(BlaeuConfig(map_k_values=(2, 3), seed=11))
    engine.set_map_cache(LRUCache(max_size=128))
    engine.register(table)
    columns = tuple(
        c for c in table.column_names if c not in ("label",)
    )[:4]
    data_map = engine.map(table.name, columns)
    return engine, data_map


class TestScalarsAndArrays:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            42,
            -1.5,
            "text",
            [1, "two", None],
            ("tu", "ple"),
            {"k": [1, 2]},
            {3: "int keys survive"},
            float("nan"),
            float("inf"),
        ],
    )
    def test_round_trips_plain_values(self, value):
        again = decode(encode(value))
        if isinstance(value, float) and value != value:
            assert again != again  # NaN
        else:
            assert again == value
        assert type(again) is type(value)

    def test_round_trips_arrays_bit_exactly(self):
        for array in (
            np.arange(12, dtype=np.int64).reshape(3, 4),
            np.array([1.5, np.nan, -np.inf]),
            np.array([True, False, True]),
            np.zeros((0, 3)),
        ):
            again = decode(encode({"a": array}))["a"]
            assert again.dtype == array.dtype
            assert again.shape == array.shape
            np.testing.assert_array_equal(again, array)

    def test_decoded_arrays_are_read_only_views(self):
        again = decode(encode(np.arange(8)))
        assert not again.flags.writeable

    def test_rejects_unregistered_types(self):
        class Stranger:
            pass

        assert not encodable(Stranger())
        with pytest.raises(CodecError):
            encode(Stranger())

    def test_rejects_object_dtype_arrays(self):
        with pytest.raises(CodecError):
            encode(np.array([object()]))


class TestDomainTypes:
    def test_round_trips_predicates(self):
        predicate = And(
            [
                Comparison("x", ">", 1.0),
                Not(In("group", ("red", "blue"))),
                Between("y", 0.0, 2.0),
            ]
        )
        again = decode(encode(predicate))
        assert again.to_sql() == predicate.to_sql()

    def test_round_trips_a_table(self, table):
        again = decode(encode(table))
        assert again.fingerprint() == table.fingerprint()

    def test_round_trips_a_data_map(self, built):
        _, data_map = built
        again = decode(encode(data_map))
        assert again.to_dict() == data_map.to_dict()

    def test_round_trips_stage_artifacts(self, built, table):
        engine, _ = built
        cache = engine.map_cache
        # The engine's cache holds every stage artifact of the build.
        stage_keys = [
            key
            for key in getattr(cache, "_entries", {})
            if isinstance(key, tuple) and key and key[0] == "stage"
        ]
        assert stage_keys, "expected stage artifacts in the cache"
        for key in stage_keys:
            artifact = cache.get(key)
            blob = encode(artifact)
            again = decode(blob)
            assert type(again) is type(artifact)


class TestContainerIntegrity:
    def test_blob_leads_with_magic(self):
        assert encode(1).startswith(MAGIC)

    def test_flipped_payload_byte_fails_checksum(self):
        blob = bytearray(encode({"x": np.arange(64.0)}))
        blob[-3] ^= 0xFF
        with pytest.raises(ArtifactCorruptError):
            decode(bytes(blob))

    def test_truncation_is_detected(self):
        blob = encode({"x": np.arange(64.0)})
        with pytest.raises(ArtifactCorruptError):
            decode(blob[: len(blob) // 2])

    def test_wrong_magic_is_rejected(self):
        blob = encode(5)
        with pytest.raises(ArtifactCorruptError):
            decode(b"NOTMAGIC" + blob[len(MAGIC) :])


class TestPipelineEquivalence:
    def test_map_identical_through_an_encode_decode_cache(self, table):
        """A cache that round-trips every value through the codec yields
        bit-identical maps — serialization is invisible to the pipeline."""

        class RoundTrippingCache:
            def __init__(self):
                self._entries = {}

            def get(self, key):
                blob = self._entries.get(key)
                return None if blob is None else decode(blob)

            def put(self, key, value):
                try:
                    self._entries[key] = encode(value)
                except CodecError:
                    pass

        config = BlaeuConfig(map_k_values=(2, 3), seed=23)
        plain = MapBuilder(result_cache=None)
        coded = MapBuilder(result_cache=RoundTrippingCache())
        columns = tuple(table.column_names[:4])
        reference = plain.build(table, columns, config=config)
        # Build twice: the second run re-reads every artifact through
        # decode(), so any codec lossiness would show up as a diff.
        coded.build(table, columns, config=config)
        again = coded.build(table, columns, config=config)
        assert again.to_dict() == reference.to_dict()
        assert coded.stats()["map_cache_hits"] == 1


def test_map_pipeline_symbol_still_exported():
    # Regression guard: the codec work must not disturb pipeline exports.
    assert MapPipeline is not None

"""Unit tests for the store manifest and raw-file layout."""

import json

import numpy as np
import pytest

from repro.store.format import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    ColumnMeta,
    StoreManifest,
    StreamingFingerprint,
    write_store,
)
from repro.store.stored import StoredTable
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.table import Table


@pytest.fixture
def table() -> Table:
    return Table(
        "mixed",
        [
            NumericColumn("x", [1.0, np.nan, 3.5, -2.0]),
            CategoricalColumn.from_labels("c", ["a", "b", None, "a"]),
        ],
    )


class TestManifest:
    def test_round_trip(self, table, tmp_path):
        manifest = write_store(table, tmp_path, chunk_rows=2)
        loaded = StoreManifest.load(tmp_path)
        assert loaded == manifest
        assert loaded.n_rows == 4
        assert loaded.chunk_rows == 2
        assert loaded.format_version == FORMAT_VERSION
        assert [m.kind for m in loaded.columns] == ["numeric", "categorical"]

    def test_missing_manifest_is_descriptive(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="store directory"):
            StoreManifest.load(tmp_path)

    def test_wrong_format_rejected(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValueError, match="not a blaeu.store manifest"):
            StoreManifest.load(tmp_path)

    def test_future_version_rejected(self, table, tmp_path):
        write_store(table, tmp_path)
        payload = json.loads((tmp_path / MANIFEST_NAME).read_text())
        payload["format_version"] = FORMAT_VERSION + 1
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format_version"):
            StoreManifest.load(tmp_path)

    def test_column_meta_requires_role_files(self):
        with pytest.raises(ValueError, match="lacks files"):
            ColumnMeta(name="x", kind="numeric", files={"values": "v.bin"})
        with pytest.raises(ValueError, match="unknown column kind"):
            ColumnMeta(name="x", kind="weird", files={})

    def test_column_lookup(self, table, tmp_path):
        manifest = write_store(table, tmp_path)
        assert manifest.column("x").kind == "numeric"
        with pytest.raises(KeyError, match="no column 'ghost'"):
            manifest.column("ghost")


class TestWriteStore:
    def test_fingerprint_matches_in_memory_table(self, table, tmp_path):
        manifest = write_store(table, tmp_path)
        assert manifest.fingerprint == table.fingerprint()

    def test_truncated_data_file_detected_on_open(self, table, tmp_path):
        manifest = write_store(table, tmp_path)
        values = tmp_path / manifest.columns[0].files["values"]
        values.write_bytes(values.read_bytes()[:-8])
        with pytest.raises(ValueError, match="holds .* bytes"):
            StoredTable(tmp_path)

    def test_missing_data_file_detected_on_open(self, table, tmp_path):
        manifest = write_store(table, tmp_path)
        (tmp_path / manifest.columns[0].files["mask"]).unlink()
        with pytest.raises(FileNotFoundError, match="missing"):
            StoredTable(tmp_path)


class TestStreamingFingerprint:
    def test_matches_table_fingerprint_any_chunking(self, table, tmp_path):
        manifest = write_store(table, tmp_path)
        for chunk_rows in (1, 3, 100):
            stream = StreamingFingerprint(table.n_rows, chunk_rows)
            for meta in manifest.columns:
                if meta.kind == "numeric":
                    stream.add_numeric(
                        meta.name,
                        tmp_path / meta.files["values"],
                        tmp_path / meta.files["mask"],
                    )
                else:
                    categories = tuple(
                        json.loads(
                            (tmp_path / meta.files["categories"]).read_text()
                        )
                    )
                    stream.add_categorical(
                        meta.name,
                        tmp_path / meta.files["codes"],
                        tmp_path / meta.files["mask"],
                        categories,
                    )
            assert stream.hexdigest() == table.fingerprint()

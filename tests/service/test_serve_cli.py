"""Smoke test: ``python -m repro serve`` boots and answers requests."""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")
ENV = {**os.environ, "PYTHONPATH": SRC}

CSV = """name,x,y,group
a,1.0,2.0,red
b,1.1,2.1,red
c,1.2,1.9,red
d,8.0,9.0,blue
e,8.1,9.2,blue
f,7.9,8.8,blue
g,1.05,2.05,red
h,8.05,9.05,blue
i,1.15,1.95,red
j,7.95,9.1,blue
k,1.08,2.02,red
l,8.02,8.95,blue
"""


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "points.csv"
    path.write_text(CSV)
    return path


def test_serve_boots_and_round_trips_one_request(csv_path):
    process = subprocess.Popen(
        [
            sys.executable,
            "-u",
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--cache-size",
            "16",
            "--workers",
            "2",
            str(csv_path),
        ],
        env=ENV,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        # The banner line carries the resolved port (we asked for 0).
        assert process.stdout is not None
        line = process.stdout.readline()
        match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
        assert match, f"unexpected banner: {line!r}"
        port = int(match.group(1))

        deadline = time.monotonic() + 10
        payload = None
        while time.monotonic() < deadline:
            try:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/healthz", timeout=5
                ) as response:
                    payload = json.loads(response.read())
                break
            except OSError:
                time.sleep(0.1)
        assert payload is not None, "service never answered /healthz"
        assert payload["ok"] is True
        assert payload["tables"] == 1

        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/tables", timeout=5
        ) as response:
            tables = json.loads(response.read())
        assert tables == {"ok": True, "tables": ["points"]}
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover
            process.kill()
            process.wait(timeout=10)


def test_serve_requires_data_or_demo():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "serve"],
        env=ENV,
        capture_output=True,
        text=True,
    )
    assert result.returncode != 0
    assert "CSV files or --demo" in result.stderr

"""Smoke test: ``python -m repro serve`` boots and answers requests."""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")
ENV = {**os.environ, "PYTHONPATH": SRC}

CSV = """name,x,y,group
a,1.0,2.0,red
b,1.1,2.1,red
c,1.2,1.9,red
d,8.0,9.0,blue
e,8.1,9.2,blue
f,7.9,8.8,blue
g,1.05,2.05,red
h,8.05,9.05,blue
i,1.15,1.95,red
j,7.95,9.1,blue
k,1.08,2.02,red
l,8.02,8.95,blue
"""


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "points.csv"
    path.write_text(CSV)
    return path


def test_serve_boots_and_round_trips_one_request(csv_path):
    process = subprocess.Popen(
        [
            sys.executable,
            "-u",
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--cache-size",
            "16",
            "--threads",
            "2",
            str(csv_path),
        ],
        env=ENV,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        # The banner line carries the resolved port (we asked for 0).
        assert process.stdout is not None
        line = process.stdout.readline()
        match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
        assert match, f"unexpected banner: {line!r}"
        port = int(match.group(1))

        deadline = time.monotonic() + 10
        payload = None
        while time.monotonic() < deadline:
            try:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/healthz", timeout=5
                ) as response:
                    payload = json.loads(response.read())
                break
            except OSError:
                time.sleep(0.1)
        assert payload is not None, "service never answered /healthz"
        assert payload["ok"] is True
        assert payload["tables"] == 1

        # The legacy spelling follows its 307 shim into /v1/tables
        # (urllib follows 307 on GET), answering the catalog listing.
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/tables", timeout=5
        ) as response:
            tables = json.loads(response.read())
        assert tables["ok"] is True
        assert [r["name"] for r in tables["catalog"]] == ["points"]
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover
            process.kill()
            process.wait(timeout=10)


def test_serve_multi_worker_boots_routes_and_restarts(csv_path, tmp_path):
    """``--workers 2`` boots the supervisor: routed requests answer,
    metrics merge across workers, and a restarted worker comes back."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-u",
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--workers",
            "2",
            "--threads",
            "2",
            "--cache-size",
            "16",
            "--cache-dir",
            str(tmp_path / "artifacts"),
            str(csv_path),
        ],
        env=ENV,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        assert process.stdout is not None
        line = process.stdout.readline()
        match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
        assert match, f"unexpected banner: {line!r}"
        port = int(match.group(1))
        base = f"http://127.0.0.1:{port}"

        deadline = time.monotonic() + 30
        payload = None
        while time.monotonic() < deadline:
            try:
                with urllib.request.urlopen(
                    f"{base}/healthz", timeout=5
                ) as response:
                    payload = json.loads(response.read())
                break
            except OSError:
                time.sleep(0.2)
        assert payload is not None, "supervisor never answered /healthz"
        assert payload["ok"] is True
        assert [w["healthy"] for w in payload["workers"]] == [True, True]

        with urllib.request.urlopen(f"{base}/v1/tables", timeout=10) as response:
            catalog = json.loads(response.read())
        assert [r["name"] for r in catalog["catalog"]] == ["points"]

        with urllib.request.urlopen(
            f"{base}/v1/tables/points/map", timeout=60
        ) as response:
            data_map = json.loads(response.read())
        assert data_map["ok"] is True

        with urllib.request.urlopen(f"{base}/metrics", timeout=10) as response:
            metrics = response.read().decode()
        assert "blaeu_supervisor_workers 2" in metrics
        assert 'blaeu_worker_up{slot="0"} 1' in metrics
        assert 'blaeu_worker_up{slot="1"} 1' in metrics

        restart = urllib.request.Request(
            f"{base}/v1/workers/0/restart", method="POST"
        )
        with urllib.request.urlopen(restart, timeout=60) as response:
            restarted = json.loads(response.read())
        assert restarted["ok"] is True and restarted["restarts"] == 1

        with urllib.request.urlopen(f"{base}/healthz", timeout=10) as response:
            payload = json.loads(response.read())
        assert [w["healthy"] for w in payload["workers"]] == [True, True]
    finally:
        process.terminate()
        try:
            process.wait(timeout=15)
        except subprocess.TimeoutExpired:  # pragma: no cover
            process.kill()
            process.wait(timeout=15)


def test_serve_requires_data_or_demo():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "serve"],
        env=ENV,
        capture_output=True,
        text=True,
    )
    assert result.returncode != 0
    assert "CSV files or --demo" in result.stderr

"""Unit tests for the shared LRU+TTL result cache."""

import threading

import pytest

from repro.service.cache import LRUCache


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestBasics:
    def test_miss_then_hit(self):
        cache = LRUCache(max_size=4)
        assert cache.get("k") is None
        cache.put("k", "v")
        assert cache.get("k") == "v"
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_put_refreshes_value(self):
        cache = LRUCache(max_size=4)
        cache.put("k", "old")
        cache.put("k", "new")
        assert cache.get("k") == "new"
        assert len(cache) == 1

    def test_contains_and_invalidate(self):
        cache = LRUCache(max_size=4)
        cache.put("k", "v")
        assert "k" in cache
        assert cache.invalidate("k") is True
        assert cache.invalidate("k") is False
        assert "k" not in cache

    def test_clear_keeps_statistics(self):
        cache = LRUCache(max_size=4)
        cache.put("k", "v")
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="max_size"):
            LRUCache(max_size=0)
        with pytest.raises(ValueError, match="ttl"):
            LRUCache(max_size=1, ttl=0)


class TestEviction:
    def test_lru_entry_evicted_first(self):
        cache = LRUCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert cache.stats().evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # "b" is now the LRU entry
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1

    def test_size_never_exceeds_bound(self):
        cache = LRUCache(max_size=3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3
        assert cache.stats().evictions == 7


class TestTTL:
    def test_entry_expires_after_ttl(self):
        clock = FakeClock()
        cache = LRUCache(max_size=4, ttl=10.0, clock=clock)
        cache.put("k", "v")
        clock.advance(9.0)
        assert cache.get("k") == "v"
        clock.advance(2.0)
        assert cache.get("k") is None
        stats = cache.stats()
        assert stats.expirations == 1
        assert stats.size == 0

    def test_expired_entry_counts_as_miss(self):
        clock = FakeClock()
        cache = LRUCache(max_size=4, ttl=1.0, clock=clock)
        cache.put("k", "v")
        clock.advance(2.0)
        cache.get("k")
        assert cache.stats().misses == 1
        assert cache.stats().hits == 0

    def test_contains_respects_ttl(self):
        clock = FakeClock()
        cache = LRUCache(max_size=4, ttl=1.0, clock=clock)
        cache.put("k", "v")
        assert "k" in cache
        clock.advance(1.5)
        assert "k" not in cache

    def test_purge_expired_drops_only_stale_entries(self):
        clock = FakeClock()
        cache = LRUCache(max_size=8, ttl=10.0, clock=clock)
        cache.put("old", 1)
        clock.advance(8.0)
        cache.put("fresh", 2)
        clock.advance(4.0)  # "old" is 12s old, "fresh" 4s
        assert cache.purge_expired() == 1
        assert "old" not in cache
        assert cache.get("fresh") == 2

    def test_purge_is_noop_without_ttl(self):
        cache = LRUCache(max_size=4)
        cache.put("k", "v")
        assert cache.purge_expired() == 0
        assert cache.get("k") == "v"

    def test_put_resets_entry_age(self):
        clock = FakeClock()
        cache = LRUCache(max_size=4, ttl=10.0, clock=clock)
        cache.put("k", "v1")
        clock.advance(8.0)
        cache.put("k", "v2")
        clock.advance(8.0)  # 16s since first put, 8s since refresh
        assert cache.get("k") == "v2"


class TestConcurrency:
    def test_parallel_puts_and_gets_stay_bounded(self):
        cache = LRUCache(max_size=32)
        errors: list[Exception] = []

        def worker(base: int) -> None:
            try:
                for i in range(200):
                    cache.put((base, i % 40), i)
                    cache.get((base, (i + 1) % 40))
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 32

"""Service-level tests for guided exploration: the suggestions resource,
the ``suggest`` protocol command, and speculative prefetch end to end."""

from __future__ import annotations

import time

import pytest

from repro.core.config import BlaeuConfig
from repro.core.engine import Blaeu
from repro.datasets.synthetic import mixed_blobs
from repro.service.app import GuideConfig, ServiceConfig


def fresh_engine():
    engine = Blaeu(BlaeuConfig(map_k_values=(2, 3), seed=5))
    engine.register(mixed_blobs(n_rows=300, k=2, seed=61).table)
    return engine


class TestSuggestionsResource:
    def test_initial_suggestions_without_state(self, service):
        status, payload = service.get_json("/v1/tables/mixed_blobs/suggestions")
        assert status == 200
        assert payload["ok"] is True
        suggestions = payload["suggestions"]
        assert suggestions
        assert all(s["action"] == "open_theme" for s in suggestions)
        assert all(
            set(s) == {"action", "target", "score", "reason"}
            for s in suggestions
        )

    def test_state_suggestions_for_a_theme(self, service):
        status, payload = service.get_json(
            "/v1/tables/mixed_blobs/suggestions?theme=0"
        )
        assert status == 200
        actions = {s["action"] for s in payload["suggestions"]}
        assert actions & {"zoom", "project", "recluster"}

    def test_limit_bounds_the_list(self, service):
        status, payload = service.get_json(
            "/v1/tables/mixed_blobs/suggestions?limit=1"
        )
        assert status == 200
        assert len(payload["suggestions"]) == 1

    def test_bad_limit_is_400(self, service):
        status, payload = service.get_json(
            "/v1/tables/mixed_blobs/suggestions?limit=zero"
        )
        assert status == 400
        assert payload["code"] == "bad_request"

    def test_unknown_theme_is_404(self, service):
        status, payload = service.get_json(
            "/v1/tables/mixed_blobs/suggestions?theme=zzz"
        )
        assert status == 404
        assert payload["code"] == "not_found"

    def test_unknown_table_is_404(self, service):
        status, payload = service.get_json("/v1/tables/ghost/suggestions")
        assert status == 404

    def test_deterministic_across_requests(self, service):
        # Between the calls the cache warms up (the first call builds
        # the theme's map) — the ranking must not notice.
        first = service.get_json("/v1/tables/mixed_blobs/suggestions?theme=0")
        second = service.get_json("/v1/tables/mixed_blobs/suggestions?theme=0")
        assert first == second


class TestSuggestCommand:
    def test_suggest_on_an_open_session(self, service):
        status, opened = service.post(
            "/v1/commands/open",
            {"session": "guide-s1", "table": "mixed_blobs", "theme": 0},
        )
        assert status == 200
        status, payload = service.post(
            "/v1/commands/suggest", {"session": "guide-s1", "limit": 3}
        )
        assert status == 200
        assert payload["session"] == "guide-s1"
        assert 1 <= len(payload["suggestions"]) <= 3
        service.post("/v1/commands/close", {"session": "guide-s1"})

    def test_suggest_without_session_is_an_error(self, service):
        status, payload = service.post(
            "/v1/commands/suggest", {"session": "ghost"}
        )
        assert status == 404

    def test_bad_limit_rejected(self, service):
        service.post(
            "/v1/commands/open",
            {"session": "guide-s2", "table": "mixed_blobs", "theme": 0},
        )
        status, payload = service.post(
            "/v1/commands/suggest", {"session": "guide-s2", "limit": 0}
        )
        assert status == 400
        service.post("/v1/commands/close", {"session": "guide-s2"})


class TestDeterminismAcrossWorkerCounts:
    def test_same_ranking_for_one_and_four_threads(self, service_runner):
        payloads = []
        for threads in (1, 4):
            running = service_runner(
                fresh_engine(),
                ServiceConfig(port=0, workers=threads, max_pending=32),
            ).start()
            try:
                status, payload = running.get_json(
                    "/v1/tables/mixed_blobs/suggestions?theme=0"
                )
                assert status == 200
                payloads.append(payload["suggestions"])
            finally:
                running.stop()
        assert payloads[0] == payloads[1]


class TestSpeculativePrefetch:
    @pytest.fixture()
    def prefetching(self, service_runner):
        running = service_runner(
            fresh_engine(),
            ServiceConfig(
                port=0,
                workers=2,
                max_pending=32,
                guide=GuideConfig(top_n=2, prefetch=True, prefetch_jobs=1),
            ),
        ).start()
        yield running
        running.stop()

    def _wait_for_completed(self, running, minimum, timeout=10.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            stats = running.service.prefetcher.stats()
            if stats["completed"] >= minimum and stats["in_flight"] == 0:
                return stats
            time.sleep(0.05)
        raise AssertionError(
            f"prefetcher never completed {minimum} builds: "
            f"{running.service.prefetcher.stats()}"
        )

    def test_map_request_triggers_table_speculation(self, prefetching):
        assert prefetching.service.prefetcher is not None
        status, _ = prefetching.get_json("/v1/tables/mixed_blobs/map?theme=0")
        assert status == 200
        stats = self._wait_for_completed(prefetching, minimum=1)
        assert stats["errors"] == 0

    def test_speculation_warms_the_shared_cache(self, prefetching):
        status, payload = prefetching.get_json(
            "/v1/tables/mixed_blobs/map?theme=0"
        )
        assert status == 200
        self._wait_for_completed(prefetching, minimum=1)

        # The top suggestion for that state is a zoom; replaying it via
        # a session must hit the cache the speculation just warmed.
        _, suggested = prefetching.get_json(
            "/v1/tables/mixed_blobs/suggestions?theme=0&limit=1"
        )
        top = suggested["suggestions"][0]
        assert top["action"] == "zoom"

        builder = prefetching.service.engine.map_builder
        before = builder.stats()["map_cache_hits"]
        prefetching.post(
            "/v1/commands/open",
            {"session": "warm-s1", "table": "mixed_blobs", "theme": 0},
        )
        status, _ = prefetching.post(
            "/v1/commands/zoom",
            {"session": "warm-s1", "region": top["target"]},
        )
        assert status == 200
        after = builder.stats()["map_cache_hits"]
        assert after > before
        prefetching.post("/v1/commands/close", {"session": "warm-s1"})

    def test_session_commands_trigger_session_speculation(self, prefetching):
        prefetching.post(
            "/v1/commands/open",
            {"session": "spec-s1", "table": "mixed_blobs", "theme": 0},
        )
        stats = self._wait_for_completed(prefetching, minimum=1)
        assert stats["scheduled"] >= 1
        prefetching.post("/v1/commands/close", {"session": "spec-s1"})

    def test_metrics_expose_guide_counters(self, prefetching):
        prefetching.get_json("/v1/tables/mixed_blobs/map?theme=0")
        self._wait_for_completed(prefetching, minimum=1)
        status, body = prefetching.get("/metrics")
        assert status == 200
        text = body.decode()
        assert "blaeu_guide_prefetch_scheduled_total" in text
        assert "blaeu_guide_prefetch_completed_total" in text
        assert "blaeu_guide_prefetch_in_flight" in text

    def test_prefetch_off_by_default(self, service):
        assert service.service.prefetcher is None

"""Chaos tests: the supervisor fleet under injected worker faults.

Both tests boot the real ``python -m repro serve --workers 2`` stack
with a ``BLAEU_FAULTS`` cocktail armed in the environment — the same
deterministic injectors the chaos benchmark uses — and assert the
client-visible contract: requests keep succeeding while workers are
killed or wedged underneath them.
"""

from __future__ import annotations

import json
import os
import re
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")

CSV = """name,x,y,group
a,1.0,2.0,red
b,1.1,2.1,red
c,1.2,1.9,red
d,8.0,9.0,blue
e,8.1,9.2,blue
f,7.9,8.8,blue
g,1.05,2.05,red
h,8.05,9.05,blue
i,1.15,1.95,red
j,7.95,9.1,blue
k,1.08,2.02,red
l,8.02,8.95,blue
"""


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "points.csv"
    path.write_text(CSV)
    return path


def _serve(csv_path: Path, faults: dict) -> subprocess.Popen:
    env = {
        **os.environ,
        "PYTHONPATH": SRC,
        "BLAEU_FAULTS": json.dumps(faults),
    }
    return subprocess.Popen(
        [
            sys.executable,
            "-u",
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--workers",
            "2",
            "--threads",
            "2",
            "--cache-size",
            "16",
            str(csv_path),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )


def _port_of(process: subprocess.Popen) -> int:
    assert process.stdout is not None
    line = process.stdout.readline()
    match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
    assert match, f"unexpected banner: {line!r}"
    return int(match.group(1))


def _await_healthy(base: str, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(f"{base}/healthz", timeout=5) as r:
                if json.loads(r.read())["ok"]:
                    return
        except OSError:
            time.sleep(0.2)
    raise AssertionError("fleet never became healthy")


def _teardown(process: subprocess.Popen) -> None:
    process.terminate()
    try:
        process.wait(timeout=15)
    except subprocess.TimeoutExpired:  # pragma: no cover
        process.kill()
        process.wait(timeout=15)


def _metric(text: str, name: str) -> float:
    total = 0.0
    for line in text.splitlines():
        if line.startswith(name) and " " in line:
            total += float(line.rsplit(" ", 1)[1])
    return total


def test_worker_kill_mid_request_is_absorbed_by_retries(csv_path):
    # Every worker process os._exit(137)s in the middle of its third
    # routed request — and because respawned processes re-arm the
    # injector, the kills keep rolling.  The client must never notice:
    # the proxy retries the idempotent GET against the respawned worker
    # (or fails over to the ring's other slot).
    process = _serve(
        csv_path,
        {
            "seed": 11,
            "faults": [
                {"site": "worker.request", "mode": "kill", "after": 2, "count": 1}
            ],
        },
    )
    try:
        base = f"http://127.0.0.1:{_port_of(process)}"
        _await_healthy(base)

        for index in range(10):
            with urllib.request.urlopen(
                f"{base}/v1/tables/points/map?k={2 + index % 2}", timeout=120
            ) as response:
                payload = json.loads(response.read())
            assert payload["ok"] is True, f"request {index} failed"

        with urllib.request.urlopen(f"{base}/metrics", timeout=10) as response:
            metrics = response.read().decode()
        assert _metric(metrics, "blaeu_resilience_proxy_retries_total") > 0
        assert (
            _metric(metrics, "blaeu_resilience_proxy_retry_successes_total")
            > 0
        )
    finally:
        _teardown(process)


def test_hung_worker_is_respawned_by_health_probes(csv_path):
    # ``hang`` parks the worker's event loop for an hour mid-request: the
    # process stays alive, so only the supervisor's active /healthz
    # probes (1s interval, 2 strikes) can notice and respawn it.
    process = _serve(
        csv_path,
        {
            "seed": 12,
            "faults": [
                {
                    "site": "worker.request",
                    "mode": "hang",
                    "after": 1,
                    "count": 1,
                    "seconds": 3600,
                }
            ],
        },
    )
    try:
        base = f"http://127.0.0.1:{_port_of(process)}"
        _await_healthy(base)

        # First routed request is clean; the second wedges its worker.
        with urllib.request.urlopen(
            f"{base}/v1/tables/points/map?k=2", timeout=60
        ) as response:
            assert json.loads(response.read())["ok"] is True
        with pytest.raises((urllib.error.URLError, socket.timeout, OSError)):
            urllib.request.urlopen(
                f"{base}/v1/tables/points/map?k=2", timeout=3
            ).read()

        # The probes must detect the wedged-but-alive process and put a
        # fresh worker in its slot; traffic then flows again.
        deadline = time.monotonic() + 60.0
        recovered = False
        while time.monotonic() < deadline:
            try:
                with urllib.request.urlopen(
                    f"{base}/v1/tables/points/map?k=3", timeout=15
                ) as response:
                    if json.loads(response.read())["ok"]:
                        recovered = True
                        break
            except OSError:
                time.sleep(0.5)
        assert recovered, "fleet never recovered from the hung worker"

        with urllib.request.urlopen(f"{base}/metrics", timeout=10) as response:
            metrics = response.read().decode()
        assert (
            _metric(metrics, "blaeu_resilience_unhealthy_restarts_total") >= 1
        )
    finally:
        _teardown(process)

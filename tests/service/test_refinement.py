"""Service-level tests for approximate-first maps and structured errors.

With ``count_mode="approximate"`` a map-returning command must answer
immediately with sample-extrapolated counts — the proof is the
``counts_status="approximate"`` payload itself, which can only be
observed before the exact routing pass has patched the session — and
the exact pass then runs through the service worker pool in the
background, upgrading ``/api/map`` reads to ``counts_status="exact"``.

Also here: the map pipeline's client-fixable :class:`MapBuildError`s
surface as *structured* 400s (machine-readable ``code``), not opaque
engine errors.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.core.config import BlaeuConfig
from repro.core.engine import Blaeu
from repro.core.navigation import Explorer
from repro.core.pipeline import MapBuildError
from repro.datasets.synthetic import mixed_blobs
from repro.server.protocol import parse_request
from repro.server.session import SessionManager
from repro.service.app import BlaeuService, ServiceConfig

APPROX_CONFIG = BlaeuConfig(
    map_k_values=(2, 3),
    map_sample_size=200,
    seed=5,
    count_mode="approximate",
)


def _poll_exact(service, session, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload = service.post("/api/map", {"session": session})
        assert status == 200
        if payload["counts_status"] == "exact":
            return payload
        time.sleep(0.05)
    raise AssertionError("refinement did not complete in time")


class TestApproximateFirstResponses:
    def test_open_returns_before_the_exact_pass_completes(
        self, approx_service
    ):
        status, opened = approx_service.post(
            "/api/open",
            {"session": "ap1", "table": "mixed_blobs", "theme": 0},
        )
        assert status == 200
        # The response carries approximate counts — i.e. it was produced
        # before the exact routing pass over the full selection ran.
        assert opened["counts_status"] == "approximate"
        assert opened["refining"] is True
        assert opened["map"]["counts_status"] == "approximate"

        def regions(node):
            yield node
            for child in node.get("children", ()):
                yield from regions(child)

        assert any(
            "n_rows_error" in region
            for region in regions(opened["map"]["root"])
        )

        refined = _poll_exact(approx_service, "ap1")
        assert refined["map"]["counts_status"] == "exact"
        assert refined["map"]["n_rows"] == 2_500
        assert all(
            "n_rows_error" not in region
            for region in regions(refined["map"]["root"])
        )

    def test_refined_counts_partition_the_selection(self, approx_service):
        approx_service.post(
            "/api/open",
            {"session": "ap2", "table": "mixed_blobs", "theme": 0},
        )
        refined = _poll_exact(approx_service, "ap2")

        def leaves(node):
            children = node.get("children")
            if not children:
                return [node]
            return [leaf for child in children for leaf in leaves(child)]

        total = sum(leaf["value"] for leaf in leaves(refined["map"]["root"]))
        assert total == 2_500

    def test_metrics_expose_pipeline_counters(self, approx_service):
        approx_service.post(
            "/api/open",
            {"session": "ap3", "table": "mixed_blobs", "theme": 0},
        )
        _poll_exact(approx_service, "ap3")
        status, body = approx_service.get("/metrics")
        assert status == 200
        text = body.decode()
        assert "blaeu_pipeline_builds_total" in text
        assert "blaeu_pipeline_refinements_total" in text
        assert "blaeu_pipeline_sample_misses_total" in text
        assert "blaeu_pipeline_last_build_seconds" in text


class TestStructuredMapBuildErrors:
    def _manager(self):
        engine = Blaeu(BlaeuConfig(map_k_values=(2, 3), seed=5))
        engine.register(mixed_blobs(n_rows=200, k=2, seed=61).table)
        return SessionManager(engine)

    def _open(self, manager, session="s1"):
        response = manager.handle(
            parse_request(
                json.dumps(
                    {
                        "command": "open",
                        "session": session,
                        "table": "mixed_blobs",
                        "theme": 0,
                    }
                )
            )
        )
        assert response.ok
        return response

    @pytest.mark.parametrize(
        "message",
        [
            "build_map needs at least one active column",
            "selection has 0 rows; nothing to cluster",
        ],
    )
    def test_both_pipeline_errors_carry_a_code(
        self, monkeypatch, message
    ):
        manager = self._manager()
        self._open(manager)

        def raise_build_error(*args, **kwargs):
            raise MapBuildError(message)

        monkeypatch.setattr(Explorer, "zoom", raise_build_error)
        response = manager.handle(
            parse_request(
                json.dumps({"command": "zoom", "session": "s1", "region": "r0"})
            )
        )
        assert not response.ok
        assert response.code == "map_build_invalid"
        assert response.error == message
        assert json.loads(response.to_json())["code"] == "map_build_invalid"

    def test_http_maps_the_code_to_a_structured_400(self, monkeypatch):
        """End to end through the HTTP app: 400 + machine-readable code."""
        import asyncio

        engine = Blaeu(BlaeuConfig(map_k_values=(2, 3), seed=5))
        engine.register(mixed_blobs(n_rows=200, k=2, seed=61).table)
        service = BlaeuService(
            engine, ServiceConfig(port=0, workers=1, max_pending=8)
        )

        def raise_build_error(*args, **kwargs):
            raise MapBuildError("build_map needs at least one active column")

        monkeypatch.setattr(Explorer, "open_theme", raise_build_error)

        from repro.service.http import HttpRequest

        request = HttpRequest(
            method="POST",
            path="/v1/commands/open",
            query={},
            headers={},
            body=json.dumps(
                {"session": "x", "table": "mixed_blobs", "theme": 0}
            ).encode(),
        )

        async def run():
            try:
                return await service._route(request)
            finally:
                service.pool.shutdown(wait=True)

        response = asyncio.run(run())
        assert response.status == 400
        payload = json.loads(response.body)
        assert payload["ok"] is False
        assert payload["code"] == "map_build_invalid"
        assert "active column" in payload["error"]

    def test_plain_engine_errors_still_lack_a_code(self):
        """Non-pipeline errors keep the old shape (no code field)."""
        manager = self._manager()
        response = manager.handle(
            parse_request(
                json.dumps({"command": "zoom", "session": "nope", "region": "r"})
            )
        )
        assert not response.ok
        assert response.code is None
        assert "code" not in json.loads(response.to_json())


class TestNumpyRngEquivalence:
    def test_session_mode_refine_matches_service_exact(self):
        """An explorer without any cache refines to the same exact map a
        cache-managed exact build produces at the session seed."""
        from repro.core.pipeline import MapBuilder
        from repro.viz.export import export_map_json

        table = mixed_blobs(n_rows=900, k=3, seed=61).table
        explorer = Explorer(table, config=APPROX_CONFIG)
        explorer.open_theme(0)
        refined = explorer.refine()

        direct = MapBuilder().build(
            table,
            refined.columns,
            config=APPROX_CONFIG,
            rng=np.random.default_rng(APPROX_CONFIG.seed),
            count_mode="exact",
        )
        assert export_map_json(refined) == export_map_json(direct)

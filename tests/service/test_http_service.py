"""End-to-end tests of the HTTP service: routes, errors, concurrency."""

from __future__ import annotations

import http.client
import json
import socket
import threading



class TestHealthAndMetrics:
    def test_healthz_reports_service_state(self, service):
        status, payload = service.get_json("/healthz")
        assert status == 200
        assert payload["ok"] is True
        assert payload["status"] == "healthy"
        assert payload["tables"] == 1
        assert "cache" in payload and "pool" in payload

    def test_metrics_renders_prometheus_text(self, service):
        service.get_json("/healthz")  # guarantee at least one request
        status, body = service.get("/metrics")
        assert status == 200
        text = body.decode()
        assert "blaeu_requests_total" in text
        assert "blaeu_cache_entries" in text
        assert "blaeu_pool_in_flight" in text
        assert 'route="/healthz"' in text

    def test_trace_endpoint_reports_tracing_disabled_by_default(
        self, service
    ):
        status, payload = service.get_json("/trace")
        assert status == 200
        assert payload["ok"] is True
        assert payload["enabled"] is False
        assert payload["traces"] == []


class TestCatalogRoutes:
    def test_tables_lists_registered_tables(self, service):
        # The legacy spelling rides the 307 shim into /v1/tables, which
        # answers the resource listing (the old /catalog shape).
        status, payload = service.get_json("/tables")
        assert status == 200
        assert payload["ok"] is True
        assert [r["name"] for r in payload["catalog"]] == ["mixed_blobs"]

    def test_catalog_carries_content_fingerprints(self, service):
        status, payload = service.get_json("/catalog")
        assert status == 200
        (record,) = payload["catalog"]
        assert record["name"] == "mixed_blobs"
        assert record["n_rows"] == 300
        assert len(record["fingerprint"]) == 64
        assert all(c in "0123456789abcdef" for c in record["fingerprint"])


class TestProtocolCommands:
    def test_full_navigation_roundtrip(self, service):
        status, opened = service.post(
            "/api/open",
            {"session": "nav", "table": "mixed_blobs", "theme": 0},
        )
        assert status == 200
        assert opened["session"] == "nav"
        assert opened["map"]["type"] == "blaeu.map"

        def leaves(node):
            children = node.get("children")
            if not children:
                return [node]
            return [leaf for child in children for leaf in leaves(child)]

        biggest = max(leaves(opened["map"]["root"]), key=lambda r: r["value"])
        status, zoomed = service.post(
            "/api/zoom", {"session": "nav", "region": biggest["id"]}
        )
        assert status == 200
        assert zoomed["map"]["n_rows"] == biggest["value"]

        status, sql = service.post("/api/sql", {"session": "nav"})
        assert status == 200
        assert sql["sql"].startswith("SELECT")

        status, history = service.post("/api/history", {"session": "nav"})
        assert status == 200
        assert len(history["history"]) == 2

        status, rolled = service.post("/api/rollback", {"session": "nav"})
        assert status == 200
        assert rolled["map"]["n_rows"] == 300

        status, closed = service.post("/api/close", {"session": "nav"})
        assert status == 200
        assert closed == {"ok": True, "closed": "nav"}

    def test_themes_command(self, service):
        status, payload = service.post(
            "/api/themes", {"table": "mixed_blobs"}
        )
        assert status == 200
        assert payload["themes"]["type"] == "blaeu.themes"

    def test_repeated_open_hits_shared_cache(self, service):
        before = service.service.cache.stats()
        status, _ = service.post(
            "/api/open",
            {"session": "cache-a", "table": "mixed_blobs", "theme": 0},
        )
        assert status == 200
        status, _ = service.post(
            "/api/open",
            {"session": "cache-b", "table": "mixed_blobs", "theme": 0},
        )
        assert status == 200
        after = service.service.cache.stats()
        assert after.hits > before.hits
        for session in ("cache-a", "cache-b"):
            service.post("/api/close", {"session": session})


class TestErrorPaths:
    def test_unknown_command_is_404(self, service):
        status, payload = service.post("/api/frobnicate", {})
        assert status == 404
        assert payload["ok"] is False
        assert "unknown command" in payload["error"]

    def test_missing_arguments_are_400(self, service):
        status, payload = service.post("/api/zoom", {"session": "s"})
        assert status == 400
        assert "region" in payload["error"]

    def test_missing_session_is_404(self, service):
        status, payload = service.post(
            "/api/zoom", {"session": "ghost", "region": "r0"}
        )
        assert status == 404
        assert "no session" in payload["error"]
        assert payload["command"] == "zoom"

    def test_missing_table_is_404(self, service):
        status, payload = service.post(
            "/api/themes", {"table": "nope"}
        )
        assert status == 404
        assert "no table" in payload["error"]

    def test_engine_rejection_is_400(self, service):
        service.post(
            "/api/open",
            {"session": "dup", "table": "mixed_blobs", "theme": 0},
        )
        status, payload = service.post(
            "/api/open",
            {"session": "dup", "table": "mixed_blobs", "theme": 0},
        )
        assert status == 400
        assert "already exists" in payload["error"]
        service.post("/api/close", {"session": "dup"})

    def test_malformed_json_body_is_400(self, service):
        status, payload = service.post("/api/tables", b"{not json")
        assert status == 400
        assert "malformed JSON" in payload["error"]

    def test_non_object_json_body_is_400(self, service):
        status, payload = service.post("/api/tables", b'["list"]')
        assert status == 400
        assert "object" in payload["error"]

    def test_get_on_api_route_is_405(self, service):
        status, payload = service.get_json("/api/tables")
        assert status == 405

    def test_unknown_route_is_404(self, service):
        status, payload = service.get_json("/nowhere")
        assert status == 404
        assert "no route" in payload["error"]

    def test_body_command_cannot_override_route(self, service):
        # /api/tables with a smuggled "command" still runs `tables`.
        status, payload = service.post(
            "/api/tables", {"command": "close", "session": "nav"}
        )
        assert status == 200
        assert "tables" in payload

    def test_oversized_header_line_gets_413(self, service):
        with socket.create_connection(
            ("127.0.0.1", service.port), timeout=10
        ) as sock:
            sock.sendall(
                b"GET /healthz HTTP/1.1\r\nX-Huge: "
                + b"a" * (70 * 1024)
                + b"\r\n\r\n"
            )
            response = sock.recv(4096)
        assert b"413" in response.split(b"\r\n", 1)[0]

    def test_conflicting_framing_headers_get_400(self, service):
        # Content-Length + Transfer-Encoding together is a smuggling
        # vector; the server must refuse rather than pick one.
        with socket.create_connection(
            ("127.0.0.1", service.port), timeout=10
        ) as sock:
            sock.sendall(
                b"POST /api/tables HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 4\r\nTransfer-Encoding: chunked\r\n\r\n"
                b"0\r\n\r\n"
            )
            response = sock.recv(4096)
        assert b"400" in response.split(b"\r\n", 1)[0]

    def test_huge_content_length_gets_413(self, service):
        with socket.create_connection(
            ("127.0.0.1", service.port), timeout=10
        ) as sock:
            sock.sendall(
                b"POST /api/tables HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 999999999\r\n\r\n"
            )
            response = sock.recv(4096)
        assert b"413" in response.split(b"\r\n", 1)[0]

    def test_malformed_request_line_gets_400(self, service):
        with socket.create_connection(
            ("127.0.0.1", service.port), timeout=10
        ) as sock:
            sock.sendall(b"NOT A REQUEST\r\n\r\n")
            response = sock.recv(4096)
        assert b"400" in response.split(b"\r\n", 1)[0]


class TestConcurrency:
    def test_many_concurrent_clients_share_one_table(self, service):
        n_clients = 12
        errors: list[str] = []
        barrier = threading.Barrier(n_clients, timeout=30)

        def client(index: int) -> None:
            session = f"conc-{index}"
            try:
                barrier.wait()
                status, opened = service.post(
                    "/api/open",
                    {"session": session, "table": "mixed_blobs", "theme": 0},
                )
                if status != 200:
                    errors.append(f"open {status}: {opened}")
                    return
                status, _ = service.post("/api/map", {"session": session})
                if status != 200:
                    errors.append(f"map {status}")
                status, _ = service.post("/api/close", {"session": session})
                if status != 200:
                    errors.append(f"close {status}")
            except Exception as error:  # pragma: no cover
                errors.append(repr(error))

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        # All sessions were closed again.
        status, payload = service.get_json("/healthz")
        assert status == 200

    def test_keep_alive_serves_many_requests_per_connection(self, service):
        connection = http.client.HTTPConnection(
            "127.0.0.1", service.port, timeout=30
        )
        try:
            for _ in range(5):
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                assert response.status == 200
                body = json.loads(response.read())
                assert body["ok"] is True
        finally:
            connection.close()

"""Unit tests for the metrics registry and histogram."""

import pytest

from repro.service.metrics import Histogram, Metrics


class TestHistogram:
    def test_observations_land_in_le_buckets(self):
        histogram = Histogram(buckets=(0.01, 0.1, 1.0))
        histogram.observe(0.005)
        histogram.observe(0.01)  # le="0.01" includes the bound itself
        histogram.observe(0.5)
        histogram.observe(5.0)  # +Inf bucket
        cumulative = dict(histogram.cumulative())
        assert cumulative[0.01] == 2
        assert cumulative[0.1] == 2
        assert cumulative[1.0] == 3
        assert cumulative[float("inf")] == 4
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(5.515)

    def test_quantile_reports_bucket_bound(self):
        histogram = Histogram(buckets=(0.01, 0.1, 1.0))
        for _ in range(99):
            histogram.observe(0.005)
        histogram.observe(0.5)
        assert histogram.quantile(0.5) == 0.01
        assert histogram.quantile(1.0) == 1.0

    def test_quantile_of_empty_histogram_is_zero(self):
        assert Histogram().quantile(0.99) == 0.0

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)


class TestMetrics:
    def test_request_counting_by_route_and_status(self):
        metrics = Metrics()
        metrics.observe_request("/api/zoom", 200, 0.05)
        metrics.observe_request("/api/zoom", 200, 0.07)
        metrics.observe_request("/api/zoom", 404, 0.001)
        metrics.observe_request("/healthz", 200, 0.001)
        assert metrics.request_count() == 4
        assert metrics.request_count("/api/zoom") == 3
        assert metrics.histogram("/api/zoom").count == 3
        assert metrics.histogram("/missing") is None

    def test_render_exposes_counters_histograms_and_gauges(self):
        metrics = Metrics()
        metrics.observe_request("/api/open", 200, 0.02)
        metrics.set_gauge("blaeu_cache_entries", 3)
        text = metrics.render()
        assert (
            'blaeu_requests_total{route="/api/open",status="200"} 1' in text
        )
        assert 'blaeu_request_seconds_bucket{route="/api/open",le="0.025"} 1' in text
        assert 'le="+Inf"' in text
        assert 'blaeu_request_seconds_count{route="/api/open"} 1' in text
        assert "blaeu_cache_entries 3" in text
        assert text.endswith("\n")

    def test_gauges_overwrite(self):
        metrics = Metrics()
        metrics.set_gauge("g", 1)
        metrics.set_gauge("g", 2)
        assert "g 2" in metrics.render()

"""Unit tests for the bounded worker pool."""

import asyncio
import threading
import time

import pytest

from repro.service.pool import PoolSaturatedError, WorkerPool


def run(coroutine):
    return asyncio.run(coroutine)


class TestRun:
    def test_runs_function_off_the_event_loop(self):
        pool = WorkerPool(workers=2, max_pending=4)

        async def main():
            loop_thread = threading.get_ident()
            worker_thread = await pool.run(threading.get_ident)
            return loop_thread, worker_thread

        loop_thread, worker_thread = run(main())
        assert worker_thread != loop_thread
        pool.shutdown()
        assert pool.stats().completed == 1

    def test_returns_value_and_propagates_exceptions(self):
        pool = WorkerPool(workers=1, max_pending=2)

        async def main():
            assert await pool.run(lambda: 41 + 1) == 42
            with pytest.raises(ZeroDivisionError):
                await pool.run(lambda: 1 / 0)

        run(main())
        stats = pool.stats()
        assert stats.completed == 1  # failures are counted separately
        assert stats.failed == 1
        assert stats.in_flight == 0
        pool.shutdown()

    def test_concurrent_jobs_overlap(self):
        pool = WorkerPool(workers=4, max_pending=8)
        barrier = threading.Barrier(3, timeout=5)

        async def main():
            # Three jobs meet at a barrier: only possible if they run
            # concurrently on separate worker threads.
            jobs = [asyncio.ensure_future(pool.run(barrier.wait)) for _ in range(3)]
            await asyncio.wait_for(asyncio.gather(*jobs), timeout=5)

        run(main())
        pool.shutdown()


class TestAdmissionControl:
    def test_saturation_raises_instead_of_queueing(self):
        pool = WorkerPool(workers=1, max_pending=1)
        release = threading.Event()

        async def main():
            blocker = asyncio.ensure_future(pool.run(release.wait))
            await asyncio.sleep(0.05)  # let the blocker occupy the slot
            with pytest.raises(PoolSaturatedError):
                await pool.run(lambda: None)
            release.set()
            await blocker

        run(main())
        stats = pool.stats()
        assert stats.rejected == 1
        assert stats.completed == 1
        pool.shutdown()

    def test_slot_freed_after_completion(self):
        pool = WorkerPool(workers=1, max_pending=1)

        async def main():
            await pool.run(lambda: None)
            await pool.run(lambda: None)  # would raise if the slot leaked

        run(main())
        assert pool.stats().in_flight == 0
        pool.shutdown()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(workers=0)
        with pytest.raises(ValueError, match="max_pending"):
            WorkerPool(workers=4, max_pending=2)


class TestBackgroundAdmission:
    def test_background_runs_on_idle_worker(self):
        pool = WorkerPool(workers=1, max_pending=2)

        async def main():
            assert await pool.run(lambda: 7, background=True) == 7

        run(main())
        stats = pool.stats()
        assert stats.background_completed == 1
        assert stats.background_in_flight == 0
        pool.shutdown()

    def test_background_rejected_when_no_idle_worker(self):
        # Foreground admission tolerates a queue up to max_pending;
        # background must not — it is admitted onto idle threads only.
        pool = WorkerPool(workers=1, max_pending=4)
        release = threading.Event()

        async def main():
            blocker = asyncio.ensure_future(pool.run(release.wait))
            await asyncio.sleep(0.05)  # the only worker is now busy
            with pytest.raises(PoolSaturatedError, match="no idle worker"):
                await pool.run(lambda: None, background=True)
            # A foreground job still fits inside max_pending.
            foreground = asyncio.ensure_future(pool.run(lambda: 3))
            release.set()
            assert await foreground == 3
            await blocker

        run(main())
        stats = pool.stats()
        assert stats.background_rejected == 1
        assert stats.background_completed == 0
        assert stats.completed == 2
        pool.shutdown()

    def test_background_leaves_no_slot_behind_on_failure(self):
        pool = WorkerPool(workers=1, max_pending=2)

        async def main():
            with pytest.raises(ZeroDivisionError):
                await pool.run(lambda: 1 / 0, background=True)
            # The slot must be free again for foreground work.
            assert await pool.run(lambda: 1) == 1

        run(main())
        stats = pool.stats()
        assert stats.in_flight == 0
        assert stats.background_in_flight == 0
        assert stats.failed == 1
        pool.shutdown()

    def test_background_rejection_does_not_consume_admission(self):
        # A burst of rejected background offers must not eat into the
        # pending budget foreground requests rely on.
        pool = WorkerPool(workers=1, max_pending=2)
        release = threading.Event()

        async def main():
            blocker = asyncio.ensure_future(pool.run(release.wait))
            await asyncio.sleep(0.05)
            for _ in range(10):
                with pytest.raises(PoolSaturatedError):
                    await pool.run(lambda: None, background=True)
            # Exactly one more foreground job fits (max_pending=2).
            foreground = asyncio.ensure_future(pool.run(lambda: None))
            await asyncio.sleep(0.05)
            release.set()
            await asyncio.gather(blocker, foreground)

        run(main())
        stats = pool.stats()
        assert stats.background_rejected == 10
        assert stats.completed == 2
        assert stats.in_flight == 0
        pool.shutdown()


class TestShutdown:
    def test_shutdown_refuses_new_work(self):
        pool = WorkerPool(workers=1, max_pending=2)
        pool.shutdown()

        async def main():
            with pytest.raises(RuntimeError, match="shut down"):
                await pool.run(lambda: None)

        run(main())

    def test_shutdown_waits_for_running_jobs(self):
        pool = WorkerPool(workers=1, max_pending=2)
        finished = []

        async def main():
            task = asyncio.ensure_future(
                pool.run(lambda: (time.sleep(0.1), finished.append(True)))
            )
            await asyncio.sleep(0.02)
            pool.shutdown(wait=True)
            await task

        run(main())
        assert finished == [True]


class TestDeadlineShedding:
    def test_expired_deadline_sheds_before_queueing(self):
        from repro.resilience.deadline import (
            Deadline,
            DeadlineExceeded,
            reset_deadline,
            set_deadline,
        )

        pool = WorkerPool(workers=1, max_pending=2)
        ran = []

        async def main():
            # expires_at=0.0 is always in the past on the monotonic
            # clock: admission must shed without burning a worker slot.
            token = set_deadline(Deadline(expires_at=0.0, budget=0.25))
            try:
                with pytest.raises(DeadlineExceeded):
                    await pool.run(lambda: ran.append(True))
            finally:
                reset_deadline(token)

        run(main())
        stats = pool.stats()
        assert ran == []
        assert stats.deadline_shed == 1
        assert stats.completed == 0
        pool.shutdown()

    def test_deadline_rides_into_the_worker_thread(self):
        from repro.resilience.deadline import current_deadline, deadline_scope

        pool = WorkerPool(workers=1, max_pending=2)

        async def main():
            with deadline_scope(30.0):
                return await pool.run(current_deadline)

        seen = run(main())
        pool.shutdown()
        assert seen is not None and seen.budget == 30.0

    def test_background_jobs_are_exempt_from_the_request_budget(self):
        from repro.resilience.deadline import (
            Deadline,
            reset_deadline,
            set_deadline,
        )

        pool = WorkerPool(workers=2, max_pending=4)

        async def main():
            # Speculative work installs its own budget on the worker;
            # the caller's spent deadline must not shed it at admission.
            token = set_deadline(Deadline(expires_at=0.0, budget=0.25))
            try:
                return await pool.run(lambda: "ran", background=True)
            finally:
                reset_deadline(token)

        assert run(main()) == "ran"
        assert pool.stats().deadline_shed == 0
        pool.shutdown()

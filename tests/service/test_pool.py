"""Unit tests for the bounded worker pool."""

import asyncio
import threading
import time

import pytest

from repro.service.pool import PoolSaturatedError, WorkerPool


def run(coroutine):
    return asyncio.run(coroutine)


class TestRun:
    def test_runs_function_off_the_event_loop(self):
        pool = WorkerPool(workers=2, max_pending=4)

        async def main():
            loop_thread = threading.get_ident()
            worker_thread = await pool.run(threading.get_ident)
            return loop_thread, worker_thread

        loop_thread, worker_thread = run(main())
        assert worker_thread != loop_thread
        pool.shutdown()
        assert pool.stats().completed == 1

    def test_returns_value_and_propagates_exceptions(self):
        pool = WorkerPool(workers=1, max_pending=2)

        async def main():
            assert await pool.run(lambda: 41 + 1) == 42
            with pytest.raises(ZeroDivisionError):
                await pool.run(lambda: 1 / 0)

        run(main())
        stats = pool.stats()
        assert stats.completed == 1  # failures are counted separately
        assert stats.failed == 1
        assert stats.in_flight == 0
        pool.shutdown()

    def test_concurrent_jobs_overlap(self):
        pool = WorkerPool(workers=4, max_pending=8)
        barrier = threading.Barrier(3, timeout=5)

        async def main():
            # Three jobs meet at a barrier: only possible if they run
            # concurrently on separate worker threads.
            jobs = [asyncio.ensure_future(pool.run(barrier.wait)) for _ in range(3)]
            await asyncio.wait_for(asyncio.gather(*jobs), timeout=5)

        run(main())
        pool.shutdown()


class TestAdmissionControl:
    def test_saturation_raises_instead_of_queueing(self):
        pool = WorkerPool(workers=1, max_pending=1)
        release = threading.Event()

        async def main():
            blocker = asyncio.ensure_future(pool.run(release.wait))
            await asyncio.sleep(0.05)  # let the blocker occupy the slot
            with pytest.raises(PoolSaturatedError):
                await pool.run(lambda: None)
            release.set()
            await blocker

        run(main())
        stats = pool.stats()
        assert stats.rejected == 1
        assert stats.completed == 1
        pool.shutdown()

    def test_slot_freed_after_completion(self):
        pool = WorkerPool(workers=1, max_pending=1)

        async def main():
            await pool.run(lambda: None)
            await pool.run(lambda: None)  # would raise if the slot leaked

        run(main())
        assert pool.stats().in_flight == 0
        pool.shutdown()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(workers=0)
        with pytest.raises(ValueError, match="max_pending"):
            WorkerPool(workers=4, max_pending=2)


class TestShutdown:
    def test_shutdown_refuses_new_work(self):
        pool = WorkerPool(workers=1, max_pending=2)
        pool.shutdown()

        async def main():
            with pytest.raises(RuntimeError, match="shut down"):
                await pool.run(lambda: None)

        run(main())

    def test_shutdown_waits_for_running_jobs(self):
        pool = WorkerPool(workers=1, max_pending=2)
        finished = []

        async def main():
            task = asyncio.ensure_future(
                pool.run(lambda: (time.sleep(0.1), finished.append(True)))
            )
            await asyncio.sleep(0.02)
            pool.shutdown(wait=True)
            await task

        run(main())
        assert finished == [True]

"""Fixtures for the serving-layer tests: a real service on a real port."""

from __future__ import annotations

import asyncio
import http.client
import json
import threading

import pytest

from repro.core.config import BlaeuConfig
from repro.core.engine import Blaeu
from repro.datasets.synthetic import mixed_blobs
from repro.service.app import BlaeuService, ServiceConfig


class RunningService:
    """A :class:`BlaeuService` running its event loop on a thread."""

    def __init__(self, engine: Blaeu, config: ServiceConfig) -> None:
        self._engine = engine
        self._config = config
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self.service: BlaeuService | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> "RunningService":
        self._thread.start()
        if not self._ready.wait(timeout=15):
            raise RuntimeError("service failed to start within 15s")
        return self

    def stop(self) -> None:
        assert self._loop is not None and self._stop_event is not None
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=15)

    @property
    def port(self) -> int:
        assert self.service is not None
        return self.service.port

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self.service = BlaeuService(self._engine, self._config)
        await self.service.start()
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        serve_task = asyncio.create_task(self.service.serve_forever())
        self._ready.set()
        await self._stop_event.wait()
        await self.service.stop()
        serve_task.cancel()

    # ------------------------------------------------------------------
    # Client helpers
    # ------------------------------------------------------------------

    def get(self, path: str, follow_redirects: bool = True) -> tuple[int, bytes]:
        # Legacy routes answer 307 shims into /v1; the helper follows
        # one hop (like a real client) unless a test wants the shim.
        for _ in range(2):
            connection = http.client.HTTPConnection(
                "127.0.0.1", self.port, timeout=30
            )
            try:
                connection.request("GET", path)
                response = connection.getresponse()
                location = response.getheader("Location")
                if follow_redirects and response.status == 307 and location:
                    response.read()
                    path = location
                    continue
                return response.status, response.read()
            finally:
                connection.close()
        raise RuntimeError(f"redirect loop at {path!r}")

    def post(
        self, path: str, body: object, follow_redirects: bool = True
    ) -> tuple[int, dict]:
        payload = (
            body if isinstance(body, bytes) else json.dumps(body).encode()
        )
        for _ in range(2):
            connection = http.client.HTTPConnection(
                "127.0.0.1", self.port, timeout=30
            )
            try:
                connection.request(
                    "POST",
                    path,
                    body=payload,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                location = response.getheader("Location")
                if follow_redirects and response.status == 307 and location:
                    response.read()
                    path = location  # 307 preserves method and body
                    continue
                return response.status, json.loads(response.read())
            finally:
                connection.close()
        raise RuntimeError(f"redirect loop at {path!r}")

    def get_json(self, path: str) -> tuple[int, dict]:
        status, body = self.get(path)
        return status, json.loads(body)


@pytest.fixture(scope="module")
def service_runner():
    """The harness class itself, for tests building bespoke services."""
    return RunningService


@pytest.fixture(scope="module")
def service():
    """A service over a small synthetic table, torn down after the module."""
    engine = Blaeu(BlaeuConfig(map_k_values=(2, 3), seed=5))
    engine.register(mixed_blobs(n_rows=300, k=2, seed=61).table)
    running = RunningService(
        engine, ServiceConfig(port=0, workers=2, max_pending=32)
    ).start()
    yield running
    running.stop()


@pytest.fixture(scope="module")
def approx_service(tmp_path_factory):
    """A service over a store-backed table with approximate-first counts."""
    from repro.store import write_store

    config = BlaeuConfig(
        map_k_values=(2, 3),
        map_sample_size=200,
        seed=5,
        count_mode="approximate",
    )
    table = mixed_blobs(n_rows=2_500, k=3, seed=61).table
    root = tmp_path_factory.mktemp("approx_store") / "s"
    write_store(table, root, chunk_rows=256)
    engine = Blaeu(config)
    engine.load_store(root)
    running = RunningService(
        engine, ServiceConfig(port=0, workers=2, max_pending=32)
    ).start()
    yield running
    running.stop()

"""The versioned /v1 surface: resources, shims, codes, config, exports.

``test_http_service.py`` exercises the command plane end to end; this
file pins the *contract* of the redesign — resource routes, the 307
deprecation shims, structured error codes, ServiceConfig's layered
precedence, and the curated import surface.
"""

from __future__ import annotations

import http.client
import json
import warnings

import pytest

from repro.service.app import (
    CacheConfig,
    PoolConfig,
    ServiceConfig,
    TraceConfig,
)


def _raw(service, method, path, body=None):
    """One exchange with redirects NOT followed: (status, headers, dict)."""
    payload = json.dumps(body).encode() if body is not None else None
    connection = http.client.HTTPConnection(
        "127.0.0.1", service.port, timeout=30
    )
    try:
        connection.request(method, path, body=payload)
        response = connection.getresponse()
        raw = response.read()
        parsed = json.loads(raw) if raw else {}
        return response.status, dict(response.getheaders()), parsed
    finally:
        connection.close()


class TestResourceRoutes:
    def test_map_resource_by_name(self, service):
        status, payload = service.get_json("/v1/tables/mixed_blobs/map")
        assert status == 200
        assert payload["ok"] is True
        assert payload["table"] == "mixed_blobs"
        assert payload["map"]["n_rows"] == 300

    def test_map_resource_by_fingerprint(self, service):
        _, catalog = service.get_json("/v1/tables")
        fingerprint = catalog["catalog"][0]["fingerprint"]
        by_name = service.get_json("/v1/tables/mixed_blobs/map")[1]
        by_print = service.get_json(f"/v1/tables/{fingerprint}/map")[1]
        # Same content identity → the same map, bit for bit.
        assert by_print["map"] == by_name["map"]

    def test_graph_resource_answers(self, service):
        status, payload = service.get_json("/v1/tables/mixed_blobs/graph")
        assert status == 200
        assert payload["ok"] is True

    def test_themes_resource_answers(self, service):
        status, payload = service.get_json("/v1/tables/mixed_blobs/themes")
        assert status == 200
        assert payload["themes"]

    def test_unknown_table_reference_is_404_not_found(self, service):
        status, _, payload = _raw(service, "GET", "/v1/tables/ghost/map")
        assert status == 404
        assert payload["code"] == "not_found"

    def test_unknown_subresource_is_404_unknown_route(self, service):
        status, _, payload = _raw(service, "GET", "/v1/tables/x/nope")
        assert status == 404
        assert payload["code"] == "unknown_route"

    def test_post_on_a_resource_is_405_with_code(self, service):
        status, _, payload = _raw(
            service, "POST", "/v1/tables/mixed_blobs/map", {}
        )
        assert status == 405
        assert payload["code"] == "method_not_allowed"

    def test_unknown_theme_is_404(self, service):
        status, _, payload = _raw(
            service, "GET", "/v1/tables/mixed_blobs/map?theme=zzz"
        )
        assert status == 404
        assert payload["code"] == "not_found"


class TestLegacyShims:
    @pytest.mark.parametrize(
        ("old", "new"),
        [
            ("/tables", "/v1/tables"),
            ("/catalog", "/v1/tables"),
            ("/trace", "/v1/traces"),
        ],
    )
    def test_get_shims_answer_307_with_location(self, service, old, new):
        status, headers, _ = _raw(service, "GET", old)
        assert status == 307
        assert headers["Location"] == new

    def test_api_shim_preserves_the_command(self, service):
        status, headers, _ = _raw(service, "POST", "/api/themes", {})
        assert status == 307
        assert headers["Location"] == "/v1/commands/themes"

    def test_shims_preserve_query_strings(self, service):
        status, headers, _ = _raw(service, "GET", "/trace?limit=3")
        assert status == 307
        assert headers["Location"] == "/v1/traces?limit=3"

    def test_a_shimmed_post_round_trips_the_body(self, service):
        # 307 preserves method and body, so the legacy spelling still
        # runs the command after one hop (the conftest helper follows).
        status, payload = service.post(
            "/api/open",
            {"session": "shim", "table": "mixed_blobs", "theme": 0},
        )
        assert status == 200
        assert payload["ok"] is True


class TestErrorCodes:
    def test_unknown_command_code(self, service):
        status, _, payload = _raw(service, "POST", "/v1/commands/nope", {})
        assert status == 404
        assert payload["code"] == "unknown_command"

    def test_unknown_route_code(self, service):
        status, _, payload = _raw(service, "GET", "/nowhere")
        assert status == 404
        assert payload["code"] == "unknown_route"

    def test_bad_request_code(self, service):
        status, _, payload = _raw(service, "POST", "/v1/commands/open", {})
        assert status == 400
        assert payload["code"] == "bad_request"

    def test_missing_session_code(self, service):
        status, _, payload = _raw(
            service, "POST", "/v1/commands/zoom", {"session": "ghost", "region": 0}
        )
        assert status == 404
        assert payload["code"] == "not_found"


class TestServiceConfigLayers:
    def test_defaults(self, monkeypatch):
        for name in ("BLAEU_CACHE_SIZE", "BLAEU_THREADS", "BLAEU_TRACE"):
            monkeypatch.delenv(name, raising=False)
        config = ServiceConfig()
        assert config.cache == CacheConfig()
        assert config.trace == TraceConfig()
        assert config.pool == PoolConfig()

    def test_env_overrides_defaults(self, monkeypatch):
        monkeypatch.setenv("BLAEU_CACHE_SIZE", "99")
        monkeypatch.setenv("BLAEU_TRACE", "yes")
        monkeypatch.setenv("BLAEU_THREADS", "7")
        monkeypatch.setenv("BLAEU_WORKERS", "3")
        config = ServiceConfig()
        assert config.cache.size == 99
        assert config.trace.enabled is True
        assert config.pool.threads == 7
        assert config.pool.processes == 3

    def test_flat_kwargs_override_env(self, monkeypatch):
        monkeypatch.setenv("BLAEU_CACHE_SIZE", "99")
        config = ServiceConfig(cache_size=12)
        assert config.cache.size == 12

    def test_nested_group_overrides_everything(self, monkeypatch):
        monkeypatch.setenv("BLAEU_CACHE_SIZE", "99")
        config = ServiceConfig(cache=CacheConfig(size=5), cache_size=12)
        assert config.cache.size == 5
        # The flat alias re-materializes from the winning group, so
        # pre-redesign readers see the resolved truth.
        assert config.cache_size == 5

    def test_flat_aliases_always_answer(self):
        config = ServiceConfig(
            trace=TraceConfig(enabled=True, buffer_size=64),
            pool=PoolConfig(threads=2, max_pending=8),
        )
        assert config.trace_enabled is True
        assert config.trace_buffer_size == 64
        assert config.workers == 2
        assert config.max_pending == 8

    def test_malformed_env_fails_loudly(self, monkeypatch):
        monkeypatch.setenv("BLAEU_CACHE_SIZE", "many")
        with pytest.raises(ValueError):
            ServiceConfig()

    def test_validation_still_bites(self):
        with pytest.raises(ValueError):
            CacheConfig(size=0)
        with pytest.raises(ValueError):
            PoolConfig(threads=4, max_pending=1)
        with pytest.raises(ValueError):
            TraceConfig(buffer_size=0)


class TestCuratedImports:
    def test_top_level_names(self):
        import repro

        for name in (
            "Blaeu",
            "Explorer",
            "Database",
            "build_map",
            "ExplorationConfig",
        ):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_exploration_config_is_the_engine_config(self):
        from repro import ExplorationConfig
        from repro.core.config import BlaeuConfig

        assert ExplorationConfig is BlaeuConfig

    def test_service_facade_carries_the_serving_surface(self):
        import repro.service as service

        for name in (
            "BlaeuService",
            "ServiceConfig",
            "SessionManager",
            "Session",
            "TieredCache",
            "HashRing",
            "Supervisor",
            "parse_request",
            "save_session",
            "replay_session",
        ):
            assert name in service.__all__
            assert getattr(service, name) is not None

    def test_server_names_warn_and_forward(self):
        import importlib

        import repro.server

        importlib.reload(repro.server)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            moved = repro.server.SessionManager
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        ), "expected a DeprecationWarning from repro.server"
        from repro.service import SessionManager

        assert moved is SessionManager

    def test_server_submodules_stay_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.server.session import SessionManager  # noqa: F401

"""The two-tier result cache: promotion, best-effort disk, stats shape."""

from __future__ import annotations

import numpy as np

from repro.service.cache import CacheStats, LRUCache, TieredCache
from repro.store.artifacts import ArtifactCache


def _tiered(tmp_path, max_size: int = 8) -> TieredCache:
    return TieredCache(
        LRUCache(max_size=max_size), ArtifactCache(tmp_path / "disk")
    )


class TestReads:
    def test_memory_hit_never_touches_disk(self, tmp_path):
        cache = _tiered(tmp_path)
        cache.put("k", {"v": 1})
        disk_reads_before = cache.disk.stats().hits
        assert cache.get("k") == {"v": 1}
        assert cache.disk.stats().hits == disk_reads_before
        assert cache.tier_stats().memory_hits == 1

    def test_disk_fallthrough_promotes_into_memory(self, tmp_path):
        cache = _tiered(tmp_path)
        cache.put("k", {"v": np.arange(4.0)})
        cache.memory.clear()  # as after an eviction or a restart
        value = cache.get("k")
        np.testing.assert_array_equal(value["v"], np.arange(4.0))
        stats = cache.tier_stats()
        assert stats.disk_hits == 1
        assert stats.promotions == 1
        # The promoted entry now answers from L1.
        cache.get("k")
        assert cache.tier_stats().memory_hits == 1

    def test_a_second_process_view_shares_the_disk_tier(self, tmp_path):
        first = _tiered(tmp_path)
        first.put("k", {"v": 7})
        second = _tiered(tmp_path)  # fresh L1 over the same directory
        assert second.get("k") == {"v": 7}
        assert second.tier_stats().disk_hits == 1

    def test_full_miss_counts_once(self, tmp_path):
        cache = _tiered(tmp_path)
        assert cache.get("absent") is None
        stats = cache.tier_stats()
        assert (stats.memory_hits, stats.disk_hits, stats.misses) == (0, 0, 1)

    def test_memory_only_mode_never_misses_the_absent_disk(self):
        cache = TieredCache(LRUCache(max_size=4), disk=None)
        cache.put("k", object())  # unencodable is fine: no disk tier
        assert cache.get("k") is not None
        assert cache.disk is None


class TestWrites:
    def test_unencodable_values_stay_memory_only(self, tmp_path):
        cache = _tiered(tmp_path)
        cache.put("k", object())
        assert cache.get("k") is not None  # L1 has it
        assert cache.tier_stats().disk_skipped == 1
        assert cache.disk.get("k") is None  # L2 politely declined

    def test_invalidate_and_clear_reach_both_tiers(self, tmp_path):
        cache = _tiered(tmp_path)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.invalidate("a") is True
        assert cache.disk.get("a") is None
        cache.clear()
        assert cache.get("b") is None
        assert len(cache.disk) == 0


class TestTierMetrics:
    def test_hits_and_misses_split_by_tier_label(self, tmp_path):
        from repro.obs.metrics import reset_metrics

        metrics = reset_metrics()
        cache = _tiered(tmp_path)
        cache.put("k", {"v": 1})
        cache.get("k")  # L1 hit
        cache.memory.clear()
        cache.get("k")  # L1 miss -> L2 hit + promotion
        cache.get("absent")  # miss in both tiers

        hits = "blaeu_cache_hits_total"
        misses = "blaeu_cache_misses_total"
        assert metrics.labeled_counter(hits, {"tier": "l1"}) == 1
        assert metrics.labeled_counter(hits, {"tier": "l2"}) == 1
        assert metrics.labeled_counter(misses, {"tier": "l1"}) == 2
        assert metrics.labeled_counter(misses, {"tier": "l2"}) == 1
        assert metrics.counter("blaeu_cache_promotions_total") == 1
        reset_metrics()

    def test_render_emits_one_type_line_per_family(self, tmp_path):
        from repro.obs.metrics import reset_metrics

        metrics = reset_metrics()
        cache = _tiered(tmp_path)
        cache.put("k", {"v": 1})
        cache.get("k")
        cache.memory.clear()
        cache.get("k")
        text = metrics.render()
        assert text.count("# TYPE blaeu_cache_hits_total counter") == 1
        assert 'blaeu_cache_hits_total{tier="l1"} 1' in text
        assert 'blaeu_cache_hits_total{tier="l2"} 1' in text
        reset_metrics()


class TestStatsShape:
    def test_stats_stays_l1_shaped_for_duck_typed_callers(self, tmp_path):
        # /healthz reads .stats() off whatever cache the engine holds;
        # tiering must not change that surface.
        cache = _tiered(tmp_path)
        cache.put("k", {"v": 1})
        cache.get("k")
        stats = cache.stats()
        assert isinstance(stats, CacheStats)
        assert stats.hits == 1 and stats.size == 1

    def test_tier_stats_nests_the_memory_snapshot(self, tmp_path):
        cache = _tiered(tmp_path)
        cache.put("k", {"v": 1})
        tier = cache.tier_stats()
        assert isinstance(tier.memory, CacheStats)
        assert tier.memory.size == 1

"""Consistent-hash routing and metrics merging for the supervisor."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.service.routing import HashRing
from repro.service.supervisor import merge_metrics


def _keys(n: int) -> list[str]:
    return [f"table:fp{i:04x}" for i in range(n)]


class TestHashRing:
    def test_owner_is_deterministic_across_instances(self):
        a = HashRing(range(4))
        b = HashRing(range(4))
        for key in _keys(100):
            assert a.owner(key) == b.owner(key)

    def test_every_slot_gets_a_fair_share(self):
        ring = HashRing(range(4))
        spread = Counter(ring.owner(key) for key in _keys(2000))
        assert sorted(spread) == [0, 1, 2, 3]
        # Virtual nodes keep the spread within ~2x of the fair share.
        for slot in range(4):
            assert 2000 / 4 / 2 <= spread[slot] <= 2000 / 4 * 2

    def test_removing_one_slot_moves_about_one_nth_of_keys(self):
        keys = _keys(2000)
        ring = HashRing(range(5))
        before = {key: ring.owner(key) for key in keys}
        ring.remove(2)
        after = {key: ring.owner(key) for key in keys}
        moved = [key for key in keys if before[key] != after[key]]
        # Exactly the evicted slot's keys move, nowhere else.
        assert all(before[key] == 2 for key in moved)
        assert 2000 / 5 / 2 <= len(moved) <= 2000 / 5 * 2
        assert all(after[key] != 2 for key in keys)

    def test_a_restarted_slot_reclaims_exactly_its_keyspace(self):
        keys = _keys(500)
        ring = HashRing(range(3))
        before = {key: ring.owner(key) for key in keys}
        ring.remove(1)
        ring.add(1)  # the respawned worker reoccupies its slot
        assert {key: ring.owner(key) for key in keys} == before

    def test_membership_protocol(self):
        ring = HashRing(range(2))
        assert len(ring) == 2 and 1 in ring and 5 not in ring
        ring.add(5)
        assert ring.slots == (0, 1, 5)
        ring.remove(5)
        ring.remove(5)  # idempotent
        assert ring.slots == (0, 1)

    def test_owners_lists_distinct_failover_targets_in_order(self):
        ring = HashRing(range(4))
        for key in _keys(100):
            preference = ring.owners(key, 2)
            assert preference[0] == ring.owner(key)
            assert len(preference) == 2
            assert len(set(preference)) == 2

    def test_owners_failover_is_stable_under_unrelated_churn(self):
        # The proxy's fallback slot must not reshuffle when some other
        # slot leaves the ring — only keys owned by the leaver move.
        keys = _keys(300)
        ring = HashRing(range(4))
        before = {key: ring.owners(key, 2) for key in keys}
        ring.remove(3)
        for key in keys:
            if 3 not in before[key]:
                assert ring.owners(key, 2) == before[key]

    def test_owners_clamps_at_the_fleet_size(self):
        ring = HashRing(range(2))
        assert sorted(ring.owners("k", 5)) == [0, 1]

    def test_empty_ring_refuses_to_route(self):
        ring = HashRing([])
        with pytest.raises(LookupError):
            ring.owner("anything")

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(range(2), replicas=0)


class TestMergeMetrics:
    def test_sums_matching_series_across_workers(self):
        worker_a = (
            "# TYPE blaeu_http_requests_total counter\n"
            'blaeu_http_requests_total{route="/v1/tables"} 3\n'
        )
        worker_b = (
            "# TYPE blaeu_http_requests_total counter\n"
            'blaeu_http_requests_total{route="/v1/tables"} 4\n'
            'blaeu_http_requests_total{route="/healthz"} 1\n'
        )
        merged = merge_metrics([worker_a, worker_b])
        assert 'blaeu_http_requests_total{route="/v1/tables"} 7' in merged
        assert 'blaeu_http_requests_total{route="/healthz"} 1' in merged
        assert merged.count("# TYPE blaeu_http_requests_total counter") == 1

    def test_histogram_suffixes_group_under_their_type_line(self):
        body = (
            "# TYPE blaeu_build_seconds histogram\n"
            'blaeu_build_seconds_bucket{le="1"} 2\n'
            "blaeu_build_seconds_sum 1.5\n"
            "blaeu_build_seconds_count 2\n"
        )
        merged = merge_metrics([body, body])
        lines = merged.splitlines()
        type_at = lines.index("# TYPE blaeu_build_seconds histogram")
        assert 'blaeu_build_seconds_bucket{le="1"} 4' in lines[type_at:]
        assert "blaeu_build_seconds_sum 3" in lines[type_at:]
        assert "blaeu_build_seconds_count 4" in lines[type_at:]

    def test_extra_lines_append_supervisor_series(self):
        merged = merge_metrics(
            ["# TYPE up gauge\nup 1\n"],
            extra=["blaeu_supervisor_workers 2"],
        )
        assert merged.rstrip().endswith("blaeu_supervisor_workers 2")

    def test_garbage_lines_are_dropped_not_fatal(self):
        merged = merge_metrics(["up 1\nnot a metric line at all\n\nup one\n"])
        assert "up 1" in merged
        assert "not a metric" not in merged

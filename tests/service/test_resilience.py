"""Service-level resilience: deadlines, shedding, degradation, drain."""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.core.config import BlaeuConfig
from repro.core.engine import Blaeu
from repro.datasets.synthetic import mixed_blobs
from repro.service.app import ResilienceConfig, ServiceConfig


def _get(port: int, path: str, headers: dict[str, str] | None = None):
    """GET returning ``(status, headers, decoded body)``."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("GET", path, headers=headers or {})
        response = connection.getresponse()
        body = response.read()
        return response.status, dict(response.getheaders()), body
    finally:
        connection.close()


def _get_json(port: int, path: str, headers: dict[str, str] | None = None):
    status, response_headers, body = _get(port, path, headers)
    return status, response_headers, json.loads(body)


def _engine() -> Blaeu:
    engine = Blaeu(BlaeuConfig(map_k_values=(2, 3), seed=5))
    engine.register(mixed_blobs(n_rows=300, k=2, seed=61).table)
    return engine


class TestRequestDeadline:
    def test_spent_header_budget_is_a_structured_504(self, service_runner):
        running = service_runner(
            _engine(), ServiceConfig(port=0, workers=2, max_pending=8)
        ).start()
        try:
            # A budget this small is gone before the request reaches the
            # pool: admission sheds it and the HTTP layer answers 504.
            status, _, payload = _get_json(
                running.port,
                "/v1/tables/mixed_blobs/map?k=2",
                headers={"X-Blaeu-Deadline": "0.000001"},
            )
            assert status == 504
            assert payload["ok"] is False
            assert payload["code"] == "deadline_exceeded"

            # ...and the failure is visible on /metrics.
            _, _, metrics = _get(running.port, "/metrics")
            text = metrics.decode()
            assert "blaeu_resilience_deadline_exceeded_total" in text
            assert "blaeu_resilience_pool_deadline_shed_total" in text
        finally:
            running.stop()

    def test_malformed_header_is_a_400(self, service_runner):
        running = service_runner(
            _engine(), ServiceConfig(port=0, workers=2, max_pending=8)
        ).start()
        try:
            for bad in ("soon", "-1", "0"):
                status, _, payload = _get_json(
                    running.port,
                    "/v1/tables/mixed_blobs/map?k=2",
                    headers={"X-Blaeu-Deadline": bad},
                )
                assert status == 400, bad
                assert payload["ok"] is False
        finally:
            running.stop()

    def test_roomy_budget_answers_normally(self, service_runner):
        running = service_runner(
            _engine(), ServiceConfig(port=0, workers=2, max_pending=8)
        ).start()
        try:
            status, _, payload = _get_json(
                running.port,
                "/v1/tables/mixed_blobs/map?k=2",
                headers={"X-Blaeu-Deadline": "60"},
            )
            assert status == 200
            assert payload["ok"] is True
            assert "degraded" not in payload
        finally:
            running.stop()


class TestDegradedMode:
    def test_short_budget_serves_approximate_counts(self, service_runner):
        # degrade_remaining is cranked above any realistic budget, so a
        # deadline-carrying request always takes the degraded path: a
        # fast approximate-count map instead of queueing an exact one.
        config = ServiceConfig(
            port=0,
            workers=2,
            max_pending=8,
            resilience=ResilienceConfig(degrade_remaining=10_000.0),
        )
        running = service_runner(_engine(), config).start()
        try:
            status, _, payload = _get_json(
                running.port,
                "/v1/tables/mixed_blobs/map?k=2",
                headers={"X-Blaeu-Deadline": "60"},
            )
            assert status == 200
            assert payload["ok"] is True
            assert payload["degraded"] is True

            _, _, metrics = _get(running.port, "/metrics")
            assert "blaeu_resilience_degraded_total 1" in metrics.decode()
        finally:
            running.stop()

    def test_degradation_can_be_disabled(self, service_runner):
        config = ServiceConfig(
            port=0,
            workers=2,
            max_pending=8,
            resilience=ResilienceConfig(
                degrade_when_busy=False, degrade_remaining=10_000.0
            ),
        )
        running = service_runner(_engine(), config).start()
        try:
            status, _, payload = _get_json(
                running.port,
                "/v1/tables/mixed_blobs/map?k=2",
                headers={"X-Blaeu-Deadline": "60"},
            )
            assert status == 200
            assert "degraded" not in payload
        finally:
            running.stop()


class TestLoadShedding:
    def test_saturated_pool_sheds_with_retry_after(self, service_runner):
        running = service_runner(
            _engine(), ServiceConfig(port=0, workers=1, max_pending=1)
        ).start()
        try:
            # Deterministically occupy the single admission slot with a
            # job parked on an event, then knock on the front door.
            pool = running.service._pool
            release = threading.Event()
            future = asyncio.run_coroutine_threadsafe(
                pool.run(release.wait, 10.0), running._loop
            )
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and not pool.stats().in_flight:
                time.sleep(0.01)
            assert pool.stats().in_flight == 1

            status, headers, payload = _get_json(
                running.port, "/v1/tables/mixed_blobs/map?k=2"
            )
            assert status == 503
            assert payload["code"] == "pool_saturated"
            assert headers.get("Retry-After") == "1"

            release.set()
            assert future.result(timeout=10) is True
        finally:
            running.stop()


class TestGracefulDrain:
    def test_stop_finishes_the_in_flight_request(self, service_runner):
        running = service_runner(
            _engine(), ServiceConfig(port=0, workers=2, max_pending=8)
        ).start()
        try:
            results: list[tuple[int, dict]] = []

            def client():
                status, _, payload = _get_json(
                    running.port, "/v1/tables/mixed_blobs/map?k=3"
                )
                results.append((status, payload))

            thread = threading.Thread(target=client)
            thread.start()
            # Let the request reach the server before pulling the plug;
            # drain_timeout (default 5s) must let it finish.
            deadline = time.monotonic() + 5.0
            pool = running.service._pool
            while time.monotonic() < deadline and not pool.stats().in_flight:
                time.sleep(0.005)
        finally:
            running.stop()
        thread.join(timeout=15)
        assert results, "in-flight request was dropped during drain"
        status, payload = results[0]
        assert status == 200
        assert payload["ok"] is True


@pytest.mark.parametrize(
    "kwargs",
    [
        {"request_deadline": 0.0},
        {"max_deadline": -1.0},
        {"drain_timeout": -0.1},
        {"background_deadline": 0.0},
        {"breaker_failures": 0},
        {"breaker_recovery": 0.0},
    ],
)
def test_resilience_config_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        ResilienceConfig(**kwargs)

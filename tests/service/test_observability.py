"""End-to-end observability: traces, trace headers, access log, refine.

The traced service here mirrors the plain ``service`` fixture but with
tracing and the access log switched on.  Tests that need a *cold* map
build run first (a warm cache skips the stage spans on purpose), and
the store-backed refinement test builds its own service last — its
construction installs a fresh global tracer, which would steal the
deep-layer spans from the module fixture's requests.
"""

from __future__ import annotations

import http.client
import json
import time

import pytest

from repro.core.config import BlaeuConfig
from repro.core.engine import Blaeu
from repro.datasets.synthetic import mixed_blobs
from repro.service.app import ServiceConfig


def _request(running, method, path, body=None):
    """One HTTP exchange returning (status, headers, body bytes).

    Follows one 307 hop so legacy spellings keep exercising the /v1
    handlers (a 307 preserves method and body by definition).
    """
    payload = json.dumps(body).encode() if body is not None else None
    for _ in range(2):
        connection = http.client.HTTPConnection(
            "127.0.0.1", running.port, timeout=60
        )
        try:
            connection.request(method, path, body=payload)
            response = connection.getresponse()
            location = response.getheader("Location")
            if response.status == 307 and location:
                response.read()
                path = location
                continue
            return (
                response.status,
                dict(response.getheaders()),
                response.read(),
            )
        finally:
            connection.close()
    raise RuntimeError(f"redirect loop at {path!r}")


def _find_trace(running, trace_id, timeout=10.0, require=()):
    """Poll /trace until ``trace_id`` shows up with the required spans."""
    deadline = time.monotonic() + timeout
    match = None
    while time.monotonic() < deadline:
        _, _, data = _request(running, "GET", "/trace?limit=50")
        traces = json.loads(data)["traces"]
        match = next(
            (t for t in traces if t["trace_id"] == trace_id), match
        )
        if match is not None:
            names = {span["name"] for span in match["spans"]}
            if set(require) <= names:
                return match
        time.sleep(0.05)
    return match


@pytest.fixture(scope="module")
def traced_service(service_runner):
    engine = Blaeu(BlaeuConfig(map_k_values=(2, 3), seed=5))
    engine.register(mixed_blobs(n_rows=300, k=2, seed=61).table)
    running = service_runner(
        engine,
        ServiceConfig(
            port=0,
            workers=2,
            max_pending=32,
            trace_enabled=True,
            trace_buffer_size=4096,
            access_log=True,
        ),
    ).start()
    lines: list[str] = []
    running.service.access_log_sink = lines.append
    running.log_lines = lines
    yield running
    running.stop()


class TestTracedRequests:
    def test_cold_build_yields_one_trace_tree_per_request(
        self, traced_service
    ):
        started = time.perf_counter()
        status, headers, body = _request(
            traced_service,
            "POST",
            "/api/open",
            {"session": "t1", "table": "mixed_blobs", "theme": 0},
        )
        wall = time.perf_counter() - started
        assert status == 200
        trace_id = headers["X-Blaeu-Trace"]
        assert len(trace_id) == 16

        trace = _find_trace(
            traced_service, trace_id, require={"http.request", "map.build"}
        )
        assert trace is not None, "trace never appeared at /trace"
        spans = trace["spans"]
        names = {span["name"] for span in spans}
        # The request span, the pipeline build, and the cold stages —
        # all under ONE trace despite running on pool worker threads.
        assert "http.request" in names
        assert "map.build" in names
        assert "stage.sample" in names
        assert "stage.cluster" in names
        assert "kselect.candidate" in names
        assert all(span["trace_id"] == trace_id for span in spans)

        # Everything parents back inside the tree (no orphans).
        span_ids = {span["span_id"] for span in spans}
        roots = [s for s in spans if s["parent_id"] is None]
        assert [s["name"] for s in roots] == ["http.request"]
        assert all(
            span["parent_id"] in span_ids
            for span in spans
            if span["parent_id"] is not None
        )

        # The request's own span covers the request wall-clock minus
        # client/socket overhead.
        root = roots[0]
        assert root["duration"] <= wall
        assert root["duration"] >= 0.5 * wall
        assert root["attributes"]["route"] == "/v1/commands/open"
        assert root["attributes"]["status"] == 200

        build = next(s for s in spans if s["name"] == "map.build")
        assert build["attributes"]["cache_hit"] is False

    def test_warm_build_marks_the_cache_hit(self, traced_service):
        status, headers, _ = _request(
            traced_service,
            "POST",
            "/api/open",
            {"session": "t2", "table": "mixed_blobs", "theme": 0},
        )
        assert status == 200
        trace = _find_trace(
            traced_service,
            headers["X-Blaeu-Trace"],
            require={"map.build"},
        )
        build = next(
            s for s in trace["spans"] if s["name"] == "map.build"
        )
        assert build["attributes"]["cache_hit"] is True

    def test_every_response_carries_the_trace_header(self, traced_service):
        status, headers, _ = _request(traced_service, "GET", "/healthz")
        assert status == 200
        first = headers["X-Blaeu-Trace"]
        status, headers, _ = _request(traced_service, "GET", "/healthz")
        second = headers["X-Blaeu-Trace"]
        assert first != second  # one trace per request

    def test_trace_endpoint_validates_limit(self, traced_service):
        status, _, body = _request(traced_service, "GET", "/trace?limit=x")
        assert status == 400
        status, _, body = _request(traced_service, "GET", "/trace?limit=0")
        assert status == 400
        status, _, body = _request(traced_service, "GET", "/trace?limit=2")
        assert status == 200
        payload = json.loads(body)
        assert payload["enabled"] is True
        assert len(payload["traces"]) <= 2

    def test_access_log_lines_are_structured(self, traced_service):
        _request(traced_service, "GET", "/healthz")
        lines = traced_service.log_lines
        healthz = [
            line
            for line in lines
            if "route=/healthz" in line and line.startswith("access ")
        ]
        assert healthz, f"no /healthz access line in {lines!r}"
        line = healthz[-1]
        assert "method=GET" in line
        assert "status=200" in line
        assert "duration_ms=" in line
        assert "trace=" in line
        # The cold open earlier (shimmed to /v1) noted its
        # map-cache outcome.
        opens = [x for x in lines if "route=/v1/commands/open" in x]
        assert any("map_cache=miss" in x for x in opens)
        assert any("map_cache=hit" in x for x in opens)

    def test_metrics_show_stage_histograms_and_store_counters(
        self, traced_service
    ):
        _, _, body = _request(traced_service, "GET", "/metrics")
        text = body.decode()
        # Unified registry: pipeline counters/histograms arrive without
        # any push-into-the-service plumbing.
        assert "blaeu_pipeline_builds_total" in text
        assert "blaeu_pipeline_build_seconds_bucket" in text
        assert "blaeu_pipeline_stage_seconds_cluster_bucket" in text


class TestRefinementTracing:
    def test_refine_span_joins_the_originating_requests_trace(
        self, tmp_path_factory, service_runner
    ):
        from repro.store import write_store

        config = BlaeuConfig(
            map_k_values=(2, 3),
            map_sample_size=200,
            seed=5,
            count_mode="approximate",
        )
        table = mixed_blobs(n_rows=2_500, k=3, seed=61).table
        root = tmp_path_factory.mktemp("traced_store") / "s"
        write_store(table, root, chunk_rows=256)
        engine = Blaeu(config)
        engine.load_store(root)
        running = service_runner(
            engine,
            ServiceConfig(
                port=0,
                workers=2,
                max_pending=32,
                trace_enabled=True,
                trace_buffer_size=8192,
            ),
        ).start()
        try:
            status, headers, body = _request(
                running,
                "POST",
                "/api/open",
                {"session": "r1", "table": "mixed_blobs", "theme": 0},
            )
            assert status == 200
            assert json.loads(body)["counts_status"] == "approximate"
            trace_id = headers["X-Blaeu-Trace"]
            trace = _find_trace(
                running, trace_id, timeout=30.0, require={"refine.session"}
            )
            assert trace is not None
            names = {span["name"] for span in trace["spans"]}
            # The background exact-count pass joined the trace of the
            # navigation that scheduled it.
            assert "refine.session" in names
            assert "http.request" in names
            # Store-backed builds leave storage spans in the same tree.
            assert any(name.startswith("store.") for name in names)
        finally:
            running.stop()

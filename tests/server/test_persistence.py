"""Unit tests for session save/replay."""

import json

import pytest

from repro.core.config import BlaeuConfig
from repro.core.engine import Blaeu
from repro.datasets.synthetic import mixed_blobs
from repro.server.persistence import (
    replay_session,
    save_session,
    session_to_dict,
)
from repro.viz.export import export_map_json

CONFIG = BlaeuConfig(map_k_values=(2, 3), seed=5)


@pytest.fixture
def engine():
    blaeu = Blaeu(CONFIG)
    blaeu.register(mixed_blobs(n_rows=300, k=2, seed=61).table)
    return blaeu


def _navigate(engine):
    explorer = engine.explore("mixed_blobs")
    data_map = explorer.open_columns(("x0", "x1"))
    target = max(data_map.leaves(), key=lambda r: r.n_rows)
    explorer.zoom(target.region_id)
    explorer.project_columns(("x2", "cat0"))
    return explorer


class TestSaveReplay:
    def test_roundtrip_restores_identical_state(self, engine, tmp_path):
        explorer = _navigate(engine)
        path = tmp_path / "session.json"
        save_session(path, "mixed_blobs", explorer)

        fresh_engine = Blaeu(CONFIG)
        fresh_engine.register(mixed_blobs(n_rows=300, k=2, seed=61).table)
        replayed = replay_session(path, fresh_engine)

        assert replayed.depth == explorer.depth
        assert replayed.state.columns == explorer.state.columns
        assert export_map_json(replayed.state.map) == export_map_json(
            explorer.state.map
        )

    def test_session_file_is_small_and_readable(self, engine, tmp_path):
        explorer = _navigate(engine)
        path = tmp_path / "session.json"
        save_session(path, "mixed_blobs", explorer)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["format"] == "blaeu.session/1"
        assert payload["table"] == "mixed_blobs"
        assert [step["do"] for step in payload["steps"]] == [
            "open_columns", "zoom", "project_columns",
        ]
        assert path.stat().st_size < 2000

    def test_theme_actions_roundtrip(self, engine, tmp_path):
        explorer = engine.explore("mixed_blobs")
        theme = explorer.themes()[0]
        explorer.open_theme(theme.name)
        explorer.project(theme.name)
        record = session_to_dict("mixed_blobs", explorer)
        assert record["steps"][0] == {"do": "open_theme", "theme": theme.name}
        assert record["steps"][1] == {"do": "project", "theme": theme.name}

        path = tmp_path / "s.json"
        save_session(path, "mixed_blobs", explorer)
        replayed = replay_session(path, engine)
        assert replayed.depth == 2

    def test_rollback_reflected_in_saved_file(self, engine, tmp_path):
        explorer = _navigate(engine)
        explorer.rollback()  # drop the projection
        path = tmp_path / "s.json"
        save_session(path, "mixed_blobs", explorer)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert [step["do"] for step in payload["steps"]] == [
            "open_columns", "zoom",
        ]

    def test_wrong_format_rejected(self, engine, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "other"}', encoding="utf-8")
        with pytest.raises(ValueError, match="not a blaeu session"):
            replay_session(path, engine)

    def test_unknown_step_rejected(self, engine, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {
                    "format": "blaeu.session/1",
                    "table": "mixed_blobs",
                    "seed": 5,
                    "steps": [{"do": "teleport"}],
                }
            ),
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="teleport"):
            replay_session(path, engine)


class TestAtomicSave:
    def test_save_leaves_no_temporary_files(self, engine, tmp_path):
        explorer = _navigate(engine)
        save_session(tmp_path / "session.json", "mixed_blobs", explorer)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["session.json"]

    def test_save_replaces_existing_file_atomically(self, engine, tmp_path):
        explorer = _navigate(engine)
        path = tmp_path / "session.json"
        path.write_text("old contents", encoding="utf-8")
        save_session(path, "mixed_blobs", explorer)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["format"] == "blaeu.session/1"

    def test_crash_mid_write_preserves_the_old_file(
        self, engine, tmp_path, monkeypatch
    ):
        import os as os_module

        explorer = _navigate(engine)
        path = tmp_path / "session.json"
        path.write_text("precious old session", encoding="utf-8")

        def exploding_replace(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(os_module, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            save_session(path, "mixed_blobs", explorer)
        # The old file is untouched and the temp file was cleaned up.
        assert path.read_text(encoding="utf-8") == "precious old session"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["session.json"]

    def test_empty_history_saves_cleanly(self, engine, tmp_path):
        explorer = engine.explore("mixed_blobs")  # no map opened yet
        path = tmp_path / "session.json"
        save_session(path, "mixed_blobs", explorer)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["steps"] == []

    def test_failed_serialization_writes_nothing(
        self, engine, tmp_path, monkeypatch
    ):
        import repro.server.persistence as persistence

        explorer = _navigate(engine)
        path = tmp_path / "session.json"

        def exploding_serializer(table_name, exp):
            raise ValueError("simulated serialization failure")

        monkeypatch.setattr(
            persistence, "session_to_dict", exploding_serializer
        )
        with pytest.raises(ValueError, match="simulated serialization"):
            save_session(path, "mixed_blobs", explorer)
        assert list(tmp_path.iterdir()) == []

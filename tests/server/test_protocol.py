"""Unit tests for the JSON protocol layer."""

import json

import pytest

from repro.server.protocol import (
    COMMANDS,
    ErrorResponse,
    ProtocolError,
    Request,
    Response,
    parse_request,
)


class TestParseRequest:
    def test_valid_request(self):
        request = parse_request('{"command": "themes", "table": "t"}')
        assert request.command == "themes"
        assert request.arg("table") == "t"

    def test_malformed_json_rejected(self):
        with pytest.raises(ProtocolError, match="malformed"):
            parse_request("{nope")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="object"):
            parse_request('["zoom"]')

    def test_missing_command_rejected(self):
        with pytest.raises(ProtocolError, match="command"):
            parse_request('{"table": "t"}')

    def test_unknown_command_rejected(self):
        with pytest.raises(ProtocolError, match="unknown command"):
            parse_request('{"command": "frobnicate"}')

    def test_missing_required_arguments_listed(self):
        with pytest.raises(ProtocolError, match="region"):
            parse_request('{"command": "zoom", "session": "s"}')

    @pytest.mark.parametrize("command,required", sorted(COMMANDS.items()))
    def test_each_command_validates_requirements(self, command, required):
        body = {"command": command}
        body.update({name: "x" for name in required})
        request = parse_request(json.dumps(body))
        assert request.command == command


class TestSerialization:
    def test_request_roundtrip(self):
        request = Request(command="zoom", args={"session": "s", "region": "r0"})
        back = parse_request(request.to_json())
        assert back == request

    def test_response_wire_format(self):
        response = Response({"sql": "SELECT 1"})
        payload = json.loads(response.to_json())
        assert payload == {"ok": True, "sql": "SELECT 1"}
        assert response.ok

    def test_error_wire_format(self):
        error = ErrorResponse(error="boom", command="zoom")
        payload = json.loads(error.to_json())
        assert payload == {"ok": False, "error": "boom", "command": "zoom"}
        assert not error.ok

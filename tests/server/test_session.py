"""Unit tests for the session manager (the NodeJS tier's behaviour)."""

import json

import pytest

from repro.core.config import BlaeuConfig
from repro.core.engine import Blaeu
from repro.datasets.synthetic import mixed_blobs
from repro.server.session import SessionManager


@pytest.fixture
def manager():
    engine = Blaeu(BlaeuConfig(map_k_values=(2, 3)))
    engine.register(mixed_blobs(n_rows=300, k=2, seed=71).table)
    return SessionManager(engine)


def send(manager, **body):
    return json.loads(manager.handle_json(json.dumps(body)))


def open_session(manager, session="s1"):
    themes = send(manager, command="themes", table="mixed_blobs")
    theme = themes["themes"]["themes"][0]["name"]
    return send(
        manager, command="open", session=session,
        table="mixed_blobs", theme=theme,
    )


class TestLifecycle:
    def test_tables(self, manager):
        response = send(manager, command="tables")
        assert response == {"ok": True, "tables": ["mixed_blobs"]}

    def test_themes(self, manager):
        response = send(manager, command="themes", table="mixed_blobs")
        assert response["ok"]
        assert response["themes"]["themes"]

    def test_open_returns_map(self, manager):
        response = open_session(manager)
        assert response["ok"]
        assert response["map"]["n_rows"] == 300
        assert manager.session_ids() == ("s1",)

    def test_open_by_theme_index(self, manager):
        response = send(
            manager, command="open", session="s1",
            table="mixed_blobs", theme=0,
        )
        assert response["ok"]

    def test_duplicate_session_rejected(self, manager):
        open_session(manager)
        response = send(
            manager, command="open", session="s1",
            table="mixed_blobs", theme=0,
        )
        assert not response["ok"]
        assert "already exists" in response["error"]

    def test_close(self, manager):
        open_session(manager)
        response = send(manager, command="close", session="s1")
        assert response == {"ok": True, "closed": "s1"}
        assert manager.session_ids() == ()

    def test_new_session_id_monotonic(self, manager):
        assert manager.new_session_id() == "s1"
        assert manager.new_session_id() == "s2"


class TestNavigationCommands:
    def test_zoom_and_rollback(self, manager):
        opened = open_session(manager)
        children = opened["map"]["root"]["children"]
        biggest = max(children, key=lambda c: c["value"])
        zoomed = send(manager, command="zoom", session="s1", region=biggest["id"])
        assert zoomed["ok"]
        assert zoomed["map"]["n_rows"] == biggest["value"]
        rolled = send(manager, command="rollback", session="s1")
        assert rolled["map"]["n_rows"] == 300

    def test_project(self, manager):
        open_session(manager)
        response = send(manager, command="project", session="s1", theme=0)
        assert response["ok"]

    def test_highlight(self, manager):
        open_session(manager)
        response = send(
            manager, command="highlight", session="s1",
            region="r", columns=["cat0"],
        )
        assert response["ok"]
        assert response["highlight"]["n_rows"] == 300
        assert "cat0" in response["highlight"]["categories"]

    def test_highlight_columns_must_be_list(self, manager):
        open_session(manager)
        response = send(
            manager, command="highlight", session="s1",
            region="r", columns="cat0",
        )
        assert not response["ok"]

    def test_sql_and_history(self, manager):
        open_session(manager)
        sql = send(manager, command="sql", session="s1")
        assert sql["sql"].startswith("SELECT")
        history = send(manager, command="history", session="s1")
        assert len(history["history"]) == 1


class TestErrorHandling:
    def test_unknown_session_is_error_response(self, manager):
        response = send(manager, command="zoom", session="ghost", region="r0")
        assert not response["ok"]
        assert "ghost" in response["error"]
        assert response["command"] == "zoom"

    def test_unknown_region_is_error_response(self, manager):
        open_session(manager)
        response = send(manager, command="zoom", session="s1", region="r99")
        assert not response["ok"]

    def test_malformed_json_is_error_response(self, manager):
        response = json.loads(manager.handle_json("{broken"))
        assert not response["ok"]
        assert "malformed" in response["error"]

    def test_unknown_table_is_error_response(self, manager):
        response = send(manager, command="themes", table="ghost")
        assert not response["ok"]

    def test_rollback_at_root_is_error_response(self, manager):
        open_session(manager)
        response = send(manager, command="rollback", session="s1")
        assert not response["ok"]

    def test_close_unknown_session(self, manager):
        response = send(manager, command="close", session="ghost")
        assert not response["ok"]


class TestCatalogCommand:
    def test_catalog_lists_fingerprints(self, manager):
        response = send(manager, command="catalog")
        assert response["ok"] is True
        (record,) = response["catalog"]
        assert record["name"] == "mixed_blobs"
        assert record["n_rows"] == 300
        assert len(record["fingerprint"]) == 64


class TestConcurrentDispatch:
    def test_parallel_opens_and_navigation(self, manager):
        """Many threads driving distinct sessions must not corrupt state."""
        import threading

        themes = send(manager, command="themes", table="mixed_blobs")
        theme = themes["themes"]["themes"][0]["name"]
        errors = []

        def worker(index):
            session = f"t{index}"
            try:
                response = send(
                    manager, command="open", session=session,
                    table="mixed_blobs", theme=theme,
                )
                if not response["ok"]:
                    errors.append(response)
                    return
                for command in ("map", "sql", "history", "close"):
                    response = send(manager, command=command, session=session)
                    if not response["ok"]:
                        errors.append(response)
            except Exception as error:  # pragma: no cover
                errors.append(repr(error))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert manager.session_ids() == ()

    def test_concurrent_duplicate_opens_admit_exactly_one(self, manager):
        import threading

        themes = send(manager, command="themes", table="mixed_blobs")
        theme = themes["themes"]["themes"][0]["name"]
        outcomes = []
        barrier = threading.Barrier(4, timeout=30)

        def worker():
            barrier.wait()
            response = send(
                manager, command="open", session="shared",
                table="mixed_blobs", theme=theme,
            )
            outcomes.append(response["ok"])

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert outcomes.count(True) == 1
        assert outcomes.count(False) == 3
        assert manager.session_ids() == ("shared",)

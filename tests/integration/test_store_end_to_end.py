"""End-to-end acceptance for the out-of-core store layer.

Two guarantees from the issue:

* maps built through a store-backed table are **bit-identical** to the
  in-memory path at the same engine seed (open, zoom, and over the
  explicit-columns API), and
* a 1M-row synthetic table can be ingested and mapped end to end
  (``blaeu ingest`` → ``explore`` → ``open_theme``) with peak RSS
  bounded by chunk size + sample size — asserted on a subprocess so the
  measurement is not polluted by the test runner's own footprint.
"""

import hashlib
import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import BlaeuConfig
from repro.core.engine import Blaeu
from repro.store import ingest_csv
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.csv_io import read_csv
from repro.table.table import Table
from repro.viz.export import export_map_json

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


def _write_blob_csv(path: Path, n: int, seed: int) -> None:
    """Stream a clusterable CSV to disk without holding it in memory."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 4, size=n)
    x = labels * 8.0 + rng.normal(0.0, 0.6, n)
    y = labels * -7.0 + rng.normal(0.0, 0.6, n)
    z = rng.normal(0.0, 1.0, n)
    tags = np.array(["north", "east", "south", "west"])[labels]
    with path.open("w", encoding="utf-8") as handle:
        handle.write("x,y,z,tag\n")
        step = 100_000
        for start in range(0, n, step):
            stop = min(start + step, n)
            # tolist() yields Python floats, whose repr round-trips the
            # exact value (np scalars render as "np.float64(...)" ).
            rows = zip(
                x[start:stop].tolist(),
                y[start:stop].tolist(),
                z[start:stop].tolist(),
                tags[start:stop].tolist(),
            )
            handle.write(
                "".join(f"{a!r},{b!r},{c!r},{t}\n" for a, b, c, t in rows)
            )


def _table_from_same_arrays(name: str, n: int, seed: int) -> Table:
    """The in-memory twin of :func:`_write_blob_csv` (repr round-trips
    floats exactly, so the CSV-ingested store holds identical bytes)."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 4, size=n)
    x = labels * 8.0 + rng.normal(0.0, 0.6, n)
    y = labels * -7.0 + rng.normal(0.0, 0.6, n)
    z = rng.normal(0.0, 1.0, n)
    tags = np.array(["north", "east", "south", "west"])[labels]
    return Table(
        name,
        [
            NumericColumn("x", x),
            NumericColumn("y", y),
            NumericColumn("z", z),
            CategoricalColumn.from_labels("tag", list(tags)),
        ],
    )


class TestBitIdentity:
    @pytest.fixture(scope="class")
    def engines(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("bitid")
        csv_path = tmp / "blobs.csv"
        _write_blob_csv(csv_path, n=3_000, seed=5)

        stored_engine = Blaeu(BlaeuConfig())
        stored_engine.register(
            ingest_csv(csv_path, tmp / "store", name="blobs", chunk_rows=512)
        )
        memory_engine = Blaeu(BlaeuConfig())
        memory_engine.register(read_csv(csv_path, name="blobs"))
        return stored_engine, memory_engine

    def test_open_theme_and_zoom_identical(self, engines):
        stored_engine, memory_engine = engines
        stored = stored_engine.explore("blobs")
        memory = memory_engine.explore("blobs")
        map_s = stored.open_theme(0)
        map_m = memory.open_theme(0)
        assert export_map_json(map_s) == export_map_json(map_m)

        child = map_s.root.children[0].region_id
        assert export_map_json(stored.zoom(child)) == export_map_json(
            memory.zoom(child)
        )

    def test_one_shot_map_identical(self, engines):
        stored_engine, memory_engine = engines
        assert export_map_json(
            stored_engine.map("blobs", ("x", "y"), k=4)
        ) == export_map_json(memory_engine.map("blobs", ("x", "y"), k=4))

    def test_store_fingerprint_equals_csv_load(self, engines):
        stored_engine, memory_engine = engines
        assert (
            stored_engine.database.table("blobs").fingerprint()
            == memory_engine.database.table("blobs").fingerprint()
        )


_CHILD_SCRIPT = """
import hashlib, json, resource, sys
from pathlib import Path

from repro.core.config import BlaeuConfig
from repro.core.engine import Blaeu
from repro.store import ingest_csv
from repro.viz.export import export_map_json

csv_path, store_dir, chunk_rows = sys.argv[1], sys.argv[2], int(sys.argv[3])
stored = ingest_csv(
    csv_path, store_dir, name="blobs", chunk_rows=chunk_rows
)
engine = Blaeu(BlaeuConfig())
engine.register(stored)
explorer = engine.explore("blobs")
themes = explorer.themes()
data_map = explorer.open_theme(0)
exported = export_map_json(data_map)
print(json.dumps({
    "n_rows": stored.n_rows,
    "fingerprint": stored.fingerprint(),
    "map_sha": hashlib.sha256(exported.encode()).hexdigest(),
    "graph_sha": hashlib.sha256(
        themes.graph.weights.tobytes()
    ).hexdigest(),
    "theme_columns": [list(t.columns) for t in themes],
    "k": data_map.k,
    "maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""

#: Peak-RSS ceiling for the 1M-row subprocess, in KB.  The interpreter +
#: numpy alone cost ~60–90 MB; the chunked ingest and the sampled map
#: build add chunk-sized buffers, the 2k-row sample, and a handful of
#: n-row bool/int arrays (routing masks, priorities).  Materializing the
#: CSV the in-memory way (Python string cells for 4M values) costs well
#: over 1 GB, so this bound fails loudly if chunking ever regresses to a
#: full materialization.
_MAX_RSS_KB = 400_000

N_ROWS = 1_000_000
CHUNK_ROWS = 131_072
SEED = 131


class TestMillionRowEndToEnd:
    @pytest.fixture(scope="class")
    def child_report(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("million")
        csv_path = tmp / "big.csv"
        _write_blob_csv(csv_path, n=N_ROWS, seed=SEED)
        script = tmp / "child.py"
        script.write_text(_CHILD_SCRIPT, encoding="utf-8")
        result = subprocess.run(
            [
                sys.executable,
                str(script),
                str(csv_path),
                str(tmp / "store"),
                str(CHUNK_ROWS),
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": SRC_DIR, "PATH": "/usr/bin:/bin"},
            timeout=600,
        )
        assert result.returncode == 0, result.stderr
        return json.loads(result.stdout.strip().splitlines()[-1])

    def test_ingests_and_maps_the_full_table(self, child_report):
        assert child_report["n_rows"] == N_ROWS
        assert child_report["k"] >= 2

    def test_peak_rss_bounded_by_chunk_plus_sample(self, child_report):
        assert child_report["maxrss_kb"] < _MAX_RSS_KB, (
            f"subprocess peaked at {child_report['maxrss_kb']} KB; the "
            "out-of-core path must stay bounded by chunk + sample size"
        )

    def test_map_bit_identical_to_in_memory_path(self, child_report):
        table = _table_from_same_arrays("blobs", N_ROWS, SEED)
        assert table.fingerprint() == child_report["fingerprint"]
        engine = Blaeu(BlaeuConfig())
        engine.register(table)
        explorer = engine.explore("blobs")
        themes = explorer.themes()
        data_map = explorer.open_theme(0)
        expected = hashlib.sha256(
            export_map_json(data_map).encode()
        ).hexdigest()
        assert expected == child_report["map_sha"]
        # The dependency graph behind the themes — built out-of-core in
        # the child (pushdown gathers, no full-column materialization) —
        # must match the in-memory build bit for bit.
        expected_graph = hashlib.sha256(
            themes.graph.weights.tobytes()
        ).hexdigest()
        assert expected_graph == child_report["graph_sha"]
        assert [
            list(t.columns) for t in themes
        ] == child_report["theme_columns"]

"""Cross-module property tests: engine-level invariants under random data."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import BlaeuConfig
from repro.core.mapping import build_map
from repro.core.navigation import Explorer
from repro.core.queries import quantized_queries
from repro.datasets.synthetic import mixed_blobs
from repro.viz.treemap import treemap_layout

_settings = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

_scenarios = st.fixed_dictionaries(
    {
        "n_rows": st.integers(min_value=80, max_value=400),
        "k": st.integers(min_value=2, max_value=4),
        "missing_rate": st.sampled_from([0.0, 0.05, 0.15]),
        "seed": st.integers(min_value=0, max_value=10_000),
    }
)


@_settings
@given(scenario=_scenarios)
def test_map_counts_partition_selection(scenario):
    """Leaf counts always partition the selection, whatever the data."""
    planted = mixed_blobs(**scenario)
    data_map = build_map(
        planted.table,
        planted.table.column_names,
        config=BlaeuConfig(map_k_values=(2, 3)),
        rng=np.random.default_rng(scenario["seed"]),
    )
    assert sum(leaf.n_rows for leaf in data_map.leaves()) == planted.table.n_rows
    for region in data_map.regions():
        if not region.is_leaf:
            assert region.n_rows == sum(c.n_rows for c in region.children)


@_settings
@given(scenario=_scenarios)
def test_quantized_queries_consistent_with_counts(scenario):
    """Every region's SQL predicate selects exactly its counted tuples.

    This holds on tables with missing values too: the predicates encode
    the tree's missing-value routing explicitly (``… OR x IS NULL``).
    """
    planted = mixed_blobs(**scenario)
    data_map = build_map(
        planted.table,
        planted.table.column_names,
        config=BlaeuConfig(map_k_values=(2, 3)),
        rng=np.random.default_rng(scenario["seed"]),
    )
    for query in quantized_queries(planted.table, data_map):
        assert planted.table.select(query.predicate).n_rows == query.n_rows


@_settings
@given(scenario=_scenarios)
def test_treemap_mass_conservation(scenario):
    """Treemap leaf areas always sum to the canvas area."""
    planted = mixed_blobs(**scenario)
    data_map = build_map(
        planted.table,
        planted.table.column_names,
        config=BlaeuConfig(map_k_values=(2, 3)),
        rng=np.random.default_rng(scenario["seed"]),
    )
    rectangles = treemap_layout(data_map, width=4.0, height=2.5)
    leaf_area = sum(
        rectangles[leaf.region_id].area for leaf in data_map.leaves()
    )
    assert leaf_area == pytest.approx(10.0, rel=1e-9)


@_settings
@given(scenario=_scenarios)
def test_rollback_always_restores_identical_state(scenario):
    """zoom → rollback is the identity on explorer state."""
    planted = mixed_blobs(**scenario)
    explorer = Explorer(
        planted.table,
        config=BlaeuConfig(map_k_values=(2, 3), min_zoom_rows=5),
    )
    before = explorer.open_columns(("x0", "x1"))
    zoomable = [
        leaf for leaf in before.leaves() if leaf.n_rows >= 5
    ]
    if not zoomable:
        return
    explorer.zoom(zoomable[0].region_id)
    restored = explorer.rollback()
    assert restored is before
    assert explorer.depth == 1

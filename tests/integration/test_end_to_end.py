"""Integration tests: the full stack on the paper's demo scenarios."""

import json

import pytest

from repro.core.config import BlaeuConfig
from repro.core.engine import Blaeu
from repro.datasets.hollywood import hollywood
from repro.datasets.lofar import lofar
from repro.datasets.oecd import LABOR_THEME, UNEMPLOYMENT_THEME, oecd_small
from repro.server.session import SessionManager
from repro.viz.export import export_map_json
from repro.viz.render import render_map, render_theme_view


@pytest.fixture(scope="module")
def engine():
    blaeu = Blaeu(BlaeuConfig(map_k_values=(2, 3, 4)))
    blaeu.register(hollywood())
    blaeu.register(oecd_small())
    blaeu.register(lofar(n_rows=5000))
    return blaeu


class TestHollywoodScenario:
    """Paper §4.2 scenario 1: discover concepts, build simple queries."""

    def test_full_walkthrough(self, engine):
        explorer = engine.explore("hollywood")
        themes = explorer.themes()
        assert len(themes) >= 2
        data_map = explorer.open_theme(0)
        assert data_map.n_rows == 900
        # Zoom into the biggest region, highlight, read the SQL.
        biggest = max(data_map.leaves(), key=lambda r: r.n_rows)
        zoomed = explorer.zoom(biggest.region_id)
        assert zoomed.n_rows == biggest.n_rows
        highlight = explorer.highlight(
            zoomed.leaves()[0].region_id, columns=("Title", "Genre")
        )
        assert highlight.preview
        sql = explorer.sql(zoomed.leaves()[0].region_id)
        assert sql.startswith("SELECT") and "WHERE" in sql
        explorer.rollback()
        assert explorer.state.map is data_map

    def test_profitability_question_is_answerable(self, engine):
        # "Which films are the most profitable?" — a map over the money
        # columns should separate high- and low-profit movies.
        data_map = engine.map(
            "hollywood", ("Budget", "WorldwideGross", "Profitability")
        )
        exemplar_profits = [
            leaf.exemplar["Profitability"] for leaf in data_map.leaves()
        ]
        assert max(exemplar_profits) > 2 * min(exemplar_profits)


class TestCountriesScenario:
    """Paper §4.2 scenario 2: the Figure 1 walkthrough."""

    def test_labor_theme_recovered(self, engine):
        themes = engine.themes("countries_small")
        labor = themes.theme_of(LABOR_THEME[0])
        # Long hours and leisure always travel together; income may join
        # the same theme or the country hub depending on sampling.
        assert LABOR_THEME[2] in labor.columns
        unemployment = themes.theme_of(UNEMPLOYMENT_THEME[0])
        assert set(UNEMPLOYMENT_THEME) <= set(unemployment.columns)

    def test_figure1_navigation(self, engine):
        explorer = engine.explore("countries_small")
        data_map = explorer.open_columns(LABOR_THEME)
        # Fig 1b: the first split separates long working hours around 20%.
        root_split = data_map.root.children
        assert root_split, "initial map must be subdivided"
        split_columns = {
            region.label.split(" ")[0] for region in data_map.regions()
            if not region.is_leaf or region.depth > 0
        }
        text = render_map(data_map)
        assert "% Employees Working Long Hours" in text or "Average Income" in text
        # Zoom into the largest region and project onto unemployment.
        biggest = max(data_map.leaves(), key=lambda r: r.n_rows)
        explorer.zoom(biggest.region_id)
        projected = explorer.project_columns(UNEMPLOYMENT_THEME)
        assert projected.columns == UNEMPLOYMENT_THEME
        assert "Unemployment" in render_map(projected)

    def test_theme_view_renders(self, engine):
        themes = engine.themes("countries_small")
        text = render_theme_view(themes)
        assert "THEMES" in text
        assert "Unemployment" in text


class TestLofarScenario:
    """Paper §4.2 scenario 3: a large table stays interactive."""

    def test_sampled_map_counts_exact(self, engine):
        config = engine.config
        data_map = engine.map(
            "lofar", ("Flux150MHz", "SpectralIndex", "AngularSize")
        )
        assert data_map.sample_size == config.map_sample_size
        assert data_map.n_rows == 5000
        assert sum(leaf.n_rows for leaf in data_map.leaves()) == 5000

    def test_zoom_keeps_working_at_scale(self, engine):
        explorer = engine.explore("lofar")
        data_map = explorer.open_columns(
            ("Flux150MHz", "SpectralIndex", "AngularSize", "Variability")
        )
        biggest = max(data_map.leaves(), key=lambda r: r.n_rows)
        zoomed = explorer.zoom(biggest.region_id)
        assert zoomed.n_rows == biggest.n_rows


class TestProtocolRoundTrip:
    """The Figure 4 stack: JSON in, JSON out, end to end."""

    def test_session_protocol_flow(self, engine):
        manager = SessionManager(engine)

        def send(**body):
            return json.loads(manager.handle_json(json.dumps(body)))

        tables = send(command="tables")
        assert "hollywood" in tables["tables"]
        opened = send(
            command="open", session="it", table="hollywood", theme=0
        )
        assert opened["ok"]
        children = opened["map"]["root"]["children"]
        target = max(children, key=lambda c: c["value"])
        zoomed = send(command="zoom", session="it", region=target["id"])
        assert zoomed["ok"]
        sql = send(command="sql", session="it")
        assert "WHERE" in sql["sql"]
        send(command="rollback", session="it")
        history = send(command="history", session="it")
        assert len(history["history"]) == 1
        send(command="close", session="it")
        assert manager.session_ids() == ()

    def test_map_payload_consumable_as_d3_hierarchy(self, engine):
        data_map = engine.map("hollywood", ("Budget", "WorldwideGross"))
        payload = json.loads(export_map_json(data_map))

        def walk(node, depth=0):
            assert node["value"] >= 0
            for child in node.get("children", []):
                walk(child, depth + 1)

        walk(payload["root"])


class TestDeterminism:
    def test_same_seed_same_exploration(self):
        results = []
        for _ in range(2):
            engine = Blaeu(BlaeuConfig(map_k_values=(2, 3), seed=11))
            engine.register(hollywood())
            explorer = engine.explore("hollywood")
            data_map = explorer.open_theme(0)
            biggest = max(data_map.leaves(), key=lambda r: r.n_rows)
            zoomed = explorer.zoom(biggest.region_id)
            results.append(json.loads(export_map_json(zoomed)))
        assert results[0] == results[1]

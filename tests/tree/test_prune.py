"""Unit tests for cost-complexity and legibility pruning."""

import numpy as np
import pytest

from repro.table.column import NumericColumn
from repro.table.table import Table
from repro.tree.cart import CartParams, fit_tree
from repro.tree.prune import (
    cost_complexity_prune,
    prune_for_legibility,
    pruning_path,
)


@pytest.fixture
def noisy_tree(rng):
    """A deliberately overgrown tree on noisy threshold data."""
    n = 300
    x = rng.uniform(0, 10, n)
    labels = ((x >= 5) ^ (rng.random(n) < 0.08)).astype(np.intp)  # 8% noise
    table = Table(
        "t",
        [NumericColumn("x", x), NumericColumn("z", rng.normal(0, 1, n))],
    )
    tree = fit_tree(
        table, labels,
        params=CartParams(max_depth=6, min_samples_leaf=2, min_samples_split=4),
    )
    return table, labels, tree


class TestCostComplexity:
    def test_alpha_zero_keeps_tree(self, noisy_tree):
        _, _, tree = noisy_tree
        pruned = cost_complexity_prune(tree, 0.0)
        assert pruned.n_leaves() <= tree.n_leaves()

    def test_large_alpha_collapses_to_stump_or_root(self, noisy_tree):
        _, _, tree = noisy_tree
        pruned = cost_complexity_prune(tree, 1e9)
        assert pruned.n_leaves() == 1

    def test_monotone_in_alpha(self, noisy_tree):
        _, _, tree = noisy_tree
        sizes = [
            cost_complexity_prune(tree, alpha).n_leaves()
            for alpha in (0.0, 0.5, 2.0, 10.0, 1e9)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_negative_alpha_rejected(self, noisy_tree):
        _, _, tree = noisy_tree
        with pytest.raises(ValueError):
            cost_complexity_prune(tree, -1.0)

    def test_original_untouched(self, noisy_tree):
        _, _, tree = noisy_tree
        before = tree.n_leaves()
        cost_complexity_prune(tree, 1e9)
        assert tree.n_leaves() == before


class TestPruningPath:
    def test_path_ends_at_root(self, noisy_tree):
        _, _, tree = noisy_tree
        path = pruning_path(tree)
        assert path[0] == (0.0, tree.n_leaves())
        assert path[-1][1] == 1
        leaf_counts = [leaves for _, leaves in path]
        assert leaf_counts == sorted(leaf_counts, reverse=True)


class TestLegibility:
    def test_leaf_cap_enforced(self, noisy_tree):
        _, _, tree = noisy_tree
        pruned = prune_for_legibility(tree, target_leaves=4, min_accuracy=0.0)
        assert pruned.n_leaves() <= 4

    def test_every_class_keeps_a_leaf(self, rng):
        # Three classes, one of them small: pruning must not erase it.
        x = np.concatenate([
            rng.uniform(0, 3, 100),
            rng.uniform(4, 7, 100),
            rng.uniform(8, 10, 12),
        ])
        labels = np.concatenate([
            np.zeros(100), np.ones(100), np.full(12, 2)
        ]).astype(np.intp)
        table = Table("t", [NumericColumn("x", x)])
        tree = fit_tree(table, labels)
        pruned = prune_for_legibility(tree, target_leaves=3, min_accuracy=0.5)
        predicted_classes = {
            node.prediction for node in pruned.root.walk() if node.is_leaf
        }
        assert predicted_classes == {0, 1, 2}

    def test_cleanup_removes_redundant_pure_leaves(self, rng):
        # Two clusters; the tree may split one cluster into two pure
        # leaves.  Cleanup merges them at negligible accuracy cost.
        x = np.concatenate([rng.uniform(0, 4, 100), rng.uniform(6, 10, 100)])
        labels = (x >= 5).astype(np.intp)
        table = Table(
            "t", [NumericColumn("x", x), NumericColumn("z", rng.normal(0, 1, 200))]
        )
        tree = fit_tree(
            table, labels,
            params=CartParams(max_depth=5, min_samples_leaf=2, min_samples_split=4),
        )
        pruned = prune_for_legibility(tree, target_leaves=8, min_accuracy=0.95)
        assert pruned.n_leaves() <= max(2, tree.n_leaves())
        assert pruned.accuracy(table, labels) >= 0.95

    def test_invalid_arguments_rejected(self, noisy_tree):
        _, _, tree = noisy_tree
        with pytest.raises(ValueError):
            prune_for_legibility(tree, target_leaves=0)
        with pytest.raises(ValueError):
            prune_for_legibility(tree, target_leaves=2, min_accuracy=1.5)

    def test_accuracy_floor_respected_below_cap(self, noisy_tree):
        table, labels, tree = noisy_tree
        pruned = prune_for_legibility(
            tree, target_leaves=tree.n_leaves(), min_accuracy=0.9
        )
        assert pruned.accuracy(table, labels) >= 0.9


def _structure(tree):
    """A structural signature: (column, threshold, prediction) per node."""
    return [
        (node.column, node.threshold, node.category, node.prediction)
        for node in tree.root.walk()
    ]


class TestLegibilityEdgeCases:
    def test_target_at_or_above_leaf_count_is_a_noop(self, rng):
        """A satisfied cap leaves a non-redundant tree untouched.

        Two shapes with nothing to clean up: a two-leaf stump (phase 2
        never enters below three leaves) and a three-class tree where
        every class owns exactly one leaf (no collapse is class-safe).
        """
        x = np.concatenate([rng.uniform(0, 3, 60), rng.uniform(6, 9, 60)])
        stump = fit_tree(
            Table("t", [NumericColumn("x", x)]),
            (x >= 5).astype(np.intp),
            params=CartParams(max_depth=1),
        )
        assert stump.n_leaves() == 2
        for target in (2, 5):
            pruned = prune_for_legibility(stump, target, min_accuracy=0.0)
            assert _structure(pruned) == _structure(stump)
            assert pruned is not stump  # always a copy, never aliased

        x3 = np.concatenate(
            [rng.uniform(0, 2, 50), rng.uniform(4, 6, 50), rng.uniform(8, 10, 50)]
        )
        labels3 = np.repeat(np.arange(3, dtype=np.intp), 50)
        three = fit_tree(
            Table("t", [NumericColumn("x", x3)]),
            labels3,
            params=CartParams(max_depth=2),
        )
        assert three.n_leaves() == 3  # depth-2 binary tree over 3 classes
        pruned3 = prune_for_legibility(three, 10, min_accuracy=0.0)
        assert _structure(pruned3) == _structure(three)

    def test_satisfied_cap_never_costs_accuracy(self, noisy_tree):
        """With the cap already met, only free cleanup may happen."""
        table, labels, tree = noisy_tree
        accuracy = tree.accuracy(table, labels)
        pruned = prune_for_legibility(
            tree, target_leaves=tree.n_leaves(), min_accuracy=accuracy
        )
        assert pruned.n_leaves() <= tree.n_leaves()
        assert pruned.accuracy(table, labels) >= accuracy

    def test_unreachable_min_accuracy_returns_best_effort(self, rng):
        """Conflicting labels on identical features: training accuracy
        can never reach 1.0, so the floor is unreachable — pruning must
        terminate, enforce the cap, and hand back its best effort."""
        x = np.repeat(np.arange(6, dtype=np.float64), 20)
        # Alternating group majorities with in-group conflicts: no tree
        # over x can reach training accuracy 1.0.
        labels = (
            (x.astype(np.intp) % 2) ^ (rng.random(120) < 0.3)
        ).astype(np.intp)
        table = Table("t", [NumericColumn("x", x)])
        tree = fit_tree(
            table,
            labels,
            params=CartParams(
                max_depth=5, min_samples_leaf=2, min_samples_split=4
            ),
        )
        assert tree.accuracy(table, labels) < 1.0
        pruned = prune_for_legibility(tree, target_leaves=2, min_accuracy=1.0)
        assert pruned.n_leaves() <= 2
        # Both classes stay visible despite the hard cap.
        predictions = {
            node.prediction for node in pruned.root.walk() if node.is_leaf
        }
        assert predictions == {0, 1}

    def test_single_leaf_tree_passes_through(self, rng):
        """A root-only tree (one class) has nothing to prune."""
        table = Table("t", [NumericColumn("x", rng.normal(0, 1, 40))])
        labels = np.zeros(40, dtype=np.intp)
        tree = fit_tree(table, labels)
        assert tree.n_leaves() == 1
        for target in (1, 4):
            pruned = prune_for_legibility(
                tree, target_leaves=target, min_accuracy=0.9
            )
            assert pruned.n_leaves() == 1
            assert pruned.root.is_leaf
            assert pruned.root.prediction == 0
            assert pruned is not tree
        assert tree.n_leaves() == 1  # the original is untouched

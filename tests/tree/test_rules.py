"""Unit tests for rule extraction (tree → predicates)."""

import numpy as np
import pytest

from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.predicates import Everything
from repro.table.table import Table
from repro.tree.cart import fit_tree
from repro.tree.rules import describe_leaf, leaf_predicates, tree_rules


@pytest.fixture
def fitted(rng):
    n = 300
    x = rng.uniform(0, 10, n)
    city = rng.choice(["ams", "nyc"], n)
    labels = ((x >= 5).astype(int) + (city == "nyc")).astype(np.intp)  # 0,1,2
    table = Table(
        "t",
        [
            NumericColumn("x", x),
            CategoricalColumn.from_labels("city", list(city)),
        ],
    )
    return table, labels, fit_tree(table, labels)


class TestLeafPredicates:
    def test_one_rule_per_leaf(self, fitted):
        _, _, tree = fitted
        rules = leaf_predicates(tree)
        assert len(rules) == tree.n_leaves()

    def test_rules_partition_complete_rows(self, fitted):
        table, _, tree = fitted
        rules = leaf_predicates(tree)
        coverage = np.zeros(table.n_rows, dtype=int)
        for rule in rules:
            coverage += rule.predicate.mask(table).astype(int)
        # No missing values in this table: every row matches exactly one
        # leaf predicate.
        assert (coverage == 1).all()

    def test_rule_predictions_match_tree(self, fitted):
        table, _, tree = fitted
        predictions = tree.predict(table)
        for rule in leaf_predicates(tree):
            mask = rule.predicate.mask(table)
            if mask.any():
                assert (predictions[mask] == rule.prediction).all()

    def test_sql_rendering(self, fitted):
        _, _, tree = fitted
        for rule in leaf_predicates(tree):
            sql = rule.to_sql()
            assert isinstance(sql, str) and sql

    def test_stump_rule_is_everything(self):
        table = Table("t", [NumericColumn("x", [1.0, 2.0])])
        tree = fit_tree(table, np.zeros(2, dtype=int))
        rules = leaf_predicates(tree)
        assert len(rules) == 1
        assert isinstance(rules[0].predicate, Everything)


class TestTreeRules:
    def test_one_predicate_per_class(self, fitted):
        table, _, tree = fitted
        rules = tree_rules(tree)
        predictions = tree.predict(table)
        assert set(rules) == set(np.unique(predictions).tolist())

    def test_class_predicate_covers_exactly_its_rows(self, fitted):
        table, _, tree = fitted
        predictions = tree.predict(table)
        for cls, predicate in tree_rules(tree).items():
            mask = predicate.mask(table)
            assert (mask == (predictions == cls)).all()


class TestDescribeLeaf:
    def test_empty_path(self):
        assert describe_leaf([]) == "all rows"

    def test_joined_conditions(self):
        assert describe_leaf(["x < 5", "city = ams"]) == "x < 5 and city = ams"

"""Unit and property tests for the CART implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.table import Table
from repro.tree.cart import CartParams, fit_tree


def _threshold_data(rng, n=200):
    """Labels determined by x < 5."""
    x = rng.uniform(0, 10, n)
    labels = (x >= 5).astype(np.intp)
    table = Table(
        "t", [NumericColumn("x", x), NumericColumn("noise", rng.normal(0, 1, n))]
    )
    return table, labels


class TestFitPredict:
    def test_learns_simple_threshold(self, rng):
        table, labels = _threshold_data(rng)
        tree = fit_tree(table, labels)
        assert tree.accuracy(table, labels) > 0.97
        assert tree.root.column == "x"
        assert tree.root.threshold == pytest.approx(5.0, abs=0.5)

    def test_learns_categorical_split(self, rng):
        cities = rng.choice(["ams", "nyc", "sfo"], 200)
        labels = (cities == "ams").astype(np.intp)
        table = Table("t", [CategoricalColumn.from_labels("city", list(cities))])
        tree = fit_tree(table, labels)
        assert tree.accuracy(table, labels) == 1.0
        assert tree.root.category == "ams"

    def test_learns_xor_given_depth(self, rng):
        # XOR is invisible to any single split: the greedy first cut lands
        # on noise and the tree needs extra depth to recover (a classic
        # CART behaviour, Breiman et al. §4).
        x = rng.uniform(-1, 1, 400)
        y = rng.uniform(-1, 1, 400)
        labels = ((x > 0) ^ (y > 0)).astype(np.intp)
        table = Table("t", [NumericColumn("x", x), NumericColumn("y", y)])
        tree = fit_tree(
            table,
            labels,
            params=CartParams(
                max_depth=5,
                min_samples_leaf=2,
                min_samples_split=4,
                max_numeric_thresholds=128,
            ),
        )
        assert tree.accuracy(table, labels) > 0.95

    def test_respects_max_depth(self, rng):
        table, labels = _threshold_data(rng)
        tree = fit_tree(table, labels, params=CartParams(max_depth=1))
        assert tree.depth() <= 1

    def test_respects_min_samples_leaf(self, rng):
        table, labels = _threshold_data(rng, n=100)
        tree = fit_tree(table, labels, params=CartParams(min_samples_leaf=20))
        for node in tree.root.walk():
            if node.is_leaf:
                assert node.n_samples >= 20

    def test_pure_node_stops_growing(self):
        table = Table("t", [NumericColumn("x", [1.0, 2.0, 3.0, 4.0])])
        tree = fit_tree(table, np.zeros(4, dtype=int))
        assert tree.root.is_leaf

    def test_feature_subset_respected(self, rng):
        table, labels = _threshold_data(rng)
        tree = fit_tree(table, labels, feature_names=("noise",))
        used = {n.column for n in tree.root.walk() if not n.is_leaf}
        assert used <= {"noise"}

    def test_unknown_feature_rejected(self, rng):
        table, labels = _threshold_data(rng)
        with pytest.raises(KeyError):
            fit_tree(table, labels, feature_names=("nope",))

    def test_label_validation(self, rng):
        table, labels = _threshold_data(rng)
        with pytest.raises(ValueError):
            fit_tree(table, labels[:-1])
        with pytest.raises(ValueError):
            fit_tree(table, labels - 5)

    def test_missing_values_follow_majority_branch(self, rng):
        x = np.concatenate([rng.uniform(0, 4, 80), rng.uniform(6, 10, 20)])
        labels = (x >= 5).astype(np.intp)
        x_missing = x.copy()
        x_missing[:5] = np.nan  # 5 missing cells in the majority side
        table = Table("t", [NumericColumn("x", x_missing)])
        tree = fit_tree(table, labels)
        predictions = tree.predict(table)
        # Missing rows are routed to the majority (left) branch: class 0.
        assert (predictions[:5] == 0).all()

    def test_prediction_on_unseen_table(self, rng):
        table, labels = _threshold_data(rng)
        tree = fit_tree(table, labels)
        fresh = Table(
            "fresh",
            [
                NumericColumn("x", [1.0, 9.0]),
                NumericColumn("noise", [0.0, 0.0]),
            ],
        )
        assert tree.predict(fresh).tolist() == [0, 1]

    def test_class_counts_consistent(self, rng):
        table, labels = _threshold_data(rng)
        tree = fit_tree(table, labels)
        for node in tree.root.walk():
            assert node.class_counts.sum() == node.n_samples
            if not node.is_leaf:
                assert node.left is not None and node.right is not None
                child_total = (
                    node.left.class_counts + node.right.class_counts
                )
                assert (child_total == node.class_counts).all()

    def test_split_description(self, rng):
        table, labels = _threshold_data(rng)
        tree = fit_tree(table, labels)
        assert "x <" in tree.root.split_description()
        leaf = next(n for n in tree.root.walk() if n.is_leaf)
        with pytest.raises(ValueError):
            leaf.split_description()


class TestLeafCount:
    def test_n_leaves_and_depth(self, rng):
        table, labels = _threshold_data(rng)
        tree = fit_tree(table, labels)
        leaves = [n for n in tree.root.walk() if n.is_leaf]
        assert tree.n_leaves() == len(leaves)
        assert tree.depth() == max(n.depth for n in tree.root.walk())


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=10, max_value=120),
    n_classes=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=999),
)
def test_tree_partitions_all_rows(n, n_classes, seed):
    """Every row lands in exactly one leaf; predictions are valid classes."""
    rng = np.random.default_rng(seed)
    table = Table(
        "t",
        [
            NumericColumn("a", rng.normal(0, 1, n)),
            CategoricalColumn.from_labels(
                "b", list(rng.choice(["p", "q", "r"], n))
            ),
        ],
    )
    labels = rng.integers(0, n_classes, n).astype(np.intp)
    tree = fit_tree(table, labels)
    predictions = tree.predict(table)
    assert predictions.shape == (n,)
    assert (predictions >= 0).all() and (predictions < n_classes).all()
    # Leaf sample counts partition the training set.
    leaf_total = sum(
        node.n_samples for node in tree.root.walk() if node.is_leaf
    )
    assert leaf_total == n

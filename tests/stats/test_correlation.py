"""Unit tests for correlation coefficients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.correlation import column_correlation, pearson, spearman
from repro.table.column import NumericColumn


class TestPearson:
    def test_perfect_positive(self):
        x = np.asarray([1.0, 2.0, 3.0, 4.0])
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.asarray([1.0, 2.0, 3.0, 4.0])
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_independent_near_zero(self, rng):
        x = rng.normal(0, 1, 2000)
        y = rng.normal(0, 1, 2000)
        assert abs(pearson(x, y)) < 0.1

    def test_constant_gives_zero(self):
        x = np.asarray([1.0, 1.0, 1.0])
        assert pearson(x, np.asarray([1.0, 2.0, 3.0])) == 0.0

    def test_nan_pairs_dropped(self):
        x = np.asarray([1.0, 2.0, 3.0, np.nan, 5.0])
        y = np.asarray([2.0, 4.0, 6.0, 8.0, np.nan])
        assert pearson(x, y) == pytest.approx(1.0)

    def test_too_few_rows_give_zero(self):
        assert pearson(np.asarray([1.0, 2.0]), np.asarray([1.0, 2.0])) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson(np.asarray([1.0]), np.asarray([1.0, 2.0]))


class TestSpearman:
    def test_monotone_nonlinear_is_one(self):
        x = np.asarray([1.0, 2.0, 3.0, 4.0, 5.0])
        assert spearman(x, np.exp(x)) == pytest.approx(1.0)

    def test_handles_ties(self):
        x = np.asarray([1.0, 1.0, 2.0, 3.0])
        y = np.asarray([1.0, 1.0, 2.0, 3.0])
        assert spearman(x, y) == pytest.approx(1.0)

    def test_reversed_is_minus_one(self):
        x = np.asarray([1.0, 2.0, 3.0, 4.0])
        assert spearman(x, x[::-1].copy()) == pytest.approx(-1.0)


class TestColumnCorrelation:
    def test_absolute_value(self, rng):
        base = rng.normal(0, 1, 100)
        a = NumericColumn("a", base)
        b = NumericColumn("b", -base)
        assert column_correlation(a, b) == pytest.approx(1.0)

    def test_rank_option(self, rng):
        base = np.linspace(1, 5, 50)
        a = NumericColumn("a", base)
        b = NumericColumn("b", np.exp(base))
        assert column_correlation(a, b, rank=True) == pytest.approx(1.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            column_correlation(
                NumericColumn("a", [1.0]), NumericColumn("b", [1.0, 2.0])
            )


_vectors = st.lists(
    st.floats(min_value=-50, max_value=50, allow_nan=False),
    min_size=3,
    max_size=40,
)


@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_correlations_bounded_and_symmetric(data):
    n = data.draw(st.integers(min_value=3, max_value=30))
    x = np.asarray(data.draw(st.lists(
        st.floats(-50, 50, allow_nan=False), min_size=n, max_size=n)))
    y = np.asarray(data.draw(st.lists(
        st.floats(-50, 50, allow_nan=False), min_size=n, max_size=n)))
    for measure in (pearson, spearman):
        r = measure(x, y)
        assert -1.0 <= r <= 1.0
        assert measure(y, x) == pytest.approx(r)

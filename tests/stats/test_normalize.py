"""Unit and property tests for scaling utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.normalize import minmax_scale, robust_scale, zscore


class TestZScore:
    def test_centers_and_scales(self, rng):
        values = rng.normal(10, 3, 500)
        scaled, stats = zscore(values)
        assert scaled.mean() == pytest.approx(0.0, abs=1e-9)
        assert scaled.std() == pytest.approx(1.0, abs=1e-9)
        assert stats.center == pytest.approx(values.mean())

    def test_nan_transparent(self):
        values = np.asarray([1.0, np.nan, 3.0])
        scaled, _ = zscore(values)
        assert np.isnan(scaled[1])
        assert not np.isnan(scaled[[0, 2]]).any()

    def test_constant_column_maps_to_zero(self):
        scaled, stats = zscore(np.asarray([5.0, 5.0, 5.0]))
        assert scaled.tolist() == [0.0, 0.0, 0.0]
        assert stats.scale == 0.0

    def test_all_missing(self):
        scaled, _ = zscore(np.asarray([np.nan, np.nan]))
        assert np.isnan(scaled).all()


class TestMinMax:
    def test_unit_interval(self):
        scaled, _ = minmax_scale(np.asarray([2.0, 4.0, 6.0]))
        assert scaled.tolist() == [0.0, 0.5, 1.0]

    def test_constant(self):
        scaled, _ = minmax_scale(np.asarray([3.0, 3.0]))
        assert scaled.tolist() == [0.0, 0.0]


class TestRobust:
    def test_median_centered(self):
        values = np.asarray([1.0, 2.0, 3.0, 4.0, 100.0])
        scaled, stats = robust_scale(values)
        assert stats.center == 3.0
        # The outlier barely affects the IQR-based scale.
        assert abs(scaled[2]) < 1e-12

    def test_less_outlier_sensitive_than_zscore(self, rng):
        values = np.concatenate([rng.normal(0, 1, 200), [1000.0]])
        z, _ = zscore(values)
        r, _ = robust_scale(values)
        # Typical points keep more resolution under robust scaling.
        assert np.median(np.abs(r[:-1])) > np.median(np.abs(z[:-1]))


_vectors = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=60,
)


@settings(max_examples=100, deadline=None)
@given(values=_vectors)
def test_scalers_roundtrip(values):
    array = np.asarray(values)
    for scaler in (zscore, minmax_scale, robust_scale):
        scaled, stats = scaler(array)
        if stats.scale == 0.0:
            continue  # constant columns are deliberately not invertible
        back = stats.invert(scaled)
        np.testing.assert_allclose(back, array, rtol=1e-9, atol=1e-6)


@settings(max_examples=100, deadline=None)
@given(values=_vectors)
def test_scalers_preserve_shape_and_missingness(values):
    array = np.asarray(values)
    array = np.where(np.arange(array.size) % 5 == 0, np.nan, array)
    for scaler in (zscore, minmax_scale, robust_scale):
        scaled, _ = scaler(array)
        assert scaled.shape == array.shape
        assert (np.isnan(scaled) == np.isnan(array)).all()

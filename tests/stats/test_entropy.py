"""Unit and property tests for entropy estimators."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.entropy import (
    conditional_entropy,
    entropy_from_counts,
    joint_entropy,
    shannon_entropy,
)


class TestEntropyFromCounts:
    def test_uniform_two(self):
        assert entropy_from_counts(np.asarray([5, 5])) == pytest.approx(
            math.log(2)
        )

    def test_deterministic_is_zero(self):
        assert entropy_from_counts(np.asarray([10, 0, 0])) == 0.0

    def test_empty_counts(self):
        assert entropy_from_counts(np.asarray([])) == 0.0

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            entropy_from_counts(np.asarray([3, -1]))


class TestShannonEntropy:
    def test_matches_formula(self):
        codes = np.asarray([0, 0, 0, 1])
        expected = -(0.75 * math.log(0.75) + 0.25 * math.log(0.25))
        assert shannon_entropy(codes) == pytest.approx(expected)

    def test_empty(self):
        assert shannon_entropy(np.asarray([], dtype=int)) == 0.0

    def test_negative_codes_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            shannon_entropy(np.asarray([0, -1]))


class TestJointAndConditional:
    def test_joint_of_independent_uniform(self):
        x = np.asarray([0, 0, 1, 1])
        y = np.asarray([0, 1, 0, 1])
        assert joint_entropy(x, y) == pytest.approx(math.log(4))

    def test_joint_of_identical_equals_marginal(self):
        x = np.asarray([0, 1, 2, 0, 1, 2])
        assert joint_entropy(x, x) == pytest.approx(shannon_entropy(x))

    def test_conditional_of_function_is_zero(self):
        y = np.asarray([0, 1, 0, 1, 0, 1])
        x = y * 2  # x is a function of y
        assert conditional_entropy(x, y) == pytest.approx(0.0, abs=1e-12)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            joint_entropy(np.asarray([0]), np.asarray([0, 1]))


_codes = st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=60)


@settings(max_examples=100, deadline=None)
@given(x=_codes)
def test_entropy_nonnegative_and_bounded(x):
    codes = np.asarray(x)
    h = shannon_entropy(codes)
    assert 0.0 <= h <= math.log(max(np.unique(codes).size, 1)) + 1e-12


@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_joint_entropy_bounds(data):
    n = data.draw(st.integers(min_value=1, max_value=50))
    x = np.asarray(data.draw(st.lists(
        st.integers(0, 4), min_size=n, max_size=n)))
    y = np.asarray(data.draw(st.lists(
        st.integers(0, 4), min_size=n, max_size=n)))
    h_x = shannon_entropy(x)
    h_y = shannon_entropy(y)
    h_xy = joint_entropy(x, y)
    # max(H(X), H(Y)) <= H(X,Y) <= H(X) + H(Y)
    assert h_xy >= max(h_x, h_y) - 1e-9
    assert h_xy <= h_x + h_y + 1e-9


@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_conditional_entropy_nonnegative(data):
    n = data.draw(st.integers(min_value=1, max_value=50))
    x = np.asarray(data.draw(st.lists(
        st.integers(0, 4), min_size=n, max_size=n)))
    y = np.asarray(data.draw(st.lists(
        st.integers(0, 4), min_size=n, max_size=n)))
    assert conditional_entropy(x, y) >= -1e-9

"""Unit and property tests for mutual information between columns."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.mutual_info import (
    column_dependency,
    mutual_information,
    normalized_mutual_information,
    pairwise_dependencies,
)
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.table import Table


class TestMutualInformation:
    def test_identical_codes(self):
        x = np.asarray([0, 1, 2, 0, 1, 2])
        assert mutual_information(x, x) > 0
        assert normalized_mutual_information(x, x) == pytest.approx(1.0)

    def test_independent_codes(self):
        x = np.asarray([0, 0, 1, 1])
        y = np.asarray([0, 1, 0, 1])
        assert mutual_information(x, y) == pytest.approx(0.0, abs=1e-12)
        assert normalized_mutual_information(x, y) == pytest.approx(0.0, abs=1e-12)

    def test_constant_vectors_give_zero(self):
        x = np.zeros(10, dtype=int)
        assert normalized_mutual_information(x, x) == 0.0


class TestColumnDependency:
    def test_strongly_dependent_numeric_pair(self, rng):
        base = rng.normal(0, 1, 400)
        a = NumericColumn("a", base)
        b = NumericColumn("b", base * 2 + rng.normal(0, 0.05, 400))
        c = NumericColumn("c", rng.normal(0, 1, 400))
        assert column_dependency(a, b) > 3 * column_dependency(a, c)

    def test_nonlinear_dependency_detected(self, rng):
        # The paper chose MI precisely because it is "sensitive to
        # non-linear relationships" — a parabola has ~0 correlation but
        # high MI.
        base = rng.normal(0, 1, 500)
        a = NumericColumn("a", base)
        b = NumericColumn("b", base**2 + rng.normal(0, 0.05, 500))
        independent = NumericColumn("i", rng.normal(0, 1, 500))
        assert column_dependency(a, b) > 3 * column_dependency(a, independent)

    def test_mixed_types(self, rng):
        labels = rng.choice(["x", "y"], 300)
        values = np.where(labels == "x", 0.0, 5.0) + rng.normal(0, 0.3, 300)
        cat = CategoricalColumn.from_labels("c", list(labels))
        num = NumericColumn("n", values)
        assert column_dependency(cat, num) > 0.5

    def test_missing_rows_dropped_pairwise(self, rng):
        base = rng.normal(0, 1, 200)
        holes = base.copy()
        holes[:50] = np.nan
        a = NumericColumn("a", holes)
        b = NumericColumn("b", base)
        # Should still detect strong dependency from the complete rows.
        assert column_dependency(a, b) > 0.5

    def test_too_few_complete_rows_give_zero(self):
        a = NumericColumn("a", [1.0, 2.0, np.nan, np.nan, 5.0])
        b = NumericColumn("b", [1.0, 2.0, 3.0, 4.0, 5.0])
        assert column_dependency(a, b) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            column_dependency(
                NumericColumn("a", [1.0]), NumericColumn("b", [1.0, 2.0])
            )

    def test_unnormalized_option(self, rng):
        base = rng.normal(0, 1, 300)
        a = NumericColumn("a", base)
        b = NumericColumn("b", base + rng.normal(0, 0.01, 300))
        raw = column_dependency(a, b, normalized=False)
        assert raw > 1.0  # nats, unbounded above 1


class TestPairwiseDependencies:
    def test_keys_cover_all_pairs_in_order(self, rng):
        table = Table(
            "t",
            [
                NumericColumn("a", rng.normal(0, 1, 50)),
                NumericColumn("b", rng.normal(0, 1, 50)),
                NumericColumn("c", rng.normal(0, 1, 50)),
            ],
        )
        pairs = pairwise_dependencies(table)
        assert set(pairs) == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_matches_single_pair_estimates(self, rng):
        base = rng.normal(0, 1, 300)
        table = Table(
            "t",
            [
                NumericColumn("a", base),
                NumericColumn("b", base + rng.normal(0, 0.1, 300)),
            ],
        )
        pairs = pairwise_dependencies(table)
        direct = column_dependency(table.column("a"), table.column("b"))
        assert pairs[("a", "b")] == pytest.approx(direct)

    def test_column_subset(self, rng):
        table = Table(
            "t",
            [
                NumericColumn("a", rng.normal(0, 1, 40)),
                NumericColumn("b", rng.normal(0, 1, 40)),
                NumericColumn("c", rng.normal(0, 1, 40)),
            ],
        )
        pairs = pairwise_dependencies(table, columns=["a", "c"])
        assert set(pairs) == {("a", "c")}


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------

_codes = st.lists(st.integers(min_value=0, max_value=4), min_size=2, max_size=50)


@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_mi_symmetry_and_bounds(data):
    n = data.draw(st.integers(min_value=2, max_value=40))
    x = np.asarray(data.draw(st.lists(st.integers(0, 4), min_size=n, max_size=n)))
    y = np.asarray(data.draw(st.lists(st.integers(0, 4), min_size=n, max_size=n)))
    assert mutual_information(x, y) == pytest.approx(mutual_information(y, x))
    assert mutual_information(x, y) >= 0.0
    nmi = normalized_mutual_information(x, y)
    assert 0.0 <= nmi <= 1.0


@settings(max_examples=50, deadline=None)
@given(x=_codes)
def test_nmi_of_self_is_one_unless_constant(x):
    codes = np.asarray(x)
    nmi = normalized_mutual_information(codes, codes)
    if np.unique(codes).size > 1:
        assert nmi == pytest.approx(1.0)
    else:
        assert nmi == 0.0

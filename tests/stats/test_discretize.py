"""Unit tests for binning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.discretize import (
    MISSING_BIN,
    BinningRule,
    discretize_column,
    equal_frequency_bins,
    equal_width_bins,
    suggest_bin_count,
)
from repro.table.column import CategoricalColumn, NumericColumn


class TestSuggestBinCount:
    def test_sturges(self):
        assert suggest_bin_count(1) == 1
        assert suggest_bin_count(100) == 8  # ceil(log2(100)+1)
        assert suggest_bin_count(1024) == 11

    def test_rice_and_sqrt(self):
        assert suggest_bin_count(1000, BinningRule.RICE) == 20
        assert suggest_bin_count(100, BinningRule.SQRT) == 10

    def test_cap(self):
        assert suggest_bin_count(10**9, BinningRule.SQRT, max_bins=32) == 32


class TestEqualWidth:
    def test_even_spread(self):
        codes = equal_width_bins(np.asarray([0.0, 1.0, 2.0, 3.0]), 2)
        assert codes.tolist() == [0, 0, 1, 1]

    def test_max_value_lands_in_last_bin(self):
        codes = equal_width_bins(np.linspace(0, 1, 11), 5)
        assert codes.max() == 4

    def test_constant_column_single_bin(self):
        codes = equal_width_bins(np.asarray([7.0, 7.0]), 4)
        assert codes.tolist() == [0, 0]

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            equal_width_bins(np.asarray([1.0, np.nan]), 2)

    def test_bad_bin_count_rejected(self):
        with pytest.raises(ValueError):
            equal_width_bins(np.asarray([1.0]), 0)


class TestEqualFrequency:
    def test_balanced_counts(self, rng):
        values = rng.normal(0, 1, 1000)
        codes = equal_frequency_bins(values, 4)
        counts = np.bincount(codes)
        assert counts.size == 4
        assert counts.min() > 200  # roughly 250 each

    def test_ties_merge_edges(self):
        values = np.asarray([1.0] * 90 + [2.0] * 10)
        codes = equal_frequency_bins(values, 4)
        # Quantile edges collapse onto 1.0; only 2 effective bins remain.
        assert np.unique(codes).size <= 2

    def test_empty_input(self):
        assert equal_frequency_bins(np.empty(0), 3).size == 0


class TestDiscretizeColumn:
    def test_categorical_passthrough(self):
        column = CategoricalColumn.from_labels("c", ["a", "b", None, "a"])
        codes = discretize_column(column)
        assert codes.tolist() == [0, 1, MISSING_BIN, 0]

    def test_numeric_missing_marked(self):
        column = NumericColumn("x", [1.0, np.nan, 3.0, 4.0, 5.0])
        codes = discretize_column(column, n_bins=2)
        assert codes[1] == MISSING_BIN
        assert (codes[[0, 2, 3, 4]] >= 0).all()

    def test_all_missing_column(self):
        column = NumericColumn("x", [np.nan, np.nan])
        assert (discretize_column(column) == MISSING_BIN).all()

    def test_equal_width_option(self, rng):
        column = NumericColumn("x", rng.normal(0, 1, 300))
        ef = discretize_column(column, n_bins=8, equal_frequency=True)
        ew = discretize_column(column, n_bins=8, equal_frequency=False)
        # Equal-frequency bins are more balanced than equal-width bins
        # on Gaussian data.
        assert np.bincount(ef).std() < np.bincount(ew).std()


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=1,
        max_size=80,
    ),
    n_bins=st.integers(min_value=1, max_value=12),
)
def test_binning_codes_always_in_range(values, n_bins):
    array = np.asarray(values)
    for scheme in (equal_width_bins, equal_frequency_bins):
        codes = scheme(array, n_bins)
        assert codes.shape == array.shape
        assert codes.min(initial=0) >= 0
        assert codes.max(initial=0) < n_bins

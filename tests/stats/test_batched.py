"""Property tests: the batched NMI kernel against the scalar reference.

The contract under test is the acceptance criterion of the graph-engine
PR: on identical codes, :func:`pairwise_nmi_matrix` must agree with the
scalar :func:`column_dependency` path to ``atol 1e-12`` across random
mixed-type tables with missing values, constant columns, all-missing
columns and sub-``MIN_COMPLETE_ROWS`` overlaps — and the streaming and
thread-parallel variants must agree with the in-memory kernel bit for
bit.
"""

import numpy as np
import pytest

from repro.stats.batched import (
    ColumnCodes,
    StreamingPairwiseNMI,
    encode_table,
    pairwise_nmi_matrix,
)
from repro.stats.mutual_info import MIN_COMPLETE_ROWS, column_dependency
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.table import Table

ATOL = 1e-12


def mixed_table(n: int, seed: int) -> Table:
    """A random mixed-type table exercising every degenerate shape."""
    rng = np.random.default_rng(seed)
    columns = []
    base = rng.normal(0.0, 1.0, n)
    for i in range(5):
        values = base * rng.uniform(-2, 2) + rng.normal(
            0.0, rng.uniform(0.1, 2.0), n
        )
        if i % 2 == 0:
            values = values.copy()
            values[rng.random(n) < rng.uniform(0.0, 0.3)] = np.nan
        columns.append(NumericColumn(f"num{i}", values))
    labels = np.array(["a", "b", "c", "d"])[rng.integers(0, 4, n)].astype(
        object
    )
    labels[rng.random(n) < 0.2] = None
    columns.append(CategoricalColumn.from_labels("cat", list(labels)))
    columns.append(NumericColumn("const", np.full(n, 3.14)))
    columns.append(NumericColumn("all_missing", np.full(n, np.nan)))
    sparse = np.full(n, np.nan)
    k = min(MIN_COMPLETE_ROWS - 3, n)
    sparse[:k] = rng.normal(0.0, 1.0, k)
    columns.append(NumericColumn("sparse", sparse))
    return Table("mixed", columns)


def scalar_reference(table: Table) -> np.ndarray:
    """The weight matrix built one pair at a time from the scalar path."""
    names = table.column_names
    out = np.eye(len(names))
    for i, a in enumerate(names):
        for j in range(i + 1, len(names)):
            value = column_dependency(table.column(a), table.column(names[j]))
            out[i, j] = out[j, i] = value
    return out


class TestKernelAgainstScalarReference:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("n", [1, 9, 60, 400])
    def test_matches_column_dependency(self, n, seed):
        table = mixed_table(n, seed)
        weights = pairwise_nmi_matrix(encode_table(table))
        np.testing.assert_allclose(
            weights, scalar_reference(table), atol=ATOL, rtol=0.0
        )

    def test_symmetric_unit_diagonal_bounded(self):
        weights = pairwise_nmi_matrix(encode_table(mixed_table(200, 9)))
        assert np.array_equal(weights, weights.T)
        assert np.all(np.diag(weights) == 1.0)
        assert weights.min() >= 0.0 and weights.max() <= 1.0

    def test_sub_min_complete_overlap_is_zero(self):
        table = mixed_table(100, 3)
        weights = pairwise_nmi_matrix(encode_table(table))
        names = list(table.column_names)
        sparse = names.index("sparse")
        assert np.all(weights[sparse, : sparse] == 0.0)
        for degenerate in ("const", "all_missing"):
            row = names.index(degenerate)
            off = np.delete(weights[row], row)
            assert np.all(off == 0.0)

    def test_single_column(self):
        table = mixed_table(50, 0)
        codes = encode_table(table, columns=("num0",))
        assert np.array_equal(pairwise_nmi_matrix(codes), np.eye(1))


class TestParallelAndStreamingAgreeBitwise:
    @pytest.mark.parametrize("seed", range(3))
    def test_thread_fanout_identical(self, seed):
        codes = encode_table(mixed_table(250, seed))
        serial = pairwise_nmi_matrix(codes, n_jobs=None)
        for n_jobs in (1, 2, 0):
            assert np.array_equal(
                serial, pairwise_nmi_matrix(codes, n_jobs=n_jobs)
            )

    @pytest.mark.parametrize("chunk", [1, 17, 100, 1000])
    def test_streaming_identical(self, chunk):
        codes = encode_table(mixed_table(300, 4))
        expected = pairwise_nmi_matrix(codes)
        streaming = StreamingPairwiseNMI(codes.names, codes.n_codes)
        for start in range(0, codes.n_rows, chunk):
            streaming.update(codes.codes[:, start : start + chunk])
        assert np.array_equal(expected, streaming.finalize())

    def test_streaming_rejects_mismatched_chunk(self):
        streaming = StreamingPairwiseNMI(("a", "b"), (2, 2))
        with pytest.raises(ValueError, match="chunk"):
            streaming.update(np.zeros((3, 10), dtype=np.int32))

    def test_streaming_refuses_oversized_layout(self):
        with pytest.raises(ValueError, match="sample"):
            StreamingPairwiseNMI(
                tuple(f"c{i}" for i in range(40)), (3000,) * 40
            )


class TestColumnCodes:
    def test_gather_restricts_rows(self):
        codes = encode_table(mixed_table(120, 5))
        picked = np.asarray([3, 10, 11, 57])
        gathered = codes.gather(picked)
        assert gathered.n_rows == 4
        assert gathered.n_codes == codes.n_codes
        assert np.array_equal(gathered.codes, codes.codes[:, picked])

    def test_gathered_codes_feed_the_kernel(self):
        codes = encode_table(mixed_table(200, 6))
        rows = np.arange(0, 200, 3)
        from_gather = pairwise_nmi_matrix(codes.gather(rows))
        assert from_gather.shape == (codes.n_columns, codes.n_columns)
        assert np.all(np.diag(from_gather) == 1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="matrix"):
            ColumnCodes(("a",), np.zeros(3, dtype=np.int32), (1,))
        with pytest.raises(ValueError, match="names"):
            ColumnCodes(("a",), np.zeros((2, 3), dtype=np.int32), (1, 1))
        with pytest.raises(ValueError, match="n_codes"):
            ColumnCodes(("a", "b"), np.zeros((2, 3), dtype=np.int32), (1,))

    def test_encode_cardinalities(self):
        table = mixed_table(100, 7)
        codes = encode_table(table)
        names = list(codes.names)
        assert codes.n_codes[names.index("cat")] == 4
        assert codes.n_codes[names.index("all_missing")] == 0
        # A constant column collapses to one occupied bin (the scalar
        # discretizer's long-standing "ties go low" quirk puts it at
        # code 1, so the cardinality bound is 2).
        assert codes.n_codes[names.index("const")] == 2
        for row, card in zip(codes.codes, codes.n_codes):
            assert row.max(initial=-1) < max(card, 1)
            assert row.min(initial=0) >= -1

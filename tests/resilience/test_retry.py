"""Unit tests for the retry budget and jittered backoff."""

from __future__ import annotations

import random

import pytest

from repro.resilience.retry import RetryBudget, jittered_backoff


class TestRetryBudget:
    def test_starts_full_and_spends_down_to_empty(self):
        budget = RetryBudget(ratio=0.1, burst=3.0)
        assert budget.tokens == pytest.approx(3.0)
        assert budget.try_spend()
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()  # exhausted
        assert budget.tokens == pytest.approx(0.0)

    def test_requests_deposit_ratio_tokens(self):
        budget = RetryBudget(ratio=0.5, burst=10.0)
        for _ in range(10):
            budget.try_spend()
        assert not budget.try_spend()
        budget.record_request()
        budget.record_request()  # two completed requests -> one token
        assert budget.try_spend()
        assert not budget.try_spend()

    def test_deposits_cap_at_burst(self):
        budget = RetryBudget(ratio=1.0, burst=2.0)
        for _ in range(50):
            budget.record_request()
        assert budget.tokens == pytest.approx(2.0)

    def test_retries_dry_up_during_an_outage(self):
        # During a full outage every request retries but none succeeds:
        # spends outpace deposits 1 : ratio, so the bucket drains and
        # stays near empty instead of amplifying the hammering.
        budget = RetryBudget(ratio=0.2, burst=5.0)
        granted = 0
        for _ in range(100):
            budget.record_request()
            if budget.try_spend():
                granted += 1
        assert granted <= 5 + 100 * 0.2 + 1
        assert budget.tokens < 1.0

    def test_rejects_sub_one_burst(self):
        with pytest.raises(ValueError):
            RetryBudget(burst=0.5)


class TestJitteredBackoff:
    def test_deterministic_under_a_seeded_rng(self):
        first = [
            jittered_backoff(n, rng=random.Random(7)) for n in range(5)
        ]
        second = [
            jittered_backoff(n, rng=random.Random(7)) for n in range(5)
        ]
        assert first == second

    def test_stays_inside_the_jitter_window(self):
        rng = random.Random(123)
        for attempt in range(6):
            window = min(1.0, 0.05 * (2**attempt))
            for _ in range(50):
                delay = jittered_backoff(attempt, rng=rng)
                assert window * 0.5 <= delay <= window

    def test_window_grows_exponentially_then_caps(self):
        # rng pinned to the top of the window exposes the raw schedule.
        class Top:
            @staticmethod
            def random() -> float:
                return 1.0

        delays = [
            jittered_backoff(n, base=0.05, cap=1.0, rng=Top())
            for n in range(8)
        ]
        assert delays[:5] == pytest.approx([0.05, 0.1, 0.2, 0.4, 0.8])
        assert delays[5:] == pytest.approx([1.0, 1.0, 1.0])  # capped

    def test_negative_attempts_clamp_to_the_first_window(self):
        assert jittered_backoff(-3, rng=random.Random(1)) <= 0.05

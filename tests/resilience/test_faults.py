"""Unit tests for the deterministic fault-injection harness."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.resilience.breaker import CircuitBreaker, OPEN
from repro.resilience.faults import (
    FaultInjector,
    FaultSpec,
    InjectedFault,
    clear_faults,
    corrupt_bytes,
    fault_point,
    faults_from_env,
    install_faults,
    parse_faults,
)


@pytest.fixture(autouse=True)
def _pristine_injector():
    """Every test leaves the process-global injector uninstalled."""
    clear_faults()
    yield
    clear_faults()


class TestParsing:
    def test_round_trips_the_env_document(self):
        injector = parse_faults(
            '{"seed": 7, "faults": ['
            '{"site": "store.artifact.read", "mode": "error", "rate": 0.2},'
            '{"site": "worker.request", "mode": "kill", "after": 5, "count": 1}'
            "]}"
        )
        assert isinstance(injector, FaultInjector)

    @pytest.mark.parametrize(
        "payload",
        [
            "not json",
            "[]",  # bare list: the seed would be lost
            '{"seed": 1}',  # no faults key
            '{"seed": 1, "faults": [{"site": "x", "mode": "explode"}]}',
            '{"seed": 1, "faults": [{"site": "x", "mode": "error", "rate": 2}]}',
        ],
    )
    def test_rejects_malformed_documents(self, payload):
        with pytest.raises(ValueError):
            parse_faults(payload)

    def test_faults_from_env(self, monkeypatch):
        monkeypatch.setenv(
            "BLAEU_FAULTS",
            '{"seed": 3, "faults": [{"site": "s", "mode": "error"}]}',
        )
        assert faults_from_env() is not None
        monkeypatch.setenv("BLAEU_FAULTS", "")
        assert faults_from_env() is None


class TestDeterminism:
    SPECS = [FaultSpec(site="store.*", mode="error", rate=0.3)]

    def _pattern(self, seed: int, hits: int = 200) -> list[bool]:
        injector = FaultInjector(list(self.SPECS), seed=seed)
        return [
            injector.fire("store.artifact.read") is not None
            for _ in range(hits)
        ]

    def test_same_seed_same_firing_pattern(self):
        assert self._pattern(seed=42) == self._pattern(seed=42)

    def test_rate_is_roughly_honoured(self):
        fired = sum(self._pattern(seed=42))
        assert 30 <= fired <= 90  # 200 hits at rate 0.3

    def test_different_seeds_decorrelate(self):
        patterns = {tuple(self._pattern(seed=s)) for s in range(5)}
        assert len(patterns) > 1


class TestWindows:
    def test_after_skips_the_warmup_hits(self):
        injector = FaultInjector(
            [FaultSpec(site="s", mode="error", after=2)], seed=0
        )
        assert injector.fire("s") is None
        assert injector.fire("s") is None
        assert injector.fire("s") is not None

    def test_count_bounds_total_fires(self):
        injector = FaultInjector(
            [FaultSpec(site="s", mode="error", count=1)], seed=0
        )
        assert injector.fire("s") is not None
        assert injector.fire("s") is None
        assert injector.fired("s") == 1

    def test_site_globs_match(self):
        injector = FaultInjector(
            [FaultSpec(site="store.artifact.*", mode="error")], seed=0
        )
        assert injector.fire("store.artifact.read") is not None
        assert injector.fire("store.index") is None

    def test_mode_filters_keep_budgets_independent(self):
        # A torn rule must not be consumed (nor fired) by fault_point's
        # error-ish modes, and vice versa.
        injector = FaultInjector(
            [
                FaultSpec(site="s", mode="torn", count=1),
                FaultSpec(site="s", mode="error", count=1),
            ],
            seed=0,
        )
        spec = injector.fire("s", modes=("error",))
        assert spec is not None and spec.mode == "error"
        spec = injector.fire("s", modes=("torn",))
        assert spec is not None and spec.mode == "torn"


class TestFaultPoints:
    def test_noop_without_an_injector(self):
        fault_point("anything")  # must not raise
        assert corrupt_bytes("anything", b"abcd") == b"abcd"

    def test_error_mode_raises_an_oserror(self):
        install_faults(
            FaultInjector([FaultSpec(site="s", mode="error")], seed=0)
        )
        with pytest.raises(InjectedFault) as excinfo:
            fault_point("s")
        assert isinstance(excinfo.value, OSError)

    def test_latency_mode_delays_then_proceeds(self):
        install_faults(
            FaultInjector(
                [FaultSpec(site="s", mode="latency", seconds=0.01, count=1)],
                seed=0,
            )
        )
        fault_point("s")  # sleeps 10ms, returns
        fault_point("s")  # budget spent: pure no-op

    def test_torn_mode_halves_the_blob(self):
        install_faults(
            FaultInjector([FaultSpec(site="s", mode="torn")], seed=0)
        )
        assert corrupt_bytes("s", b"0123456789") == b"01234"


class TestStoreIntegration:
    """The injectors driving the real artifact cache (satellite tests)."""

    def _payload(self, seed: int) -> dict[str, object]:
        return {"seed": seed, "values": np.arange(512, dtype=np.float64)}

    def test_injected_read_errors_feed_the_breaker(self, tmp_path):
        from repro.store.artifacts import ArtifactCache

        install_faults(
            FaultInjector(
                [FaultSpec(site="store.artifact.read", mode="error")], seed=0
            )
        )
        breaker = CircuitBreaker(
            name="l2", failure_threshold=3, recovery_time=60.0
        )
        cache = ArtifactCache(tmp_path / "c", breaker=breaker)
        cache.put("k", self._payload(1))
        for _ in range(3):
            assert cache.get("k") is None  # injected IO error -> miss
        assert breaker.state == OPEN
        # Open breaker short-circuits: still a miss, but the disk (and
        # the fault point in front of it) is no longer touched.
        before = cache.stats().misses
        assert cache.get("k") is None
        assert cache.stats().misses == before + 1

    def test_torn_index_during_eviction_degrades_and_heals(self, tmp_path):
        from repro.store.artifacts import ArtifactCache

        # Arm the tear AFTER the first couple of index writes so the
        # cache has real entries, then force an eviction pass: the
        # index rewritten during eviction lands torn on disk.
        install_faults(
            FaultInjector(
                [
                    FaultSpec(
                        site="store.artifact.index",
                        mode="torn",
                        after=2,
                        count=1,
                    )
                ],
                seed=0,
            )
        )
        from repro.store.codec import encode

        entry_bytes = len(encode(self._payload(0)))
        cache = ArtifactCache(tmp_path / "c", max_bytes=entry_bytes * 2 + 64)
        cache.put("a", self._payload(1))
        cache.put("b", self._payload(2))
        cache.put("c", self._payload(3))  # evicts, index write torn
        clear_faults()
        # Objects stay readable: the index is a rebuildable accessory.
        assert cache.get("c") is not None
        # The next write rewrites a valid index from the survivors.
        cache.put("d", self._payload(4))
        assert cache.get("d") is not None
        index_text = (cache.root / "index.json").read_text(encoding="utf-8")
        assert isinstance(json.loads(index_text), dict)  # healed

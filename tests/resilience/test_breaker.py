"""Unit tests for the circuit breaker, driven by a fake clock."""

from __future__ import annotations

import threading

import pytest

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make(clock, **overrides) -> CircuitBreaker:
    kwargs = dict(
        name="test",
        failure_threshold=3,
        recovery_time=5.0,
        clock=clock,
    )
    kwargs.update(overrides)
    return CircuitBreaker(**kwargs)


class TestTripping:
    def test_stays_closed_below_the_threshold(self):
        breaker = make(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_consecutive_failures_trip_it_open(self):
        breaker = make(FakeClock())
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.stats().opens == 1

    def test_a_success_resets_the_failure_streak(self):
        breaker = make(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never three in a row

    def test_open_short_circuits_without_touching_the_dependency(self):
        breaker = make(FakeClock())
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.stats().short_circuits == 2


class TestRecovery:
    def test_half_open_after_the_recovery_window(self):
        clock = FakeClock()
        breaker = make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(4.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_a_bounded_probe(self):
        clock = FakeClock()
        breaker = make(clock, half_open_probes=1)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everyone else keeps short-circuiting

    def test_probe_success_closes_it(self):
        clock = FakeClock()
        breaker = make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_for_another_full_window(self):
        clock = FakeClock()
        breaker = make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.stats().opens == 2
        clock.advance(4.9)
        assert breaker.state == OPEN  # window restarted at the re-open


class TestLatencyThreshold:
    def test_slow_successes_count_as_failures(self):
        breaker = make(FakeClock(), latency_threshold=0.1)
        for _ in range(3):
            breaker.record_success(seconds=0.5)
        assert breaker.state == OPEN

    def test_fast_successes_do_not(self):
        breaker = make(FakeClock(), latency_threshold=0.1)
        for _ in range(10):
            breaker.record_success(seconds=0.01)
        assert breaker.state == CLOSED


class TestThreadSafety:
    def test_concurrent_failures_trip_exactly_once(self):
        breaker = make(FakeClock(), failure_threshold=8)
        barrier = threading.Barrier(8)

        def fail():
            barrier.wait()
            breaker.record_failure()

        threads = [threading.Thread(target=fail) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert breaker.state == OPEN
        assert breaker.stats().opens == 1


@pytest.mark.parametrize(
    "kwargs",
    [
        {"failure_threshold": 0},
        {"recovery_time": 0.0},
        {"recovery_time": -1.0},
    ],
)
def test_rejects_bad_parameters(kwargs):
    with pytest.raises(ValueError):
        CircuitBreaker(**kwargs)

"""Unit tests for per-request deadlines and their contextvar plumbing."""

from __future__ import annotations

import contextvars
import threading

import pytest

from repro.resilience.deadline import (
    Deadline,
    DeadlineExceeded,
    checkpoint,
    clear_deadline,
    current_deadline,
    deadline_scope,
    reset_deadline,
    set_deadline,
)


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_after_mints_an_absolute_expiry(self):
        clock = FakeClock(now=10.0)
        deadline = Deadline.after(2.5, clock=clock)
        assert deadline.expires_at == pytest.approx(12.5)
        assert deadline.budget == pytest.approx(2.5)

    def test_remaining_counts_down_and_goes_negative(self):
        clock = FakeClock(now=0.0)
        deadline = Deadline.after(1.0, clock=clock)
        assert deadline.remaining(clock=clock) == pytest.approx(1.0)
        clock.advance(0.4)
        assert deadline.remaining(clock=clock) == pytest.approx(0.6)
        assert not deadline.expired(clock=clock)
        clock.advance(1.0)
        assert deadline.remaining(clock=clock) == pytest.approx(-0.4)
        assert deadline.expired(clock=clock)


class TestCheckpoint:
    def test_noop_without_a_deadline(self):
        assert current_deadline() is None
        checkpoint("stage.anything")  # must not raise

    def test_raises_once_past_with_stage_and_budget(self):
        clock = FakeClock(now=50.0)
        token = set_deadline(Deadline.after(0.1, clock=clock))
        try:
            checkpoint("stage.sample", clock=clock)  # still inside budget
            clock.advance(0.2)
            with pytest.raises(DeadlineExceeded) as excinfo:
                checkpoint("stage.sample", clock=clock)
            assert excinfo.value.stage == "stage.sample"
            assert excinfo.value.budget == pytest.approx(0.1)
            assert "stage.sample" in str(excinfo.value)
        finally:
            reset_deadline(token)

    def test_exceeded_is_a_runtime_error(self):
        # Background workers catch it as a cancellation; the HTTP layer
        # maps it to a structured 504.  Either way it must not be an
        # OSError (which the store retries) nor a bare Exception.
        assert issubclass(DeadlineExceeded, RuntimeError)


class TestScope:
    def test_installs_and_restores(self):
        assert current_deadline() is None
        with deadline_scope(5.0) as deadline:
            assert current_deadline() is deadline
            assert deadline is not None and deadline.budget == 5.0
        assert current_deadline() is None

    def test_nested_scopes_shadow_then_restore(self):
        with deadline_scope(10.0) as outer:
            with deadline_scope(1.0) as inner:
                assert current_deadline() is inner
            assert current_deadline() is outer

    def test_none_budget_clears_an_inherited_deadline(self):
        # The "no deadline" scope used by maintenance paths and tests.
        with deadline_scope(10.0):
            with deadline_scope(None):
                assert current_deadline() is None
                checkpoint("stage.anything")

    def test_restores_even_when_the_body_raises(self):
        with pytest.raises(ValueError):
            with deadline_scope(5.0):
                raise ValueError("boom")
        assert current_deadline() is None


class TestContextPropagation:
    def test_deadline_rides_a_copied_context_into_a_thread(self):
        # The WorkerPool submits jobs under contextvars.copy_context(),
        # so a deadline set in the request coroutine is visible at
        # checkpoints on the worker thread.
        clock = FakeClock(now=0.0)
        seen: list[Deadline | None] = []

        with deadline_scope(3.0, clock=clock):
            context = contextvars.copy_context()
        thread = threading.Thread(
            target=lambda: seen.append(context.run(current_deadline))
        )
        thread.start()
        thread.join()
        assert seen[0] is not None and seen[0].budget == pytest.approx(3.0)

    def test_clear_deadline_drops_the_inherited_budget(self):
        # Background tasks (refine, prefetch) start from a context copied
        # off a foreground request; clear_deadline() at their top means
        # a nearly-spent request budget cannot abort the speculation.
        with deadline_scope(0.000001):
            context = contextvars.copy_context()

        def background():
            clear_deadline()
            checkpoint("stage.prefetch")  # must not raise
            return current_deadline()

        assert context.run(background) is None
        # ...and the clear stays inside the copy: nothing leaks back.
        assert current_deadline() is None


class TestPipelineIntegration:
    @pytest.fixture(scope="class")
    def engine(self):
        from repro.core.config import BlaeuConfig
        from repro.core.engine import Blaeu
        from repro.datasets.synthetic import mixed_blobs

        engine = Blaeu(BlaeuConfig(map_k_values=(2, 3), seed=5))
        engine.register(mixed_blobs(n_rows=300, k=2, seed=61).table)
        return engine

    def test_expired_deadline_aborts_the_build_cleanly(self, engine):
        # expires_at=0.0 is always in the past on the monotonic clock:
        # the first stage checkpoint must abort the pipeline.
        token = set_deadline(Deadline(expires_at=0.0, budget=0.001))
        try:
            with pytest.raises(DeadlineExceeded):
                engine.map("mixed_blobs", ("x0", "x1"), k=2)
        finally:
            reset_deadline(token)

    def test_generous_deadline_changes_nothing(self, engine):
        # Checkpoints are pure observers: a map built under a roomy
        # budget is bit-identical to one built with none at all.
        free = engine.map("mixed_blobs", ("x0", "x1"), k=2).to_dict()
        with deadline_scope(300.0):
            bounded = engine.map("mixed_blobs", ("x0", "x1"), k=2).to_dict()
        assert bounded == free

"""Unit tests for the synthetic ground-truth generators."""

import numpy as np
import pytest

from repro.datasets.synthetic import mixed_blobs, numeric_blobs, planted_themes
from repro.stats.mutual_info import column_dependency


class TestNumericBlobs:
    def test_shape(self):
        planted = numeric_blobs(n_rows=200, k=3, n_features=4)
        assert planted.table.n_rows == 200
        assert planted.table.n_columns == 4
        assert planted.labels.shape == (200,)
        assert planted.k == 3

    def test_seed_reproducibility(self):
        a = numeric_blobs(seed=5)
        b = numeric_blobs(seed=5)
        assert (a.labels == b.labels).all()
        np.testing.assert_array_equal(
            a.table.column("x0").values, b.table.column("x0").values
        )

    def test_noise_features_added(self):
        planted = numeric_blobs(n_rows=100, n_features=2, n_noise_features=3)
        assert planted.table.n_columns == 5
        assert "noise0" in planted.table.column_names

    def test_missing_rate(self):
        planted = numeric_blobs(n_rows=2000, missing_rate=0.1, seed=9)
        missing = planted.table.column("x0").n_missing
        assert 120 < missing < 280  # ~200 expected

    def test_weights_control_sizes(self):
        planted = numeric_blobs(
            n_rows=1000, k=2, weights=(9.0, 1.0), seed=4
        )
        counts = np.bincount(planted.labels)
        assert counts[0] > 4 * counts[1]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            numeric_blobs(k=0)
        with pytest.raises(ValueError):
            numeric_blobs(missing_rate=1.0)
        with pytest.raises(ValueError):
            numeric_blobs(k=2, weights=(1.0,))


class TestMixedBlobs:
    def test_shape_and_kinds(self):
        planted = mixed_blobs(n_rows=150, k=2, n_numeric=3, n_categorical=2)
        assert planted.table.n_columns == 5
        assert len(planted.table.categorical_columns()) == 2

    def test_categoricals_track_clusters(self):
        planted = mixed_blobs(n_rows=500, k=2, category_fidelity=0.95, seed=6)
        cat = planted.table.column("cat0")
        # Labels should carry most of the cluster information.
        agreement = np.mean([
            label is not None and label.endswith(str(cluster))
            for label, cluster in zip(cat.labels(), planted.labels)
        ])
        assert agreement > 0.85

    def test_invalid_fidelity(self):
        with pytest.raises(ValueError):
            mixed_blobs(category_fidelity=0.0)


class TestPlantedThemes:
    def test_groups_cover_columns(self):
        planted = planted_themes(group_sizes={"a": 3, "b": 2})
        flat = [c for cols in planted.groups.values() for c in cols]
        assert sorted(flat) == sorted(planted.table.column_names)

    def test_theme_of(self):
        planted = planted_themes(group_sizes={"a": 2, "b": 2})
        assert planted.theme_of("a_0") == "a"
        with pytest.raises(KeyError):
            planted.theme_of("nope")

    def test_column_labels_align(self):
        planted = planted_themes(group_sizes={"a": 2, "b": 2})
        labels = planted.column_labels(("a_0", "b_0", "a_1"))
        assert labels.tolist() == [0, 1, 0]

    def test_within_dependency_beats_across(self):
        planted = planted_themes(
            n_rows=500, group_sizes={"a": 2, "b": 2}, noise=0.3, seed=2
        )
        table = planted.table
        within = column_dependency(table.column("a_0"), table.column("a_1"))
        across = column_dependency(table.column("a_0"), table.column("b_0"))
        assert within > 2 * across

    def test_invalid_groups(self):
        with pytest.raises(ValueError):
            planted_themes(group_sizes={})
        with pytest.raises(ValueError):
            planted_themes(group_sizes={"a": 0})

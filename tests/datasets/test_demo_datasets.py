"""Unit tests for the three demo dataset generators (paper §4.2)."""

import numpy as np
import pytest

from repro.datasets.hollywood import hollywood
from repro.datasets.lofar import lofar
from repro.datasets.oecd import (
    COUNTRIES,
    HIGH_INCOME_COUNTRIES,
    LABOR_THEME,
    LONG_HOURS_COUNTRIES,
    oecd,
    oecd_small,
)
from repro.table.column import CategoricalColumn, NumericColumn


class TestHollywood:
    def test_paper_shape(self):
        table = hollywood()
        assert table.n_rows == 900
        assert table.n_columns == 12

    def test_years_in_paper_range(self):
        table = hollywood()
        years = table.column("Year")
        assert years.min() >= 2007 and years.max() <= 2013

    def test_profitability_consistent(self):
        table = hollywood()
        budget = table.column("Budget").values
        gross = table.column("WorldwideGross").values
        profit = table.column("Profitability").values
        np.testing.assert_allclose(profit, gross / budget, rtol=0.02)

    def test_segments_create_separable_structure(self):
        # Indie hits are more profitable than flops by construction.
        table = hollywood()
        profit = table.column("Profitability").values
        critics = table.column("RottenTomatoes").values
        good = profit > 2.0
        complete = ~np.isnan(critics)
        assert (
            critics[good & complete].mean()
            > critics[~good & complete].mean()
        )

    def test_review_scores_have_missing_cells(self):
        table = hollywood()
        assert table.column("RottenTomatoes").n_missing > 0

    def test_seeded(self):
        assert (
            hollywood(seed=1).column("Budget").values.tolist()
            == hollywood(seed=1).column("Budget").values.tolist()
        )


class TestOecd:
    @pytest.mark.slow
    def test_paper_shape(self):
        table = oecd()
        assert table.n_rows == 6823
        assert table.n_columns == 378

    def test_small_variant_structure(self):
        table = oecd_small()
        assert table.n_rows == 900
        country = table.column("CountryName")
        assert isinstance(country, CategoricalColumn)
        assert country.n_distinct() == 31
        assert set(country.categories) == set(COUNTRIES)

    def test_figure1_labor_structure(self):
        table = oecd_small(n_rows=3000)
        hours = table.column(LABOR_THEME[0]).values
        income = table.column(LABOR_THEME[1]).values
        country = table.column("CountryName")
        labels = np.asarray(country.labels())
        long_hours = np.isin(labels, list(LONG_HOURS_COUNTRIES))
        high_income = np.isin(labels, list(HIGH_INCOME_COUNTRIES))
        complete = ~np.isnan(hours) & ~np.isnan(income)
        # Long-hours countries sit above ~20%; the rest below.
        assert np.nanmean(hours[long_hours & complete]) > 24
        assert np.nanmean(hours[~long_hours & complete]) < 15
        # High-income countries sit above the 22k$ split of Figure 1b.
        assert np.nanmean(income[high_income & complete]) > 28
        assert (
            np.nanmean(income[~high_income & ~long_hours & complete]) < 18
        )

    def test_missing_values_present(self):
        table = oecd_small()
        assert table.column(LABOR_THEME[0]).n_missing > 0

    def test_region_names_are_wide(self):
        table = oecd_small()
        assert table.column("RegionName").n_distinct() > 100


class TestLofar:
    def test_shape_scales(self):
        table = lofar(n_rows=5000)
        assert table.n_rows == 5000
        assert table.n_columns == 15

    def test_spectral_physics(self):
        # Power-law consistency: flux at 1400 MHz follows the spectral
        # index direction relative to 150 MHz.
        table = lofar(n_rows=4000)
        f150 = table.column("Flux150MHz").values
        f1400 = table.column("Flux1400MHz").values
        alpha = table.column("SpectralIndex").values
        complete = ~(np.isnan(f150) | np.isnan(f1400) | np.isnan(alpha))
        steep = complete & (alpha < -0.5)
        assert (f1400[steep] < f150[steep]).mean() > 0.95

    def test_morphology_tracks_size(self):
        table = lofar(n_rows=4000)
        size = table.column("AngularSize").values
        morphology = np.asarray(table.column("Morphology").labels())
        complete = ~np.isnan(size)
        extended = (morphology == "extended") & complete
        compact = (morphology == "compact") & complete
        assert size[extended].mean() > 3 * size[compact].mean()

    def test_source_id_is_key_like(self):
        table = lofar(n_rows=1000)
        assert table.column("SourceID").n_distinct() == 1000

    def test_positions_cover_northern_sky(self):
        table = lofar(n_rows=3000)
        dec = table.column("Dec")
        assert isinstance(dec, NumericColumn)
        assert dec.min() >= 0.0 and dec.max() <= 90.0

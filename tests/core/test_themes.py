"""Unit tests for theme extraction and editing."""

import numpy as np
import pytest

from repro.core.config import BlaeuConfig
from repro.core.themes import default_theme_k_grid, extract_themes
from repro.datasets.synthetic import planted_themes
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.table import Table


@pytest.fixture(scope="module")
def themed_set():
    planted = planted_themes(
        n_rows=500,
        group_sizes={"eco": 4, "health": 4, "env": 4},
        noise=0.3,
        seed=21,
    )
    themes = extract_themes(
        planted.table,
        config=BlaeuConfig(theme_k_values=(2, 3, 4, 5)),
        rng=np.random.default_rng(0),
    )
    return planted, themes


class TestExtractThemes:
    def test_recovers_planted_groups(self, themed_set):
        planted, themes = themed_set
        assert len(themes) == 3
        for group in planted.groups.values():
            owner = themes.theme_of(group[0])
            assert set(group) == set(owner.columns)

    def test_theme_named_after_medoid_member(self, themed_set):
        _, themes = themed_set
        for theme in themes:
            assert theme.name in theme.columns
            assert theme.name == theme.columns[0]

    def test_cohesion_in_unit_interval(self, themed_set):
        _, themes = themed_set
        for theme in themes:
            assert 0.0 <= theme.cohesion <= 1.0

    def test_largest_theme_first(self, themed_set):
        _, themes = themed_set
        sizes = [t.size for t in themes]
        assert sizes == sorted(sizes, reverse=True)

    def test_k_scores_recorded(self, themed_set):
        _, themes = themed_set
        assert set(themes.k_scores) == {2, 3, 4, 5}

    def test_keys_excluded(self, rng):
        planted = planted_themes(n_rows=200, seed=3)
        table = planted.table.with_column(
            CategoricalColumn.from_labels(
                "row_id", [f"r{i}" for i in range(200)]
            )
        )
        themes = extract_themes(table, rng=rng)
        assert "row_id" in themes.excluded_keys
        with pytest.raises(KeyError):
            themes.theme_of("row_id")

    def test_wide_categoricals_excluded(self, rng):
        planted = planted_themes(n_rows=300, seed=4)
        labels = [f"region{i % 200}" for i in range(300)]
        table = planted.table.with_column(
            CategoricalColumn.from_labels("region", labels)
        )
        themes = extract_themes(table, rng=rng)
        assert "region" in themes.excluded_keys

    def test_too_few_columns_rejected(self, rng):
        table = Table("t", [NumericColumn("only", rng.normal(0, 1, 30))])
        with pytest.raises(ValueError, match="at least two"):
            extract_themes(table, rng=rng)

    def test_lookup_api(self, themed_set):
        _, themes = themed_set
        name = themes.names()[0]
        assert themes.theme(name).name == name
        assert themes[0].name == name
        with pytest.raises(KeyError):
            themes.theme("nope")
        with pytest.raises(KeyError):
            themes.theme_of("nope")


class TestThemeEditing:
    def test_move_column(self, themed_set):
        _, themes = themed_set
        source = themes[0]
        target = themes[1]
        column = source.columns[-1]
        edited = themes.move_column(column, target.name)
        assert column in edited.theme(target.name).columns
        assert column not in edited.theme_of(source.columns[0]).columns
        # The original is untouched (ThemeSets are immutable values).
        assert column in themes.theme_of(column).columns

    def test_move_last_column_dissolves_theme(self, rng):
        planted = planted_themes(
            n_rows=200, group_sizes={"a": 2, "b": 1}, seed=8
        )
        themes = extract_themes(
            planted.table,
            config=BlaeuConfig(theme_k_values=(2,)),
            rng=rng,
        )
        solo = next(t for t in themes if t.size == 1)
        other = next(t for t in themes if t.size != 1)
        edited = themes.move_column(solo.columns[0], other.name)
        assert len(edited) == len(themes) - 1

    def test_move_to_same_theme_is_noop(self, themed_set):
        _, themes = themed_set
        theme = themes[0]
        assert themes.move_column(theme.columns[1], theme.name) is themes

    def test_rename(self, themed_set):
        _, themes = themed_set
        renamed = themes.rename_theme(themes[0].name, "Economy")
        assert "Economy" in renamed.names()
        with pytest.raises(KeyError):
            renamed.rename_theme("nope", "x")
        with pytest.raises(ValueError):
            renamed.rename_theme(renamed.names()[1], "Economy")


class TestDefaultKGrid:
    def test_small_tables(self):
        assert default_theme_k_grid(2) == (2,)
        assert default_theme_k_grid(5) == (2, 3)

    def test_grid_is_increasing_and_bounded(self):
        for n in (10, 50, 200, 400):
            grid = default_theme_k_grid(n)
            assert list(grid) == sorted(set(grid))
            assert grid[0] == 2
            assert grid[-1] <= n - 1
            assert len(grid) <= 14

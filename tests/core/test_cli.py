"""Unit tests for the terminal browser (repro.cli)."""

import io

import pytest

from repro.cli import BlaeuShell, build_engine
from repro.core.config import BlaeuConfig
from repro.core.engine import Blaeu
from repro.datasets.synthetic import mixed_blobs


@pytest.fixture
def shell():
    engine = Blaeu(BlaeuConfig(map_k_values=(2, 3)))
    engine.register(mixed_blobs(n_rows=300, k=2, seed=81).table)
    out = io.StringIO()
    return BlaeuShell(engine, out=out), out


def run(shell_pair, *lines):
    shell, out = shell_pair
    shell.run(lines)
    return out.getvalue()


class TestShellCommands:
    def test_tables_lists_registered(self, shell):
        text = run(shell, "tables")
        assert "mixed_blobs" in text
        assert "300 rows" in text

    def test_single_table_autoselected(self, shell):
        text = run(shell, "themes")
        assert "THEMES" in text

    def test_themes_reports_graph_build(self, shell):
        text = run(shell, "themes")
        assert "graph: last build" in text
        assert "builds 1" in text
        assert "code cache" in text

    def test_repeated_themes_do_not_rebuild(self, shell):
        text = run(shell, "themes", "themes")
        # The explorer caches the ThemeSet, so the second command still
        # reports a single graph build.
        assert "builds 1" in text.rsplit("graph: last build", 1)[1]

    def test_open_and_map(self, shell):
        text = run(shell, "open 0", "map")
        assert text.count("DATA MAP") == 2

    def test_zoom_back_cycle(self, shell):
        text = run(shell, "open 0", "zoom r0", "back")
        assert text.count("DATA MAP") == 3

    def test_highlight(self, shell):
        text = run(shell, "open 0", "highlight r cat0")
        assert "REGION r" in text

    def test_insight(self, shell):
        text = run(shell, "open 0", "insight r0")
        assert "headline:" in text

    def test_hist(self, shell):
        text = run(shell, "open 0", "hist x0")
        assert "x0 (300 rows)" in text

    def test_sql_and_history_and_goto(self, shell):
        text = run(shell, "open 0", "zoom r0", "history", "goto 0", "sql")
        assert "[0] open theme" in text
        assert "SELECT" in text

    def test_project(self, shell):
        text = run(shell, "open 0", "project 0")
        assert text.count("DATA MAP") == 2

    def test_help(self, shell):
        assert "zoom <region>" in run(shell, "help")

    def test_quit_stops_processing(self, shell):
        text = run(shell, "quit", "tables")
        assert "bye" in text
        assert "mixed_blobs" not in text

    def test_unknown_command_reported(self, shell):
        assert "unknown command" in run(shell, "frobnicate")

    def test_errors_do_not_crash_session(self, shell):
        text = run(shell, "zoom r0", "open 0")  # zoom before open
        assert "error:" in text
        assert "DATA MAP" in text  # the session continued

    def test_bad_arguments_reported(self, shell):
        assert "usage: zoom" in run(shell, "open 0", "zoom")
        assert "usage: goto" in run(shell, "goto x")

    def test_parse_error_reported(self, shell):
        assert "parse error" in run(shell, 'open "unterminated')

    def test_blank_lines_ignored(self, shell):
        assert run(shell, "", "   ") == ""

    def test_use_unknown_table(self, shell):
        assert "error:" in run(shell, "use nope")


class TestBuildEngine:
    def test_csv_paths(self, tmp_path):
        path = tmp_path / "d.csv"
        path.write_text(
            "a,b\n" + "\n".join(f"{i},{i%2}" for i in range(30)), "utf-8"
        )
        engine = build_engine([str(path)])
        assert "d" in engine.tables()

    def test_demo_hollywood(self):
        engine = build_engine(["--demo", "hollywood"])
        assert engine.tables() == ("hollywood",)

    def test_no_arguments_is_usage_error(self):
        with pytest.raises(SystemExit):
            build_engine([])

    def test_bad_demo_is_usage_error(self):
        with pytest.raises(SystemExit):
            build_engine(["--demo", "nope"])


class TestGotoStates:
    def test_goto_out_of_range(self, shell):
        text = run(shell, "open 0", "goto 5")
        assert "error:" in text

    def test_states_exposed_via_history(self, shell):
        text = run(shell, "open 0", "zoom r0", "history")
        assert "[0]" in text and "[1]" in text

"""Acceptance tests for the staged map pipeline (repro.core.pipeline).

The hard contract: the staged, memoized, re-enterable pipeline must
produce maps **bit-identical** to the pre-refactor single-pass
``build_map`` at the same seed — across residencies (in-memory vs
store), cache warmth (cold vs warm), and entry stages (full build vs a
k-override re-entering at the Cluster stage).  A faithful copy of the
pre-refactor single pass lives below as the reference.

The second contract: approximate-first counting.  With
``count_mode="approximate"`` maps return with sample-extrapolated
counts and 95% bounds, and refining them yields a map bit-identical to
a blocking exact build.
"""

import numpy as np
import pytest

from repro.cluster.clara import clara
from repro.cluster.distance import pairwise_distances
from repro.cluster.kselect import select_k_points
from repro.cluster.pam import pam
from repro.cluster.silhouette import SharedSilhouette, silhouette_samples
from repro.core.config import BlaeuConfig
from repro.core.datamap import DataMap
from repro.core.mapping import build_map
from repro.core.pipeline import (
    MapBuilder,
    MapBuildError,
    MapPipeline,
    _exemplars,
    _left_router,
    _tree_to_regions,
    cache_key_seed,
)
from repro.core.preprocess import preprocess
from repro.datasets.synthetic import mixed_blobs
from repro.service.cache import LRUCache
from repro.store import StoredTable, write_store
from repro.table.predicates import Comparison, Everything
from repro.tree.cart import fit_tree
from repro.tree.prune import prune_for_legibility
from repro.viz.export import export_map_json

CONFIG = BlaeuConfig(
    map_k_values=(2, 3, 4),
    map_sample_size=250,
    clara_threshold=300,
    seed=11,
)
COLUMNS = ("x0", "x1")


# ----------------------------------------------------------------------
# The pre-refactor single-pass builder, kept verbatim as the reference
# ----------------------------------------------------------------------


def _legacy_cluster(matrix, config, rng, forced_k):
    n = matrix.shape[0]
    dtype = config.distance_dtype
    shared_matrix = None
    if n <= config.clara_threshold:
        shared_matrix = pairwise_distances(matrix, dtype=dtype)

    def cluster_fn(points, k):
        if shared_matrix is not None:
            return pam(shared_matrix, k, rng=rng, validate=False)
        return clara(
            points,
            k,
            n_draws=config.clara_draws,
            sample_size=config.clara_sample_size,
            rng=rng,
            n_jobs=config.clara_jobs,
            dtype=dtype,
        )

    shared = SharedSilhouette(
        matrix,
        n_subsamples=config.silhouette_subsamples,
        subsample_size=config.silhouette_subsample_size,
        exact_threshold=config.silhouette_exact_threshold,
        rng=rng,
        dtype=dtype,
        distances=shared_matrix,
    )
    if forced_k is not None:
        clustering = cluster_fn(matrix, forced_k)
        return clustering, shared.score(clustering.labels), shared_matrix
    selection = select_k_points(
        matrix,
        cluster_fn,
        k_values=config.map_k_values,
        rng=rng,
        shared=shared,
    )
    return selection.clustering, selection.best.silhouette, shared_matrix


def _legacy_leaf_silhouettes(matrix, clustering, config, rng, shared_matrix):
    n = matrix.shape[0]
    if shared_matrix is not None:
        labels = clustering.labels
        distances = shared_matrix
    else:
        cap = max(config.silhouette_subsample_size * 2, 400)
        if n > cap:
            chosen = rng.choice(n, size=cap, replace=False)
        else:
            chosen = np.arange(n)
        labels = clustering.labels[chosen]
        distances = None
    if np.unique(labels).size < 2:
        return {int(c): 0.0 for c in np.unique(clustering.labels)}
    if distances is None:
        distances = pairwise_distances(
            matrix[chosen], dtype=config.distance_dtype
        )
    values = silhouette_samples(distances, labels, validate=False)
    return {
        int(cluster): float(values[labels == cluster].mean())
        for cluster in np.unique(labels)
    }


def legacy_build_map(selection, columns, config, rng, k=None):
    """The pre-refactor ``build_map``: one sequential pass, one RNG.

    Counts are routed over the materialized selection itself — the old
    code path — so the comparison also covers the pipeline's switch to
    base-table routing restricted by the selection mask.
    """
    if selection.n_rows > config.map_sample_size:
        sample = selection.sample(config.map_sample_size, rng=rng)
    elif getattr(selection, "iter_chunks", None) is not None:
        sample = selection.take(np.arange(selection.n_rows, dtype=np.intp))
    else:
        sample = selection
    space = preprocess(
        sample,
        columns=columns,
        max_categorical_cardinality=config.max_categorical_cardinality,
    )
    clustering, silhouette, shared_matrix = _legacy_cluster(
        space.matrix, config, rng, k
    )
    describable = [name for name in columns if name in space.used_columns]
    tree = fit_tree(
        sample,
        clustering.labels,
        feature_names=describable,
        params=config.tree_params,
    )
    tree = prune_for_legibility(
        tree,
        target_leaves=clustering.k * config.prune_leaf_factor,
        min_accuracy=config.prune_min_fidelity,
    )
    fidelity = tree.accuracy(sample, clustering.labels)
    leaf_sil = _legacy_leaf_silhouettes(
        space.matrix, clustering, config, rng, shared_matrix
    )
    exemplars = _exemplars(sample, clustering, tuple(columns))
    root = _tree_to_regions(
        tree.root,
        selection.n_rows,
        _left_router(tree, selection),
        leaf_sil,
        exemplars,
    )
    return DataMap(
        root=root,
        columns=tuple(columns),
        k=clustering.k,
        silhouette=silhouette,
        fidelity=fidelity,
        sample_size=sample.n_rows,
    )


def chain_rng(table, config, selection_sql="TRUE"):
    """The generator a cache-managed pipeline build starts from."""
    key = ("pipeline", table.fingerprint(), config.digest(), selection_sql)
    return np.random.default_rng(cache_key_seed(key))


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def table():
    return mixed_blobs(n_rows=900, k=3, seed=29).table


@pytest.fixture(scope="module")
def stored(table, tmp_path_factory):
    root = tmp_path_factory.mktemp("pipeline_store") / "s"
    write_store(table, root, chunk_rows=128)
    return StoredTable(root)


# ----------------------------------------------------------------------
# Bit-identity across warmth, residency and entry stage
# ----------------------------------------------------------------------


class TestBitIdentity:
    def test_cold_cached_build_matches_legacy_single_pass(self, table):
        builder = MapBuilder(result_cache=LRUCache(max_size=64))
        staged = builder.build(table, COLUMNS, config=CONFIG)
        legacy = legacy_build_map(
            table, COLUMNS, CONFIG, chain_rng(table, CONFIG)
        )
        assert staged.counts_status == "exact"
        assert export_map_json(staged) == export_map_json(legacy)

    def test_store_residency_matches_legacy_and_memory(self, table, stored):
        staged_memory = MapBuilder(result_cache=LRUCache(max_size=64)).build(
            table, COLUMNS, config=CONFIG
        )
        staged_store = MapBuilder(result_cache=LRUCache(max_size=64)).build(
            stored, COLUMNS, config=CONFIG
        )
        legacy = legacy_build_map(
            stored, COLUMNS, CONFIG, chain_rng(stored, CONFIG)
        )
        assert export_map_json(staged_store) == export_map_json(legacy)
        assert export_map_json(staged_store) == export_map_json(staged_memory)

    @pytest.mark.parametrize("residency", ["memory", "store"])
    def test_k_override_reenters_at_cluster_stage(
        self, table, stored, residency
    ):
        base = table if residency == "memory" else stored
        builder = MapBuilder(result_cache=LRUCache(max_size=64))
        builder.build(base, COLUMNS, config=CONFIG)  # warms sample..distances
        before = builder.stats()
        warm = builder.build(base, COLUMNS, config=CONFIG, k=4)
        after = builder.stats()
        # The re-entry consumed the cached early stages and recomputed
        # only Cluster and Describe.
        for stage in ("sample", "preprocess", "distances"):
            assert after["stage_hits"][stage] == before["stage_hits"][stage] + 1
            assert after["stage_misses"][stage] == before["stage_misses"][stage]
        for stage in ("cluster", "describe"):
            assert (
                after["stage_misses"][stage]
                == before["stage_misses"][stage] + 1
            )

        cold = MapBuilder(result_cache=LRUCache(max_size=64)).build(
            base, COLUMNS, config=CONFIG, k=4
        )
        legacy = legacy_build_map(
            base, COLUMNS, CONFIG, chain_rng(base, CONFIG), k=4
        )
        assert export_map_json(warm) == export_map_json(cold)
        assert export_map_json(warm) == export_map_json(legacy)

    def test_project_reuses_the_sample_artifact(self, table):
        builder = MapBuilder(result_cache=LRUCache(max_size=64))
        builder.build(table, ("x0", "x1"), config=CONFIG)
        before = builder.stats()
        builder.build(table, ("x1", "x2"), config=CONFIG)
        after = builder.stats()
        assert after["stage_hits"]["sample"] == before["stage_hits"]["sample"] + 1
        assert after["stage_misses"]["sample"] == before["stage_misses"]["sample"]
        assert (
            after["stage_misses"]["preprocess"]
            == before["stage_misses"]["preprocess"] + 1
        )

    def test_selection_predicate_matches_legacy_subset_build(self, table):
        predicate = Comparison("x0", ">", 0.0)
        builder = MapBuilder(result_cache=LRUCache(max_size=64))
        staged = builder.build(
            table, COLUMNS, config=CONFIG, selection=predicate
        )
        legacy = legacy_build_map(
            table.select(predicate),
            COLUMNS,
            CONFIG,
            chain_rng(table, CONFIG, predicate.to_sql()),
        )
        assert export_map_json(staged) == export_map_json(legacy)

    def test_pipeline_reuse_off_is_identical(self, table):
        config = BlaeuConfig(
            map_k_values=CONFIG.map_k_values,
            map_sample_size=CONFIG.map_sample_size,
            clara_threshold=CONFIG.clara_threshold,
            seed=CONFIG.seed,
            pipeline_reuse=False,
        )
        cache = LRUCache(max_size=64)
        builder = MapBuilder(result_cache=cache)
        first = builder.build(table, COLUMNS, config=config)
        legacy = legacy_build_map(table, COLUMNS, config, chain_rng(table, config))
        assert export_map_json(first) == export_map_json(legacy)
        # Only the finished map is cached; no stage artifacts.
        assert cache.stats().size == 1
        assert builder.build(table, COLUMNS, config=config) is first

    def test_session_mode_without_cache_matches_legacy_stream(self, table):
        """Cache-less builds thread one RNG sequentially, as before."""
        rng_a = np.random.default_rng(123)
        rng_b = np.random.default_rng(123)
        staged = build_map(table, COLUMNS, config=CONFIG, rng=rng_a)
        legacy = legacy_build_map(table, COLUMNS, CONFIG, rng_b)
        assert export_map_json(staged) == export_map_json(legacy)
        # Both consumed the same amount of stream: follow-up builds agree.
        staged2 = build_map(table, COLUMNS, config=CONFIG, rng=rng_a, k=3)
        legacy2 = legacy_build_map(table, COLUMNS, CONFIG, rng_b, k=3)
        assert export_map_json(staged2) == export_map_json(legacy2)


# ----------------------------------------------------------------------
# Approximate → exact counting
# ----------------------------------------------------------------------


APPROX_CONFIG = BlaeuConfig(
    map_k_values=(2, 3, 4),
    map_sample_size=250,
    clara_threshold=300,
    seed=11,
    count_mode="approximate",
)


class TestApproximateCounts:
    def test_approximate_map_shape(self, table):
        builder = MapBuilder(result_cache=LRUCache(max_size=64))
        approx = builder.build(table, COLUMNS, config=APPROX_CONFIG)
        assert approx.counts_status == "approximate"
        # The root count is exact (the selection size is known), so it
        # alone carries no error bound.
        assert approx.root.n_rows == table.n_rows
        assert approx.root.n_rows_error is None
        for region in approx.regions():
            if region is not approx.root:
                assert region.n_rows_error is not None
                assert region.n_rows_error > 0
        assert approx.to_dict()["counts_status"] == "approximate"
        assert '"counts_status": "approximate"' in export_map_json(approx)

    def test_estimates_fall_within_their_bounds(self, table):
        builder = MapBuilder(result_cache=LRUCache(max_size=64))
        approx = builder.build(table, COLUMNS, config=APPROX_CONFIG)
        exact = builder.refine(
            table, COLUMNS, config=APPROX_CONFIG, current_map=approx
        )
        exact_counts = {r.region_id: r.n_rows for r in exact.regions()}
        assert approx.root.n_rows == exact_counts["r"]
        for region in approx.regions():
            if region is approx.root:
                continue
            # 95% bounds; the workload is seeded, so this is stable.
            assert (
                abs(region.n_rows - exact_counts[region.region_id])
                <= max(region.n_rows_error, 1) * 2
            )

    @pytest.mark.parametrize("residency", ["memory", "store"])
    def test_refined_map_is_bit_identical_to_blocking_exact(
        self, table, stored, residency
    ):
        base = table if residency == "memory" else stored
        builder = MapBuilder(result_cache=LRUCache(max_size=64))
        approx = builder.build(base, COLUMNS, config=APPROX_CONFIG)
        refined = builder.refine(
            base, COLUMNS, config=APPROX_CONFIG, current_map=approx
        )
        blocking = MapBuilder(result_cache=LRUCache(max_size=64)).build(
            base, COLUMNS, config=APPROX_CONFIG, count_mode="exact"
        )
        assert refined.counts_status == "exact"
        assert refined.refinement is None
        assert export_map_json(refined) == export_map_json(blocking)
        # ... and to the legacy single pass at the same seed.
        legacy = legacy_build_map(
            base, COLUMNS, APPROX_CONFIG, chain_rng(base, APPROX_CONFIG)
        )
        assert export_map_json(refined) == export_map_json(legacy)

    def test_refinement_patches_the_shared_cache(self, table):
        cache = LRUCache(max_size=64)
        builder = MapBuilder(result_cache=cache)
        approx = builder.build(table, COLUMNS, config=APPROX_CONFIG)
        assert approx.counts_status == "approximate"
        builder.refine(table, COLUMNS, config=APPROX_CONFIG)
        # Every later session sees the exact map straight from cache.
        served = builder.build(table, COLUMNS, config=APPROX_CONFIG)
        assert served.counts_status == "exact"
        assert builder.stats()["refinements"] == 1

    def test_exact_request_upgrades_a_cached_approximate_map(self, table):
        builder = MapBuilder(result_cache=LRUCache(max_size=64))
        builder.build(table, COLUMNS, config=APPROX_CONFIG)
        exact = builder.build(
            table, COLUMNS, config=APPROX_CONFIG, count_mode="exact"
        )
        assert exact.counts_status == "exact"
        assert builder.stats()["refinements"] == 1

    def test_count_mode_configs_share_results(self, table):
        """count_mode is result-neutral: an exact-mode config produces
        the very map an approximate-mode config refines to, through the
        same cache entries and the same key-derived randomness."""
        cache = LRUCache(max_size=64)
        builder = MapBuilder(result_cache=cache)
        exact_config = BlaeuConfig(
            map_k_values=APPROX_CONFIG.map_k_values,
            map_sample_size=APPROX_CONFIG.map_sample_size,
            clara_threshold=APPROX_CONFIG.clara_threshold,
            seed=APPROX_CONFIG.seed,
        )
        approx = builder.build(table, COLUMNS, config=APPROX_CONFIG)
        refined = builder.refine(
            table, COLUMNS, config=APPROX_CONFIG, current_map=approx
        )
        # A session running the exact-mode twin config is served the
        # refined map straight from cache — no rebuild.
        before = builder.stats()["builds"]
        served = builder.build(table, COLUMNS, config=exact_config)
        assert served is refined
        assert builder.stats()["builds"] == before

    def test_small_selections_are_exact_immediately(self, table):
        config = BlaeuConfig(
            map_k_values=(2, 3),
            map_sample_size=2000,  # sample == selection
            seed=11,
            count_mode="approximate",
        )
        approx = MapBuilder(result_cache=LRUCache(max_size=8)).build(
            table, COLUMNS, config=config
        )
        assert approx.counts_status == "exact"
        assert approx.refinement is None

    def test_approximate_never_changes_the_clustering(self, table):
        builder = MapBuilder(result_cache=LRUCache(max_size=64))
        approx = builder.build(table, COLUMNS, config=APPROX_CONFIG)
        exact = MapBuilder(result_cache=LRUCache(max_size=64)).build(
            table, COLUMNS, config=APPROX_CONFIG, count_mode="exact"
        )
        assert approx.k == exact.k
        assert approx.silhouette == exact.silhouette
        assert approx.fidelity == exact.fidelity
        assert [r.region_id for r in approx.regions()] == [
            r.region_id for r in exact.regions()
        ]


# ----------------------------------------------------------------------
# Structured build errors
# ----------------------------------------------------------------------


class TestMapBuildErrors:
    def test_empty_columns(self, table):
        with pytest.raises(MapBuildError, match="at least one active column"):
            build_map(table, ())
        assert issubclass(MapBuildError, ValueError)

    def test_tiny_selection(self, table):
        with pytest.raises(MapBuildError, match="nothing to cluster"):
            build_map(table.head(1), COLUMNS)

    def test_tiny_selection_through_a_predicate(self, table):
        builder = MapBuilder(result_cache=LRUCache(max_size=8))
        with pytest.raises(MapBuildError, match="nothing to cluster"):
            builder.build(
                table,
                COLUMNS,
                config=CONFIG,
                selection=Comparison("x0", ">", 1e12),
            )


# ----------------------------------------------------------------------
# Pipeline internals
# ----------------------------------------------------------------------


class TestPipelineMechanics:
    def test_stage_artifacts_are_keyed_by_selection(self, table):
        cache = LRUCache(max_size=64)
        MapPipeline(table, COLUMNS, CONFIG, cache=cache).build()
        MapPipeline(
            table,
            COLUMNS,
            CONFIG,
            selection=Comparison("x0", ">", 0.0),
            cache=cache,
        ).build()
        # Distinct selections never share artifacts.
        assert cache.stats().hits == 0

    def test_everything_selection_matches_none(self, table):
        a = MapPipeline(table, COLUMNS, CONFIG).build()
        b = MapPipeline(table, COLUMNS, CONFIG, selection=Everything()).build()
        # No cache, no explicit rng: both default to the key-seeded
        # chain of the same canonical action path.
        assert export_map_json(a) == export_map_json(b)

    def test_builder_metrics_counters(self, table):
        from repro.service.metrics import Metrics

        metrics = Metrics()
        builder = MapBuilder(
            result_cache=LRUCache(max_size=64), metrics=metrics
        )
        builder.build(table, COLUMNS, config=CONFIG)
        builder.build(table, COLUMNS, config=CONFIG)
        builder.build(table, COLUMNS, config=CONFIG, k=4)
        assert metrics.counter("blaeu_pipeline_builds_total") == 2
        assert metrics.counter("blaeu_pipeline_map_hits_total") == 1
        assert metrics.counter("blaeu_pipeline_map_misses_total") == 2
        assert metrics.counter("blaeu_pipeline_sample_hits_total") == 1
        assert metrics.counter("blaeu_pipeline_cluster_misses_total") == 2

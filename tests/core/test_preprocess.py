"""Unit tests for the preprocessing stage (paper §3, stage 1)."""

import numpy as np
import pytest

from repro.core.preprocess import preprocess
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.table import Table


@pytest.fixture
def mixed_table(rng):
    n = 60
    return Table(
        "t",
        [
            CategoricalColumn.from_labels("id", [f"row{i}" for i in range(n)]),
            NumericColumn("income", rng.normal(30, 10, n)),
            NumericColumn("hours", rng.normal(40, 5, n)),
            CategoricalColumn.from_labels(
                "city", list(rng.choice(["ams", "nyc", "sfo"], n))
            ),
        ],
    )


class TestPreprocess:
    def test_keys_dropped(self, mixed_table):
        space = preprocess(mixed_table)
        assert space.dropped_keys == ("id",)
        assert "id" not in space.used_columns

    def test_numeric_columns_standardized(self, mixed_table):
        space = preprocess(mixed_table)
        income = space.matrix[:, space.features_of("income")[0]]
        assert income.mean() == pytest.approx(0.0, abs=1e-9)
        assert income.std() == pytest.approx(1.0, abs=1e-9)

    def test_dummy_coding(self, mixed_table):
        space = preprocess(mixed_table)
        city_features = space.features_of("city")
        assert len(city_features) == 3
        block = space.matrix[:, city_features]
        # One-hot: each row has exactly one 1 among the city dummies.
        assert (block.sum(axis=1) == 1.0).all()
        assert set(np.unique(block).tolist()) == {0.0, 1.0}

    def test_feature_names_and_masks(self, mixed_table):
        space = preprocess(mixed_table)
        assert "income" in space.feature_names
        assert any(name.startswith("city=") for name in space.feature_names)
        assert space.numeric_mask.sum() == 2
        assert space.n_features == 5

    def test_matrix_is_nan_free_despite_missing(self, rng):
        values = rng.normal(0, 1, 40)
        values[:8] = np.nan
        table = Table(
            "t",
            [
                NumericColumn("x", values),
                CategoricalColumn.from_labels(
                    "c", ["a"] * 20 + [None] * 5 + ["b"] * 15
                ),
            ],
        )
        space = preprocess(table)
        assert not np.isnan(space.matrix).any()
        # Missing numeric = mean imputation = 0 after z-scoring.
        assert (space.matrix[:8, space.features_of("x")[0]] == 0.0).all()
        # Missing categorical = all-zero dummy block.
        c_block = space.matrix[20:25][:, space.features_of("c")]
        assert (c_block == 0.0).all()

    def test_wide_categorical_excluded(self, rng):
        table = Table(
            "t",
            [
                NumericColumn("x", rng.normal(0, 1, 100)),
                CategoricalColumn.from_labels(
                    "wide", [f"v{i % 80}" for i in range(100)]
                ),
            ],
        )
        space = preprocess(table, max_categorical_cardinality=50)
        assert space.dropped_wide == ("wide",)
        assert space.n_features == 1

    def test_column_subset(self, mixed_table):
        space = preprocess(mixed_table, columns=("income", "city"))
        assert set(space.used_columns) == {"income", "city"}

    def test_unknown_column_rejected(self, mixed_table):
        with pytest.raises(KeyError):
            preprocess(mixed_table, columns=("nope",))

    def test_no_features_left_rejected(self):
        table = Table(
            "t",
            [CategoricalColumn.from_labels("id", ["a", "b", "c"])],
        )
        with pytest.raises(ValueError, match="no features"):
            preprocess(table)

    def test_keep_keys_option(self, mixed_table):
        space = preprocess(mixed_table, drop_keys=False)
        assert space.dropped_keys == ()
        # 60-label id exceeds the cardinality cap instead.
        assert "id" in space.dropped_wide

    def test_scalers_invert_medoid_coordinates(self, mixed_table):
        space = preprocess(mixed_table)
        stats = space.scalers["income"]
        original = mixed_table.column("income").values
        scaled = space.matrix[:, space.features_of("income")[0]]
        np.testing.assert_allclose(stats.invert(scaled), original, rtol=1e-9)

    def test_constant_numeric_column_tolerated(self, rng):
        table = Table(
            "t",
            [
                NumericColumn("const", np.full(30, 7.0)),
                NumericColumn("x", rng.normal(0, 1, 30)),
            ],
        )
        space = preprocess(table)
        const = space.matrix[:, space.features_of("const")[0]]
        assert (const == 0.0).all()

"""Unit tests for the Region / DataMap model."""

import pytest

from repro.core.datamap import DataMap, Region
from repro.table.predicates import Comparison, Everything


def _toy_map() -> DataMap:
    left = Region(
        region_id="r0",
        label="x < 5",
        predicate=Comparison("x", "<", 5),
        n_rows=70,
        depth=1,
        cluster=0,
        silhouette=0.8,
        exemplar={"x": 2.0},
    )
    right = Region(
        region_id="r1",
        label="x >= 5",
        predicate=Comparison("x", ">=", 5),
        n_rows=30,
        depth=1,
        cluster=1,
        silhouette=0.6,
    )
    root = Region(
        region_id="r",
        label="all rows",
        predicate=Everything(),
        n_rows=100,
        depth=0,
        children=[left, right],
    )
    return DataMap(
        root=root,
        columns=("x",),
        k=2,
        silhouette=0.7,
        fidelity=0.95,
        sample_size=100,
    )


class TestRegion:
    def test_walk_preorder(self):
        data_map = _toy_map()
        ids = [r.region_id for r in data_map.root.walk()]
        assert ids == ["r", "r0", "r1"]

    def test_is_leaf(self):
        data_map = _toy_map()
        assert not data_map.root.is_leaf
        assert data_map.region("r0").is_leaf

    def test_fraction(self):
        data_map = _toy_map()
        assert data_map.region("r0").fraction_of(100) == pytest.approx(0.7)
        assert data_map.region("r0").fraction_of(0) == 0.0

    def test_to_dict_includes_optional_fields(self):
        payload = _toy_map().region("r0").to_dict()
        assert payload["cluster"] == 0
        assert payload["silhouette"] == 0.8
        assert payload["exemplar"] == {"x": 2.0}
        root_payload = _toy_map().root.to_dict()
        assert "cluster" not in root_payload
        assert len(root_payload["children"]) == 2


class TestDataMap:
    def test_leaves_and_regions(self):
        data_map = _toy_map()
        assert [r.region_id for r in data_map.leaves()] == ["r0", "r1"]
        assert len(data_map.regions()) == 3

    def test_region_lookup(self):
        data_map = _toy_map()
        assert data_map.region("r1").n_rows == 30
        with pytest.raises(KeyError, match="available"):
            data_map.region("r9")

    def test_region_of_cluster(self):
        data_map = _toy_map()
        assert data_map.region_of_cluster(1).region_id == "r1"
        with pytest.raises(KeyError):
            data_map.region_of_cluster(5)

    def test_n_rows_delegates_to_root(self):
        assert _toy_map().n_rows == 100

    def test_to_dict_roundtrip_shape(self):
        payload = _toy_map().to_dict()
        assert payload["columns"] == ["x"]
        assert payload["k"] == 2
        assert payload["root"]["id"] == "r"

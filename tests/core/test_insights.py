"""Unit tests for region insights (inside-vs-outside contrasts)."""

import numpy as np
import pytest

from repro.core.insights import region_insights
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.predicates import Comparison, Everything, Not
from repro.table.table import Table


@pytest.fixture
def contrasted(rng):
    """200 rows where rows with flag=='in' run high on x and are 'red'."""
    n = 200
    inside = np.arange(n) < 80
    x = np.where(inside, 10.0, 0.0) + rng.normal(0, 1, n)
    y = rng.normal(0, 1, n)  # uninformative
    color = np.where(
        inside,
        rng.choice(["red", "blue"], n, p=[0.9, 0.1]),
        rng.choice(["red", "blue"], n, p=[0.2, 0.8]),
    )
    flag = np.where(inside, "in", "out")
    table = Table(
        "t",
        [
            NumericColumn("x", x),
            NumericColumn("y", y),
            CategoricalColumn.from_labels("color", list(color)),
            CategoricalColumn.from_labels("flag", list(flag)),
        ],
    )
    return table


class TestRegionInsights:
    def test_strong_numeric_contrast_found(self, contrasted):
        report = region_insights(contrasted, Comparison("flag", "==", "in"))
        assert report.n_inside == 80
        top = report.numeric[0]
        assert top.column == "x"
        assert top.direction == "high"
        assert top.effect_size > 1.0

    def test_uninformative_column_filtered(self, contrasted):
        report = region_insights(contrasted, Comparison("flag", "==", "in"))
        assert all(insight.column != "y" for insight in report.numeric)

    def test_category_lift_found(self, contrasted):
        report = region_insights(
            contrasted,
            Comparison("flag", "==", "in"),
            columns=("x", "y", "color"),
        )
        reds = [i for i in report.categories if i.label == "red"]
        assert reds and reds[0].lift > 1.5

    def test_direction_flips_for_complement(self, contrasted):
        region = Comparison("flag", "==", "in")
        inside = region_insights(contrasted, region, columns=("x",))
        outside = region_insights(contrasted, Not(region), columns=("x",))
        assert inside.numeric[0].effect_size > 0
        assert outside.numeric[0].effect_size < 0

    def test_headline_reads_naturally(self, contrasted):
        report = region_insights(contrasted, Comparison("flag", "==", "in"))
        headline = report.headline()
        assert "high x" in headline

    def test_describe_contains_all_sections(self, contrasted):
        report = region_insights(
            contrasted, Comparison("flag", "==", "in"),
            columns=("x", "color"),
        )
        text = report.describe()
        assert "80 tuples" in text
        assert "x: high" in text
        assert "lift" in text

    def test_degenerate_regions(self, contrasted):
        everything = region_insights(contrasted, Everything())
        assert everything.numeric == () and everything.categories == ()
        empty = region_insights(contrasted, Comparison("x", ">", 1e9))
        assert empty.n_inside == 0
        assert empty.headline() == (
            "no distinguishing columns at the current noise floor"
        )

    def test_min_effect_threshold(self, contrasted):
        strict = region_insights(
            contrasted, Comparison("flag", "==", "in"), min_effect=10.0
        )
        assert strict.numeric == ()

    def test_empty_region_yields_empty_report(self, contrasted):
        report = region_insights(contrasted, Comparison("x", ">", 1e9))
        assert report.n_inside == 0
        assert report.numeric == ()
        assert report.categories == ()

    def test_single_row_region_yields_empty_report(self, contrasted):
        # One inside row has no variance: no contrast is statistically
        # meaningful, and the report must come back empty, not crash.
        xs = sorted(contrasted.column("x").values)
        report = region_insights(contrasted, Comparison("x", ">", xs[-2]))
        assert report.n_inside == 1
        assert report.numeric == ()
        assert report.categories == ()

    def test_region_covering_everything_yields_empty_report(self, contrasted):
        # n_outside == 0: there is nothing to contrast against.
        report = region_insights(contrasted, Comparison("x", ">", -1e9))
        assert report.n_outside == 0
        assert report.numeric == ()
        assert report.categories == ()

    def test_no_infinite_lift_for_region_exclusive_label(self, rng):
        # A label that only ever occurs inside the region would have
        # overall share outside of... well, lift = inside/overall is
        # finite, but a label with overall probability ~0 must never
        # produce an infinite or NaN lift.
        n = 100
        inside = np.arange(n) < 30
        label = np.where(inside, "only_in", "other")
        table = Table(
            "t",
            [
                NumericColumn("z", np.where(inside, 1.0, 0.0)),
                CategoricalColumn.from_labels("tag", list(label)),
            ],
        )
        report = region_insights(table, Comparison("z", ">", 0.5))
        for insight in report.categories:
            assert np.isfinite(insight.lift)

    def test_missing_values_tolerated(self, rng):
        x = rng.normal(0, 1, 100)
        x[:30] = np.nan
        table = Table(
            "t",
            [
                NumericColumn("x", x),
                NumericColumn("z", np.r_[np.full(50, 5.0), np.zeros(50)]),
            ],
        )
        report = region_insights(table, Comparison("z", ">", 2.5))
        assert report.n_inside == 50  # no crash on the NaN block


class TestExplorerIntegration:
    def test_insights_through_explorer(self):
        from repro.core.config import BlaeuConfig
        from repro.core.navigation import Explorer
        from repro.datasets.synthetic import mixed_blobs

        planted = mixed_blobs(n_rows=300, k=2, seed=77)
        explorer = Explorer(
            planted.table, config=BlaeuConfig(map_k_values=(2,))
        )
        data_map = explorer.open_columns(("x0", "x1", "cat0"))
        leaf = data_map.leaves()[0]
        report = explorer.insights(leaf.region_id)
        assert report.n_inside == leaf.n_rows
        assert report.numeric or report.categories

"""Unit tests for the quantized query space (expressivity, paper §2)."""

import numpy as np
import pytest

from repro.core.mapping import build_map
from repro.core.queries import quantized_queries, state_to_sql
from repro.datasets.synthetic import numeric_blobs
from repro.table.predicates import Comparison, Everything


@pytest.fixture(scope="module")
def mapped():
    planted = numeric_blobs(n_rows=300, k=3, n_features=2, spread=0.4, seed=41)
    data_map = build_map(
        planted.table,
        planted.table.column_names,
        rng=np.random.default_rng(0),
    )
    return planted.table, data_map


class TestStateToSql:
    def test_plain_projection(self):
        sql = state_to_sql("t", Everything(), ("a", "b"))
        assert sql == 'SELECT "a", "b" FROM "t"'

    def test_star_when_no_columns(self):
        assert state_to_sql("t", Everything(), ()) == 'SELECT * FROM "t"'

    def test_where_clause(self):
        sql = state_to_sql("t", Comparison("a", "<", 1), ("a",))
        assert sql == 'SELECT "a" FROM "t" WHERE "a" < 1'


class TestQuantizedQueries:
    def test_one_query_per_region(self, mapped):
        table, data_map = mapped
        queries = quantized_queries(table, data_map)
        assert len(queries) == len(data_map.regions())

    def test_queries_select_exactly_region_rows(self, mapped):
        # The core expressivity check: each quantized query, evaluated
        # directly against the table, returns the region's tuples.
        table, data_map = mapped
        for query in quantized_queries(table, data_map):
            assert table.select(query.predicate).n_rows == query.n_rows

    def test_queries_nest_along_the_hierarchy(self, mapped):
        table, data_map = mapped
        by_id = {q.region_id: q for q in quantized_queries(table, data_map)}
        for region in data_map.regions():
            for child in region.children:
                parent_mask = by_id[region.region_id].predicate.mask(table)
                child_mask = by_id[child.region_id].predicate.mask(table)
                assert not (child_mask & ~parent_mask).any()

    def test_enclosing_selection_conjoined(self, mapped):
        table, data_map = mapped
        outer = Comparison("x0", ">", 0)
        queries = quantized_queries(table, data_map, selection=outer)
        for query in queries:
            mask = query.predicate.mask(table)
            assert not (mask & ~outer.mask(table)).any()

    def test_sql_is_runnable_shape(self, mapped):
        table, data_map = mapped
        for query in quantized_queries(table, data_map):
            assert query.sql.startswith("SELECT")
            assert '"blobs"' in query.sql

"""Unit tests for the four navigational actions (paper §2)."""

import numpy as np
import pytest

from repro.core.config import BlaeuConfig
from repro.core.navigation import Explorer
from repro.datasets.synthetic import mixed_blobs

CONFIG = BlaeuConfig(map_k_values=(2, 3), min_zoom_rows=10)


@pytest.fixture
def explorer():
    planted = mixed_blobs(n_rows=500, k=3, seed=31)
    return Explorer(planted.table, config=CONFIG)


class TestOpen:
    def test_open_columns_builds_initial_map(self, explorer):
        data_map = explorer.open_columns(("x0", "x1", "cat0"))
        assert explorer.depth == 1
        assert data_map.n_rows == 500
        assert explorer.state.columns == ("x0", "x1", "cat0")

    def test_open_theme_by_index(self, explorer):
        data_map = explorer.open_theme(0)
        assert data_map.n_rows == 500
        assert "open theme" in explorer.history()[0]

    def test_state_before_open_rejected(self, explorer):
        with pytest.raises(RuntimeError, match="open_theme"):
            explorer.state

    def test_unknown_column_rejected(self, explorer):
        with pytest.raises(KeyError):
            explorer.open_columns(("nope",))


class TestZoom:
    def test_zoom_restricts_selection(self, explorer):
        data_map = explorer.open_columns(("x0", "x1"))
        target = max(data_map.leaves(), key=lambda r: r.n_rows)
        zoomed = explorer.zoom(target.region_id)
        assert zoomed.n_rows == target.n_rows
        assert explorer.depth == 2

    def test_zoom_into_unknown_region_rejected(self, explorer):
        explorer.open_columns(("x0", "x1"))
        with pytest.raises(KeyError):
            explorer.zoom("r99")

    def test_zoom_into_tiny_region_rejected(self):
        planted = mixed_blobs(n_rows=80, k=2, seed=3)
        explorer = Explorer(
            planted.table,
            config=BlaeuConfig(map_k_values=(2,), min_zoom_rows=79),
        )
        data_map = explorer.open_columns(("x0", "x1"))
        smallest = min(data_map.leaves(), key=lambda r: r.n_rows)
        with pytest.raises(ValueError, match="tuples"):
            explorer.zoom(smallest.region_id)

    def test_nested_zoom_composes_predicates(self, explorer):
        data_map = explorer.open_columns(("x0", "x1"))
        first = max(data_map.leaves(), key=lambda r: r.n_rows)
        second_map = explorer.zoom(first.region_id)
        second = max(second_map.leaves(), key=lambda r: r.n_rows)
        explorer.zoom(second.region_id)
        sql = explorer.sql()
        # Both zoom conditions appear in the implicit query.
        assert sql.count("WHERE") == 1
        assert explorer.state.map.n_rows <= first.n_rows


class TestProject:
    def test_project_changes_columns_keeps_selection(self, explorer):
        data_map = explorer.open_columns(("x0", "x1"))
        target = max(data_map.leaves(), key=lambda r: r.n_rows)
        explorer.zoom(target.region_id)
        selected_rows = explorer.state.map.n_rows
        projected = explorer.project_columns(("x2", "cat0"))
        assert projected.n_rows == selected_rows
        assert explorer.state.columns == ("x2", "cat0")

    def test_project_by_theme_index(self, explorer):
        explorer.open_columns(("x0", "x1"))
        explorer.project(0)
        assert "project onto theme" in explorer.history()[-1]


class TestHighlight:
    def test_highlight_returns_summaries(self, explorer):
        data_map = explorer.open_columns(("x0", "x1", "cat0"))
        leaf = data_map.leaves()[0]
        highlight = explorer.highlight(leaf.region_id)
        assert highlight.n_rows == leaf.n_rows
        assert "x0" in highlight.numeric_summaries
        assert "cat0" in highlight.category_counts
        assert len(highlight.preview) <= CONFIG.highlight_preview_rows

    def test_highlight_with_custom_columns(self, explorer):
        data_map = explorer.open_columns(("x0", "x1"))
        leaf = data_map.leaves()[0]
        highlight = explorer.highlight(leaf.region_id, columns=("cat1",))
        assert highlight.columns == ("cat1",)
        assert "cat1" in highlight.category_counts

    def test_highlight_does_not_change_state(self, explorer):
        data_map = explorer.open_columns(("x0", "x1"))
        before = explorer.depth
        explorer.highlight(data_map.leaves()[0].region_id)
        assert explorer.depth == before


class TestRollback:
    def test_rollback_restores_previous_map(self, explorer):
        first = explorer.open_columns(("x0", "x1"))
        target = max(first.leaves(), key=lambda r: r.n_rows)
        explorer.zoom(target.region_id)
        restored = explorer.rollback()
        assert restored is first
        assert explorer.depth == 1

    def test_rollback_below_first_state_rejected(self, explorer):
        explorer.open_columns(("x0", "x1"))
        with pytest.raises(RuntimeError):
            explorer.rollback()

    def test_every_action_is_reversible(self, explorer):
        # zoom, project, zoom — then three rollbacks return to the start.
        first = explorer.open_columns(("x0", "x1"))
        target = max(first.leaves(), key=lambda r: r.n_rows)
        explorer.zoom(target.region_id)
        explorer.project_columns(("x2",))
        inner = max(
            explorer.state.map.leaves(), key=lambda r: r.n_rows
        )
        explorer.zoom(inner.region_id)
        explorer.rollback()
        explorer.rollback()
        explorer.rollback()
        assert explorer.state.map is first
        assert explorer.depth == 1


class TestStatesAndGoto:
    def test_states_lists_stack_oldest_first(self, explorer):
        first = explorer.open_columns(("x0", "x1"))
        target = max(first.leaves(), key=lambda r: r.n_rows)
        explorer.zoom(target.region_id)
        states = explorer.states()
        assert len(states) == 2
        assert states[0].map is first
        assert "zoom" in states[1].action

    def test_goto_discards_later_states(self, explorer):
        first = explorer.open_columns(("x0", "x1"))
        target = max(first.leaves(), key=lambda r: r.n_rows)
        explorer.zoom(target.region_id)
        explorer.project_columns(("x2",))
        restored = explorer.goto(0)
        assert restored is first
        assert explorer.depth == 1

    def test_goto_current_state_is_noop(self, explorer):
        explorer.open_columns(("x0", "x1"))
        explorer.goto(0)
        assert explorer.depth == 1

    def test_goto_out_of_range(self, explorer):
        explorer.open_columns(("x0", "x1"))
        with pytest.raises(IndexError):
            explorer.goto(3)


class TestInsights:
    def test_insights_match_region_size(self, explorer):
        data_map = explorer.open_columns(("x0", "x1", "cat0"))
        leaf = max(data_map.leaves(), key=lambda r: r.n_rows)
        report = explorer.insights(leaf.region_id)
        assert report.n_inside == leaf.n_rows
        assert report.n_inside + report.n_outside == data_map.n_rows

    def test_insights_after_zoom_contrast_within_selection(self, explorer):
        data_map = explorer.open_columns(("x0", "x1"))
        target = max(data_map.leaves(), key=lambda r: r.n_rows)
        zoomed = explorer.zoom(target.region_id)
        leaf = zoomed.leaves()[0]
        report = explorer.insights(leaf.region_id)
        # The contrast universe is the zoomed selection, not the table.
        assert report.n_inside + report.n_outside == zoomed.n_rows


class TestSql:
    def test_initial_sql_has_no_where(self, explorer):
        explorer.open_columns(("x0", "x1"))
        sql = explorer.sql()
        assert sql.startswith('SELECT "x0", "x1" FROM "mixed_blobs"')
        assert "WHERE" not in sql

    def test_region_sql_includes_its_predicate(self, explorer):
        data_map = explorer.open_columns(("x0", "x1"))
        leaf = data_map.leaves()[0]
        sql = explorer.sql(leaf.region_id)
        assert "WHERE" in sql

    def test_sql_query_matches_region_rows(self, explorer):
        # The expressivity claim: the rendered predicate selects exactly
        # the region's tuples.
        data_map = explorer.open_columns(("x0", "x1"))
        for leaf in data_map.leaves():
            selected = explorer.table.select(leaf.predicate)
            assert selected.n_rows == leaf.n_rows


class TestLocalThemes:
    def test_local_themes_of_a_zoomed_selection(self, explorer):
        data_map = explorer.open_columns(("x0", "x1"))
        target = max(data_map.leaves(), key=lambda r: r.n_rows)
        explorer.zoom(target.region_id)
        local = explorer.local_themes()
        assert len(local) >= 1
        assert all(theme.size >= 1 for theme in local)

    def test_local_themes_reuse_cached_codes(self, explorer):
        explorer.open_columns(("x0", "x1"))
        explorer.themes()  # primes the code cache for the base table
        before = explorer.graph_builder.stats()
        explorer.local_themes()
        after = explorer.graph_builder.stats()
        assert after["builds"] == before["builds"] + 1
        assert after["code_cache_misses"] == before["code_cache_misses"]
        assert after["code_cache_hits"] > before["code_cache_hits"]

    def test_local_themes_deterministic_and_session_neutral(self, explorer):
        """Deep-diving a selection is read-only: its randomness derives
        from the selection, not the session stream, so repeating it
        gives the same themes and later maps are unaffected."""
        data_map = explorer.open_columns(("x0", "x1"))
        target = max(data_map.leaves(), key=lambda r: r.n_rows)
        explorer.zoom(target.region_id)
        first = explorer.local_themes()
        second = explorer.local_themes()
        assert [t.columns for t in first] == [t.columns for t in second]
        assert np.array_equal(first.graph.weights, second.graph.weights)


class TestRefine:
    APPROX = BlaeuConfig(
        map_k_values=(2, 3),
        map_sample_size=150,
        min_zoom_rows=10,
        count_mode="approximate",
    )

    @pytest.fixture
    def approx_explorer(self):
        planted = mixed_blobs(n_rows=600, k=3, seed=31)
        return Explorer(planted.table, config=self.APPROX)

    def test_open_returns_approximate_then_refines(self, approx_explorer):
        data_map = approx_explorer.open_columns(("x0", "x1"))
        assert data_map.counts_status == "approximate"
        assert approx_explorer.needs_refine
        exact = approx_explorer.refine()
        assert exact.counts_status == "exact"
        assert approx_explorer.state.map is exact
        assert not approx_explorer.needs_refine
        assert exact.root.n_rows == 600

    def test_refined_map_matches_blocking_exact_build(self):
        """Session-mode refine (no cache) equals a blocking exact build."""
        from repro.core.pipeline import MapBuilder
        from repro.viz.export import export_map_json

        planted = mixed_blobs(n_rows=600, k=3, seed=31)
        approx = Explorer(planted.table, config=self.APPROX)
        approx.open_columns(("x0", "x1"))
        refined = approx.refine()

        rng = np.random.default_rng(self.APPROX.seed)
        direct = MapBuilder().build(
            planted.table,
            ("x0", "x1"),
            config=self.APPROX,
            rng=rng,
            count_mode="exact",
        )
        assert export_map_json(refined) == export_map_json(direct)

    def test_refine_is_a_noop_on_exact_maps(self, explorer):
        data_map = explorer.open_columns(("x0", "x1"))
        assert data_map.counts_status == "exact"
        assert not explorer.needs_refine
        assert explorer.refine() is data_map

    def test_rollback_keeps_approximate_state_refineable(
        self, approx_explorer
    ):
        first = approx_explorer.open_columns(("x0", "x1"))
        target = max(first.leaves(), key=lambda r: r.n_rows)
        approx_explorer.zoom(target.region_id)
        approx_explorer.rollback()
        assert approx_explorer.needs_refine
        exact = approx_explorer.refine()
        assert exact.counts_status == "exact"
        assert approx_explorer.state.map is exact


class TestThemesOnExplorer:
    def test_themes_cached(self, explorer):
        first = explorer.themes()
        assert explorer.themes() is first

    def test_set_themes_overrides(self, explorer):
        themes = explorer.themes()
        edited = themes.rename_theme(themes.names()[0], "My Theme")
        explorer.set_themes(edited)
        assert "My Theme" in explorer.themes().names()
        explorer.open_theme("My Theme")
        assert explorer.depth == 1

"""Unit tests for the Blaeu engine facade."""

import pytest

from repro.core.config import BlaeuConfig
from repro.core.engine import Blaeu
from repro.datasets.synthetic import mixed_blobs

CONFIG = BlaeuConfig(map_k_values=(2, 3))


@pytest.fixture
def engine():
    blaeu = Blaeu(CONFIG)
    blaeu.register(mixed_blobs(n_rows=300, k=2, seed=51).table)
    return blaeu


class TestEngine:
    def test_register_and_tables(self, engine):
        assert engine.tables() == ("mixed_blobs",)

    def test_load_csv(self, tmp_path):
        path = tmp_path / "tiny.csv"
        path.write_text(
            "a,b\n" + "\n".join(f"{i},{i % 3}" for i in range(40)) + "\n",
            encoding="utf-8",
        )
        engine = Blaeu()
        table = engine.load_csv(path)
        assert table.name == "tiny"
        assert "tiny" in engine.tables()

    def test_themes_cached_per_table(self, engine):
        first = engine.themes("mixed_blobs")
        assert engine.themes("mixed_blobs") is first

    def test_reregister_invalidates_theme_cache(self, engine):
        first = engine.themes("mixed_blobs")
        engine.register(mixed_blobs(n_rows=300, k=2, seed=52).table)
        assert engine.themes("mixed_blobs") is not first

    def test_one_shot_map(self, engine):
        data_map = engine.map("mixed_blobs", ("x0", "x1"))
        assert data_map.n_rows == 300

    def test_one_shot_map_forced_k(self, engine):
        data_map = engine.map("mixed_blobs", ("x0", "x1"), k=3)
        assert data_map.k == 3

    def test_explore_creates_independent_sessions(self, engine):
        a = engine.explore("mixed_blobs")
        b = engine.explore("mixed_blobs")
        a.open_columns(("x0",))
        assert a.depth == 1
        assert b.depth == 0

    def test_explore_shares_cached_themes(self, engine):
        themes = engine.themes("mixed_blobs")
        explorer = engine.explore("mixed_blobs")
        assert explorer.themes() is themes

    def test_unknown_table_rejected(self, engine):
        with pytest.raises(KeyError):
            engine.explore("nope")
        with pytest.raises(KeyError):
            engine.themes("nope")

    def test_deterministic_given_seed(self):
        table = mixed_blobs(n_rows=250, k=2, seed=60).table
        maps = []
        for _ in range(2):
            engine = Blaeu(BlaeuConfig(map_k_values=(2, 3), seed=7))
            engine.register(table)
            maps.append(engine.map("mixed_blobs", ("x0", "x1")))
        assert maps[0].to_dict() == maps[1].to_dict()

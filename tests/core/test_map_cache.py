"""Tests for cache-aware map building across engine sessions."""

import pytest

from repro.core.config import BlaeuConfig
from repro.core.engine import Blaeu
from repro.core.mapping import map_cache_key
from repro.datasets.synthetic import mixed_blobs
from repro.service.cache import LRUCache

CONFIG = BlaeuConfig(map_k_values=(2, 3), seed=5)


@pytest.fixture
def engine():
    blaeu = Blaeu(CONFIG, map_cache=LRUCache(max_size=16))
    blaeu.register(mixed_blobs(n_rows=300, k=2, seed=61).table)
    return blaeu


class TestConfigDigest:
    def test_equal_configs_share_a_digest(self):
        assert BlaeuConfig().digest() == BlaeuConfig().digest()

    def test_any_result_affecting_knob_changes_the_digest(self):
        base = BlaeuConfig()
        assert base.digest() != BlaeuConfig(seed=1).digest()
        assert base.digest() != BlaeuConfig(map_sample_size=999).digest()
        assert base.digest() != BlaeuConfig(map_k_values=(2, 3)).digest()

    def test_result_neutral_knobs_share_the_digest(self):
        """Stage memoization and two-phase counting never change the
        final exact map, so these knobs must share cache entries (and
        the key-derived RNG chain) with the defaults."""
        base = BlaeuConfig()
        assert base.digest() == BlaeuConfig(pipeline_reuse=False).digest()
        assert base.digest() == BlaeuConfig(count_mode="approximate").digest()


class TestMapCacheKey:
    def test_key_combines_content_config_and_action_path(self):
        table = mixed_blobs(n_rows=100, k=2, seed=3).table
        key = map_cache_key(table, "TRUE", ("x0", "x1"), CONFIG)
        assert key == (
            table.fingerprint(),
            CONFIG.digest(),
            "TRUE",
            ("x0", "x1"),
            None,
        )

    def test_different_selections_get_different_keys(self):
        table = mixed_blobs(n_rows=100, k=2, seed=3).table
        a = map_cache_key(table, "TRUE", ("x0",), CONFIG)
        b = map_cache_key(table, '"x0" < 1', ("x0",), CONFIG)
        assert a != b


class TestSharedCacheAcrossSessions:
    def test_two_explorers_share_one_clustering_run(self, engine):
        cache = engine.map_cache
        first = engine.explore("mixed_blobs")
        first.open_columns(("x0", "x1"))
        # A cold open misses the finished map plus the five pipeline
        # stage artifacts (sample, space, distances, cluster, describe).
        assert cache.stats().misses == 6
        assert cache.stats().hits == 0

        second = engine.explore("mixed_blobs")
        second_map = second.open_columns(("x0", "x1"))
        stats = cache.stats()
        # The warm open is answered by the finished-map entry alone: one
        # lookup, no stage artifact is even consulted.
        assert stats.hits == 1
        assert stats.misses == 6
        # The exact same map object is served to both sessions.
        assert second_map is first.state.map

    def test_zoom_paths_are_cached_by_action_path(self, engine):
        first = engine.explore("mixed_blobs")
        data_map = first.open_columns(("x0", "x1"))
        target = max(data_map.leaves(), key=lambda r: r.n_rows)
        first.zoom(target.region_id)
        before = engine.map_cache.stats()

        second = engine.explore("mixed_blobs")
        second.open_columns(("x0", "x1"))
        second.zoom(target.region_id)
        after = engine.map_cache.stats()
        assert after.hits == before.hits + 2  # the open and the zoom
        assert after.misses == before.misses

    def test_different_columns_do_not_collide(self, engine):
        explorer = engine.explore("mixed_blobs")
        first = explorer.open_columns(("x0", "x1"))
        other = engine.explore("mixed_blobs")
        second = other.open_columns(("x1", "x2"))
        assert second is not first
        stats = engine.map_cache.stats()
        # Distinct column sets never share a finished map — but they
        # *do* share the Sample artifact of the same selection (the one
        # cache hit): a project re-enters the pipeline at Preprocess.
        assert stats.hits == 1
        assert stats.misses == 11

    def test_maps_do_not_depend_on_cache_warmth(self):
        """The same action path yields the same map, hit or miss.

        Engine 1's second session opens from a *warm* cache before
        zooming (a miss); engine 2's single session pays for both
        builds.  The zoom maps must still be identical — the build RNG
        is derived from the cache key, not from session history.
        """
        from repro.viz.export import export_map_json

        def zoom_map(engine, warm_first):
            if warm_first:
                warmup = engine.explore("mixed_blobs")
                warmup.open_columns(("x0", "x1"))
            explorer = engine.explore("mixed_blobs")
            data_map = explorer.open_columns(("x0", "x1"))
            target = max(data_map.leaves(), key=lambda r: r.n_rows)
            return explorer.zoom(target.region_id)

        engines = []
        for _ in range(2):
            blaeu = Blaeu(CONFIG, map_cache=LRUCache(max_size=16))
            blaeu.register(mixed_blobs(n_rows=300, k=2, seed=61).table)
            engines.append(blaeu)
        warm = zoom_map(engines[0], warm_first=True)
        cold = zoom_map(engines[1], warm_first=False)
        assert export_map_json(warm) == export_map_json(cold)

    def test_one_shot_map_uses_the_cache(self, engine):
        engine.map("mixed_blobs", ("x0", "x1"), k=2)
        engine.map("mixed_blobs", ("x0", "x1"), k=2)
        stats = engine.map_cache.stats()
        assert stats.hits == 1
        assert stats.misses == 6

    def test_cache_off_by_default(self):
        blaeu = Blaeu(CONFIG)
        blaeu.register(mixed_blobs(n_rows=120, k=2, seed=9).table)
        assert blaeu.map_cache is None
        explorer = blaeu.explore("mixed_blobs")
        data_map = explorer.open_columns(("x0", "x1"))
        assert data_map.n_rows == 120

    def test_set_map_cache_installs_and_removes(self):
        blaeu = Blaeu(CONFIG)
        cache = LRUCache(max_size=4)
        blaeu.set_map_cache(cache)
        assert blaeu.map_cache is cache
        blaeu.set_map_cache(None)
        assert blaeu.map_cache is None

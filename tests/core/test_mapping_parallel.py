"""End-to-end determinism of build_map under the new performance knobs."""

import numpy as np
import pytest

from repro.core.config import BlaeuConfig
from repro.core.mapping import build_map
from repro.datasets.synthetic import numeric_blobs


@pytest.fixture(scope="module")
def big_blobs():
    # Enough rows that the sample crosses the (lowered) CLARA threshold.
    return numeric_blobs(n_rows=2_000, k=3, n_features=3, spread=0.4, seed=23)


def _build(table, **overrides):
    config = BlaeuConfig(
        map_sample_size=1_500,
        clara_threshold=300,
        map_k_values=(2, 3),
        seed=11,
        **overrides,
    )
    return build_map(
        table, table.column_names, config=config, rng=np.random.default_rng(11)
    )


def _map_signature(data_map):
    return (
        data_map.k,
        data_map.silhouette,
        data_map.fidelity,
        [(r.region_id, r.n_rows, r.predicate.to_sql()) for r in data_map.leaves()],
    )


class TestParallelMapBuilds:
    def test_parallel_config_is_bit_identical(self, big_blobs):
        serial = _build(big_blobs.table, clara_jobs=None)
        parallel = _build(big_blobs.table, clara_jobs=3)
        assert _map_signature(serial) == _map_signature(parallel)

    def test_all_cores_config_is_bit_identical(self, big_blobs):
        serial = _build(big_blobs.table, clara_jobs=None)
        parallel = _build(big_blobs.table, clara_jobs=0)
        assert _map_signature(serial) == _map_signature(parallel)

    def test_float32_map_is_structurally_sound(self, big_blobs):
        data_map = _build(big_blobs.table, distance_dtype="float32")
        assert data_map.k in (2, 3)
        assert -1.0 <= data_map.silhouette <= 1.0
        assert sum(leaf.n_rows for leaf in data_map.leaves()) == (
            big_blobs.table.n_rows
        )

    def test_config_digest_tracks_new_knobs(self):
        base = BlaeuConfig()
        assert base.digest() != BlaeuConfig(clara_jobs=4).digest()
        assert base.digest() != BlaeuConfig(distance_dtype="float32").digest()
        assert base.digest() != BlaeuConfig(silhouette_exact_threshold=10).digest()

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            BlaeuConfig(distance_dtype="float16")
        with pytest.raises(ValueError):
            BlaeuConfig(clara_jobs=-2)
        with pytest.raises(ValueError):
            BlaeuConfig(silhouette_exact_threshold=-1)

"""Unit tests for the map-building pipeline (paper §3, Figure 3)."""

import numpy as np
import pytest

from repro.cluster.validation import adjusted_rand_index
from repro.core.config import BlaeuConfig
from repro.core.mapping import build_map
from repro.datasets.synthetic import mixed_blobs, numeric_blobs
from repro.table.predicates import Everything


@pytest.fixture(scope="module")
def blobs():
    return numeric_blobs(n_rows=500, k=3, n_features=3, spread=0.4, seed=17)


class TestBuildMap:
    def test_recovers_planted_clusters(self, blobs):
        data_map = build_map(
            blobs.table,
            blobs.table.column_names,
            rng=np.random.default_rng(0),
        )
        assert data_map.k == 3
        # Leaf regions, interpreted as a labeling of the table, should
        # match the planted clusters.
        predicted = np.full(blobs.table.n_rows, -1)
        for position, leaf in enumerate(data_map.leaves()):
            mask = leaf.predicate.mask(blobs.table)
            predicted[mask] = position
        assert adjusted_rand_index(predicted, blobs.labels) > 0.9

    def test_root_covers_selection(self, blobs):
        data_map = build_map(
            blobs.table, blobs.table.column_names,
            rng=np.random.default_rng(0),
        )
        assert data_map.n_rows == blobs.table.n_rows
        assert isinstance(data_map.root.predicate, Everything)
        assert data_map.root.label == "all rows"

    def test_children_counts_sum_to_parent(self, blobs):
        data_map = build_map(
            blobs.table, blobs.table.column_names,
            rng=np.random.default_rng(0),
        )
        for region in data_map.regions():
            if not region.is_leaf:
                assert region.n_rows == sum(
                    child.n_rows for child in region.children
                )

    def test_region_ids_encode_paths(self, blobs):
        data_map = build_map(
            blobs.table, blobs.table.column_names,
            rng=np.random.default_rng(0),
        )
        for region in data_map.regions():
            assert region.region_id.startswith("r")
            for i, child in enumerate(region.children):
                assert child.region_id == region.region_id + str(i)

    def test_leaves_have_clusters_and_exemplars(self, blobs):
        data_map = build_map(
            blobs.table, blobs.table.column_names,
            rng=np.random.default_rng(0),
        )
        clusters = {leaf.cluster for leaf in data_map.leaves()}
        assert clusters == set(range(data_map.k))
        for leaf in data_map.leaves():
            assert set(leaf.exemplar) == set(blobs.table.column_names)

    def test_forced_k(self, blobs):
        data_map = build_map(
            blobs.table, blobs.table.column_names,
            rng=np.random.default_rng(0), k=2,
        )
        assert data_map.k == 2

    def test_forced_k_out_of_range(self, blobs):
        with pytest.raises(ValueError):
            build_map(
                blobs.table, blobs.table.column_names,
                rng=np.random.default_rng(0), k=0,
            )

    def test_sampling_bounds_work(self, blobs):
        config = BlaeuConfig(map_sample_size=150)
        data_map = build_map(
            blobs.table, blobs.table.column_names,
            config=config, rng=np.random.default_rng(0),
        )
        assert data_map.sample_size == 150
        # Counts stay exact over the full selection despite sampling.
        assert data_map.n_rows == blobs.table.n_rows

    def test_mixed_data_with_missing(self):
        planted = mixed_blobs(
            n_rows=400, k=2, missing_rate=0.05, seed=23
        )
        data_map = build_map(
            planted.table,
            planted.table.column_names,
            rng=np.random.default_rng(0),
        )
        assert data_map.k >= 2
        assert 0.0 <= data_map.fidelity <= 1.0
        # Every row is counted somewhere (missing cells route through the
        # tree's majority branches, never dropped).
        assert (
            sum(leaf.n_rows for leaf in data_map.leaves()) == planted.table.n_rows
        )

    def test_fidelity_high_on_separable_data(self, blobs):
        data_map = build_map(
            blobs.table, blobs.table.column_names,
            rng=np.random.default_rng(0),
        )
        assert data_map.fidelity > 0.9

    def test_silhouette_in_range(self, blobs):
        data_map = build_map(
            blobs.table, blobs.table.column_names,
            rng=np.random.default_rng(0),
        )
        assert -1.0 <= data_map.silhouette <= 1.0

    def test_empty_columns_rejected(self, blobs):
        with pytest.raises(ValueError):
            build_map(blobs.table, (), rng=np.random.default_rng(0))

    def test_tiny_selection_rejected(self, blobs):
        tiny = blobs.table.head(1)
        with pytest.raises(ValueError):
            build_map(tiny, blobs.table.column_names)

    def test_to_dict_payload(self, blobs):
        data_map = build_map(
            blobs.table, blobs.table.column_names,
            rng=np.random.default_rng(0),
        )
        payload = data_map.to_dict()
        assert payload["k"] == data_map.k
        assert payload["root"]["n_rows"] == data_map.n_rows
        assert "children" in payload["root"]

"""Unit tests for engine configuration validation."""

import pytest

from repro.core.config import BlaeuConfig


class TestBlaeuConfig:
    def test_defaults_are_valid(self):
        config = BlaeuConfig()
        assert config.map_sample_size == 2000
        assert config.theme_k_values is None

    def test_frozen(self):
        config = BlaeuConfig()
        with pytest.raises(AttributeError):
            config.seed = 1  # type: ignore[misc]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"map_sample_size": 5},
            {"clara_threshold": 5},
            {"map_k_values": ()},
            {"map_k_values": (1, 2)},
            {"theme_k_values": ()},
            {"theme_k_values": (1,)},
            {"min_zoom_rows": 1},
            {"prune_leaf_factor": 0},
            {"prune_min_fidelity": 1.5},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BlaeuConfig(**kwargs)

    def test_explicit_theme_k_values_accepted(self):
        config = BlaeuConfig(theme_k_values=(2, 4, 8))
        assert config.theme_k_values == (2, 4, 8)

"""Insight mining: let Blaeu explain every region of a map.

The demo's stated goal is "triggering insights and serendipity".  This
example turns that into a batch report: build a map of the Hollywood
table, then for every region produce (a) the analyst-style *headline*
("high Budget, high WorldwideGross"), (b) the full inside-vs-outside
contrast table, and (c) the group-by aggregates behind it — showing the
three public APIs (`Explorer.insights`, `region_insights`,
`repro.table.aggregate`) working together.

Run with::

    python examples/insight_report.py
"""

from repro import Blaeu
from repro.datasets import hollywood
from repro.table.aggregate import Aggregate, aggregate
from repro.viz import render_map


def main() -> None:
    engine = Blaeu()
    engine.register(hollywood())
    explorer = engine.explore("hollywood")
    data_map = explorer.open_columns(
        ("Budget", "WorldwideGross", "Profitability", "RottenTomatoes", "Genre")
    )
    print(render_map(data_map))
    print()

    for leaf in data_map.leaves():
        report = explorer.insights(leaf.region_id)
        print(f"=== region {leaf.region_id}: {leaf.label} ===")
        print(f"    {report.headline()}")
        for insight in report.numeric[:3]:
            print(f"    {insight.describe()}")
        for insight in report.categories[:3]:
            print(f"    {insight.describe()}")

        # The aggregates a DBMS would run for the same panel.
        result = aggregate(
            explorer.table,
            [
                Aggregate("count"),
                Aggregate("mean", "Profitability"),
                Aggregate("mean", "RottenTomatoes"),
            ],
            by="Genre",
            where=leaf.predicate,
        )
        top_genres = result.labels()[:3]
        rendered = ", ".join(
            f"{label}: n={result.group(label)['count']:.0f}, "
            f"profit {result.group(label)['mean_Profitability']:.1f}x"
            for label in top_genres
            if label is not None
        )
        print(f"    by genre → {rendered}")
        print(f"    sql      → {result.sql}")
        print()


if __name__ == "__main__":
    main()

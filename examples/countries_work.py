"""The Countries-and-Work scenario — the paper's running example.

Reproduces the full Figure 1 walkthrough on the OECD-shaped dataset
(6,823 rows × 378 columns, 31 countries):

1. list the themes (Figure 1a) and find the labor-conditions theme;
2. open its data map (Figure 1b): long working hours vs. average income;
3. zoom into the "short hours, high income" region and highlight the
   country names — Switzerland, Norway and Canada should surface
   (Figure 1c), answering "where are the working conditions best?";
4. project the selection onto the unemployment theme (Figure 1d);
5. roll everything back.

Run with::

    python examples/countries_work.py
"""

from repro import Blaeu
from repro.datasets import oecd
from repro.datasets.oecd import LABOR_THEME, UNEMPLOYMENT_THEME
from repro.viz import render_map, render_theme_view


def main() -> None:
    engine = Blaeu()
    print("generating the countries table (6,823 x 378)…")
    engine.register(oecd())

    # --- Figure 1a: the theme list -----------------------------------
    print("extracting themes (dependency graph over 377 columns)…")
    themes = engine.themes("countries")
    print()
    print(render_theme_view(themes, max_columns=4))

    labor = themes.theme_of(LABOR_THEME[0])
    unemployment = themes.theme_of(UNEMPLOYMENT_THEME[0])
    print()
    print(f"labor theme     : {labor.columns}")
    print(f"unemployment    : {unemployment.columns}")

    # --- Figure 1b: the initial map over labor conditions ------------
    explorer = engine.explore("countries")
    explorer.open_columns(LABOR_THEME)
    data_map = explorer.state.map
    print()
    print(render_map(data_map))

    # --- Figure 1c: zoom into short-hours/high-income, highlight -----
    # The interesting region: low working hours, high income.
    target = None
    for leaf in data_map.leaves():
        exemplar = leaf.exemplar
        hours = exemplar.get(LABOR_THEME[0])
        income = exemplar.get(LABOR_THEME[1])
        if hours is not None and income is not None and hours < 20 and income >= 22:
            target = leaf
            break
    if target is None:  # fall back to the largest leaf
        target = max(data_map.leaves(), key=lambda r: r.n_rows)

    print()
    print(f"zooming into {target.region_id}: {target.label}")
    zoomed = explorer.zoom(target.region_id)
    print(render_map(zoomed))

    # Highlight the high-income leaf of the zoomed map (Figure 1c shows
    # Switzerland, Norway and Canada surfacing here).
    rich = max(
        zoomed.leaves(),
        key=lambda r: r.exemplar.get(LABOR_THEME[1]) or float("-inf"),
    )
    highlight = explorer.highlight(rich.region_id, columns=("CountryName",))
    counts = highlight.category_counts["CountryName"]
    print()
    print(f"countries in {rich.region_id} ({rich.label}), top 8:")
    for country, count in list(counts.items())[:8]:
        print(f"  {country:<16} {count}")

    # --- Figure 1d: project onto the unemployment theme --------------
    print()
    print("projecting the selection onto the unemployment theme…")
    projected = explorer.project(unemployment)
    print(render_map(projected))

    # --- the implicit query and the rollback -------------------------
    print()
    print("implicit query so far:")
    print(" ", explorer.sql())
    explorer.rollback()
    explorer.rollback()
    print()
    print("history after two rollbacks:", list(explorer.history()))


if __name__ == "__main__":
    main()

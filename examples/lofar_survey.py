"""The LOFAR scenario: a large table, sampled at interaction time.

The paper's third demo dataset is a radio-astronomy catalog with
"100,000s of tuples".  This example shows the engine staying interactive
at that scale: every map is built from a few-thousand-tuple sample (with
CLARA for the clustering), while region counts remain exact over the full
table.  It also demonstrates the highlight inspectors (text histogram and
scatter plot) on a zoomed population.

Run with::

    python examples/lofar_survey.py          # 200k rows (paper scale)
    python examples/lofar_survey.py 50000    # smaller, faster
"""

import sys
import time

from repro import Blaeu, BlaeuConfig
from repro.datasets import lofar
from repro.viz import render_map, text_histogram, text_scatter


def main(n_rows: int) -> None:
    print(f"generating the LOFAR catalog ({n_rows:,} sources)…")
    table = lofar(n_rows=n_rows)

    engine = Blaeu(BlaeuConfig(map_sample_size=2000))
    engine.register(table)
    explorer = engine.explore("lofar")

    # Maps over the physical properties of the sources.
    columns = (
        "Flux150MHz",
        "SpectralIndex",
        "AngularSize",
        "AxisRatio",
        "Variability",
    )
    started = time.perf_counter()
    data_map = explorer.open_columns(columns)
    elapsed = time.perf_counter() - started
    print()
    print(render_map(data_map))
    print(
        f"(built from a {data_map.sample_size:,}-tuple sample of "
        f"{table.n_rows:,} in {elapsed:.2f}s)"
    )

    # Zoom into the largest population and inspect it.
    biggest = max(data_map.leaves(), key=lambda region: region.n_rows)
    started = time.perf_counter()
    explorer.zoom(biggest.region_id)
    elapsed = time.perf_counter() - started
    print()
    print(f"zoomed into {biggest.region_id} ({biggest.label}) in {elapsed:.2f}s")
    print(render_map(explorer.state.map))

    # Highlight: the classic univariate / bivariate inspectors.
    selection = table.select(explorer.state.selection)
    print()
    print(text_histogram(selection.column("SpectralIndex")))
    print()
    sample = selection.sample(1500)
    print(
        text_scatter(
            sample.column("AngularSize"),  # type: ignore[arg-type]
            sample.column("AxisRatio"),  # type: ignore[arg-type]
        )
    )

    print()
    print("implicit query:", explorer.sql())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200_000)

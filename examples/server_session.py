"""Driving Blaeu through the client/server protocol (Figure 4).

The paper deploys Blaeu as a web application: browser → NodeJS session
manager → R mapping engine → MonetDB.  This example exercises the same
round-trip shape in process: every interaction is a JSON request line
handed to the :class:`~repro.server.session.SessionManager`, and every
answer is a JSON payload a D3 client could render.

Run with::

    python examples/server_session.py
"""

import json

from repro import Blaeu
from repro.datasets import hollywood
from repro.server import SessionManager


def send(manager: SessionManager, request: dict) -> dict:
    """One wire round-trip, with logging."""
    line = json.dumps(request)
    print(f">>> {line}")
    response = json.loads(manager.handle_json(line))
    summary = {k: response[k] for k in ("ok", "error") if k in response}
    if "map" in response:
        root = response["map"]["root"]
        summary["map"] = (
            f"{response['map']['k']} clusters over "
            f"{response['map']['n_rows']} rows; root children: "
            f"{[c['name'] for c in root.get('children', [])]}"
        )
    if "themes" in response:
        summary["themes"] = [t["name"] for t in response["themes"]["themes"]]
    if "highlight" in response:
        summary["highlight"] = (
            f"{response['highlight']['n_rows']} rows in region "
            f"{response['highlight']['region']}"
        )
    for key in ("sql", "history", "tables", "closed"):
        if key in response:
            summary[key] = response[key]
    print(f"<<< {json.dumps(summary, default=str)}")
    print()
    return response


def main() -> None:
    engine = Blaeu()
    engine.register(hollywood())
    manager = SessionManager(engine)

    send(manager, {"command": "tables"})
    themes = send(manager, {"command": "themes", "table": "hollywood"})
    first_theme = themes["themes"]["themes"][0]["name"]

    send(
        manager,
        {
            "command": "open",
            "session": "demo",
            "table": "hollywood",
            "theme": first_theme,
        },
    )
    response = send(manager, {"command": "map", "session": "demo"})
    # Zoom into the largest child region of the root.
    children = response["map"]["root"]["children"]
    biggest = max(children, key=lambda c: c["value"])
    send(manager, {"command": "zoom", "session": "demo", "region": biggest["id"]})
    send(
        manager,
        {
            "command": "highlight",
            "session": "demo",
            "region": "r",
            "columns": ["Title", "Genre", "Budget"],
        },
    )
    send(manager, {"command": "sql", "session": "demo"})
    send(manager, {"command": "rollback", "session": "demo"})
    send(manager, {"command": "history", "session": "demo"})

    # Errors come back as structured responses, never as crashes.
    send(manager, {"command": "zoom", "session": "nope", "region": "r0"})
    send(manager, {"command": "close", "session": "demo"})


if __name__ == "__main__":
    main()

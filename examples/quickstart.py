"""Quickstart: explore the Hollywood movies table in five minutes.

This walks the paper's first demo scenario (§4.2): load the ~900-movie
table, look at its themes, open a map, zoom into the most interesting
region, highlight it, and read off the SQL query you implicitly wrote.

Run with::

    python examples/quickstart.py
"""

from repro import Blaeu
from repro.datasets import hollywood
from repro.viz import render_map, render_region_panel, render_theme_view


def main() -> None:
    # 1. Stand up the engine and register a table (CSV files work too:
    #    engine.load_csv("movies.csv")).
    engine = Blaeu()
    engine.register(hollywood())
    print("tables:", engine.tables())

    # 2. Which aspects does the data have?  Blaeu clusters the *columns*
    #    into themes so you do not have to know the schema.
    explorer = engine.explore("hollywood")
    themes = explorer.themes()
    print()
    print(render_theme_view(themes))

    # 3. Open the first (largest) theme: Blaeu clusters the *rows* and
    #    describes the clusters with interpretable split predicates.
    data_map = explorer.open_theme(0)
    print()
    print(render_map(data_map))

    # 4. Zoom into the biggest leaf region — "drill down", Figure 1c.
    biggest = max(data_map.leaves(), key=lambda region: region.n_rows)
    zoomed = explorer.zoom(biggest.region_id)
    print()
    print(f"--- after zooming into {biggest.region_id} ({biggest.label}) ---")
    print(render_map(zoomed))

    # 5. Highlight a region to see actual movies and summary statistics.
    leaf = zoomed.leaves()[0]
    highlight = explorer.highlight(
        leaf.region_id, columns=("Title", "Genre", "Budget", "Profitability")
    )
    print()
    print(render_region_panel(highlight))

    # 6. Every click was a query: here is the SQL you wrote by navigating.
    print()
    print("your implicit query:")
    print(" ", explorer.sql(leaf.region_id))

    # 7. Change your mind: rollback is always available.
    explorer.rollback()
    print()
    print("after rollback, history:", list(explorer.history()))


if __name__ == "__main__":
    main()

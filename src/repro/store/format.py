"""The on-disk layout of a column store: manifest + raw column files.

A store is a directory::

    <root>/
      manifest.json            schema, row count, chunking, fingerprint
      priority.bin             per-row sampling priority (int64 permutation)
      columns/
        c00000.values.bin      numeric column: float64 values (NaN at missing)
        c00000.mask.bin        bool missing mask (authoritative, like Column)
        c00001.codes.bin       categorical column: int32 codes (-1 = missing)
        c00001.mask.bin        bool missing mask (== codes -1, precomputed)
        c00001.categories.json category list, first-appearance order

Column files are header-less little-endian binaries — one
``np.memmap``/``np.fromfile`` call away from an array, with no parsing
and no row-group framing.  The manifest carries everything else:

``fingerprint``
    The table's *content* hash, computed once at write time with exactly
    the algorithm of :meth:`repro.table.table.Table.fingerprint` — so a
    store-backed table and its in-memory twin share cache keys, and
    reading the fingerprint back is O(1) instead of an O(data) re-hash.
``chunk_rows``
    The ingestion chunk size, reused as the default scan granularity.
``priority_seed``
    Seed of the persisted :class:`~repro.table.sampling.SampleCascade`
    priorities, making nested zoom samples identical across processes.
``partitions``
    Contiguous row ranges over the column files, each carrying a *zone
    map* — per-column min/max over present values plus a null count —
    so scans can prove a partition cannot match a predicate and skip
    its IO entirely (the row-group design of Parquet/Hillview, kept
    logical: partitions share the single per-column files, so the
    format version and mmap story are unchanged).  Manifests written
    before partitioning load as one implicit partition with no zones.
``version`` / ``previous_fingerprint``
    Ingest lineage: ``version`` counts the ingests that produced the
    store (1 for a fresh ingest, +1 per append) and
    ``previous_fingerprint`` records the content hash the latest append
    extended, so cache owners can tell an append apart from unrelated
    data.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.csv_io import DEFAULT_CHUNK_ROWS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.table.table import Table

__all__ = [
    "CODES_DTYPE",
    "DEFAULT_CHUNK_ROWS",
    "DEFAULT_PARTITION_ROWS",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "MASK_DTYPE",
    "PRIORITY_DTYPE",
    "PRIORITY_FILE",
    "VALUES_DTYPE",
    "ColumnMeta",
    "ColumnZone",
    "PartitionMeta",
    "StoreManifest",
    "StreamingFingerprint",
    "categorical_zone",
    "iter_file_chunks",
    "numeric_zone",
    "partition_spans",
    "write_store",
]

FORMAT_NAME = "blaeu.store"
FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"
PRIORITY_FILE = "priority.bin"

#: Default rows per range partition (16 ingestion chunks at the default
#: chunk size): large enough that zone maps stay a rounding error of the
#: manifest, small enough that a selective predicate can skip most of a
#: 100M-row table.
DEFAULT_PARTITION_ROWS = 1_048_576

VALUES_DTYPE = "<f8"
CODES_DTYPE = "<i4"
MASK_DTYPE = "|b1"
PRIORITY_DTYPE = "<i8"

KIND_NUMERIC = "numeric"
KIND_CATEGORICAL = "categorical"


@dataclass(frozen=True)
class ColumnMeta:
    """One column's entry in the manifest.

    ``files`` maps roles to root-relative paths: ``values``/``mask`` for
    numeric columns, ``codes``/``mask``/``categories`` for categorical.
    """

    name: str
    kind: str
    files: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in (KIND_NUMERIC, KIND_CATEGORICAL):
            raise ValueError(f"unknown column kind {self.kind!r}")
        roles = (
            ("values", "mask")
            if self.kind == KIND_NUMERIC
            else ("codes", "mask", "categories")
        )
        missing = [role for role in roles if role not in self.files]
        if missing:
            raise ValueError(
                f"column {self.name!r} manifest entry lacks files for {missing}"
            )

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "kind": self.kind, "files": dict(self.files)}

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "ColumnMeta":
        files = dict(payload["files"])  # type: ignore[arg-type]
        return cls(
            name=str(payload["name"]),
            kind=str(payload["kind"]),
            files={str(k): str(v) for k, v in files.items()},
        )


@dataclass(frozen=True)
class ColumnZone:
    """One column's summary over one partition's rows.

    ``min``/``max`` span the *present* values of a numeric column and
    are ``None`` for categorical columns (codes carry no order) and for
    partitions with no present value at all.  ``null_count`` counts the
    missing cells — enough to prove ``IS NULL`` (and, at
    ``null_count == rows``, any value predicate) empty.
    """

    null_count: int
    min: float | None = None
    max: float | None = None

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {"null_count": self.null_count}
        if self.min is not None:
            payload["min"] = self.min
            payload["max"] = self.max
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "ColumnZone":
        minimum = payload.get("min")
        maximum = payload.get("max")
        return cls(
            null_count=int(payload["null_count"]),  # type: ignore[arg-type]
            min=None if minimum is None else float(minimum),  # type: ignore[arg-type]
            max=None if maximum is None else float(maximum),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class PartitionMeta:
    """One contiguous row range of the store, with its zone maps.

    Partitions are *logical*: they index into the same per-column files
    (rows ``[start, stop)``), so repartitioning rewrites only the
    manifest.  ``zones`` maps column names to :class:`ColumnZone`; an
    empty mapping (the implicit partition of a pre-partitioning store)
    is never pruned.
    """

    start: int
    stop: int
    zones: dict[str, ColumnZone] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ValueError(
                f"invalid partition range [{self.start}, {self.stop})"
            )

    @property
    def rows(self) -> int:
        return self.stop - self.start

    def to_dict(self) -> dict[str, object]:
        return {
            "start": self.start,
            "stop": self.stop,
            "zones": {
                name: zone.to_dict() for name, zone in self.zones.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "PartitionMeta":
        zones = payload.get("zones") or {}
        return cls(
            start=int(payload["start"]),  # type: ignore[arg-type]
            stop=int(payload["stop"]),  # type: ignore[arg-type]
            zones={
                str(name): ColumnZone.from_dict(zone)
                for name, zone in zones.items()  # type: ignore[union-attr]
            },
        )


def partition_spans(
    n_rows: int, partition_rows: int, start: int = 0
) -> list[tuple[int, int]]:
    """The ``[start, stop)`` ranges tiling ``[start, n_rows)``."""
    if partition_rows < 1:
        raise ValueError(
            f"partition_rows must be positive, got {partition_rows}"
        )
    return [
        (lo, min(lo + partition_rows, n_rows))
        for lo in range(start, n_rows, partition_rows)
    ]


def numeric_zone(values: np.ndarray, mask: np.ndarray) -> ColumnZone:
    """The zone map of one numeric partition slice (mask authoritative)."""
    null_count = int(np.count_nonzero(mask))
    present = values[~np.asarray(mask, dtype=bool)]
    if present.size == 0:
        return ColumnZone(null_count=null_count)
    return ColumnZone(
        null_count=null_count,
        min=float(present.min()),
        max=float(present.max()),
    )


def categorical_zone(codes: np.ndarray) -> ColumnZone:
    """The zone map of one categorical partition slice (codes < 0 = null)."""
    return ColumnZone(null_count=int(np.count_nonzero(codes < 0)))


@dataclass(frozen=True)
class StoreManifest:
    """The store's schema + provenance document (``manifest.json``)."""

    table: str
    n_rows: int
    chunk_rows: int
    fingerprint: str
    columns: tuple[ColumnMeta, ...]
    priority_seed: int = 0
    priority_file: str = PRIORITY_FILE
    format_version: int = FORMAT_VERSION
    partitions: tuple[PartitionMeta, ...] = ()
    version: int = 1
    previous_fingerprint: str | None = None

    def __post_init__(self) -> None:
        if not self.table:
            raise ValueError("store manifest needs a table name")
        if self.n_rows < 0:
            raise ValueError("n_rows must be non-negative")
        if self.chunk_rows < 1:
            raise ValueError("chunk_rows must be positive")
        if not self.columns:
            raise ValueError("a store must have at least one column")
        names = [meta.name for meta in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in manifest: {names}")
        if self.version < 1:
            raise ValueError("manifest version must be >= 1")
        if self.partitions:
            cursor = 0
            for partition in self.partitions:
                if partition.start != cursor:
                    raise ValueError(
                        "partitions must tile the row range contiguously; "
                        f"expected start {cursor}, got {partition.start}"
                    )
                cursor = partition.stop
            if cursor != self.n_rows:
                raise ValueError(
                    f"partitions cover {cursor} rows of {self.n_rows}"
                )

    def effective_partitions(self) -> tuple[PartitionMeta, ...]:
        """The partition list, or the implicit whole-table partition.

        Backward compatibility contract: a manifest without a
        ``partitions`` section behaves as one zone-less partition
        spanning every row — nothing is ever pruned, nothing needs a
        migration.
        """
        if self.partitions:
            return self.partitions
        if self.n_rows == 0:
            return ()
        return (PartitionMeta(start=0, stop=self.n_rows),)

    def column(self, name: str) -> ColumnMeta:
        """The metadata of the column called ``name``."""
        for meta in self.columns:
            if meta.name == name:
                return meta
        raise KeyError(
            f"store for table {self.table!r} has no column {name!r}; "
            f"available: {[m.name for m in self.columns]}"
        )

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "format": FORMAT_NAME,
            "format_version": self.format_version,
            "table": self.table,
            "n_rows": self.n_rows,
            "chunk_rows": self.chunk_rows,
            "fingerprint": self.fingerprint,
            "priority_seed": self.priority_seed,
            "priority_file": self.priority_file,
            "columns": [meta.to_dict() for meta in self.columns],
            "version": self.version,
        }
        if self.partitions:
            payload["partitions"] = [
                partition.to_dict() for partition in self.partitions
            ]
        if self.previous_fingerprint is not None:
            payload["previous_fingerprint"] = self.previous_fingerprint
        return payload

    def save(self, root: str | Path) -> Path:
        """Write ``manifest.json`` atomically (tmp file + rename)."""
        root = Path(root)
        path = root / MANIFEST_NAME
        tmp = root / (MANIFEST_NAME + ".tmp")
        tmp.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, root: str | Path) -> "StoreManifest":
        """Read and validate the manifest under ``root``."""
        path = Path(root) / MANIFEST_NAME
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise FileNotFoundError(
                f"{path} does not exist; is {root!r} a blaeu store directory?"
            ) from None
        if payload.get("format") != FORMAT_NAME:
            raise ValueError(
                f"{path} is not a {FORMAT_NAME} manifest "
                f"(format={payload.get('format')!r})"
            )
        version = int(payload.get("format_version", 0))
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported store format_version {version} "
                f"(this build reads {FORMAT_VERSION})"
            )
        return cls(
            table=str(payload["table"]),
            n_rows=int(payload["n_rows"]),
            chunk_rows=int(payload["chunk_rows"]),
            fingerprint=str(payload["fingerprint"]),
            columns=tuple(
                ColumnMeta.from_dict(entry) for entry in payload["columns"]
            ),
            priority_seed=int(payload.get("priority_seed", 0)),
            priority_file=str(payload.get("priority_file", PRIORITY_FILE)),
            format_version=version,
            partitions=tuple(
                PartitionMeta.from_dict(entry)
                for entry in payload.get("partitions", ())
            ),
            version=int(payload.get("version", 1)),
            previous_fingerprint=(
                str(payload["previous_fingerprint"])
                if payload.get("previous_fingerprint") is not None
                else None
            ),
        )


def column_file_stem(position: int) -> str:
    """Root-relative stem of the files backing column ``position``."""
    return f"columns/c{position:05d}"


def read_file_chunk(
    path: str | Path, dtype: str, start: int, stop: int
) -> np.ndarray:
    """Rows ``[start, stop)`` of a raw column file as an in-memory array.

    A buffered read (``np.fromfile`` with an offset), not mmap, so scans
    built on it never grow the resident set beyond the requested chunk.
    """
    itemsize = np.dtype(dtype).itemsize
    return np.fromfile(
        path, dtype=dtype, count=stop - start, offset=start * itemsize
    )


def iter_file_chunks(
    path: str | Path, dtype: str, n_rows: int, chunk_rows: int
) -> Iterator[np.ndarray]:
    """Stream a raw column file as arrays of at most ``chunk_rows`` items."""
    for start in range(0, n_rows, chunk_rows):
        yield read_file_chunk(path, dtype, start, min(start + chunk_rows, n_rows))


class StreamingFingerprint:
    """Recompute :meth:`Table.fingerprint` from on-disk column files.

    Byte-for-byte the same digest as the in-memory implementation, fed
    chunk-wise — the ingester calls this once at finalize so opening the
    store later never has to hash column data again.
    """

    def __init__(self, n_rows: int, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> None:
        self._n_rows = n_rows
        self._chunk_rows = chunk_rows
        self._digest = hashlib.sha256()
        self._digest.update(f"blaeu.table/1:{n_rows}".encode())

    def _preamble(self, name: str, kind: str) -> None:
        self._digest.update(b"\x00col\x00")
        self._digest.update(name.encode("utf-8"))
        self._digest.update(b"\x00")
        self._digest.update(kind.encode("ascii"))
        self._digest.update(b"\x00")

    def add_numeric(self, name: str, values_path: Path, mask_path: Path) -> None:
        """Hash one numeric column from its values + mask files."""
        self._preamble(name, KIND_NUMERIC)
        masks = iter_file_chunks(
            mask_path, MASK_DTYPE, self._n_rows, self._chunk_rows
        )
        for values, mask in zip(
            iter_file_chunks(
                values_path, VALUES_DTYPE, self._n_rows, self._chunk_rows
            ),
            masks,
        ):
            self._digest.update(np.where(mask, 0.0, values).tobytes())
        self._hash_mask(mask_path)

    def add_categorical(
        self,
        name: str,
        codes_path: Path,
        mask_path: Path,
        categories: tuple[str, ...],
    ) -> None:
        """Hash one categorical column from its codes file + category list."""
        self._preamble(name, KIND_CATEGORICAL)
        for codes in iter_file_chunks(
            codes_path, CODES_DTYPE, self._n_rows, self._chunk_rows
        ):
            self._digest.update(codes.tobytes())
        self._digest.update(len(categories).to_bytes(4, "big"))
        for category in categories:
            encoded = category.encode("utf-8")
            self._digest.update(len(encoded).to_bytes(4, "big"))
            self._digest.update(encoded)
        self._hash_mask(mask_path)

    def _hash_mask(self, mask_path: Path) -> None:
        for mask in iter_file_chunks(
            mask_path, MASK_DTYPE, self._n_rows, self._chunk_rows
        ):
            self._digest.update(mask.tobytes())

    def hexdigest(self) -> str:
        """The finished digest."""
        return self._digest.hexdigest()


def write_priorities(
    root: Path, n_rows: int, priority_seed: int
) -> None:
    """Materialize the persisted sampling-priority column."""
    rng = np.random.default_rng(priority_seed)
    priorities = rng.permutation(n_rows).astype(PRIORITY_DTYPE)
    priorities.tofile(root / PRIORITY_FILE)


def write_store(
    table: "Table",
    root: str | Path,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    priority_seed: int = 0,
    partition_rows: int = DEFAULT_PARTITION_ROWS,
) -> StoreManifest:
    """Materialize an in-memory :class:`Table` as a store directory.

    The complement of ``blaeu ingest`` for data that already lives in
    memory (tests, benchmarks, migrating a registered table out of RAM).
    The manifest fingerprint is the table's own
    :meth:`~repro.table.table.Table.fingerprint`, so the store-backed
    twin shares cache identity with its source.  ``partition_rows``
    sets the range-partition size whose zone maps scans prune with.
    """
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
    root = Path(root)
    (root / "columns").mkdir(parents=True, exist_ok=True)

    spans = partition_spans(table.n_rows, partition_rows)
    zones: list[dict[str, ColumnZone]] = [{} for _ in spans]
    metas: list[ColumnMeta] = []
    for position, column in enumerate(table.columns):
        stem = column_file_stem(position)
        if isinstance(column, NumericColumn):
            np.ascontiguousarray(column.values, dtype=VALUES_DTYPE).tofile(
                root / f"{stem}.values.bin"
            )
            np.ascontiguousarray(column.missing_mask, dtype=MASK_DTYPE).tofile(
                root / f"{stem}.mask.bin"
            )
            metas.append(
                ColumnMeta(
                    name=column.name,
                    kind=KIND_NUMERIC,
                    files={
                        "values": f"{stem}.values.bin",
                        "mask": f"{stem}.mask.bin",
                    },
                )
            )
            for index, (start, stop) in enumerate(spans):
                zones[index][column.name] = numeric_zone(
                    column.values[start:stop],
                    column.missing_mask[start:stop],
                )
        elif isinstance(column, CategoricalColumn):
            np.ascontiguousarray(column.codes, dtype=CODES_DTYPE).tofile(
                root / f"{stem}.codes.bin"
            )
            np.ascontiguousarray(column.missing_mask, dtype=MASK_DTYPE).tofile(
                root / f"{stem}.mask.bin"
            )
            categories_file = f"{stem}.categories.json"
            (root / categories_file).write_text(
                json.dumps(list(column.categories)), encoding="utf-8"
            )
            metas.append(
                ColumnMeta(
                    name=column.name,
                    kind=KIND_CATEGORICAL,
                    files={
                        "codes": f"{stem}.codes.bin",
                        "mask": f"{stem}.mask.bin",
                        "categories": categories_file,
                    },
                )
            )
            for index, (start, stop) in enumerate(spans):
                zones[index][column.name] = categorical_zone(
                    column.codes[start:stop]
                )
        else:  # pragma: no cover - Column has exactly two concrete kinds
            raise TypeError(f"unsupported column type {type(column).__name__}")

    write_priorities(root, table.n_rows, priority_seed)
    manifest = StoreManifest(
        table=table.name,
        n_rows=table.n_rows,
        chunk_rows=chunk_rows,
        fingerprint=table.fingerprint(),
        columns=tuple(metas),
        priority_seed=priority_seed,
        partitions=tuple(
            PartitionMeta(start=start, stop=stop, zones=zone)
            for (start, stop), zone in zip(spans, zones)
        ),
    )
    manifest.save(root)
    return manifest

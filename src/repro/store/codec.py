"""Pickle-free serialization for the engine's cacheable artifacts.

The disk artifact tier (:mod:`repro.store.artifacts`) must survive
process restarts and be shared between worker processes — exactly the
situation where ``pickle`` is both a security liability (a poisoned
cache entry executes code on load) and a compatibility trap (class
moves break every stored artifact).  This module is the replacement: a
closed *type registry* of the objects the map/graph pipelines cache
(:class:`~repro.core.datamap.DataMap`, the stage artifacts, dependency
graphs and everything they transitively contain), encoded as a JSON
structure tree plus a flat list of raw NumPy arrays.

Container format (one artifact per file)::

    bytes 0..7     magic  b"BLAEUA1\\n"
    bytes 8..15    header length H (uint64, little-endian)
    bytes 16..47   sha256 over header + payload (torn-write detection)
    bytes 48..48+H JSON header: {"meta": <structure tree>,
                                 "arrays": [{dtype, shape, offset, nbytes}],
                                 "payload": <payload length>}
    then           the array payload, each array little-endian and
                   64-byte aligned (mmap/zero-copy friendly, matching
                   the raw column files of :mod:`repro.store.format`)

``decode(encode(x))`` round-trips every registered type by value; the
arrays come back read-only (artifacts are immutable by contract —
the same discipline the pipeline's shared cache already relies on).
Unregistered types raise :class:`CodecError`, which is how the tiered
cache decides a value stays memory-only instead of crashing the build.
"""

from __future__ import annotations

import hashlib
import io
import json
import math
from typing import Callable

import numpy as np

from repro.cluster.pam import Clustering
from repro.core.datamap import DataMap, Region
from repro.core.pipeline import (
    ClusterArtifact,
    DescribeArtifact,
    DistanceArtifact,
    SampleArtifact,
    SpaceArtifact,
)
from repro.core.preprocess import FeatureSpace
from repro.graph.dependency import DependencyGraph
from repro.stats.normalize import ScalerStats
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.predicates import (
    And,
    Between,
    Comparison,
    Everything,
    In,
    IsMissing,
    Not,
    Or,
)
from repro.table.table import Table
from repro.tree.cart import CartParams, DecisionTree, TreeNode

__all__ = [
    "CodecError",
    "ArtifactCorruptError",
    "MAGIC",
    "encode",
    "decode",
    "encodable",
]

MAGIC = b"BLAEUA1\n"
_ALIGN = 64
_DIGEST_BYTES = 32
_HEADER_OFFSET = len(MAGIC) + 8 + _DIGEST_BYTES


class CodecError(ValueError):
    """A value outside the codec's closed type registry."""


class ArtifactCorruptError(ValueError):
    """An artifact file that fails structural or checksum validation."""


# ----------------------------------------------------------------------
# Structure-tree encoding
# ----------------------------------------------------------------------


class _Encoder:
    """Folds one object graph into a JSON tree + an array list."""

    def __init__(self) -> None:
        self.arrays: list[np.ndarray] = []

    def fold(self, value: object) -> object:
        if value is None or isinstance(value, (bool, int, str)):
            return value
        if isinstance(value, float):
            if math.isfinite(value):
                return value
            return {"$t": "f", "v": repr(value)}
        if isinstance(value, np.ndarray):
            if value.dtype.hasobject:
                raise CodecError(
                    "object-dtype arrays hold pointers, not values, and "
                    "cannot be serialized"
                )
            index = len(self.arrays)
            self.arrays.append(value)
            return {"$t": "nd", "i": index}
        if isinstance(value, (np.integer, np.floating, np.bool_)):
            return self.fold(value.item())
        if isinstance(value, list):
            return [self.fold(item) for item in value]
        if isinstance(value, tuple):
            return {"$t": "tu", "v": [self.fold(item) for item in value]}
        if isinstance(value, dict):
            return {
                "$t": "di",
                "v": [[self.fold(k), self.fold(v)] for k, v in value.items()],
            }
        spec = _SPECS_BY_TYPE.get(type(value))
        if spec is None:
            raise CodecError(
                f"type {type(value).__module__}.{type(value).__qualname__} "
                "is not registered with the artifact codec"
            )
        tag, to_fields, _ = spec
        return {"$t": tag, "v": {k: self.fold(v) for k, v in to_fields(value).items()}}


class _Decoder:
    """Rebuilds an object graph from a JSON tree + an array list."""

    def __init__(self, arrays: list[np.ndarray]) -> None:
        self.arrays = arrays

    def unfold(self, node: object) -> object:
        if node is None or isinstance(node, (bool, int, float, str)):
            return node
        if isinstance(node, list):
            return [self.unfold(item) for item in node]
        if not isinstance(node, dict):  # pragma: no cover - json guarantees
            raise ArtifactCorruptError(f"unexpected node {type(node).__name__}")
        tag = node.get("$t")
        body = node.get("v")
        if tag == "f":
            return float(body)
        if tag == "nd":
            index = node.get("i")
            if not isinstance(index, int) or not 0 <= index < len(self.arrays):
                raise ArtifactCorruptError(f"array index {index!r} out of range")
            return self.arrays[index]
        if tag == "tu":
            return tuple(self.unfold(item) for item in body)
        if tag == "di":
            return {self.unfold(k): self.unfold(v) for k, v in body}
        spec = _SPECS_BY_TAG.get(tag)
        if spec is None:
            raise ArtifactCorruptError(f"unknown codec tag {tag!r}")
        _, _, from_fields = spec
        return from_fields({k: self.unfold(v) for k, v in body.items()})


# ----------------------------------------------------------------------
# The type registry
# ----------------------------------------------------------------------

# tag -> (tag, to_fields, from_fields); one spec per registered type.
_SPECS_BY_TYPE: dict[type, tuple[str, Callable, Callable]] = {}
_SPECS_BY_TAG: dict[str, tuple[str, Callable, Callable]] = {}


def _register(tag: str, cls: type, to_fields: Callable, from_fields: Callable) -> None:
    spec = (tag, to_fields, from_fields)
    _SPECS_BY_TYPE[cls] = spec
    _SPECS_BY_TAG[tag] = spec


def _fields(*names: str) -> Callable:
    def to_fields(value: object) -> dict[str, object]:
        return {name: getattr(value, name) for name in names}

    return to_fields


_register(
    "numcol",
    NumericColumn,
    lambda c: {"name": c.name, "values": c.values, "mask": c.missing_mask},
    lambda f: NumericColumn(f["name"], f["values"], missing=f["mask"]),
)
_register(
    "catcol",
    CategoricalColumn,
    lambda c: {"name": c.name, "codes": c.codes, "categories": c.categories},
    lambda f: CategoricalColumn(f["name"], f["codes"], f["categories"]),
)
_register(
    "table",
    Table,
    lambda t: {"name": t.name, "columns": list(t.columns)},
    lambda f: Table(f["name"], f["columns"]),
)

_register("p.all", Everything, lambda p: {}, lambda f: Everything())
_register(
    "p.cmp",
    Comparison,
    _fields("column", "op", "value"),
    lambda f: Comparison(f["column"], f["op"], f["value"]),
)
_register(
    "p.btw",
    Between,
    _fields("column", "low", "high"),
    lambda f: Between(f["column"], f["low"], f["high"]),
)
_register(
    "p.in",
    In,
    _fields("column", "labels"),
    lambda f: In(f["column"], f["labels"]),
)
_register(
    "p.mis", IsMissing, _fields("column"), lambda f: IsMissing(f["column"])
)
_register(
    "p.and",
    And,
    lambda p: {"operands": list(p.operands)},
    lambda f: And(f["operands"]),
)
_register(
    "p.or",
    Or,
    lambda p: {"operands": list(p.operands)},
    lambda f: Or(f["operands"]),
)
_register("p.not", Not, _fields("operand"), lambda f: Not(f["operand"]))

_register(
    "region",
    Region,
    _fields(
        "region_id",
        "label",
        "predicate",
        "n_rows",
        "depth",
        "cluster",
        "silhouette",
        "exemplar",
        "n_rows_error",
        "children",
    ),
    lambda f: Region(**f),
)
_register(
    "datamap",
    DataMap,
    _fields(
        "root",
        "columns",
        "k",
        "silhouette",
        "fidelity",
        "sample_size",
        "counts_status",
        "refinement",
    ),
    lambda f: DataMap(**f),
)

_register(
    "cartparams",
    CartParams,
    _fields(
        "max_depth",
        "min_samples_split",
        "min_samples_leaf",
        "min_impurity_decrease",
        "max_numeric_thresholds",
    ),
    lambda f: CartParams(**f),
)
_register(
    "treenode",
    TreeNode,
    _fields(
        "n_samples",
        "class_counts",
        "impurity",
        "depth",
        "prediction",
        "column",
        "threshold",
        "category",
        "missing_goes_left",
        "left",
        "right",
    ),
    lambda f: TreeNode(**f),
)
_register(
    "tree",
    DecisionTree,
    _fields("root", "feature_names", "n_classes", "params"),
    lambda f: DecisionTree(**f),
)

_register(
    "clustering",
    Clustering,
    _fields("labels", "medoids", "cost", "n_iterations"),
    lambda f: Clustering(**f),
)
_register(
    "scaler",
    ScalerStats,
    _fields("center", "scale"),
    lambda f: ScalerStats(**f),
)
_register(
    "space",
    FeatureSpace,
    _fields(
        "matrix",
        "feature_names",
        "numeric_mask",
        "source_columns",
        "scalers",
        "dropped_keys",
        "dropped_wide",
    ),
    lambda f: FeatureSpace(**f),
)
_register(
    "depgraph",
    DependencyGraph,
    _fields("columns", "weights", "measure"),
    lambda f: DependencyGraph(**f),
)

_register(
    "art.sample",
    SampleArtifact,
    _fields("sample", "selection_mask", "n_selection", "rng_state"),
    lambda f: SampleArtifact(**f),
)
_register(
    "art.space", SpaceArtifact, _fields("space"), lambda f: SpaceArtifact(**f)
)
_register(
    "art.dist",
    DistanceArtifact,
    _fields("matrix"),
    lambda f: DistanceArtifact(**f),
)
_register(
    "art.cluster",
    ClusterArtifact,
    _fields("clustering", "silhouette", "leaf_silhouettes"),
    lambda f: ClusterArtifact(**f),
)
_register(
    "art.describe",
    DescribeArtifact,
    _fields("tree", "fidelity", "exemplars"),
    lambda f: DescribeArtifact(**f),
)


# ----------------------------------------------------------------------
# Container read/write
# ----------------------------------------------------------------------


def _little_endian(array: np.ndarray) -> np.ndarray:
    """The array as contiguous little-endian bytes (copy only if needed)."""
    array = np.ascontiguousarray(array)
    if array.dtype.byteorder == ">":  # pragma: no cover - big-endian host
        array = array.astype(array.dtype.newbyteorder("<"))
    return array


def encode(value: object) -> bytes:
    """Serialize a registered object graph to one artifact blob."""
    encoder = _Encoder()
    meta = encoder.fold(value)
    descriptors: list[dict[str, object]] = []
    chunks: list[bytes] = []
    offset = 0
    for array in encoder.arrays:
        array = _little_endian(array)
        pad = (-offset) % _ALIGN
        if pad:
            chunks.append(b"\0" * pad)
            offset += pad
        raw = array.tobytes()
        descriptors.append(
            {
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": len(raw),
            }
        )
        chunks.append(raw)
        offset += len(raw)
    payload = b"".join(chunks)
    header = json.dumps(
        {"meta": meta, "arrays": descriptors, "payload": len(payload)},
        separators=(",", ":"),
        allow_nan=False,
    ).encode("utf-8")
    digest = hashlib.sha256(header + payload).digest()
    out = io.BytesIO()
    out.write(MAGIC)
    out.write(len(header).to_bytes(8, "little"))
    out.write(digest)
    out.write(header)
    out.write(payload)
    return out.getvalue()


def decode(blob: bytes | bytearray | memoryview) -> object:
    """Deserialize an artifact blob; raises on corruption.

    The returned arrays are zero-copy read-only views into ``blob``
    (artifacts are immutable by contract), so large payloads — distance
    matrices, column values — are never duplicated on load.
    """
    view = memoryview(blob)
    if len(view) < _HEADER_OFFSET or bytes(view[: len(MAGIC)]) != MAGIC:
        raise ArtifactCorruptError("bad artifact magic")
    header_len = int.from_bytes(view[len(MAGIC) : len(MAGIC) + 8], "little")
    stored = bytes(view[len(MAGIC) + 8 : _HEADER_OFFSET])
    body = view[_HEADER_OFFSET:]
    if header_len > len(body):
        raise ArtifactCorruptError("truncated artifact header")
    digest = hashlib.sha256(body).digest()
    if digest != stored:
        raise ArtifactCorruptError("artifact checksum mismatch")
    try:
        header = json.loads(bytes(body[:header_len]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ArtifactCorruptError(f"unreadable artifact header: {error}") from error
    payload = body[header_len:]
    if len(payload) != int(header.get("payload", -1)):
        raise ArtifactCorruptError("artifact payload length mismatch")
    arrays: list[np.ndarray] = []
    for descriptor in header.get("arrays", []):
        offset = int(descriptor["offset"])
        nbytes = int(descriptor["nbytes"])
        if offset < 0 or offset + nbytes > len(payload):
            raise ArtifactCorruptError("array descriptor out of bounds")
        dtype = np.dtype(descriptor["dtype"])
        array = np.frombuffer(
            payload, dtype=dtype, count=nbytes // dtype.itemsize, offset=offset
        )
        array = array.reshape(tuple(int(n) for n in descriptor["shape"]))
        arrays.append(array)
    return _Decoder(arrays).unfold(header.get("meta"))


def encodable(value: object) -> bool:
    """Whether the codec can serialize ``value`` (cheap structural walk)."""
    try:
        _Encoder().fold(value)
    except CodecError:
        return False
    return True

"""Zone-map pruning and partition (re)construction for store scans.

The pruning test is *conservative proof of emptiness*: a partition is
skipped only when its zone maps prove that **no row** in it can satisfy
the predicate — numeric ranges that cannot intersect a comparison,
all-null partitions under value predicates, null-free partitions under
``IS NULL``.  Anything the zones cannot decide (categorical labels,
negations, unknown predicate types, zone-less implicit partitions)
scans normally, so pruned results are bit-identical to full scans by
construction.

:func:`build_partitions` derives fresh partitions — ranges plus zone
maps — from the column files themselves, one bounded chunked read per
range.  It backs both ``blaeu store repartition`` (adding zone maps to
a pre-partitioning store without touching data files) and the ingest
finalizer.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.resilience.deadline import checkpoint
from repro.store.format import (
    CODES_DTYPE,
    KIND_NUMERIC,
    MASK_DTYPE,
    VALUES_DTYPE,
    ColumnMeta,
    ColumnZone,
    PartitionMeta,
    StoreManifest,
    partition_spans,
    read_file_chunk,
)
from repro.table.predicates import (
    And,
    Between,
    Comparison,
    Everything,
    In,
    IsMissing,
    Not,
    Or,
    Predicate,
)

__all__ = [
    "build_partitions",
    "repartition",
    "zone_proves_empty",
]


def zone_proves_empty(
    predicate: Predicate,
    partition: PartitionMeta,
    kinds: Mapping[str, str],
) -> bool:
    """Whether the partition's zones prove ``predicate`` matches no row.

    ``kinds`` maps column names to their manifest kind strings.  Any
    column without a zone entry — and any predicate shape the zones
    cannot reason about — returns ``False``, keeping the test safe on
    implicit (pre-partitioning) partitions and future predicate types.
    """
    if isinstance(predicate, And):
        return any(
            zone_proves_empty(operand, partition, kinds)
            for operand in predicate.operands
        )
    if isinstance(predicate, Or):
        operands = predicate.operands
        return bool(operands) and all(
            zone_proves_empty(operand, partition, kinds)
            for operand in operands
        )
    if isinstance(predicate, Not) or isinstance(predicate, Everything):
        return False
    if isinstance(predicate, IsMissing):
        zone = partition.zones.get(predicate.column)
        return zone is not None and zone.null_count == 0
    if isinstance(predicate, (Comparison, Between, In)):
        zone = partition.zones.get(predicate.column)
        if zone is None:
            return False
        # Value predicates never match missing cells (their masks AND
        # with the present mask), so an all-null partition is empty for
        # every one of them — including categorical membership tests.
        if zone.null_count >= partition.rows:
            return True
        if isinstance(predicate, In):
            return False  # codes carry no order: labels cannot be ranged
        if kinds.get(predicate.column) != KIND_NUMERIC:
            return False
        if zone.min is None or zone.max is None:
            return True  # numeric with zero present values
        if isinstance(predicate, Between):
            return zone.max < predicate.low or zone.min >= predicate.high
        if isinstance(predicate.value, str):
            return False
        value = float(predicate.value)
        low, high = zone.min, zone.max
        if predicate.op == "<":
            return low >= value
        if predicate.op == "<=":
            return low > value
        if predicate.op == ">":
            return high <= value
        if predicate.op == ">=":
            return high < value
        if predicate.op == "==":
            return value < low or value > high
        if predicate.op == "!=":
            return low == high == value
        return False
    return False


def compute_zones(
    root: Path,
    columns: Sequence[ColumnMeta],
    start: int,
    stop: int,
    chunk_rows: int,
) -> dict[str, ColumnZone]:
    """Zone maps of rows ``[start, stop)``, by bounded chunked reads."""
    zones: dict[str, ColumnZone] = {}
    for meta in columns:
        null_count = 0
        minimum: float | None = None
        maximum: float | None = None
        for lo in range(start, stop, chunk_rows):
            checkpoint("store.zones")
            hi = min(lo + chunk_rows, stop)
            if meta.kind == KIND_NUMERIC:
                values = read_file_chunk(
                    root / meta.files["values"], VALUES_DTYPE, lo, hi
                )
                mask = read_file_chunk(
                    root / meta.files["mask"], MASK_DTYPE, lo, hi
                ).astype(bool, copy=False)
                null_count += int(np.count_nonzero(mask))
                present = values[~mask]
                if present.size:
                    lo_value = float(present.min())
                    hi_value = float(present.max())
                    minimum = (
                        lo_value if minimum is None else min(minimum, lo_value)
                    )
                    maximum = (
                        hi_value if maximum is None else max(maximum, hi_value)
                    )
            else:
                codes = read_file_chunk(
                    root / meta.files["codes"], CODES_DTYPE, lo, hi
                )
                null_count += int(np.count_nonzero(codes < 0))
        zones[meta.name] = ColumnZone(
            null_count=null_count, min=minimum, max=maximum
        )
    return zones


def build_partitions(
    root: str | Path,
    columns: Sequence[ColumnMeta],
    n_rows: int,
    chunk_rows: int,
    partition_rows: int,
    start: int = 0,
    scan_jobs: int | None = None,
) -> tuple[PartitionMeta, ...]:
    """Partitions (ranges + zone maps) of rows ``[start, n_rows)``.

    One zone pass per range over the column files; with ``scan_jobs``
    the ranges fan out over worker processes (results are merged in
    range order, so the output never depends on the worker count).
    """
    root = Path(root)
    spans = partition_spans(n_rows, partition_rows, start=start)
    if not spans:
        return ()
    from repro.store.parallel import run_partition_tasks, zones_task

    results = run_partition_tasks(
        zones_task,
        [
            (str(root), tuple(columns), lo, hi, chunk_rows)
            for lo, hi in spans
        ],
        scan_jobs,
    )
    return tuple(
        PartitionMeta(start=lo, stop=hi, zones=zones)
        for (lo, hi), zones in zip(spans, results)
    )


def repartition(
    root: str | Path,
    partition_rows: int | None = None,
    scan_jobs: int | None = None,
) -> StoreManifest:
    """Rewrite a store's partitions (manifest only; data files untouched).

    Adds zone maps to a pre-partitioning store, or changes the range
    size of an already-partitioned one.  ``partition_rows=None`` keeps
    the current granularity (the format default for stores without
    partitions).
    """
    from repro.store.format import DEFAULT_PARTITION_ROWS
    import dataclasses

    root = Path(root)
    manifest = StoreManifest.load(root)
    if partition_rows is None:
        current = manifest.partitions
        partition_rows = (
            max(partition.rows for partition in current)
            if current
            else DEFAULT_PARTITION_ROWS
        )
    partitions = build_partitions(
        root,
        manifest.columns,
        manifest.n_rows,
        manifest.chunk_rows,
        partition_rows,
        scan_jobs=scan_jobs,
    )
    manifest = dataclasses.replace(manifest, partitions=partitions)
    manifest.save(root)
    return manifest

"""``repro.store`` — out-of-core columnar storage with pushdown scans.

Blaeu's architecture (paper §3, Figure 4) places a DBMS under the
mapping engine precisely so the engine only ever materializes a
few-thousand-row sample per zoom.  This package is that storage layer
for the reproduction: tables too large for RAM live on disk in a
columnar format, and the engine's query surface — *select, project,
sample, take* — executes against them as chunked scans.

Manifest format
---------------
A store is a directory with a JSON manifest and one raw little-endian
binary file per column array::

    mystore/
      manifest.json             format/version, table name, n_rows,
                                chunk_rows, content fingerprint,
                                priority seed, column metadata
      priority.bin              int64 per-row sampling priorities
      columns/c00000.values.bin float64 values of a numeric column
      columns/c00000.mask.bin   bool missing mask
      columns/c00001.codes.bin  int32 codes of a categorical column
      columns/c00001.mask.bin   bool missing mask
      columns/c00001.categories.json  dictionary, first-appearance order

The manifest's ``fingerprint`` is computed at ingest time with exactly
the algorithm of :meth:`repro.table.table.Table.fingerprint`, so a
store-backed table answers ``fingerprint()`` in O(1) *and* shares cache
keys with an in-memory table holding the same data.

Pushdown rules
--------------
:class:`~repro.store.stored.StoredTable` applies three pushdowns:

* **predicate** — ``select``/``scan_mask`` evaluate predicates chunk by
  chunk and read only the columns the predicate references
  (``Predicate.columns()``);
* **projection** — ``project``/``drop`` return store-backed *views*
  over a restricted column set, copying nothing;
* **sample** — ``sample`` computes row indices first and gathers only
  those rows through the memory maps, and ``top_k_sample`` answers the
  multi-scale :class:`~repro.table.sampling.SampleCascade` sample of
  the whole table with a bounded top-k scan over the *persisted*
  ``priority.bin`` column — nested zoom samples are stable across
  processes and never require a priority redraw.

Materializing operations return plain in-memory
:class:`~repro.table.table.Table` objects sized by their result, which
is how the mapping engine stays unchanged: ``build_map`` clusters the
sampled slice exactly as it would for an in-memory table (bit-identical
maps at the same seed), while full-selection work (CART routing for
exact region counts) runs as chunked scans.

``blaeu ingest`` usage
----------------------
::

    python -m repro ingest data.csv mystore/ [--name NAME]
        [--chunk-rows N] [--delimiter D] [--priority-seed S]
    python -m repro mystore/              # explore it in the shell
    python -m repro serve mystore/        # or serve it over HTTP

Ingestion (:func:`~repro.store.ingest.ingest_csv`) reads the CSV once,
in chunks, with streaming type inference that can promote a column from
numeric to categorical mid-file; peak memory is bounded by the chunk
size.  :func:`~repro.store.format.write_store` is the in-memory
complement (materialize an existing ``Table`` as a store).
"""

from repro.store.format import (
    DEFAULT_CHUNK_ROWS,
    MANIFEST_NAME,
    ColumnMeta,
    StoreManifest,
    write_store,
)
from repro.store.artifacts import (
    DEFAULT_MAX_BYTES,
    ArtifactCache,
    ArtifactCacheStats,
)
from repro.store.codec import (
    ArtifactCorruptError,
    CodecError,
    decode,
    encodable,
    encode,
)
from repro.store.ingest import ingest_csv
from repro.store.stored import StoredTable

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "DEFAULT_MAX_BYTES",
    "ArtifactCache",
    "ArtifactCacheStats",
    "ArtifactCorruptError",
    "CodecError",
    "MANIFEST_NAME",
    "ColumnMeta",
    "StoreManifest",
    "StoredTable",
    "decode",
    "encodable",
    "encode",
    "ingest_csv",
    "write_store",
]

"""A crash-safe, size-bounded on-disk artifact cache (the L2 tier).

The staged pipeline made every expensive result an immutable artifact
under a content key; this module gives those artifacts a home that
survives process restarts and is shared between worker processes.
Design constraints, and how each is met:

* **Crash safety** — entries are written to a private temp file,
  fsynced, then published with ``os.replace`` (atomic on POSIX), so a
  concurrent reader sees either the old bytes or the new bytes, never a
  torn file.  The payload itself carries a sha256 (see
  :mod:`repro.store.codec`), so even damage *outside* the cache's
  control (a crash mid-``fsync``, disk corruption) is detected on read.
* **Cross-process coordination** — a per-key ``flock`` serializes
  writers of the same key, and :meth:`ArtifactCache.lock` exposes the
  same lock so callers can coordinate "compute once" across processes.
  Hosts without ``fcntl`` degrade to uncoordinated (still atomic)
  writes.
* **Bounded size** — an ``index.json`` (itself atomically replaced,
  under its own lock) tracks per-entry sizes and last-use stamps;
  writers evict least-recently-used entries beyond ``max_bytes``.
* **Corruption quarantine** — an entry that fails checksum or decode
  validation is moved into ``quarantine/`` (for post-mortems) and
  reported as a miss, so the caller transparently recomputes.

Layout of a cache directory::

    root/
      index.json          {key_hash: {key, nbytes, last_used, created}}
      index.lock          flock guarding index.json
      objects/ab/abcd….art
      locks/abcd….lock    per-key write locks
      quarantine/         corrupted entries, moved aside
      tmp/                in-flight writes
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import corrupt_bytes, fault_point
from repro.store.codec import ArtifactCorruptError, CodecError, decode, encode

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX host
    fcntl = None  # type: ignore[assignment]

__all__ = ["ArtifactCache", "ArtifactCacheStats", "DEFAULT_MAX_BYTES"]

#: Default size budget of a cache directory (1 GiB).
DEFAULT_MAX_BYTES = 1 << 30

_SUFFIX = ".art"


@dataclass(frozen=True)
class ArtifactCacheStats:
    """Counters of one :class:`ArtifactCache` instance (this process)."""

    hits: int
    misses: int
    writes: int
    write_errors: int
    evictions: int
    quarantined: int
    entries: int
    total_bytes: int


def _key_hash(key: object) -> str:
    """The stable on-disk identity of a cache key.

    ``repr`` of the key tuples is deterministic for the str/int/None
    leaves the pipeline uses — the same convention
    :func:`repro.core.pipeline.cache_key_seed` already relies on.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


class ArtifactCache:
    """Disk-backed ``get``/``put`` over codec-serializable artifacts.

    Parameters
    ----------
    root:
        Cache directory (created if missing).  Multiple processes may
        share one root; that is the point.
    max_bytes:
        Size budget; writers evict LRU entries beyond it.
    clock:
        Injectable time source (tests).
    breaker:
        Optional circuit breaker guarding the disk.  Consecutive IO
        errors (or slow reads, when the breaker has a latency
        threshold) trip it open, after which ``get``/``put``
        short-circuit to a miss — the tiered cache above serves L1 or
        recomputes instead of hammering a sick disk.
    """

    def __init__(
        self,
        root: str | Path,
        max_bytes: int = DEFAULT_MAX_BYTES,
        clock: Callable[[], float] = time.time,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self._root = Path(root)
        self._max_bytes = int(max_bytes)
        self._clock = clock
        self._breaker = breaker
        self._mutex = threading.Lock()  # guards the counters only
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._write_errors = 0
        self._evictions = 0
        self._quarantined = 0
        for sub in ("objects", "locks", "quarantine", "tmp"):
            (self._root / sub).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def root(self) -> Path:
        """The cache directory."""
        return self._root

    @property
    def max_bytes(self) -> int:
        """The size budget."""
        return self._max_bytes

    def stats(self) -> ArtifactCacheStats:
        """Process-local counters plus the on-disk entry census."""
        index = self._read_index()
        with self._mutex:
            return ArtifactCacheStats(
                hits=self._hits,
                misses=self._misses,
                writes=self._writes,
                write_errors=self._write_errors,
                evictions=self._evictions,
                quarantined=self._quarantined,
                entries=len(index),
                total_bytes=sum(int(e.get("nbytes", 0)) for e in index.values()),
            )

    def __len__(self) -> int:
        return len(self._read_index())

    # ------------------------------------------------------------------
    # The cache surface (duck-compatible with LRUCache)
    # ------------------------------------------------------------------

    def get(self, key: object) -> object | None:
        """The decoded artifact, or ``None`` (absent or quarantined)."""
        if self._breaker is not None and not self._breaker.allow():
            self._bump("_misses")
            return None
        name = _key_hash(key)
        path = self._object_path(name)
        started = time.monotonic()
        try:
            fault_point("store.artifact.read")
            blob = path.read_bytes()
        except FileNotFoundError:
            # Absence is a normal miss, not a disk fault.
            self._record_breaker(ok=True, started=started)
            self._bump("_misses")
            return None
        except OSError:
            self._record_breaker(ok=False, started=started)
            self._bump("_misses")
            return None
        self._record_breaker(ok=True, started=started)
        try:
            value = decode(blob)
        except (ArtifactCorruptError, CodecError, ValueError) as error:
            self._quarantine(name, path, error)
            self._bump("_misses")
            return None
        self._touch(name)
        self._bump("_hits")
        return value

    def put(self, key: object, value: object) -> bool:
        """Serialize and publish ``value``; ``False`` if not encodable.

        Raising on unencodable values would make the disk tier more
        fragile than the memory tier it backs — the caller (the tiered
        cache) treats ``False`` as "memory-only entry".
        """
        if self._breaker is not None and not self._breaker.allow():
            self._bump("_write_errors")
            return False
        try:
            blob = encode(value)
        except CodecError:
            self._bump("_write_errors")
            return False
        # A "torn" fault truncates the published bytes: the atomic
        # rename still happens, but the payload fails its checksum on
        # read and lands in quarantine — exactly the damage class the
        # codec exists to catch.
        blob = corrupt_bytes("store.artifact.write", blob)
        name = _key_hash(key)
        path = self._object_path(name)
        tmp = self._root / "tmp" / f"{name}.{os.getpid()}.{threading.get_ident()}"
        started = time.monotonic()
        try:
            fault_point("store.artifact.write")
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            with self.lock(key):
                os.replace(tmp, path)
        except OSError:
            self._record_breaker(ok=False, started=started)
            self._bump("_write_errors")
            with contextlib.suppress(OSError):
                tmp.unlink()
            return False
        self._record_breaker(ok=True, started=started)
        self._bump("_writes")
        self._record(name, key, len(blob))
        return True

    def invalidate(self, key: object) -> None:
        """Drop one entry (missing is fine)."""
        name = _key_hash(key)
        with self._index_lock():
            index = self._read_index()
            index.pop(name, None)
            self._write_index(index)
        with contextlib.suppress(OSError):
            self._object_path(name).unlink()

    def clear(self) -> None:
        """Drop every entry."""
        with self._index_lock():
            self._write_index({})
        objects = self._root / "objects"
        for path in objects.glob(f"*/*{_SUFFIX}"):
            with contextlib.suppress(OSError):
                path.unlink()

    @contextlib.contextmanager
    def lock(self, key: object) -> Iterator[None]:
        """An exclusive cross-process lock scoped to one key.

        Lets cooperating workers elect a single computer of an absent
        artifact instead of duplicating an expensive build.  Reentrant
        use from the same process is *not* supported (flock is per open
        file description, so this is for short critical sections).
        """
        with self._flock(self._root / "locks" / f"{_key_hash(key)}.lock"):
            yield

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _object_path(self, name: str) -> Path:
        return self._root / "objects" / name[:2] / f"{name}{_SUFFIX}"

    def _record_breaker(self, *, ok: bool, started: float) -> None:
        if self._breaker is None:
            return
        if ok:
            self._breaker.record_success(time.monotonic() - started)
        else:
            self._breaker.record_failure()

    def _bump(self, counter: str) -> None:
        with self._mutex:
            setattr(self, counter, getattr(self, counter) + 1)

    @contextlib.contextmanager
    def _flock(self, path: Path) -> Iterator[None]:
        if fcntl is None:  # pragma: no cover - non-POSIX host
            yield
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a+b") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _index_lock(self):
        return self._flock(self._root / "index.lock")

    def _read_index(self) -> dict[str, dict[str, object]]:
        try:
            raw = (self._root / "index.json").read_text(encoding="utf-8")
        except OSError:
            return {}
        try:
            index = json.loads(raw)
        except json.JSONDecodeError:
            # The index is a rebuildable accessory, never the source of
            # truth — a torn index (pre-atomic-write crash) degrades to
            # an empty census, and the next write re-records survivors.
            return {}
        return index if isinstance(index, dict) else {}

    def _write_index(self, index: dict[str, dict[str, object]]) -> None:
        fault_point("store.artifact.index")
        payload = json.dumps(index, sort_keys=True, separators=(",", ":"))
        blob = corrupt_bytes("store.artifact.index", payload.encode("utf-8"))
        tmp = self._root / "tmp" / f"index.{os.getpid()}.{threading.get_ident()}"
        tmp.write_bytes(blob)
        os.replace(tmp, self._root / "index.json")

    def _record(self, name: str, key: object, nbytes: int) -> None:
        """Index a fresh write, then shed LRU entries beyond the budget."""
        now = self._clock()
        evicted: list[str] = []
        # The index is a rebuildable accessory: an IO failure updating
        # it must not fail the put whose object file already published.
        with contextlib.suppress(OSError), self._index_lock():
            index = self._read_index()
            entry = index.get(name, {})
            index[name] = {
                "key": repr(key),
                "nbytes": int(nbytes),
                "created": entry.get("created", now),
                "last_used": now,
            }
            total = sum(int(e.get("nbytes", 0)) for e in index.values())
            if total > self._max_bytes:
                # Oldest first; the entry just written is the newest, so
                # it only goes when it alone exceeds the whole budget.
                by_age = sorted(
                    index.items(), key=lambda kv: float(kv[1].get("last_used", 0.0))
                )
                for stale_name, stale in by_age:
                    if total <= self._max_bytes:
                        break
                    total -= int(stale.get("nbytes", 0))
                    del index[stale_name]
                    evicted.append(stale_name)
            self._write_index(index)
        for stale_name in evicted:
            with contextlib.suppress(OSError):
                self._object_path(stale_name).unlink()
        if evicted:
            with self._mutex:
                self._evictions += len(evicted)

    def _touch(self, name: str) -> None:
        """Refresh an entry's recency stamp (best effort)."""
        with contextlib.suppress(OSError):
            with self._index_lock():
                index = self._read_index()
                entry = index.get(name)
                if entry is not None:
                    entry["last_used"] = self._clock()
                    self._write_index(index)

    def _quarantine(self, name: str, path: Path, error: Exception) -> None:
        """Move a failed entry aside; the caller recomputes."""
        target = self._root / "quarantine" / f"{name}{_SUFFIX}"
        with contextlib.suppress(OSError):
            os.replace(path, target)
        with contextlib.suppress(OSError), self._index_lock():
            index = self._read_index()
            if index.pop(name, None) is not None:
                self._write_index(index)
        with self._mutex:
            self._quarantined += 1

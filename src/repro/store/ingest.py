"""One-pass chunked CSV ingestion into a store directory.

``blaeu ingest`` (and :func:`ingest_csv` behind it) reads a CSV exactly
once, in chunks of ``chunk_rows`` records, and writes the columnar files
of :mod:`repro.store.format` as it goes — peak memory is bounded by one
chunk regardless of file size.

**Streaming type inference.**  Every column starts *tentatively numeric*
and is promoted to categorical the moment any chunk shows a present cell
that does not parse as a float — the same decision
:func:`repro.table.schema.infer_column` makes with the whole column in
hand, taken incrementally.  Because a promotion can happen in chunk 400
after 399 numeric-looking chunks, each tentative column also spills its
raw cells to a temporary side file; promotion replays the spill through
the categorical encoder and the spill is deleted.  Columns that finish
numeric but saw only 0/1 values (disguised flags) or no present values
at all are demoted the same way at finalize, so ingesting a CSV and
``read_csv``-ing it produce *identical* tables — same kinds, values,
masks, codes and category order, and therefore the same content
fingerprint (the ingester streams the
:meth:`~repro.table.table.Table.fingerprint` algorithm over the
finished column files and records the digest in the manifest).
"""

from __future__ import annotations

import pickle
import shutil
from pathlib import Path
from typing import IO, Mapping, Sequence

import numpy as np

from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.store.format import (
    CODES_DTYPE,
    DEFAULT_CHUNK_ROWS,
    DEFAULT_PARTITION_ROWS,
    KIND_CATEGORICAL,
    KIND_NUMERIC,
    MASK_DTYPE,
    VALUES_DTYPE,
    ColumnMeta,
    StoreManifest,
    StreamingFingerprint,
    column_file_stem,
    write_priorities,
)
from repro.store.stored import StoredTable
from repro.table.column import MISSING_TOKENS, ColumnKind, _parse_float
from repro.table.csv_io import CsvChunkReader
from repro.table.schema import FLAG_VALUES

__all__ = ["append_csv", "ingest_csv"]

#: Spill framing protocol (pickle keeps the replay loop at C speed).
_SPILL_PROTOCOL = pickle.HIGHEST_PROTOCOL


class _CategoricalBuilder:
    """Streams cells into a codes file + incremental dictionary.

    ``seed_categories`` pre-loads the dictionary so appended chunks keep
    the codes of an existing store's categories and only extend the
    dictionary with genuinely new labels, in first-appearance order —
    exactly what a fresh ingest of the concatenated data would produce.
    """

    def __init__(
        self,
        tmp_dir: Path,
        position: int,
        seed_categories: Sequence[str] = (),
    ) -> None:
        self.codes_path = tmp_dir / f"c{position:05d}.codes.bin"
        self.mask_path = tmp_dir / f"c{position:05d}.cat-mask.bin"
        self._codes = self.codes_path.open("wb")
        self._mask = self.mask_path.open("wb")
        self.categories: list[str] = list(seed_categories)
        self._index: dict[str, int] = {
            label: code for code, label in enumerate(self.categories)
        }

    def feed(self, cells: Sequence[str]) -> None:
        codes = np.empty(len(cells), dtype=CODES_DTYPE)
        index = self._index
        categories = self.categories
        for i, cell in enumerate(cells):
            if cell is None or str(cell).strip().lower() in MISSING_TOKENS:
                codes[i] = -1
                continue
            label = str(cell)
            code = index.get(label)
            if code is None:
                code = len(categories)
                index[label] = code
                categories.append(label)
            codes[i] = code
        self._codes.write(codes.tobytes())
        self._mask.write((codes == -1).astype(MASK_DTYPE).tobytes())

    def close(self) -> None:
        self._codes.close()
        self._mask.close()


class _ColumnBuilder:
    """Per-column streaming state: tentative numeric with spill, or final
    categorical.  ``forced`` pins the kind up front (no spill needed)."""

    def __init__(
        self,
        name: str,
        position: int,
        tmp_dir: Path,
        forced: ColumnKind | None,
        seed_categories: Sequence[str] = (),
    ) -> None:
        self.name = name
        self.position = position
        self._tmp_dir = tmp_dir
        self._forced = forced
        self._any_present = False
        self._flags_only = True
        self._categorical: _CategoricalBuilder | None = None
        self._values: IO[bytes] | None = None
        self._mask: IO[bytes] | None = None
        self._spill: IO[bytes] | None = None
        self.values_path = tmp_dir / f"c{position:05d}.values.bin"
        self.mask_path = tmp_dir / f"c{position:05d}.num-mask.bin"
        self.spill_path = tmp_dir / f"c{position:05d}.spill.pkl"
        if forced is ColumnKind.CATEGORICAL:
            self._categorical = _CategoricalBuilder(
                tmp_dir, position, seed_categories
            )
        else:
            self._values = self.values_path.open("wb")
            self._mask = self.mask_path.open("wb")
            if forced is None:
                self._spill = self.spill_path.open("wb")

    @property
    def kind(self) -> str:
        return KIND_NUMERIC if self._categorical is None else KIND_CATEGORICAL

    def feed(self, cells: Sequence[str]) -> None:
        if self._categorical is not None:
            self._categorical.feed(cells)
            return
        parsed = self._parse_chunk(cells)
        if parsed is None:  # a present, unparseable cell: promote now
            # The spill holds every *earlier* chunk; the current one is
            # fed directly after the replay.
            self._promote()
            assert self._categorical is not None
            self._categorical.feed(cells)
            return
        if self._spill is not None:
            pickle.dump(list(cells), self._spill, protocol=_SPILL_PROTOCOL)
        values, mask = parsed
        present = values[~mask]
        if present.size:
            self._any_present = True
            if self._flags_only and not np.isin(
                present, tuple(FLAG_VALUES)
            ).all():
                self._flags_only = False
        assert self._values is not None and self._mask is not None
        self._values.write(values.tobytes())
        self._mask.write(mask.astype(MASK_DTYPE).tobytes())

    def _parse_chunk(
        self, cells: Sequence[str]
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Parse one chunk as floats; ``None`` means "promote me".

        Fast path: a single vectorized conversion when every cell is a
        plain number.  Any missing token or odd spelling falls back to
        the cell-by-cell parser that mirrors ``NumericColumn.from_cells``
        exactly.
        """
        try:
            values = np.asarray(cells, dtype=np.dtype(VALUES_DTYPE))
        except (ValueError, TypeError):
            values = None
        if values is not None and not np.isnan(values).any():
            return values, np.zeros(len(cells), dtype=bool)
        values = np.empty(len(cells), dtype=np.dtype(VALUES_DTYPE))
        mask = np.zeros(len(cells), dtype=bool)
        for i, cell in enumerate(cells):
            parsed = _parse_float(cell)
            if parsed is None:
                if (
                    self._forced is None
                    and cell is not None
                    and str(cell).strip().lower() not in MISSING_TOKENS
                ):
                    return None  # present but not a number
                values[i] = np.nan
                mask[i] = True
            else:
                values[i] = parsed
        return values, mask

    def _promote(self) -> None:
        """Switch to categorical, replaying the spilled raw cells."""
        assert self._values is not None and self._mask is not None
        self._values.close()
        self._mask.close()
        self._values = self._mask = None
        spill = self._spill
        self._spill = None
        assert spill is not None
        spill.close()
        self._categorical = _CategoricalBuilder(self._tmp_dir, self.position)
        with self.spill_path.open("rb") as handle:
            while True:
                try:
                    chunk = pickle.load(handle)
                except EOFError:
                    break
                self._categorical.feed(chunk)
        self.spill_path.unlink()
        self.values_path.unlink()
        self.mask_path.unlink()

    def finalize(self) -> None:
        """Apply the end-of-stream kind decisions ``infer_column`` makes.

        A column that stayed all-numeric is still categorical when it
        never had a present value, or when every present value was a
        0/1 flag (forced-numeric columns are exempt, as in
        ``infer_column``).
        """
        if self._categorical is None and self._forced is None:
            if not self._any_present or self._flags_only:
                self._promote()
        if self._values is not None:
            self._values.close()
            self._values = None
        if self._mask is not None:
            self._mask.close()
            self._mask = None
        if self._spill is not None:
            self._spill.close()
            self._spill = None
            self.spill_path.unlink(missing_ok=True)
        if self._categorical is not None:
            self._categorical.close()

    def abort(self) -> None:
        for handle in (self._values, self._mask, self._spill):
            if handle is not None:
                handle.close()
        if self._categorical is not None:
            self._categorical.close()


def ingest_csv(
    source: str | Path | IO[str],
    out_dir: str | Path,
    name: str | None = None,
    delimiter: str = ",",
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    priority_seed: int = 0,
    kinds: Mapping[str, ColumnKind] | None = None,
    partition_rows: int = DEFAULT_PARTITION_ROWS,
    scan_jobs: int | None = None,
) -> StoredTable:
    """Ingest a CSV into a new store directory; returns the opened table.

    Parameters
    ----------
    source:
        CSV path or open text file-like (read exactly once, in order).
    out_dir:
        Target store directory (created; must not already hold a store).
    name:
        Table name; defaults to the file stem (``"table"`` for
        file-likes).
    delimiter:
        Field separator.
    chunk_rows:
        Records per ingestion chunk — the peak-memory bound.
    priority_seed:
        Seed of the persisted multi-scale sampling priorities.
    kinds:
        Optional per-column kind overrides (skips inference, and the
        spill that inference needs).
    partition_rows:
        Rows per zone-mapped partition recorded in the manifest.
    scan_jobs:
        Worker processes for the finalize-time zone pass (``None``/1
        serial, 0 every core).
    """
    out_dir = Path(out_dir)
    if (out_dir / "manifest.json").exists():
        raise FileExistsError(f"{out_dir} already holds a store manifest")
    if hasattr(source, "read"):
        resolved_name = name or "table"
        handle: IO[str] = source  # type: ignore[assignment]
        close = False
    else:
        path = Path(source)  # type: ignore[arg-type]
        resolved_name = name or path.stem
        handle = path.open(newline="", encoding="utf-8")
        close = True

    tmp_dir = out_dir / "ingest.tmp"
    tmp_dir.mkdir(parents=True, exist_ok=True)
    builders: list[_ColumnBuilder] = []
    try:
        with get_tracer().span("store.ingest") as span:
            reader = CsvChunkReader(
                handle,
                delimiter=delimiter,
                chunk_rows=chunk_rows,
                name=resolved_name,
            )
            builders = [
                _ColumnBuilder(
                    column_name,
                    position,
                    tmp_dir,
                    kinds.get(column_name) if kinds else None,
                )
                for position, column_name in enumerate(reader.header)
            ]
            n_rows = 0
            for chunk in reader:
                n_rows += len(chunk[0])
                for builder, cells in zip(builders, chunk):
                    builder.feed(cells)
            for builder in builders:
                builder.finalize()
            manifest = _finalize_store(
                out_dir,
                resolved_name,
                n_rows,
                chunk_rows,
                priority_seed,
                builders,
                partition_rows=partition_rows,
                scan_jobs=scan_jobs,
            )
            if span.enabled:
                span.set("table", resolved_name)
                span.set("rows", n_rows)
                span.set("columns", len(builders))
            get_metrics().increment("blaeu_store_ingests_total")
    except BaseException:
        for builder in builders:
            builder.abort()
        shutil.rmtree(tmp_dir, ignore_errors=True)
        # No manifest was written, so nothing under out_dir is a valid
        # store: drop the partial column/priority files too, leaving a
        # pre-existing (user-created) directory itself in place.
        if not (out_dir / "manifest.json").exists():
            shutil.rmtree(out_dir / "columns", ignore_errors=True)
            (out_dir / "priority.bin").unlink(missing_ok=True)
        raise
    finally:
        if close:
            handle.close()
    shutil.rmtree(tmp_dir, ignore_errors=True)
    return StoredTable(out_dir, manifest=manifest)


def append_csv(
    source: str | Path | IO[str],
    store_dir: str | Path,
    delimiter: str = ",",
    chunk_rows: int | None = None,
    partition_rows: int | None = None,
    scan_jobs: int | None = None,
) -> StoredTable:
    """Append a CSV's rows to an existing store, in place.

    The CSV header must match the store's columns exactly (same names,
    same order); each column keeps its manifest kind — appended cells
    that do not fit a numeric column become missing, and categorical
    columns extend their dictionary with new labels in first-appearance
    order.  When the appended data is kind-compatible, the resulting
    store is byte-identical to a fresh ingest of the concatenated CSV:
    same files, same category order, same content fingerprint.

    The manifest is the commit point.  Data files grow first ("ab"
    appends), the priority permutation and fingerprint are recomputed
    over the full length, fresh zone-mapped partitions are built for the
    appended range only (existing partitions and their zones are kept
    verbatim), and only then is the manifest rewritten — with
    ``version`` bumped and ``previous_fingerprint`` recording the
    lineage.  Any failure before that point rolls the files back to
    their original sizes, so a crashed append leaves the store exactly
    as it was.

    Parameters
    ----------
    source:
        CSV path or open text file-like (header row included).
    store_dir:
        Existing store directory to grow.
    chunk_rows:
        Records per ingestion chunk; defaults to the store's own
        ``chunk_rows``.
    partition_rows:
        Rows per new partition; defaults to the store's current
        granularity (or the format default when it has none).
    scan_jobs:
        Worker processes for the zone pass over the appended range.
    """
    import json

    from repro.store.partitions import build_partitions

    store_dir = Path(store_dir)
    manifest = StoreManifest.load(store_dir)
    read_rows = chunk_rows or manifest.chunk_rows
    if partition_rows is None:
        partition_rows = (
            max(partition.rows for partition in manifest.partitions)
            if manifest.partitions
            else DEFAULT_PARTITION_ROWS
        )
    if hasattr(source, "read"):
        handle: IO[str] = source  # type: ignore[assignment]
        close = False
    else:
        handle = Path(source).open(newline="", encoding="utf-8")  # type: ignore[arg-type]
        close = True

    tmp_dir = store_dir / "append.tmp"
    tmp_dir.mkdir(parents=True, exist_ok=True)
    builders: list[_ColumnBuilder] = []
    try:
        with get_tracer().span("store.append") as span:
            reader = CsvChunkReader(
                handle,
                delimiter=delimiter,
                chunk_rows=read_rows,
                name=manifest.table,
            )
            expected = tuple(meta.name for meta in manifest.columns)
            if tuple(reader.header) != expected:
                raise ValueError(
                    f"append header {tuple(reader.header)!r} does not match "
                    f"store columns {expected!r}"
                )
            builders = [
                _ColumnBuilder(
                    meta.name,
                    position,
                    tmp_dir,
                    ColumnKind(meta.kind),
                    seed_categories=(
                        json.loads(
                            (store_dir / meta.files["categories"]).read_text(
                                encoding="utf-8"
                            )
                        )
                        if meta.kind == KIND_CATEGORICAL
                        else ()
                    ),
                )
                for position, meta in enumerate(manifest.columns)
            ]
            appended = 0
            for chunk in reader:
                appended += len(chunk[0])
                for builder, cells in zip(builders, chunk):
                    builder.feed(cells)
            for builder in builders:
                builder.finalize()
            if appended == 0:
                return StoredTable(store_dir, manifest=manifest)
            manifest = _apply_append(
                store_dir,
                manifest,
                builders,
                appended,
                partition_rows,
                scan_jobs,
                build_partitions,
            )
            if span.enabled:
                span.set("table", manifest.table)
                span.set("appended_rows", appended)
                span.set("rows", manifest.n_rows)
            get_metrics().increment("blaeu_store_appends_total")
    except BaseException:
        for builder in builders:
            builder.abort()
        raise
    finally:
        shutil.rmtree(tmp_dir, ignore_errors=True)
        if close:
            handle.close()
    return StoredTable(store_dir, manifest=manifest)


def _apply_append(
    store_dir: Path,
    manifest: StoreManifest,
    builders: list[_ColumnBuilder],
    appended: int,
    partition_rows: int,
    scan_jobs: int | None,
    build_partitions,
) -> StoreManifest:
    """Grow the store's files by the builders' output, then commit.

    Everything before ``manifest.save`` is undoable: original file sizes
    and category dictionaries are recorded up front, and any failure
    truncates the data files back and restores the priorities, leaving
    the on-disk store identical to its pre-append state.
    """
    import dataclasses
    import json

    old_rows = manifest.n_rows
    new_rows = old_rows + appended
    sizes: dict[Path, int] = {}
    category_texts: dict[Path, str] = {}
    for meta in manifest.columns:
        for role in ("values", "codes", "mask"):
            if role in meta.files:
                path = store_dir / meta.files[role]
                sizes[path] = path.stat().st_size
        if meta.kind == KIND_CATEGORICAL:
            path = store_dir / meta.files["categories"]
            category_texts[path] = path.read_text(encoding="utf-8")
    try:
        fingerprint = StreamingFingerprint(new_rows, manifest.chunk_rows)
        for builder, meta in zip(builders, manifest.columns):
            if builder.kind != meta.kind:
                raise ValueError(
                    f"column {meta.name!r}: appended kind {builder.kind!r} "
                    f"does not match store kind {meta.kind!r}"
                )
            if meta.kind == KIND_NUMERIC:
                _append_file(builder.values_path, store_dir / meta.files["values"])
                _append_file(builder.mask_path, store_dir / meta.files["mask"])
                fingerprint.add_numeric(
                    meta.name,
                    store_dir / meta.files["values"],
                    store_dir / meta.files["mask"],
                )
            else:
                categorical = builder._categorical
                assert categorical is not None
                _append_file(categorical.codes_path, store_dir / meta.files["codes"])
                _append_file(categorical.mask_path, store_dir / meta.files["mask"])
                categories = tuple(categorical.categories)
                (store_dir / meta.files["categories"]).write_text(
                    json.dumps(list(categories)), encoding="utf-8"
                )
                fingerprint.add_categorical(
                    meta.name,
                    store_dir / meta.files["codes"],
                    store_dir / meta.files["mask"],
                    categories,
                )
        write_priorities(store_dir, new_rows, manifest.priority_seed)
        fresh = build_partitions(
            store_dir,
            manifest.columns,
            new_rows,
            manifest.chunk_rows,
            partition_rows,
            start=old_rows,
            scan_jobs=scan_jobs,
        )
        partitions = (
            manifest.partitions + fresh if manifest.partitions else ()
        )
        updated = dataclasses.replace(
            manifest,
            n_rows=new_rows,
            fingerprint=fingerprint.hexdigest(),
            partitions=partitions,
            version=manifest.version + 1,
            previous_fingerprint=manifest.fingerprint,
        )
        updated.save(store_dir)
        return updated
    except BaseException:
        for path, size in sizes.items():
            with path.open("r+b") as handle:
                handle.truncate(size)
        for path, text in category_texts.items():
            path.write_text(text, encoding="utf-8")
        write_priorities(store_dir, old_rows, manifest.priority_seed)
        raise


def _append_file(tmp_path: Path, target: Path) -> None:
    with tmp_path.open("rb") as src, target.open("ab") as dst:
        shutil.copyfileobj(src, dst)


def _finalize_store(
    out_dir: Path,
    table_name: str,
    n_rows: int,
    chunk_rows: int,
    priority_seed: int,
    builders: list[_ColumnBuilder],
    partition_rows: int = DEFAULT_PARTITION_ROWS,
    scan_jobs: int | None = None,
) -> StoreManifest:
    """Move finished column files into place, fingerprint, write manifest."""
    import json

    columns_dir = out_dir / "columns"
    columns_dir.mkdir(parents=True, exist_ok=True)
    fingerprint = StreamingFingerprint(n_rows, chunk_rows)
    metas: list[ColumnMeta] = []
    for builder in builders:
        stem = column_file_stem(builder.position)
        if builder.kind == KIND_NUMERIC:
            values_file = f"{stem}.values.bin"
            mask_file = f"{stem}.mask.bin"
            builder.values_path.replace(out_dir / values_file)
            builder.mask_path.replace(out_dir / mask_file)
            fingerprint.add_numeric(
                builder.name, out_dir / values_file, out_dir / mask_file
            )
            metas.append(
                ColumnMeta(
                    name=builder.name,
                    kind=KIND_NUMERIC,
                    files={"values": values_file, "mask": mask_file},
                )
            )
        else:
            categorical = builder._categorical
            assert categorical is not None
            codes_file = f"{stem}.codes.bin"
            mask_file = f"{stem}.mask.bin"
            categories_file = f"{stem}.categories.json"
            categorical.codes_path.replace(out_dir / codes_file)
            categorical.mask_path.replace(out_dir / mask_file)
            categories = tuple(categorical.categories)
            (out_dir / categories_file).write_text(
                json.dumps(list(categories)), encoding="utf-8"
            )
            fingerprint.add_categorical(
                builder.name,
                out_dir / codes_file,
                out_dir / mask_file,
                categories,
            )
            metas.append(
                ColumnMeta(
                    name=builder.name,
                    kind=KIND_CATEGORICAL,
                    files={
                        "codes": codes_file,
                        "mask": mask_file,
                        "categories": categories_file,
                    },
                )
            )
    write_priorities(out_dir, n_rows, priority_seed)
    # Zone maps come from a second, bounded pass over the just-written
    # column files (the CSV itself is still read exactly once): the
    # final kind of a tentative column is only known here, after any
    # promotion or demotion.
    from repro.store.partitions import build_partitions

    partitions = build_partitions(
        out_dir,
        tuple(metas),
        n_rows,
        chunk_rows,
        partition_rows,
        scan_jobs=scan_jobs,
    )
    manifest = StoreManifest(
        table=table_name,
        n_rows=n_rows,
        chunk_rows=chunk_rows,
        fingerprint=fingerprint.hexdigest(),
        columns=tuple(metas),
        priority_seed=priority_seed,
        partitions=partitions,
    )
    manifest.save(out_dir)
    return manifest

"""Store-backed tables: the ``Table`` surface over memory-mapped columns.

A :class:`StoredTable` opens a store directory and exposes the same
relational operations as :class:`~repro.table.table.Table` —
``select`` / ``project`` / ``sample`` / ``take`` — but executes them
against the on-disk column files:

* **predicate pushdown** — ``select`` evaluates its predicate in a
  chunked scan that reads *only the columns the predicate references*,
  then gathers just the matching rows;
* **projection pushdown** — ``project`` returns another store-backed
  view over the restricted column set, copying nothing;
* **sample pushdown** — ``sample`` computes the row indices first and
  gathers only those rows (a few thousand page touches, not a table
  scan), and :meth:`top_k_sample` turns the *persisted* priority column
  into a bounded-memory top-k scan — the multi-scale
  :class:`~repro.table.sampling.SampleCascade` sample without ever
  materializing or redrawing priorities.

Materializing operations (``take``, ``select``, ``sample``, ``head``)
return plain in-memory ``Table`` objects sized by their result; scans
(:meth:`iter_chunks`, :meth:`scan_mask`) use buffered reads and stay
within one chunk of memory.  Full-column access (:meth:`column`) hands
out read-only memory maps wrapped in the regular column classes, so
every consumer of ``Column`` — predicates, CART routing, statistics —
works unchanged.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.resilience.deadline import checkpoint
from repro.resilience.faults import fault_point

from repro.store.format import (
    CODES_DTYPE,
    KIND_CATEGORICAL,
    KIND_NUMERIC,
    MASK_DTYPE,
    PRIORITY_DTYPE,
    VALUES_DTYPE,
    ColumnMeta,
    PartitionMeta,
    StoreManifest,
    read_file_chunk,
)
from repro.table.column import (
    CategoricalColumn,
    Column,
    ColumnKind,
    NumericColumn,
)
from repro.table.predicates import Predicate
from repro.table.sampling import SampleCascade, uniform_sample
from repro.table.table import Table

__all__ = ["StoredTable"]

#: Sentinel: "no explicit scan_jobs given; fall back to BLAEU_SCAN_JOBS".
_SCAN_JOBS_ENV = object()


def _env_scan_jobs() -> int | None:
    """The ``BLAEU_SCAN_JOBS`` default (``None`` when unset/invalid)."""
    raw = os.environ.get("BLAEU_SCAN_JOBS", "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        return None


class _MappedNumericColumn(NumericColumn):
    """A ``NumericColumn`` over read-only memory maps (no copies)."""

    def __init__(self, name: str, values: np.ndarray, missing: np.ndarray) -> None:
        # Bypasses NumericColumn.__init__: it would copy the backing
        # arrays, defeating out-of-core access.  The maps are opened
        # read-only, preserving the immutability contract.
        self._name = name
        self._missing = missing
        self._values = values


class _MappedCategoricalColumn(CategoricalColumn):
    """A ``CategoricalColumn`` over read-only memory maps (no copies)."""

    def __init__(
        self,
        name: str,
        codes: np.ndarray,
        missing: np.ndarray,
        categories: tuple[str, ...],
    ) -> None:
        self._name = name
        self._missing = missing
        self._codes = codes
        self._categories = categories
        self._index = {c: i for i, c in enumerate(categories)}


class StoredTable:
    """A read-only table backed by a store directory.

    Parameters
    ----------
    root:
        The store directory (holding ``manifest.json``).
    manifest:
        Pre-loaded manifest (views share their parent's).
    columns:
        Restrict to these columns, in order (projection view).
    name:
        Override the manifest's table name (like ``Table.rename``).
    scan_jobs:
        Worker processes for partitioned scans: ``None`` or 1 serial,
        0 every core, otherwise that many.  Left unspecified, the
        ``BLAEU_SCAN_JOBS`` environment variable decides (how the
        service's workers pick the knob up).  Results are bit-identical
        at any setting.
    """

    #: Catalog residency marker (in-memory tables report ``"memory"``).
    residency = "store"

    def __init__(
        self,
        root: str | Path,
        manifest: StoreManifest | None = None,
        columns: Sequence[str] | None = None,
        name: str | None = None,
        scan_jobs: int | None = _SCAN_JOBS_ENV,  # type: ignore[assignment]
    ) -> None:
        self._root = Path(root)
        self.scan_jobs = (
            _env_scan_jobs() if scan_jobs is _SCAN_JOBS_ENV else scan_jobs
        )
        self._manifest = (
            manifest if manifest is not None else StoreManifest.load(self._root)
        )
        self._meta = {meta.name: meta for meta in self._manifest.columns}
        full_order = tuple(meta.name for meta in self._manifest.columns)
        if columns is None:
            self._order = full_order
        else:
            missing = [c for c in columns if c not in self._meta]
            if missing:
                raise KeyError(f"unknown columns in projection: {missing}")
            if not columns:
                raise ValueError("projection must keep at least one column")
            self._order = tuple(columns)
        self._name = name or self._manifest.table
        self._mapped: dict[str, Column] = {}
        self._categories: dict[str, tuple[str, ...]] = {}
        self._priorities: np.ndarray | None = None
        self._data_reads = 0
        self._partitions_skipped = 0
        self._validate_files()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """The table's name."""
        return self._name

    @property
    def root(self) -> Path:
        """The store directory."""
        return self._root

    @property
    def manifest(self) -> StoreManifest:
        """The parsed manifest."""
        return self._manifest

    @property
    def n_rows(self) -> int:
        """Number of rows (from the manifest, no scan)."""
        return self._manifest.n_rows

    @property
    def n_columns(self) -> int:
        """Number of (visible) columns."""
        return len(self._order)

    @property
    def column_names(self) -> tuple[str, ...]:
        """Visible column names, in order."""
        return self._order

    @property
    def chunk_rows(self) -> int:
        """Default scan granularity (the ingestion chunk size)."""
        return self._manifest.chunk_rows

    @property
    def data_reads(self) -> int:
        """Count of column-data IO events (map opens + chunk reads).

        Diagnostic: lets tests assert that metadata paths — above all
        :meth:`fingerprint` on the service's cache hot path — perform
        zero data IO.
        """
        return self._data_reads

    @property
    def partitions(self) -> tuple[PartitionMeta, ...]:
        """The store's range partitions (implicit single range when the
        manifest predates partitioning)."""
        return self._manifest.effective_partitions()

    @property
    def partitions_skipped(self) -> int:
        """Partitions this view's scans pruned via zone maps so far."""
        return self._partitions_skipped

    def is_projection(self) -> bool:
        """Whether this view hides columns of the underlying store."""
        return self._order != tuple(m.name for m in self._manifest.columns)

    def fingerprint(self) -> str:
        """The table's content hash, in O(1) from the manifest.

        Equal to the :meth:`Table.fingerprint` of the same data (the
        ingester computes it with the identical algorithm), so cache
        entries are shared between a store-backed table and an in-memory
        twin.  Projection views derive a distinct digest from the
        manifest fingerprint plus the kept columns — still without
        touching column data.
        """
        if not self.is_projection():
            return self._manifest.fingerprint
        payload = self._manifest.fingerprint + "\x00" + "\x00".join(self._order)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def column(self, name: str) -> Column:
        """The column called ``name`` as a memory-mapped ``Column``."""
        if name not in self._order:
            raise KeyError(
                f"table {self._name!r} has no column {name!r}; "
                f"available: {list(self._order)}"
            )
        if name not in self._mapped:
            self._mapped[name] = self._map_column(self._meta[name])
        return self._mapped[name]

    @property
    def columns(self) -> tuple[Column, ...]:
        """Visible columns, memory-mapped, in order."""
        return tuple(self.column(n) for n in self._order)

    def has_column(self, name: str) -> bool:
        """Whether a (visible) column called ``name`` exists."""
        return name in self._order

    def kind(self, name: str) -> ColumnKind:
        """The kind of column ``name`` (manifest only, no IO)."""
        if name not in self._order:
            raise KeyError(f"table {self._name!r} has no column {name!r}")
        meta = self._meta[name]
        return (
            ColumnKind.NUMERIC
            if meta.kind == KIND_NUMERIC
            else ColumnKind.CATEGORICAL
        )

    def categories(self, name: str) -> tuple[str, ...]:
        """The category list of a categorical column."""
        meta = self._meta[name]
        if meta.kind != KIND_CATEGORICAL:
            raise TypeError(f"column {name!r} is numeric; it has no categories")
        if name not in self._categories:
            path = self._root / meta.files["categories"]
            self._categories[name] = tuple(
                json.loads(path.read_text(encoding="utf-8"))
            )
        return self._categories[name]

    def __len__(self) -> int:
        return self.n_rows

    def __contains__(self, name: object) -> bool:
        return name in self._order

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StoredTable {self._name!r} rows={self.n_rows} "
            f"columns={self.n_columns} root={str(self._root)!r}>"
        )

    def describe(self) -> list[dict[str, object]]:
        """Per-column summaries (full scan via the memory maps)."""
        return Table.describe(self)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Relational operations (chunked scans + gathers)
    # ------------------------------------------------------------------

    def rename(self, name: str) -> "StoredTable":
        """The same store-backed view under a different name."""
        return StoredTable(
            self._root,
            manifest=self._manifest,
            columns=self._order if self.is_projection() else None,
            name=name,
            scan_jobs=self.scan_jobs,
        )

    def project(self, names: Sequence[str], name: str | None = None) -> "StoredTable":
        """A store-backed view of the columns called ``names`` (no copy)."""
        return StoredTable(
            self._root,
            manifest=self._manifest,
            columns=tuple(names),
            name=name or self._name,
            scan_jobs=self.scan_jobs,
        )

    def drop(self, names: Sequence[str], name: str | None = None) -> "StoredTable":
        """A view of all columns except ``names``."""
        dropped = set(names)
        kept = [n for n in self._order if n not in dropped]
        return self.project(kept, name=name)

    def iter_chunks(
        self,
        columns: Sequence[str] | None = None,
        chunk_rows: int | None = None,
        start: int = 0,
        stop: int | None = None,
    ) -> Iterator[tuple[int, int, Table]]:
        """Yield ``(start, stop, chunk)`` plain in-memory tables.

        Chunks are built with buffered reads (never mmap), so a full
        scan's resident memory is bounded by one chunk of the requested
        ``columns`` — the scan primitive every pushdown is built on.
        ``start``/``stop`` bound the scan to a row range (how partition
        workers scan just their slice); defaults cover the whole table.
        """
        names = tuple(columns) if columns is not None else self._order
        for column_name in names:
            if column_name not in self._order:
                raise KeyError(
                    f"table {self._name!r} has no column {column_name!r}"
                )
        step = chunk_rows or self._manifest.chunk_rows
        if step < 1:
            raise ValueError(f"chunk_rows must be positive, got {step}")
        end = self.n_rows if stop is None else stop
        if not 0 <= start <= end <= self.n_rows:
            raise ValueError(
                f"invalid scan range [{start}, {stop}) for {self.n_rows} rows"
            )
        metrics = get_metrics()
        for lo in range(start, end, step):
            # Per-chunk deadline checkpoint + chaos hook: scans over
            # millions of rows abort within one chunk of an expired
            # budget, and the fault harness can fail or slow each read.
            checkpoint("store.chunk")
            fault_point("store.read")
            hi = min(lo + step, end)
            chunk_columns = [
                self._read_column_chunk(name, lo, hi) for name in names
            ]
            metrics.increment("blaeu_store_chunk_reads_total")
            yield lo, hi, Table(self._name, chunk_columns)

    def prune_partitions(
        self, predicate: Predicate
    ) -> tuple[list[PartitionMeta], int]:
        """The partitions a ``predicate`` scan must read, plus the skip
        count.

        Zone-map pruning: a partition is dropped only when its zones
        *prove* the predicate empty over it, so scanning just the
        survivors (and leaving skipped rows ``False``) reproduces the
        full scan exactly.  Skips are counted on this view and on the
        ``blaeu_store_partitions_skipped_total`` metric.
        """
        from repro.store.partitions import zone_proves_empty

        kinds = {meta.name: meta.kind for meta in self._manifest.columns}
        live: list[PartitionMeta] = []
        skipped = 0
        for partition in self.partitions:
            if partition.rows and zone_proves_empty(
                predicate, partition, kinds
            ):
                skipped += 1
            else:
                live.append(partition)
        if skipped:
            self._partitions_skipped += skipped
            get_metrics().increment(
                "blaeu_store_partitions_skipped_total", skipped
            )
        return live, skipped

    def scan_mask(
        self, predicate: Predicate, chunk_rows: int | None = None
    ) -> np.ndarray:
        """Evaluate ``predicate`` over all rows as a chunked scan.

        Predicate pushdown: only the columns the predicate references
        are read, only in the partitions whose zone maps cannot rule
        the predicate out, fanned over ``scan_jobs`` worker processes.
        Returns a boolean mask of length ``n_rows``, bit-identical at
        every pruning/parallelism setting.
        """
        needed = tuple(sorted(predicate.columns()))
        if not needed:  # Everything (no predicate references any column)
            return predicate.mask(self)  # type: ignore[arg-type]
        for column_name in needed:
            if column_name not in self._order:
                raise KeyError(
                    f"table {self._name!r} has no column {column_name!r}"
                )
        from repro.store.parallel import run_partition_tasks, scan_mask_task

        with get_tracer().span("store.scan") as span:
            started = time.perf_counter()
            reads_before = self._data_reads
            live, skipped = self.prune_partitions(predicate)
            out = np.zeros(self.n_rows, dtype=bool)
            step = chunk_rows or self._manifest.chunk_rows
            results = run_partition_tasks(
                scan_mask_task,
                [
                    (
                        str(self._root),
                        predicate,
                        needed,
                        partition.start,
                        partition.stop,
                        step,
                    )
                    for partition in live
                ],
                self.scan_jobs,
            )
            chunks = 0
            metrics = get_metrics()
            for partition, (segment, reads, read_chunks) in zip(live, results):
                out[partition.start : partition.stop] = segment
                self._data_reads += reads
                chunks += read_chunks
            metrics.increment(
                "blaeu_store_partitions_scanned_total", max(len(live), 0)
            )
            if span.enabled:
                span.set("rows", self.n_rows)
                span.set("columns", len(needed))
                span.set("chunks", chunks)
                span.set("partitions", len(live))
                span.set("partitions_skipped", skipped)
                span.set("data_reads", self._data_reads - reads_before)
            metrics.increment("blaeu_store_scans_total")
            metrics.observe(
                "blaeu_store_scan_seconds", time.perf_counter() - started
            )
        return out

    def select(self, predicate: Predicate, name: str | None = None) -> Table:
        """Rows matching ``predicate``, materialized (order preserved)."""
        return self.take(np.flatnonzero(self.scan_mask(predicate)), name=name)

    def filter(self, mask: np.ndarray, name: str | None = None) -> Table:
        """Rows where the boolean ``mask`` is ``True``, materialized."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != self.n_rows:
            raise ValueError(
                f"mask length {mask.shape[0]} != table rows {self.n_rows}"
            )
        return self.take(np.flatnonzero(mask), name=name)

    def take(self, indices: np.ndarray, name: str | None = None) -> Table:
        """Rows at ``indices``, gathered into a plain in-memory table.

        Memory is bounded by the result: each column is fancy-indexed
        through its memory map, touching only the pages the indices hit.
        """
        indices = np.asarray(indices, dtype=np.intp)
        if indices.size and (
            indices.min(initial=0) < 0 or indices.max(initial=0) >= self.n_rows
        ):
            raise IndexError(
                f"row indices out of range for table with {self.n_rows} rows"
            )
        with get_tracer().span("store.gather") as span:
            if span.enabled:
                span.set("rows", int(indices.size))
                span.set("columns", len(self._order))
            get_metrics().increment("blaeu_store_gathers_total")
            columns = [self.column(n).take(indices) for n in self._order]
        return Table(name or self._name, columns)

    def take_columns(
        self,
        names: Sequence[str],
        indices: np.ndarray,
        name: str | None = None,
    ) -> Table:
        """Rows at ``indices`` of just the ``names`` columns, gathered.

        The combined projection + gather of the graph stage's hot path:
        equivalent to ``project(names).take(indices)`` but without
        constructing (and re-validating) an intermediate view, it
        touches only the pages the indices hit in the named columns'
        maps.  This is how a dependency-graph build reads its sampled
        rows from a million-row store without materializing anything
        else.
        """
        indices = np.asarray(indices, dtype=np.intp)
        if indices.size and (
            indices.min(initial=0) < 0 or indices.max(initial=0) >= self.n_rows
        ):
            raise IndexError(
                f"row indices out of range for table with {self.n_rows} rows"
            )
        for column_name in names:
            if column_name not in self._order:
                raise KeyError(
                    f"table {self._name!r} has no column {column_name!r}"
                )
        with get_tracer().span("store.gather") as span:
            if span.enabled:
                span.set("rows", int(indices.size))
                span.set("columns", len(names))
            get_metrics().increment("blaeu_store_gathers_total")
            columns = [self.column(n).take(indices) for n in names]
        return Table(name or self._name, columns)

    def sample(self, n: int, rng: np.random.Generator | None = None) -> Table:
        """A uniform sample of ``min(n, n_rows)`` distinct rows.

        Index-identical to :meth:`Table.sample` at the same ``rng``
        state — the bit-identity guarantee between store-backed and
        in-memory map builds rests on this.
        """
        rng = rng or np.random.default_rng()
        indices = uniform_sample(self.n_rows, n, rng)
        return self.take(indices)

    def head(self, n: int = 10) -> Table:
        """The first ``n`` rows, materialized."""
        return self.take(np.arange(min(n, self.n_rows)))

    def row(self, index: int) -> dict[str, object]:
        """Row ``index`` as a column-name → value mapping."""
        if not 0 <= index < self.n_rows:
            raise IndexError(f"row {index} out of range [0, {self.n_rows})")
        return {n: self.column(n).value_at(index) for n in self._order}

    # ------------------------------------------------------------------
    # Persisted multi-scale sampling
    # ------------------------------------------------------------------

    @property
    def priorities(self) -> np.ndarray:
        """The persisted per-row sampling priorities (read-only map)."""
        if self._priorities is None:
            self._priorities = self._mmap(
                self._manifest.priority_file, PRIORITY_DTYPE
            )
        return self._priorities

    def cascade(self) -> SampleCascade:
        """The table's :class:`SampleCascade` over the persisted priorities.

        Identical in every process that opens the store — zoom samples
        are stable across restarts and across the service's workers.
        """
        return SampleCascade.from_priorities(self.priorities)

    def top_k_sample(
        self, k: int, chunk_rows: int | None = None
    ) -> np.ndarray:
        """Indices of the ``k`` lowest-priority rows, by bounded top-k scan.

        Equals ``cascade().sample(k)`` but streams the priority column
        (memory O(chunk + k)) instead of holding it whole — the
        pushed-down form of the multi-scale sample of the full table.
        """
        if k < 0:
            raise ValueError(f"sample size must be non-negative, got {k}")
        if k == 0:
            return np.empty(0, dtype=np.intp)
        if k >= self.n_rows:
            return np.arange(self.n_rows, dtype=np.intp)
        with get_tracer().span("store.topk_sample") as span:
            step = chunk_rows or self._manifest.chunk_rows
            path = self._root / self._manifest.priority_file
            best_priority = np.empty(0, dtype=np.int64)
            best_index = np.empty(0, dtype=np.intp)
            chunks = 0
            for start in range(0, self.n_rows, step):
                stop = min(start + step, self.n_rows)
                self._data_reads += 1
                chunk = read_file_chunk(
                    path, PRIORITY_DTYPE, start, stop
                ).astype(np.int64, copy=False)
                priority = np.concatenate([best_priority, chunk])
                index = np.concatenate(
                    [best_index, np.arange(start, stop, dtype=np.intp)]
                )
                if priority.size > k:
                    keep = np.argpartition(priority, k - 1)[:k]
                    priority = priority[keep]
                    index = index[keep]
                best_priority, best_index = priority, index
                chunks += 1
            if span.enabled:
                span.set("k", k)
                span.set("chunks", chunks)
            get_metrics().increment("blaeu_store_topk_scans_total")
            return np.sort(best_index)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _validate_files(self) -> None:
        """Cheap corruption guard: every data file must match ``n_rows``."""
        expectations: list[tuple[str, str]] = [
            (self._manifest.priority_file, PRIORITY_DTYPE)
        ]
        for name in self._order:
            meta = self._meta[name]
            if meta.kind == KIND_NUMERIC:
                expectations.append((meta.files["values"], VALUES_DTYPE))
            else:
                expectations.append((meta.files["codes"], CODES_DTYPE))
            expectations.append((meta.files["mask"], MASK_DTYPE))
        for relative, dtype in expectations:
            path = self._root / relative
            expected = self.n_rows * np.dtype(dtype).itemsize
            try:
                actual = path.stat().st_size
            except FileNotFoundError:
                raise FileNotFoundError(
                    f"store {str(self._root)!r} is missing {relative!r}"
                ) from None
            if actual != expected:
                raise ValueError(
                    f"store file {relative!r} holds {actual} bytes; "
                    f"expected {expected} for {self.n_rows} rows"
                )

    def _mmap(self, relative: str, dtype: str) -> np.ndarray:
        self._data_reads += 1
        if self.n_rows == 0:
            return np.empty(0, dtype=dtype)
        return np.memmap(self._root / relative, dtype=dtype, mode="r")

    def _map_column(self, meta: ColumnMeta) -> Column:
        mask = self._mmap(meta.files["mask"], MASK_DTYPE)
        if meta.kind == KIND_NUMERIC:
            values = self._mmap(meta.files["values"], VALUES_DTYPE)
            return _MappedNumericColumn(meta.name, values, mask)
        codes = self._mmap(meta.files["codes"], CODES_DTYPE)
        return _MappedCategoricalColumn(
            meta.name, codes, mask, self.categories(meta.name)
        )

    def _read_column_chunk(self, name: str, start: int, stop: int) -> Column:
        meta = self._meta[name]
        self._data_reads += 1
        if meta.kind == KIND_NUMERIC:
            values = read_file_chunk(
                self._root / meta.files["values"], VALUES_DTYPE, start, stop
            )
            mask = read_file_chunk(
                self._root / meta.files["mask"], MASK_DTYPE, start, stop
            )
            return NumericColumn(meta.name, values, mask)
        # The mask file is skipped here: CategoricalColumn rederives
        # missingness from the -1 codes, so reading it would be waste.
        codes = read_file_chunk(
            self._root / meta.files["codes"], CODES_DTYPE, start, stop
        )
        return CategoricalColumn(meta.name, codes, self.categories(name))

"""Process-parallel partition scans with deterministic merges.

The store's scan paths — predicate masks, exact-count routing,
highlight accumulation, streaming NMI, zone-map construction — all
reduce per-partition partials with associative merges, so fanning
partitions out over a ``ProcessPoolExecutor`` and re-assembling the
results **in partition order** reproduces the serial scan bit for bit.
Threads would not help here: chunk decoding and predicate evaluation
hold the GIL for real Python time, unlike the GEMM-heavy clustering
kernels that :mod:`repro.cluster.parallel` fans over threads.

Resilience rides along explicitly.  The parent's
:class:`~repro.resilience.deadline.Deadline` travels to workers as its
absolute monotonic expiry (``CLOCK_MONOTONIC`` is system-wide on the
platforms we run on), so per-chunk ``checkpoint`` calls inside a worker
abort against the *request's* deadline, not a per-worker restart of the
budget.  Fault injection needs no plumbing: ``BLAEU_FAULTS`` is an
environment variable, which worker processes inherit, and every worker
re-arms its injector from it — ``--faults`` chaos runs hit
``store.read`` fault points inside workers exactly as they do serially.

Workers are top-level functions taking one picklable task tuple; every
worker returns ``(payload, data_reads, chunk_reads)`` so the parent can
fold worker IO into its own ``data_reads`` budget counter and metrics.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.cluster.parallel import resolve_jobs
from repro.resilience.deadline import (
    Deadline,
    checkpoint,
    current_deadline,
    set_deadline,
)

__all__ = [
    "highlight_task",
    "nmi_task",
    "router_task",
    "run_partition_tasks",
    "scan_mask_task",
    "zones_task",
]

T = TypeVar("T")
R = TypeVar("R")


def _run_with_deadline(
    worker: Callable[[T], R], task: T, expiry: tuple[float, float] | None
) -> R:
    """Worker-side shim: reinstall the parent's deadline, then run."""
    if expiry is not None:
        set_deadline(Deadline(expires_at=expiry[0], budget=expiry[1]))
    return worker(task)


def run_partition_tasks(
    worker: Callable[[T], R],
    tasks: Sequence[T],
    scan_jobs: int | None,
) -> list[R]:
    """``[worker(task) for task in tasks]``, optionally across processes.

    ``scan_jobs`` follows the repo's jobs convention (``None``/1 serial,
    0 every core, otherwise that many workers, clamped to the task
    count).  Results come back in task order whatever the completion
    order, and the first worker exception propagates — including
    :class:`~repro.resilience.deadline.DeadlineExceeded` and injected
    faults, which pickle back to the parent with their type intact.
    """
    workers = resolve_jobs(scan_jobs, n_items=len(tasks))
    if workers == 1 or len(tasks) <= 1:
        results = []
        for task in tasks:
            checkpoint("store.partition")
            results.append(worker(task))
        return results
    deadline = current_deadline()
    expiry = (
        (deadline.expires_at, deadline.budget) if deadline is not None else None
    )
    with ProcessPoolExecutor(max_workers=workers) as executor:
        futures = [
            executor.submit(_run_with_deadline, worker, task, expiry)
            for task in tasks
        ]
        return [future.result() for future in futures]


# ----------------------------------------------------------------------
# Workers (top-level, picklable; imports deferred to avoid cycles)
# ----------------------------------------------------------------------


def _open(root: str):
    from repro.store.stored import StoredTable

    return StoredTable(root, scan_jobs=None)


def zones_task(task) -> dict:
    """Zone maps of one partition range: ``(root, columns, start, stop,
    chunk_rows)`` → ``{column: ColumnZone}``."""
    from pathlib import Path

    from repro.store.partitions import compute_zones

    root, columns, start, stop, chunk_rows = task
    return compute_zones(Path(root), columns, start, stop, chunk_rows)


def scan_mask_task(task) -> tuple[np.ndarray, int, int]:
    """Predicate mask of one partition range: ``(root, predicate, needed,
    start, stop, chunk_rows)`` → ``(mask segment, data_reads, chunks)``."""
    root, predicate, needed, start, stop, chunk_rows = task
    table = _open(root)
    out = np.empty(stop - start, dtype=bool)
    chunks = 0
    for lo, hi, chunk in table.iter_chunks(
        columns=needed, chunk_rows=chunk_rows, start=start, stop=stop
    ):
        out[lo - start : hi - start] = predicate.mask(chunk)
        chunks += 1
    return out, table.data_reads, chunks


def router_task(task) -> tuple[list[np.ndarray], int, int]:
    """Tree-routing masks of one partition range: ``(root, tree_root,
    needed, start, stop, chunk_rows)`` → one goes-left mask segment per
    internal node, in :meth:`TreeNode.walk` order."""
    from repro.tree.cart import _left_mask

    root, tree_root, needed, start, stop, chunk_rows = task
    table = _open(root)
    internal = [node for node in tree_root.walk() if not node.is_leaf]
    segments = [
        np.zeros(stop - start, dtype=bool) for _ in internal
    ]
    chunks = 0
    for lo, hi, chunk in table.iter_chunks(
        columns=needed, chunk_rows=chunk_rows, start=start, stop=stop
    ):
        checkpoint("count.chunk")
        local = np.arange(hi - lo, dtype=np.intp)
        for segment, node in zip(segments, internal):
            column = chunk.column(node.column or "")
            segment[lo - start : hi - start] = _left_mask(node, column, local)
        chunks += 1
    return segments, table.data_reads, chunks


def highlight_task(task):
    """Highlight partials of one partition range: ``(root, inspect, mask
    segment, start, stop, chunk_rows, preview_cap)`` → per-column numeric
    matches, categorical code counts, and a bounded row preview."""
    from repro.table.column import CategoricalColumn, NumericColumn

    root, inspect, mask, start, stop, chunk_rows, preview_cap = task
    table = _open(root)
    numeric_parts: dict[str, list] = {}
    category_codes: dict[str, np.ndarray] = {}
    for name in inspect:
        if table.kind(name).value == "numeric":
            numeric_parts[name] = []
        else:
            category_codes[name] = np.zeros(
                len(table.categories(name)), dtype=np.int64
            )
    preview: list[dict[str, object]] = []
    for lo, hi, chunk in table.iter_chunks(
        columns=inspect, chunk_rows=chunk_rows, start=start, stop=stop
    ):
        matched = np.flatnonzero(mask[lo - start : hi - start])
        if matched.size == 0:
            continue
        chunk_columns = {name: chunk.column(name) for name in inspect}
        for name, column in chunk_columns.items():
            if isinstance(column, NumericColumn):
                numeric_parts[name].append(column.take(matched))
            elif isinstance(column, CategoricalColumn):
                codes = column.codes[matched]
                category_codes[name] += np.bincount(
                    codes[codes >= 0], minlength=len(column.categories)
                )
        for local in matched[: max(preview_cap - len(preview), 0)]:
            preview.append(
                {
                    name: column.value_at(int(local))
                    for name, column in chunk_columns.items()
                }
            )
    return (numeric_parts, category_codes, preview), table.data_reads, 0


def nmi_task(task):
    """Streaming-NMI contingencies of one partition range: ``(root, names,
    n_codes, entries, start, stop, chunk_rows)`` → the accumulated
    :class:`StreamingPairwiseNMI` count arrays."""
    from repro.graph.codes import iter_code_chunks
    from repro.stats.batched import StreamingPairwiseNMI

    root, names, n_codes, entries, start, stop, chunk_rows = task
    table = _open(root)
    streaming = StreamingPairwiseNMI(names, n_codes)
    chunks = 0
    for matrix in iter_code_chunks(
        table, names, entries, chunk_rows=chunk_rows, start=start, stop=stop
    ):
        checkpoint("graph.nmi.chunk")
        streaming.update(matrix)
        chunks += 1
    return streaming.counts_state(), table.data_reads, chunks

"""Generic synthetic generators with known ground truth.

Two families cover the engine's two clustering axes:

* :func:`numeric_blobs` / :func:`mixed_blobs` — *horizontal* ground
  truth: Gaussian blobs (optionally with cluster-correlated categorical
  columns, missing values and noise columns) for evaluating map quality;
* :func:`planted_themes` — *vertical* ground truth: groups of columns
  driven by shared latent factors, independent across groups, for
  evaluating theme recovery.

Every generator takes a seed and returns plain tables plus the planted
labels, so experiments are reproducible bit for bit.
"""

from __future__ import annotations

import string
from dataclasses import dataclass

import numpy as np

from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.table import Table

__all__ = [
    "PlantedClusters",
    "PlantedThemes",
    "numeric_blobs",
    "mixed_blobs",
    "planted_themes",
]


@dataclass(frozen=True)
class PlantedClusters:
    """A table with known row-cluster structure."""

    table: Table
    labels: np.ndarray
    centers: np.ndarray

    @property
    def k(self) -> int:
        """Number of planted clusters."""
        return int(self.centers.shape[0])


@dataclass(frozen=True)
class PlantedThemes:
    """A table with known column-group structure."""

    table: Table
    groups: dict[str, tuple[str, ...]]

    def theme_of(self, column: str) -> str:
        """The planted theme name of ``column``."""
        for name, columns in self.groups.items():
            if column in columns:
                return name
        raise KeyError(f"column {column!r} belongs to no planted theme")

    def column_labels(self, columns: tuple[str, ...]) -> np.ndarray:
        """Integer theme label per column, aligned with ``columns``."""
        names = list(self.groups)
        return np.asarray(
            [names.index(self.theme_of(c)) for c in columns], dtype=np.intp
        )


def numeric_blobs(
    n_rows: int = 600,
    k: int = 3,
    n_features: int = 4,
    spread: float = 0.6,
    center_box: float = 4.0,
    n_noise_features: int = 0,
    missing_rate: float = 0.0,
    weights: tuple[float, ...] | None = None,
    seed: int = 7,
    name: str = "blobs",
) -> PlantedClusters:
    """Gaussian blobs with optional noise features and missing cells.

    Parameters
    ----------
    n_rows, k, n_features:
        Shape of the data.
    spread:
        Per-cluster standard deviation (smaller = crisper clusters).
    center_box:
        Cluster centers are drawn uniformly from ``[-box, box]^d``.
    n_noise_features:
        Extra standard-normal columns carrying no cluster signal.
    missing_rate:
        Independent per-cell missingness probability.
    weights:
        Relative cluster sizes (default: equal).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not 0.0 <= missing_rate < 1.0:
        raise ValueError(f"missing_rate must be in [0, 1), got {missing_rate}")
    rng = np.random.default_rng(seed)
    if weights is None:
        proportions = np.full(k, 1.0 / k)
    else:
        if len(weights) != k or min(weights) <= 0:
            raise ValueError("weights must be k positive numbers")
        proportions = np.asarray(weights, dtype=np.float64)
        proportions = proportions / proportions.sum()

    centers = rng.uniform(-center_box, center_box, size=(k, n_features))
    labels = rng.choice(k, size=n_rows, p=proportions)
    data = centers[labels] + rng.normal(0.0, spread, size=(n_rows, n_features))
    if n_noise_features:
        noise = rng.normal(0.0, 1.0, size=(n_rows, n_noise_features))
        data = np.hstack([data, noise])

    columns = []
    total_features = n_features + n_noise_features
    for j in range(total_features):
        values = data[:, j].copy()
        if missing_rate > 0.0:
            holes = rng.random(n_rows) < missing_rate
            values[holes] = np.nan
        prefix = "x" if j < n_features else "noise"
        index = j if j < n_features else j - n_features
        columns.append(NumericColumn(f"{prefix}{index}", values))
    return PlantedClusters(
        table=Table(name, columns),
        labels=labels.astype(np.intp),
        centers=centers,
    )


def mixed_blobs(
    n_rows: int = 600,
    k: int = 3,
    n_numeric: int = 3,
    n_categorical: int = 2,
    category_fidelity: float = 0.85,
    spread: float = 0.6,
    missing_rate: float = 0.0,
    seed: int = 11,
    name: str = "mixed_blobs",
) -> PlantedClusters:
    """Blobs with categorical columns that agree with the cluster.

    Each categorical column has one label per cluster; a cell carries its
    cluster's label with probability ``category_fidelity`` and a random
    other label otherwise — mixed-type data with a single coherent
    cluster structure, the exact shape Blaeu's preprocessing targets.
    """
    if not 0.0 < category_fidelity <= 1.0:
        raise ValueError("category_fidelity must be in (0, 1]")
    base = numeric_blobs(
        n_rows=n_rows,
        k=k,
        n_features=n_numeric,
        spread=spread,
        missing_rate=missing_rate,
        seed=seed,
        name=name,
    )
    rng = np.random.default_rng(seed + 1)
    letters = string.ascii_uppercase
    columns = list(base.table.columns)
    for c in range(n_categorical):
        labels: list[str | None] = []
        for row in range(n_rows):
            cluster = int(base.labels[row])
            if rng.random() < category_fidelity:
                chosen = cluster
            else:
                chosen = int(rng.integers(0, k))
            label = f"{letters[c % len(letters)]}{chosen}"
            if missing_rate > 0.0 and rng.random() < missing_rate:
                labels.append(None)
            else:
                labels.append(label)
        columns.append(CategoricalColumn.from_labels(f"cat{c}", labels))
    return PlantedClusters(
        table=Table(name, columns),
        labels=base.labels,
        centers=base.centers,
    )


def planted_themes(
    n_rows: int = 500,
    group_sizes: dict[str, int] | None = None,
    noise: float = 0.35,
    missing_rate: float = 0.0,
    seed: int = 13,
    name: str = "themed",
) -> PlantedThemes:
    """Columns in latent-factor groups: the vertical ground truth.

    Every group ``g`` has a latent standard-normal factor ``z_g``; each of
    its columns is ``a · z_g + noise`` with a random non-degenerate
    loading ``a``.  Columns inside a group are strongly mutually
    dependent; columns across groups are independent — exactly the
    structure the dependency graph + PAM should recover as themes.
    """
    if group_sizes is None:
        group_sizes = {"economy": 4, "health": 4, "environment": 4}
    if not group_sizes or min(group_sizes.values()) < 1:
        raise ValueError("group_sizes must map names to positive counts")
    rng = np.random.default_rng(seed)

    columns = []
    groups: dict[str, tuple[str, ...]] = {}
    for group_name, size in group_sizes.items():
        factor = rng.normal(0.0, 1.0, size=n_rows)
        names = []
        for j in range(size):
            loading = rng.uniform(0.7, 1.3) * rng.choice([-1.0, 1.0])
            values = loading * factor + rng.normal(0.0, noise, size=n_rows)
            if missing_rate > 0.0:
                holes = rng.random(n_rows) < missing_rate
                values = values.copy()
                values[holes] = np.nan
            column_name = f"{group_name}_{j}"
            names.append(column_name)
            columns.append(NumericColumn(column_name, values))
        groups[group_name] = tuple(names)
    return PlantedThemes(table=Table(name, columns), groups=groups)

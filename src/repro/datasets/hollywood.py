"""The Hollywood demo dataset (paper §4.2, first scenario).

"900 Hollywood movies released between 2007 and 2013 … 12 columns.
Which films are the most profitable?  Which are those that fail?  How do
critics and commercial success relate to each other?"

The generator plants three audience-recognizable segments —
*blockbusters* (huge budgets, huge grosses, mixed reviews), *indie hits*
(small budgets, strong reviews, high profitability) and *flops* (mid
budgets, weak reviews, losses) — so the questions the demo poses have
discoverable answers.
"""

from __future__ import annotations

import numpy as np

from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.table import Table

__all__ = ["hollywood", "HOLLYWOOD_SEGMENTS"]

#: The planted segments, in cluster-id order.
HOLLYWOOD_SEGMENTS = ("blockbuster", "indie_hit", "flop")

_GENRES = {
    "blockbuster": ["Action", "Adventure", "Animation"],
    "indie_hit": ["Drama", "Comedy", "Romance"],
    "flop": ["Thriller", "Comedy", "Horror", "Drama"],
}

_STUDIOS = {
    "blockbuster": ["Disney", "Warner Bros", "Universal", "Paramount"],
    "indie_hit": ["Fox Searchlight", "Lionsgate", "Independent", "Sony Classics"],
    "flop": ["Warner Bros", "Sony", "Universal", "Independent", "Relativity"],
}


def hollywood(
    n_rows: int = 900, seed: int = 2007, name: str = "hollywood"
) -> Table:
    """Generate the Hollywood movies table (12 columns, ~900 rows)."""
    rng = np.random.default_rng(seed)
    segments = rng.choice(3, size=n_rows, p=[0.25, 0.35, 0.40])

    titles: list[str] = []
    genres: list[str] = []
    studios: list[str] = []
    years = np.empty(n_rows)
    budgets = np.empty(n_rows)
    domestic = np.empty(n_rows)
    worldwide = np.empty(n_rows)
    critics = np.empty(n_rows)
    audience = np.empty(n_rows)
    theaters = np.empty(n_rows)
    opening = np.empty(n_rows)

    for i in range(n_rows):
        segment = HOLLYWOOD_SEGMENTS[segments[i]]
        titles.append(f"Movie {i:04d}")
        genres.append(str(rng.choice(_GENRES[segment])))
        studios.append(str(rng.choice(_STUDIOS[segment])))
        years[i] = float(rng.integers(2007, 2014))
        if segment == "blockbuster":
            budgets[i] = rng.uniform(90.0, 260.0)
            multiplier = rng.uniform(1.8, 4.5)
            critics[i] = np.clip(rng.normal(58.0, 16.0), 5.0, 99.0)
            audience[i] = np.clip(rng.normal(68.0, 12.0), 10.0, 99.0)
            theaters[i] = rng.uniform(3000.0, 4400.0)
        elif segment == "indie_hit":
            budgets[i] = rng.uniform(1.0, 30.0)
            multiplier = rng.uniform(2.5, 12.0)
            critics[i] = np.clip(rng.normal(78.0, 12.0), 20.0, 100.0)
            audience[i] = np.clip(rng.normal(74.0, 11.0), 20.0, 100.0)
            theaters[i] = rng.uniform(80.0, 1600.0)
        else:  # flop
            budgets[i] = rng.uniform(15.0, 90.0)
            multiplier = rng.uniform(0.15, 1.1)
            critics[i] = np.clip(rng.normal(38.0, 14.0), 2.0, 85.0)
            audience[i] = np.clip(rng.normal(45.0, 13.0), 5.0, 90.0)
            theaters[i] = rng.uniform(800.0, 3200.0)
        worldwide[i] = budgets[i] * multiplier * rng.uniform(0.9, 1.1)
        domestic[i] = worldwide[i] * rng.uniform(0.3, 0.6)
        opening[i] = domestic[i] * rng.uniform(0.18, 0.45)

    # Round the money columns first so Profitability is exactly
    # WorldwideGross / Budget as shipped (internal consistency).
    budgets = np.round(budgets, 1)
    worldwide = np.round(worldwide, 1)
    domestic = np.round(domestic, 1)
    opening = np.round(opening, 1)
    profitability = worldwide / budgets

    # A realistic sprinkle of missing review scores.
    critic_holes = rng.random(n_rows) < 0.03
    audience_holes = rng.random(n_rows) < 0.02
    critics[critic_holes] = np.nan
    audience[audience_holes] = np.nan

    columns = [
        CategoricalColumn.from_labels("Title", titles),
        NumericColumn("Year", years),
        CategoricalColumn.from_labels("Genre", genres),
        CategoricalColumn.from_labels("Studio", studios),
        NumericColumn("Budget", budgets),
        NumericColumn("DomesticGross", domestic),
        NumericColumn("WorldwideGross", worldwide),
        NumericColumn("Profitability", np.round(profitability, 4)),
        NumericColumn("RottenTomatoes", np.round(critics, 0)),
        NumericColumn("AudienceScore", np.round(audience, 0)),
        NumericColumn("TheatersOpening", np.round(theaters, 0)),
        NumericColumn("OpeningWeekend", np.round(opening, 1)),
    ]
    return Table(name, columns)

"""The LOFAR demo dataset (paper §4.2, third scenario).

"The LOFAR database is the result of a large-scale radio astronomy
experiment in the Netherlands.  It describes the positional and physical
properties of light sources (e.g., stars) … we expect it to contain
100,000s of tuples and several dozens variables."

The generator emits a sky-survey catalog with four planted source
populations (compact steep-spectrum sources, extended lobed sources,
flat-spectrum compact cores, and transients) expressed through flux
densities at several frequencies, spectral indices, angular sizes and
variability measures — enough correlated physics for themes *and* enough
rows to exercise the CLARA / sampling path.
"""

from __future__ import annotations

import numpy as np

from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.table import Table

__all__ = ["lofar", "LOFAR_POPULATIONS"]

#: Planted source populations, in cluster-id order.
LOFAR_POPULATIONS = (
    "compact_steep",
    "extended_lobed",
    "flat_core",
    "transient",
)


def lofar(
    n_rows: int = 200_000,
    missing_rate: float = 0.015,
    seed: int = 151,
    name: str = "lofar",
) -> Table:
    """Generate the LOFAR light-source catalog (~20 columns).

    The default 200k rows matches the paper's "100,000s of tuples"; tests
    use far fewer via the ``n_rows`` parameter.
    """
    rng = np.random.default_rng(seed)
    population = rng.choice(4, size=n_rows, p=[0.42, 0.28, 0.22, 0.08])

    # Position: uniform on the northern sky (LOFAR's footprint).
    ra = rng.uniform(0.0, 360.0, n_rows)
    dec = np.degrees(np.arcsin(rng.uniform(0.0, 1.0, n_rows)))

    # Spectral behaviour per population.
    spectral_index = np.select(
        [population == 0, population == 1, population == 2, population == 3],
        [
            rng.normal(-0.9, 0.15, n_rows),   # steep
            rng.normal(-0.75, 0.2, n_rows),   # lobed, steep-ish
            rng.normal(-0.1, 0.15, n_rows),   # flat cores
            rng.normal(-0.4, 0.35, n_rows),   # transients, varied
        ],
    )
    log_flux_150 = np.select(
        [population == 0, population == 1, population == 2, population == 3],
        [
            rng.normal(0.0, 0.5, n_rows),
            rng.normal(0.8, 0.5, n_rows),
            rng.normal(-0.3, 0.4, n_rows),
            rng.normal(-0.6, 0.5, n_rows),
        ],
    )
    flux_150 = 10.0**log_flux_150
    # Power-law spectra: S(nu) = S_150 * (nu / 150)^alpha, with noise.
    flux_120 = flux_150 * (120.0 / 150.0) ** spectral_index
    flux_180 = flux_150 * (180.0 / 150.0) ** spectral_index
    flux_1400 = flux_150 * (1400.0 / 150.0) ** spectral_index
    for flux in (flux_120, flux_180, flux_1400):
        flux *= rng.lognormal(0.0, 0.05, n_rows)

    angular_size = np.select(
        [population == 0, population == 1, population == 2, population == 3],
        [
            rng.lognormal(0.3, 0.4, n_rows),   # arcsec, compact
            rng.lognormal(2.6, 0.5, n_rows),   # extended
            rng.lognormal(0.1, 0.3, n_rows),   # very compact
            rng.lognormal(0.2, 0.5, n_rows),
        ],
    )
    axis_ratio = np.where(
        population == 1,
        rng.uniform(1.5, 5.0, n_rows),
        rng.uniform(1.0, 1.8, n_rows),
    )
    variability = np.where(
        population == 3,
        rng.uniform(0.3, 1.0, n_rows),
        rng.uniform(0.0, 0.12, n_rows),
    )
    snr = flux_150 / rng.lognormal(-2.2, 0.3, n_rows)
    n_detections = np.clip(
        np.round(rng.normal(9, 3, n_rows) - 4 * variability), 1, 15
    )

    morphology = [
        LOFAR_POPULATIONS[p].split("_")[0] for p in population
    ]  # compact / extended / flat / transient
    field_names = [f"Field {int(f):03d}" for f in rng.integers(0, 60, n_rows)]

    def punch(values: np.ndarray) -> np.ndarray:
        out = values.astype(np.float64, copy=True)
        out[rng.random(n_rows) < missing_rate] = np.nan
        return out

    columns = [
        CategoricalColumn.from_labels(
            "SourceID", [f"LOF-{i:07d}" for i in range(n_rows)]
        ),
        CategoricalColumn.from_labels("Field", field_names),
        NumericColumn("RA", np.round(ra, 5)),
        NumericColumn("Dec", np.round(dec, 5)),
        NumericColumn("Flux120MHz", punch(np.round(flux_120, 4))),
        NumericColumn("Flux150MHz", punch(np.round(flux_150, 4))),
        NumericColumn("Flux180MHz", punch(np.round(flux_180, 4))),
        NumericColumn("Flux1400MHz", punch(np.round(flux_1400, 4))),
        NumericColumn("SpectralIndex", punch(np.round(spectral_index, 3))),
        NumericColumn("AngularSize", punch(np.round(angular_size, 3))),
        NumericColumn("AxisRatio", punch(np.round(axis_ratio, 3))),
        NumericColumn("Variability", punch(np.round(variability, 4))),
        NumericColumn("SNR", punch(np.round(snr, 2))),
        NumericColumn("NDetections", n_detections),
        CategoricalColumn.from_labels("Morphology", morphology),
    ]
    return Table(name, columns)

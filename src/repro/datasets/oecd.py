"""The Countries-and-Work demo dataset (paper §4.2, second scenario).

"Public data sets from the OECD … economic performance indicators, labor
statistics and well-being indices for more than 1,500 regions belonging
to 31 different countries.  It contains 6,823 rows and 378 columns."

The generator reproduces that shape and plants the structures the
paper's walkthrough (Figure 1) relies on:

* a **labor-conditions theme** — ``% Employees Working Long Hours``,
  ``Average Income``, ``Time Dedicated to Leisure`` — whose rows split
  into the three regions of Figure 1b: long hours (≥ ~20%), short hours
  with high income (Switzerland, Norway, Canada, …) and short hours with
  low income;
* an **unemployment theme** (``Unemployment``, ``Long Term
  Unemployment``, ``Female Unemployment``) partitioning the countries
  differently, so a *projection* reveals an alternative aspect;
* a **health theme** (``%People w/ Health Insurance``, ``Life
  Expectancy``, ``Health Spending``) matching Figure 2's right-hand
  community;
* 36 further latent-factor indicator groups of 10 columns each plus six
  independent misc indicators, filling the table out to 378 columns of
  mutually dependent blocks — the raw material of the theme view.
"""

from __future__ import annotations

import numpy as np

from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.table import Table

__all__ = [
    "oecd",
    "oecd_small",
    "COUNTRIES",
    "LONG_HOURS_COUNTRIES",
    "HIGH_INCOME_COUNTRIES",
    "HIGH_UNEMPLOYMENT_COUNTRIES",
    "LABOR_THEME",
    "UNEMPLOYMENT_THEME",
    "HEALTH_THEME",
]

COUNTRIES = (
    "Australia", "Austria", "Belgium", "Canada", "Chile",
    "Czech Republic", "Denmark", "Estonia", "Finland", "France",
    "Germany", "Greece", "Hungary", "Iceland", "Ireland",
    "Israel", "Italy", "Japan", "Korea", "Luxembourg",
    "Mexico", "Netherlands", "New Zealand", "Norway", "Poland",
    "Portugal", "Slovak Republic", "Slovenia", "Spain", "Sweden",
    "Switzerland",
)

#: Figure 1b's top region: countries where many employees work long hours.
LONG_HOURS_COUNTRIES = frozenset(
    {"Mexico", "Korea", "Japan", "Chile", "Greece", "Israel"}
)

#: Figure 1c's highlighted region: short hours *and* high average income.
HIGH_INCOME_COUNTRIES = frozenset({
    "Switzerland", "Norway", "Canada", "Luxembourg", "Netherlands",
    "Denmark", "Australia", "Sweden", "Iceland", "Ireland", "Germany",
    "Austria", "Belgium", "Finland",
})

#: Figure 1d's projection: the high-unemployment group.
HIGH_UNEMPLOYMENT_COUNTRIES = frozenset({
    "Spain", "Greece", "Portugal", "Slovak Republic", "Ireland",
    "Italy", "France", "Poland",
})

LABOR_THEME = (
    "% Employees Working Long Hours",
    "Average Income",
    "Time Dedicated to Leisure",
)
UNEMPLOYMENT_THEME = (
    "Unemployment",
    "Long Term Unemployment",
    "Female Unemployment",
)
HEALTH_THEME = (
    "%People w/ Health Insurance",
    "Life Expectancy",
    "Health Spending",
)

_EXTRA_GROUP_BASES = (
    "Education", "Housing", "Environment", "Safety", "Transport",
    "Income Distribution", "Civic Engagement", "Innovation", "Tourism",
    "Agriculture", "Energy", "Digital Access", "Demography", "Trade",
    "Public Finance", "Culture", "Migration", "Productivity",
    "Small Business", "Infrastructure", "Water Quality", "Air Quality",
    "Broadband", "Skills", "Patents", "Savings", "Construction",
    "Retail", "Manufacturing", "Services", "Forestry", "Fisheries",
    "Mining", "Utilities", "Logistics", "Research",
)


def oecd(
    n_rows: int = 6823,
    n_regions: int = 1520,
    n_extra_groups: int = 36,
    extra_group_width: int = 10,
    n_misc: int = 6,
    missing_rate: float = 0.02,
    seed: int = 1961,
    name: str = "countries",
) -> Table:
    """Generate the Countries-and-Work table (defaults: 6,823 × 378).

    Column count = 3 id columns (CountryName, RegionName, Year)
    + 9 named theme columns + ``n_extra_groups · extra_group_width``
    + ``n_misc`` = 378 with the defaults.
    """
    if n_extra_groups > len(_EXTRA_GROUP_BASES):
        raise ValueError(
            f"at most {len(_EXTRA_GROUP_BASES)} extra groups are available"
        )
    rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Rows: regions within countries, observed in some year.
    # ------------------------------------------------------------------
    region_country = rng.integers(0, len(COUNTRIES), size=n_regions)
    row_region = rng.integers(0, n_regions, size=n_rows)
    row_country = region_country[row_region]
    country_names = [COUNTRIES[c] for c in row_country]
    region_names = [
        f"{COUNTRIES[region_country[r]]} Region {r % 99:02d}-{r}"
        for r in row_region
    ]
    years = rng.integers(2010, 2015, size=n_rows).astype(np.float64)

    is_long_hours = np.asarray(
        [COUNTRIES[c] in LONG_HOURS_COUNTRIES for c in row_country]
    )
    is_high_income = np.asarray(
        [COUNTRIES[c] in HIGH_INCOME_COUNTRIES for c in row_country]
    )
    is_high_unemployment = np.asarray(
        [COUNTRIES[c] in HIGH_UNEMPLOYMENT_COUNTRIES for c in row_country]
    )

    # ------------------------------------------------------------------
    # Labor-conditions theme (Figure 1b's three regions).
    # ------------------------------------------------------------------
    long_hours = np.where(
        is_long_hours,
        rng.normal(28.0, 3.0, n_rows),
        rng.normal(11.0, 3.0, n_rows),
    ).clip(0.5, 60.0)
    income = np.where(
        is_long_hours,
        rng.normal(16.0, 3.0, n_rows),
        np.where(
            is_high_income,
            rng.normal(33.0, 3.5, n_rows),
            rng.normal(14.0, 3.0, n_rows),
        ),
    ).clip(4.0, 60.0)
    leisure = (16.0 - 0.12 * long_hours + rng.normal(0.0, 0.5, n_rows)).clip(
        8.0, 17.0
    )

    # ------------------------------------------------------------------
    # Unemployment theme (a *different* country partition).
    # ------------------------------------------------------------------
    unemployment = np.where(
        is_high_unemployment,
        rng.normal(14.0, 3.0, n_rows),
        rng.normal(5.5, 1.8, n_rows),
    ).clip(0.5, 30.0)
    long_term = (0.45 * unemployment + rng.normal(0.0, 0.8, n_rows)).clip(
        0.1, 25.0
    )
    female = (unemployment + rng.normal(0.8, 1.0, n_rows)).clip(0.3, 32.0)

    # ------------------------------------------------------------------
    # Health theme (Figure 2's second community).  Driven by its own
    # country-level latent, independent of the income groups, so the
    # health and labor themes are separable (as in Figure 1a).
    # ------------------------------------------------------------------
    country_health = rng.normal(0.0, 0.6, len(COUNTRIES))
    health_factor = country_health[row_country] + rng.normal(0.0, 0.35, n_rows)
    insurance = (82.0 + 16.0 * health_factor + rng.normal(0, 2.0, n_rows)).clip(
        30.0, 100.0
    )
    life_expectancy = (
        78.0 + 4.0 * health_factor + rng.normal(0, 0.8, n_rows)
    ).clip(65.0, 90.0)
    health_spending = (
        3.2 + 2.4 * health_factor + rng.normal(0, 0.5, n_rows)
    ).clip(0.5, 12.0)

    columns = [
        CategoricalColumn.from_labels("CountryName", country_names),
        CategoricalColumn.from_labels("RegionName", region_names),
        NumericColumn("Year", years),
        NumericColumn(LABOR_THEME[0], _holes(long_hours, missing_rate, rng)),
        NumericColumn(LABOR_THEME[1], _holes(income, missing_rate, rng)),
        NumericColumn(LABOR_THEME[2], _holes(leisure, missing_rate, rng)),
        NumericColumn(
            UNEMPLOYMENT_THEME[0], _holes(unemployment, missing_rate, rng)
        ),
        NumericColumn(
            UNEMPLOYMENT_THEME[1], _holes(long_term, missing_rate, rng)
        ),
        NumericColumn(UNEMPLOYMENT_THEME[2], _holes(female, missing_rate, rng)),
        NumericColumn(HEALTH_THEME[0], _holes(insurance, missing_rate, rng)),
        NumericColumn(
            HEALTH_THEME[1], _holes(life_expectancy, missing_rate, rng)
        ),
        NumericColumn(
            HEALTH_THEME[2], _holes(health_spending, missing_rate, rng)
        ),
    ]

    # ------------------------------------------------------------------
    # Filler indicator groups: shared latent factor per group per country.
    # ------------------------------------------------------------------
    for g in range(n_extra_groups):
        base = _EXTRA_GROUP_BASES[g]
        country_factor = rng.normal(0.0, 1.0, len(COUNTRIES))
        factor = country_factor[row_country] + rng.normal(0.0, 0.4, n_rows)
        for j in range(extra_group_width):
            loading = rng.uniform(0.7, 1.3) * (1 if rng.random() < 0.8 else -1)
            scale = rng.uniform(1.0, 25.0)
            offset = rng.uniform(10.0, 120.0)
            values = offset + scale * (
                loading * factor + rng.normal(0.0, 0.45, n_rows)
            )
            columns.append(
                NumericColumn(
                    f"{base} Indicator {j + 1}",
                    _holes(values, missing_rate, rng),
                )
            )

    for m in range(n_misc):
        values = rng.normal(50.0, 12.0, n_rows)
        columns.append(
            NumericColumn(f"Misc Index {m + 1}", _holes(values, missing_rate, rng))
        )

    return Table(name, columns)


def oecd_small(
    n_rows: int = 900,
    seed: int = 1961,
    name: str = "countries_small",
) -> Table:
    """A fast variant for tests: same planted structure, 42 columns."""
    return oecd(
        n_rows=n_rows,
        n_regions=220,
        n_extra_groups=3,
        extra_group_width=8,
        n_misc=3,
        seed=seed,
        name=name,
    )


def _holes(
    values: np.ndarray, missing_rate: float, rng: np.random.Generator
) -> np.ndarray:
    """Punch independent missing cells into a copy of ``values``."""
    if missing_rate <= 0.0:
        return values
    out = values.astype(np.float64, copy=True)
    out[rng.random(values.shape[0]) < missing_rate] = np.nan
    return out

"""Demo datasets — synthetic stand-ins for the paper's three databases.

The paper demonstrates Blaeu on the Hollywood movie dataset (~900×12),
the OECD Countries-and-Work dataset (6,823×378, 31 countries) and the
LOFAR radio-astronomy catalog (100,000s × dozens).  None of those files
ship with the paper, so this package generates seeded synthetic tables
matching their published shapes, mixed types, missing-value rates and —
crucially for evaluation — with *planted* themes and clusters whose
recovery the benchmarks can score.
"""

from repro.datasets.hollywood import hollywood
from repro.datasets.lofar import lofar
from repro.datasets.oecd import oecd, oecd_small
from repro.datasets.synthetic import (
    PlantedClusters,
    PlantedThemes,
    mixed_blobs,
    numeric_blobs,
    planted_themes,
)

__all__ = [
    "PlantedClusters",
    "PlantedThemes",
    "hollywood",
    "lofar",
    "mixed_blobs",
    "numeric_blobs",
    "oecd",
    "oecd_small",
    "planted_themes",
]

"""``python -m repro`` — the terminal browser (see :mod:`repro.cli`)."""

from repro.cli import main

if __name__ == "__main__":
    main()

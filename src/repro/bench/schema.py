"""The stable JSON schema of a benchmark report.

A report is a flat, diff-friendly document::

    {
      "schema_version": 1,
      "suite": "clustering",
      "smoke": true,
      "host": {"cpus": 4, "platform": "...", "python": "...", "numpy": "..."},
      "results": [
        {
          "name": "clara_map_build",
          "params": {"n_rows": 20000, "k": 8, ...},
          "metrics": {"serial_seconds": 0.41, "parallel_speedup": 2.7, ...},
          "gated": ["serial_seconds", "parallel_seconds"]
        }
      ]
    }

``metrics`` mixes timings with derived ratios and correctness flags;
only the names listed in ``gated`` (always lower-is-better timings) are
compared against a baseline by :func:`compare_reports`.  Bump
``SCHEMA_VERSION`` on any incompatible change — the comparer refuses to
diff across versions rather than silently mismatching fields.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import dataclass, field

__all__ = [
    "SCHEMA_VERSION",
    "BenchResult",
    "BenchReport",
    "Regression",
    "compare_reports",
    "host_info",
]

SCHEMA_VERSION = 1


def host_info() -> dict[str, object]:
    """The machine context a report was produced on (informational)."""
    import numpy

    return {
        "cpus": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
    }


@dataclass(frozen=True)
class BenchResult:
    """One benchmark's record: workload shape, measurements, gating."""

    name: str
    params: dict[str, object] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    gated: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        missing = [m for m in self.gated if m not in self.metrics]
        if missing:
            raise ValueError(
                f"benchmark {self.name!r} gates unknown metrics {missing}"
            )

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "params": dict(self.params),
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
            "gated": list(self.gated),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "BenchResult":
        raw_metrics = dict(payload.get("metrics", {}))  # type: ignore[arg-type]
        return cls(
            name=str(payload["name"]),
            params=dict(payload.get("params", {})),  # type: ignore[arg-type]
            metrics={str(k): float(v) for k, v in raw_metrics.items()},
            gated=tuple(payload.get("gated", ())),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class BenchReport:
    """A full suite run: every benchmark's result plus provenance."""

    suite: str
    smoke: bool
    results: tuple[BenchResult, ...]
    host: dict[str, object] = field(default_factory=host_info)
    schema_version: int = SCHEMA_VERSION
    #: Synthetic slowdown factor applied to gated metrics (1.0 = none).
    #: Recorded so a self-test run can never pass as a real measurement.
    injected_slowdown: float = 1.0

    def result(self, name: str) -> BenchResult:
        """The named benchmark's result; ``KeyError`` when absent."""
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(
            f"no benchmark named {name!r}; "
            f"available: {[r.name for r in self.results]}"
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "schema_version": self.schema_version,
            "suite": self.suite,
            "smoke": self.smoke,
            "host": dict(self.host),
            "injected_slowdown": self.injected_slowdown,
            "results": [result.to_dict() for result in self.results],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "BenchReport":
        version = int(payload.get("schema_version", 0))  # type: ignore[arg-type]
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"report schema_version {version} != supported {SCHEMA_VERSION}"
            )
        return cls(
            suite=str(payload["suite"]),
            smoke=bool(payload["smoke"]),
            results=tuple(
                BenchResult.from_dict(entry)  # type: ignore[arg-type]
                for entry in payload.get("results", ())  # type: ignore[union-attr]
            ),
            host=dict(payload.get("host", {})),  # type: ignore[arg-type]
            schema_version=version,
            injected_slowdown=float(
                payload.get("injected_slowdown", 1.0)  # type: ignore[arg-type]
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "BenchReport":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class Regression:
    """One gated metric that got worse than the baseline allows."""

    benchmark: str
    metric: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        """current / baseline (∞ for a benchmark missing entirely)."""
        if self.baseline <= 0:
            return float("inf")
        return self.current / self.baseline

    def __str__(self) -> str:
        return (
            f"{self.benchmark}.{self.metric}: {self.current:.4g} vs "
            f"baseline {self.baseline:.4g} ({self.ratio:.2f}x)"
        )


#: Below this many seconds a timing is mostly scheduler/allocator noise;
#: such baselines are padded up to the floor before the threshold test.
DEFAULT_NOISE_FLOOR_SECONDS = 0.05


def compare_reports(
    current: BenchReport,
    baseline: BenchReport,
    threshold: float = 0.25,
    noise_floor: float = DEFAULT_NOISE_FLOOR_SECONDS,
) -> list[Regression]:
    """Gated metrics of ``current`` that regressed past ``threshold``.

    A metric regresses when
    ``current > max(baseline, noise_floor) * (1 + threshold)`` — all
    gated metrics are lower-is-better timings, and padding tiny
    baselines up to ``noise_floor`` keeps millisecond-scale measurements
    from tripping the gate on scheduler jitter.  A benchmark present in
    the baseline but absent from the current run counts as a regression
    of every gated metric it had — silently dropping a benchmark must
    not turn CI green.  The *baseline's* gate list is authoritative, so
    a regression cannot be waved through by un-gating a metric in the
    new code.

    The reports must be comparable: same suite, same smoke flag, and —
    per benchmark — the same workload ``params``.  Any mismatch raises
    ``ValueError`` instead of producing a meaningless diff (e.g. a
    full-mode baseline would otherwise silently neuter a smoke-mode
    gate).
    """
    if current.suite != baseline.suite:
        raise ValueError(
            f"suite mismatch: current {current.suite!r} vs "
            f"baseline {baseline.suite!r}"
        )
    if current.smoke != baseline.smoke:
        raise ValueError(
            f"smoke mismatch: current smoke={current.smoke} vs baseline "
            f"smoke={baseline.smoke}; regenerate the baseline with the "
            "same mode"
        )
    if baseline.injected_slowdown != 1.0:
        raise ValueError(
            f"baseline carries a synthetic {baseline.injected_slowdown:g}x "
            "slowdown (a gate self-test artifact); regenerate it from a "
            "clean run"
        )
    regressions: list[Regression] = []
    for reference in baseline.results:
        try:
            measured = current.result(reference.name)
        except KeyError:
            for metric in reference.gated:
                regressions.append(
                    Regression(
                        benchmark=reference.name,
                        metric=metric,
                        baseline=reference.metrics[metric],
                        current=float("inf"),
                    )
                )
            continue
        if measured.params != reference.params:
            raise ValueError(
                f"workload mismatch for {reference.name!r}: current params "
                f"{measured.params} vs baseline {reference.params}; "
                "regenerate the baseline"
            )
        for metric in reference.gated:
            base_value = reference.metrics[metric]
            value = measured.metrics.get(metric, float("inf"))
            if value > max(base_value, noise_floor) * (1.0 + threshold):
                regressions.append(
                    Regression(
                        benchmark=reference.name,
                        metric=metric,
                        baseline=base_value,
                        current=value,
                    )
                )
    return regressions

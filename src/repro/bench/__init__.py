"""The repo's benchmark harness — stable records, comparable over time.

``repro.bench`` wraps the exploratory scripts under ``benchmarks/`` with
a *stable contract*: every run emits a ``BENCH_<suite>.json`` report
(schema in :mod:`repro.bench.schema`) whose gated metrics can be compared
against a checked-in baseline.  CI runs the suites in ``--smoke`` mode
and fails on regressions above a threshold, which turns the repo's perf
trajectory from anecdotes into a guarded time series.

Usage::

    PYTHONPATH=src python -m repro.bench --suite clustering --smoke
    PYTHONPATH=src python -m repro.bench --suite service --smoke \
        --check benchmarks/baselines/BENCH_service.json
"""

from repro.bench.runner import main, run_suite
from repro.bench.schema import (
    DEFAULT_NOISE_FLOOR_SECONDS,
    SCHEMA_VERSION,
    BenchReport,
    BenchResult,
    Regression,
    compare_reports,
)

__all__ = [
    "DEFAULT_NOISE_FLOOR_SECONDS",
    "SCHEMA_VERSION",
    "BenchReport",
    "BenchResult",
    "Regression",
    "compare_reports",
    "main",
    "run_suite",
]

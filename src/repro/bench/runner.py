"""The benchmark runner CLI — ``python -m repro.bench``.

Runs a suite, writes ``BENCH_<suite>.json`` (and the repo's standard
one-line ``BENCH {json}`` stdout record), and optionally gates against a
checked-in baseline::

    python -m repro.bench --suite clustering --smoke
    python -m repro.bench --suite service --smoke \
        --check benchmarks/baselines/BENCH_service.json --threshold 0.25

Exit status is 0 on success and 1 when any gated metric regressed past
the threshold.  ``--inject-slowdown F`` multiplies every gated timing by
``F`` *after* measurement — a self-test knob: CI's regression gate is
only trustworthy if an injected 2x slowdown demonstrably turns it red.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

from repro.bench.schema import (
    DEFAULT_NOISE_FLOOR_SECONDS,
    BenchReport,
    compare_reports,
)
from repro.bench.suites import SUITES

__all__ = ["main", "run_suite"]


def run_suite(suite: str, smoke: bool = False) -> BenchReport:
    """Run one named suite and return its report."""
    try:
        runner = SUITES[suite]
    except KeyError:
        raise ValueError(
            f"unknown suite {suite!r}; available: {sorted(SUITES)}"
        ) from None
    return BenchReport(suite=suite, smoke=smoke, results=tuple(runner(smoke)))


def _inject_slowdown(report: BenchReport, factor: float) -> BenchReport:
    """Scale every gated timing by ``factor`` (gate self-test only).

    The factor is recorded in the report itself, and the comparer
    refuses baselines carrying one — a self-test artifact accidentally
    committed as a baseline would otherwise loosen the gate silently.
    """
    slowed = tuple(
        replace(
            result,
            metrics={
                name: value * factor if name in result.gated else value
                for name, value in result.metrics.items()
            },
        )
        for result in report.results
    )
    return replace(report, results=slowed, injected_slowdown=factor)


def _print_span_breakdown(tracer) -> None:
    """Aggregate the retained spans by name: count, total, mean.

    The per-stage view of a traced bench run — where did the suite's
    wall-clock actually go?
    """
    totals: dict[str, list[float]] = {}
    for span in tracer.spans():
        totals.setdefault(span.name, []).append(span.duration)
    if not totals:
        print("trace breakdown: no spans recorded")
        return
    print("trace breakdown (by span name):")
    width = max(len(name) for name in totals)
    ranked = sorted(totals.items(), key=lambda kv: -sum(kv[1]))
    for name, durations in ranked:
        total = sum(durations)
        print(
            f"  {name:<{width}}  n={len(durations):<5d} "
            f"total={total * 1000.0:9.1f}ms  "
            f"mean={total / len(durations) * 1000.0:8.2f}ms"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__
    )
    parser.add_argument(
        "--suite",
        choices=sorted(SUITES),
        required=True,
        help="which suite to run",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="trimmed workload for CI (headline shapes preserved)",
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=Path("."),
        help="directory for BENCH_<suite>.json (default: cwd)",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE_JSON",
        help="compare gated metrics against this baseline report",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed relative slowdown before --check fails (default 0.25)",
    )
    parser.add_argument(
        "--noise-floor",
        type=float,
        default=DEFAULT_NOISE_FLOOR_SECONDS,
        metavar="SECONDS",
        help="baselines below this are padded up to it before the "
        "threshold test (default %(default)s)",
    )
    parser.add_argument(
        "--inject-slowdown",
        type=float,
        default=1.0,
        metavar="FACTOR",
        help="multiply gated timings by FACTOR after measuring "
        "(self-test for the regression gate)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="run with tracing enabled and print a per-span-name "
        "breakdown after the suite (measures tracing overhead too)",
    )
    args = parser.parse_args(argv)

    if args.trace:
        from repro.obs.trace import configure_tracing

        tracer = configure_tracing(enabled=True, buffer_size=8192)
    report = run_suite(args.suite, smoke=args.smoke)
    if args.trace:
        _print_span_breakdown(tracer)
    if args.inject_slowdown != 1.0:
        print(
            f"note: injecting a synthetic {args.inject_slowdown:g}x slowdown "
            "into all gated metrics"
        )
        report = _inject_slowdown(report, args.inject_slowdown)

    args.out_dir.mkdir(parents=True, exist_ok=True)
    out_path = args.out_dir / f"BENCH_{args.suite}.json"
    out_path.write_text(report.to_json(), encoding="utf-8")
    print("BENCH " + json.dumps(report.to_dict(), sort_keys=True))
    print(f"wrote {out_path}")

    if args.check is not None:
        baseline = BenchReport.from_json(args.check.read_text(encoding="utf-8"))
        regressions = compare_reports(
            report,
            baseline,
            threshold=args.threshold,
            noise_floor=args.noise_floor,
        )
        if regressions:
            print(
                f"PERF REGRESSION: {len(regressions)} gated metric(s) worse "
                f"than {args.check} by more than "
                f"{args.threshold:.0%}:",
                file=sys.stderr,
            )
            for regression in regressions:
                print(f"  - {regression}", file=sys.stderr)
            return 1
        print(
            f"perf check OK: no gated metric regressed more than "
            f"{args.threshold:.0%} vs {args.check}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())

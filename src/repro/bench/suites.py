"""The benchmark suites behind ``python -m repro.bench``.

Five suites cover the layers the ROADMAP cares about:

* ``clustering`` — the map-building kernels: parallel CLARA vs the
  serial reference (same seed, bit-identical required), shared-distance
  k selection vs the legacy per-k recomputation, the Manhattan kernel's
  time/peak-memory, and the float32 distance opt-in.
* ``mapping`` — the staged map pipeline (:mod:`repro.core.pipeline`):
  cold builds, warm k-override re-entry at the Cluster stage (must skip
  Sample/Preprocess/Distances and run ≥ 5x faster than cold), and the
  approximate-first latency vs a blocking exact count on a large
  store-backed selection.
* ``service`` — wraps ``benchmarks/bench_service_throughput.py`` (cold vs
  warm cache, concurrent throughput) into the stable report schema.
* ``scale`` — wraps ``benchmarks/bench_multiworker_scaling.py``: the
  ``--workers N`` supervisor fleet vs the single-process service on a
  cold multi-table map-build batch.  The timings gate against the
  baseline (multi-worker must never regress single-worker); the
  scaling ratio is recorded ungated — single-core CI runners cap
  process scaling at ~1x, so the >= 2x floor is asserted inside the
  script only on >= 4-CPU hosts.
* ``guide`` — wraps ``benchmarks/bench_guide_prefetch.py``: suggestion
  ranking latency, and a recorded navigation trace replayed with and
  without the speculative prefetcher (warm-hit-rate lift, foreground
  p50 non-regression).
* ``chaos`` — wraps ``benchmarks/bench_chaos.py``: the ``--workers 2``
  fleet under a deterministic fault cocktail (disk IO errors/latency,
  torn writes, worker kills) vs the same fleet clean.  The clean wall
  time gates against the baseline; availability, p99 under faults,
  retry counts, and map bit-identity travel as artifacts (the script
  asserts the < 1% error budget, deadline compliance, and structural
  identity itself).
* ``store`` — the out-of-core layer (:mod:`repro.store`): chunked CSV
  ingest throughput, cold/warm pushdown scans, and the persisted
  top-k cascade sample vs a full priority redraw.
* ``graph`` — the dependency-graph engine: the batched fused-code NMI
  kernel vs the pre-PR scalar pair loop on a wide OECD-shaped table,
  warm-vs-cold navigation rebuilds through the code/result caches, and
  the store-backed build vs its in-memory twin (bit-identity asserted).

Every workload is seeded, so reports differ across runs only by wall
time.  The headline ``clara_map_build`` workload stays at the acceptance
shape (n≈20k, k=8) even in ``--smoke`` mode — it is sub-second; smoke
only trims repetition and the secondary workloads.
"""

from __future__ import annotations

import importlib.util
import tempfile
import time
import tracemalloc
from pathlib import Path
from typing import Callable, Iterable

import numpy as np

from repro.bench.schema import BenchResult
from repro.cluster.clara import clara
from repro.cluster.distance import (
    euclidean_distances,
    manhattan_distances,
    pairwise_distances,
)
from repro.cluster.pam import pam
from repro.cluster.silhouette import SharedSilhouette, monte_carlo_silhouette

__all__ = [
    "SUITES",
    "run_chaos",
    "run_clustering",
    "run_graph",
    "run_guide",
    "run_mapping",
    "run_scale",
    "run_service",
    "run_store",
]


def _blobs(n: int, d: int, k: int, seed: int) -> np.ndarray:
    """Well-separated Gaussian blobs — the standard workload matrix."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-10.0, 10.0, size=(k, d))
    assignment = rng.integers(0, k, size=n)
    return centers[assignment] + rng.normal(0.0, 0.8, size=(n, d))


def _best_of(fn: Callable[[], object], rounds: int) -> tuple[float, object]:
    """Minimum wall time over ``rounds`` runs, plus the last result."""
    best = float("inf")
    result: object = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _clusterings_equal(a, b) -> bool:
    return (
        np.array_equal(a.labels, b.labels)
        and np.array_equal(a.medoids, b.medoids)
        and a.cost == b.cost
        and a.n_iterations == b.n_iterations
    )


# ----------------------------------------------------------------------
# clustering suite
# ----------------------------------------------------------------------


def _bench_clara_map_build(smoke: bool) -> BenchResult:
    """Parallel vs serial CLARA at the acceptance shape (n≈20k, k=8)."""
    n, d, k = 20_000, 8, 8
    n_draws, sample_size = 5, 400
    rounds = 2 if smoke else 4
    points = _blobs(n, d, k, seed=8)

    def run(n_jobs: int):
        return clara(
            points,
            k,
            n_draws=n_draws,
            sample_size=sample_size,
            rng=np.random.default_rng(123),
            n_jobs=n_jobs,
        )

    serial_seconds, serial = _best_of(lambda: run(1), rounds)
    parallel_seconds, parallel = _best_of(lambda: run(0), rounds)
    identical = _clusterings_equal(serial, parallel)
    if not identical:
        raise AssertionError(
            "parallel CLARA diverged from the serial reference at the same "
            "seed — the determinism contract is broken"
        )
    return BenchResult(
        name="clara_map_build",
        params={
            "n_rows": n,
            "n_features": d,
            "k": k,
            "n_draws": n_draws,
            "sample_size": sample_size,
            "rounds": rounds,
        },
        metrics={
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "parallel_speedup": serial_seconds / parallel_seconds,
            "identical_results": float(identical),
            "cost": serial.cost,
        },
        gated=("serial_seconds", "parallel_seconds"),
    )


def _bench_kselect_shared(smoke: bool) -> BenchResult:
    """Shared-distance k sweep vs the legacy per-k recomputation."""
    n, d, true_k = (600, 6, 4) if smoke else (1_000, 6, 4)
    k_values = (2, 3, 4, 5, 6)
    rounds = 2 if smoke else 3
    points = _blobs(n, d, true_k, seed=21)

    def legacy() -> list[tuple[int, float]]:
        # The pre-PR path: every candidate k rebuilt the full pairwise
        # matrix for PAM and re-drew fresh Monte-Carlo subsamples.
        scored = []
        for k in k_values:
            matrix = pairwise_distances(points)
            clustering = pam(matrix, k)
            score = monte_carlo_silhouette(
                points,
                clustering.labels,
                n_subsamples=8,
                subsample_size=200,
                rng=np.random.default_rng(1000 + k),
            )
            scored.append((k, score))
        return scored

    def shared() -> list[tuple[int, float]]:
        matrix = pairwise_distances(points)
        scorer = SharedSilhouette(points, distances=matrix)
        scored = []
        for k in k_values:
            clustering = pam(matrix, k, validate=False)
            scored.append((k, scorer.score(clustering.labels)))
        return scored

    legacy_seconds, legacy_scores = _best_of(legacy, rounds)
    shared_seconds, shared_scores = _best_of(shared, rounds)

    def pick(scored: list[tuple[int, float]]) -> int:
        return max(scored, key=lambda c: (c[1], -c[0]))[0]
    return BenchResult(
        name="kselect_shared",
        params={
            "n_rows": n,
            "n_features": d,
            "k_values": list(k_values),
            "rounds": rounds,
        },
        metrics={
            "legacy_seconds": legacy_seconds,
            "shared_seconds": shared_seconds,
            "shared_speedup": legacy_seconds / shared_seconds,
            "same_k": float(pick(legacy_scores) == pick(shared_scores)),
        },
        gated=("shared_seconds",),
    )


def _bench_manhattan(smoke: bool) -> BenchResult:
    """The L1 kernel after the in-place scratch-buffer rewrite."""
    n, d = (800, 16) if smoke else (1_500, 24)
    rounds = 2 if smoke else 3
    points = _blobs(n, d, 4, seed=33)

    seconds, _ = _best_of(lambda: manhattan_distances(points), rounds)
    tracemalloc.start()
    manhattan_distances(points)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return BenchResult(
        name="manhattan_distances",
        params={"n_rows": n, "n_features": d, "rounds": rounds},
        metrics={
            "seconds": seconds,
            "peak_mb": peak / 1e6,
            "matrix_mb": n * n * 8 / 1e6,
        },
        gated=("seconds",),
    )


def _bench_float32(smoke: bool) -> BenchResult:
    """float32 opt-in: throughput vs float64 and the accuracy bound."""
    n, d = (1_500, 16) if smoke else (3_000, 16)
    rounds = 2 if smoke else 3
    points = _blobs(n, d, 4, seed=55)

    f64_seconds, f64 = _best_of(lambda: euclidean_distances(points), rounds)
    f32_seconds, f32 = _best_of(
        lambda: euclidean_distances(points, dtype="float32"), rounds
    )
    error = float(np.abs(np.asarray(f32, dtype=np.float64) - f64).max())
    scale = float(np.asarray(f64).max())
    return BenchResult(
        name="float32_euclidean",
        params={"n_rows": n, "n_features": d, "rounds": rounds},
        metrics={
            "float64_seconds": f64_seconds,
            "float32_seconds": f32_seconds,
            "float32_speedup": f64_seconds / f32_seconds,
            "max_abs_error": error,
            "max_rel_error": error / scale if scale else 0.0,
        },
        gated=("float32_seconds",),
    )


def run_clustering(smoke: bool) -> list[BenchResult]:
    """The clustering suite — the map-building hot path, kernel by kernel."""
    return [
        _bench_clara_map_build(smoke),
        _bench_kselect_shared(smoke),
        _bench_manhattan(smoke),
        _bench_float32(smoke),
    ]


# ----------------------------------------------------------------------
# mapping suite
# ----------------------------------------------------------------------


def _mapping_config():
    """The mapping workload's knobs: PAM scale, a wide k sweep.

    Shared distance matrix + exact silhouette scoring make the cold
    k sweep the dominant cost, which is exactly what a warm k-override
    re-entry skips.
    """
    from repro.core.config import BlaeuConfig
    from repro.tree.cart import CartParams

    return BlaeuConfig(
        map_k_values=(2, 3, 4, 5, 6, 7, 8, 9, 10),
        map_sample_size=1200,
        clara_threshold=1300,
        silhouette_exact_threshold=1300,
        tree_params=CartParams(max_numeric_thresholds=16),
        seed=9,
    )


def _bench_mapping_warm_k_override(smoke: bool) -> BenchResult:
    """Cold pipeline build vs a warm k-override re-entry.

    The warm build must hit the cached Sample/Preprocess/Distances
    artifacts (asserted via the builder's stage counters — a re-run of
    any of them is a broken-reuse bug, not a slowdown) and come in at
    least 5x under the cold build.
    """
    from repro.core.pipeline import MapBuilder
    from repro.datasets.synthetic import mixed_blobs
    from repro.service.cache import LRUCache

    n_rows = 20_000 if smoke else 30_000
    columns = ("x0", "x1", "x2")
    config = _mapping_config()
    table = mixed_blobs(n_rows=n_rows, k=4, seed=13).table

    builder = MapBuilder(result_cache=LRUCache(max_size=64))
    started = time.perf_counter()
    cold = builder.build(table, columns, config=config)
    cold_seconds = time.perf_counter() - started

    before = builder.stats()
    started = time.perf_counter()
    warm = builder.build(table, columns, config=config, k=4)
    warm_seconds = time.perf_counter() - started
    after = builder.stats()

    for stage in ("sample", "preprocess", "distances"):
        if (
            after["stage_hits"][stage] != before["stage_hits"][stage] + 1
            or after["stage_misses"][stage] != before["stage_misses"][stage]
        ):
            raise AssertionError(
                f"warm k-override re-ran the {stage} stage — the "
                "pipeline-reuse contract is broken"
            )
    if warm.k != 4 or cold.n_rows != n_rows:
        raise AssertionError("mapping bench produced the wrong map shape")
    speedup = cold_seconds / warm_seconds
    if speedup < 5.0:
        raise AssertionError(
            f"warm k-override rebuild is only {speedup:.1f}x faster than "
            "cold; the acceptance floor is 5x"
        )
    return BenchResult(
        name="mapping_warm_k_override",
        params={
            "n_rows": n_rows,
            "sample_size": config.map_sample_size,
            "k_values": list(config.map_k_values),
            "override_k": 4,
        },
        metrics={
            "cold_seconds": cold_seconds,
            "warm_k_seconds": warm_seconds,
            "warm_speedup": speedup,
            "selected_k": float(cold.k),
        },
        gated=("cold_seconds", "warm_k_seconds"),
    )


def _bench_mapping_approximate_first(smoke: bool) -> BenchResult:
    """Approximate-first latency vs the blocking exact count, on a store.

    The two-phase claim on a million-row store-backed selection: the
    map answers from the sample (its Count phase routes ~1k rows) and
    the exact chunked routing pass over all rows is deferred off the
    response path.  Asserted on the phase costs themselves — the
    deferred pass must dwarf the approximate one — because whole-build
    wall clocks are dominated by clustering and would only compare
    noise.  The response-ordering half of the claim (the approximate
    payload is served while the exact pass still runs) is asserted
    end-to-end over HTTP in ``tests/service/test_refinement.py``.
    """
    from repro.core.config import BlaeuConfig
    from repro.core.pipeline import MapBuilder
    from repro.datasets.synthetic import mixed_blobs
    from repro.service.cache import LRUCache
    from repro.store import StoredTable, write_store
    from repro.tree.cart import CartParams

    n_rows = 300_000 if smoke else 1_000_000
    columns = ("x0", "x1", "x2", "cat0")
    config = BlaeuConfig(
        map_k_values=(2, 3, 4, 5, 6),
        map_sample_size=1000,
        clara_threshold=1100,
        silhouette_exact_threshold=1100,
        tree_params=CartParams(max_numeric_thresholds=16),
        seed=9,
        count_mode="approximate",
    )
    table = mixed_blobs(n_rows=n_rows, k=4, seed=17).table
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "store"
        write_store(table, root, chunk_rows=32_768)
        stored = StoredTable(root)

        builder = MapBuilder(result_cache=LRUCache(max_size=64))
        started = time.perf_counter()
        approx = builder.build(stored, columns, config=config)
        approx_seconds = time.perf_counter() - started
        approx_count_seconds = builder.stats()["last_stage_seconds"]["count"]

        started = time.perf_counter()
        exact = builder.refine(stored, columns, config=config)
        refine_seconds = time.perf_counter() - started

        started = time.perf_counter()
        blocking = MapBuilder(result_cache=LRUCache(max_size=64)).build(
            stored, columns, config=config, count_mode="exact"
        )
        blocking_seconds = time.perf_counter() - started

    if approx.counts_status != "approximate" or exact.counts_status != "exact":
        raise AssertionError("two-phase counting produced the wrong statuses")
    if [r.n_rows for r in exact.regions()] != [
        r.n_rows for r in blocking.regions()
    ]:
        raise AssertionError(
            "refined counts diverged from the blocking exact build"
        )
    if refine_seconds <= approx_count_seconds * 5:
        raise AssertionError(
            "the deferred exact routing pass is not measurably heavier "
            "than the sample extrapolation — the two-phase split buys "
            "nothing at this scale"
        )
    return BenchResult(
        name="mapping_approximate_first",
        params={
            "n_rows": n_rows,
            "sample_size": config.map_sample_size,
            "chunk_rows": 32_768,
        },
        metrics={
            "approx_seconds": approx_seconds,
            "approx_count_seconds": approx_count_seconds,
            "refine_seconds": refine_seconds,
            "blocking_seconds": blocking_seconds,
            "deferred_pass_ratio": refine_seconds
            / max(approx_count_seconds, 1e-9),
        },
        gated=("approx_seconds", "refine_seconds"),
    )


def run_mapping(smoke: bool) -> list[BenchResult]:
    """The staged-pipeline suite: navigation reuse and two-phase counts."""
    return [
        _bench_mapping_warm_k_override(smoke),
        _bench_mapping_approximate_first(smoke),
    ]


# ----------------------------------------------------------------------
# service suite
# ----------------------------------------------------------------------


def _benchmarks_dir() -> Path:
    """Locate the repo's ``benchmarks/`` scripts directory."""
    candidates: Iterable[Path] = (
        Path.cwd() / "benchmarks",
        Path(__file__).resolve().parents[3] / "benchmarks",
    )
    for candidate in candidates:
        if (candidate / "bench_service_throughput.py").is_file():
            return candidate
    raise FileNotFoundError(
        "cannot locate benchmarks/bench_service_throughput.py; run from the "
        "repository root or keep the source layout intact"
    )


def run_service(smoke: bool) -> list[BenchResult]:
    """The serving-layer suite: one result wrapping the throughput script."""
    script = _benchmarks_dir() / "bench_service_throughput.py"
    spec = importlib.util.spec_from_file_location(
        "repro_bench_service_throughput", script
    )
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)

    record = module.run_benchmark(smoke=smoke)
    return [
        BenchResult(
            name="service_throughput",
            params={
                "n_rows": record["n_rows"],
                "n_clients": record["n_clients"],
            },
            metrics={
                "cold_open_seconds": float(record["cold_open_seconds"]),
                "warm_open_seconds_median": float(
                    record["warm_open_seconds_median"]
                ),
                "warm_cold_speedup": float(record["warm_cold_speedup"]),
                "concurrent_seconds": float(record["concurrent_seconds"]),
                "throughput_rps": float(record["throughput_rps"]),
                "healthz_probe_max_seconds": float(
                    record["healthz_probe_max_seconds"] or 0.0
                ),
                "cache_hit_rate": float(record["cache_hit_rate"]),
            },
            gated=("cold_open_seconds", "concurrent_seconds"),
        )
    ]


# ----------------------------------------------------------------------
# guide suite
# ----------------------------------------------------------------------


def run_guide(smoke: bool) -> list[BenchResult]:
    """The guided-exploration suite: ranking latency + prefetch lift.

    Wraps ``benchmarks/bench_guide_prefetch.py``: the recommender's
    ranking time gates against the baseline; the hit-rate lift and
    foreground p50 ratio travel as ungated artifacts (the script itself
    asserts prefetch-on >= prefetch-off and the <= 1.10 foreground
    ratio).
    """
    script = _benchmarks_dir() / "bench_guide_prefetch.py"
    spec = importlib.util.spec_from_file_location(
        "repro_bench_guide_prefetch", script
    )
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)

    record = module.run_benchmark(smoke=smoke)
    return [
        BenchResult(
            name="guide_prefetch",
            params={
                "n_rows": record["n_rows"],
                "n_steps": record["n_steps"],
                "top_n": record["top_n"],
            },
            metrics={
                "suggest_seconds": float(record["suggest_seconds"]),
                "replay_off_p50_seconds": float(
                    record["replay_off_p50_seconds"]
                ),
                "replay_on_p50_seconds": float(
                    record["replay_on_p50_seconds"]
                ),
                "hit_rate_off": float(record["hit_rate_off"]),
                "hit_rate_on": float(record["hit_rate_on"]),
                "hit_rate_lift": float(record["hit_rate_lift"]),
                "foreground_p50_ratio": float(
                    record["foreground_p50_ratio"]
                ),
            },
            gated=("suggest_seconds",),
        )
    ]


# ----------------------------------------------------------------------
# scale suite
# ----------------------------------------------------------------------


def run_scale(smoke: bool) -> list[BenchResult]:
    """The multi-worker suite: supervisor fleet vs single process.

    Both timings gate against the baseline — in particular the
    ``--workers 4`` batch must not regress the single-worker one.  The
    scaling ratio and bit-identity travel as ungated artifacts (the
    script itself asserts the >= 2x floor on >= 4-CPU hosts and the
    bit-identity everywhere).
    """
    script = _benchmarks_dir() / "bench_multiworker_scaling.py"
    spec = importlib.util.spec_from_file_location(
        "repro_bench_multiworker_scaling", script
    )
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)

    record = module.run_benchmark(smoke=smoke, n_workers=4)
    return [
        BenchResult(
            name="multiworker_scaling",
            params={
                "n_workers": record["n_workers"],
                "n_tables": record["n_tables"],
                "n_rows": record["n_rows"],
                "n_cold_builds": record["n_cold_builds"],
                "host_cpus": record["host_cpus"],
            },
            metrics={
                "single_worker_seconds": float(
                    record["single_worker_seconds"]
                ),
                "multi_worker_seconds": float(record["multi_worker_seconds"]),
                "single_worker_rps": float(record["single_worker_rps"]),
                "multi_worker_rps": float(record["multi_worker_rps"]),
                "scaling_ratio": float(record["scaling_ratio"]),
                "maps_identical": float(record["maps_identical"]),
            },
            gated=("single_worker_seconds", "multi_worker_seconds"),
        )
    ]


# ----------------------------------------------------------------------
# chaos suite
# ----------------------------------------------------------------------


def run_chaos(smoke: bool) -> list[BenchResult]:
    """The resilience suite: the worker fleet under injected faults.

    Only the *clean* replay's wall time gates against the baseline —
    the chaos replay's timing is fault-schedule noise by construction.
    Availability, deadline compliance, retry/fault counters, and map
    bit-identity are asserted inside the script and travel here as
    ungated artifacts.
    """
    script = _benchmarks_dir() / "bench_chaos.py"
    spec = importlib.util.spec_from_file_location("repro_bench_chaos", script)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)

    record = module.run_benchmark(smoke=smoke)
    return [
        BenchResult(
            name="chaos_resilience",
            params={
                "n_tables": record["n_tables"],
                "n_rows": record["n_rows"],
                "rounds": record["rounds"],
                "n_requests": record["n_requests"],
                "deadline_seconds": record["deadline_seconds"],
            },
            metrics={
                "clean_wall_seconds": float(record["clean_wall_seconds"]),
                "chaos_wall_seconds": float(record["chaos_wall_seconds"]),
                "clean_p99_seconds": float(record["clean_p99_seconds"]),
                "chaos_p99_seconds": float(record["chaos_p99_seconds"]),
                "availability": float(record["availability"]),
                "chaos_error_rate": float(record["chaos_error_rate"]),
                "chaos_degraded": float(record["chaos_degraded"]),
                "deadline_violations": float(
                    record["chaos_deadline_violations"]
                ),
                "proxy_retries": float(record["proxy_retries"]),
                "faults_injected": float(record["faults_injected"]),
                "maps_identical": float(record["maps_identical"]),
            },
            gated=("clean_wall_seconds",),
        )
    ]


# ----------------------------------------------------------------------
# store suite
# ----------------------------------------------------------------------


def _write_synthetic_csv(path: Path, n: int, seed: int) -> None:
    """A clusterable CSV: 3 numeric blob columns + one categorical."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 4, size=n)
    x = labels * 6.0 + rng.normal(0.0, 0.7, n)
    y = labels * -5.0 + rng.normal(0.0, 0.7, n)
    z = rng.normal(0.0, 1.0, n)
    cats = np.array(["north", "east", "south", "west"])[labels]
    with path.open("w", encoding="utf-8") as handle:
        handle.write("x,y,z,region\n")
        step = 100_000
        for start in range(0, n, step):
            stop = min(start + step, n)
            # tolist() yields Python floats whose repr round-trips
            # exactly (np scalars would render as "np.float64(...)").
            rows = zip(
                x[start:stop].tolist(),
                y[start:stop].tolist(),
                z[start:stop].tolist(),
                cats[start:stop].tolist(),
            )
            handle.write(
                "".join(f"{a!r},{b!r},{c!r},{t}\n" for a, b, c, t in rows)
            )


def _bench_store_ingest(smoke: bool) -> BenchResult:
    """One-pass chunked CSV → store conversion throughput."""
    from repro.store import ingest_csv

    n = 60_000 if smoke else 250_000
    chunk_rows = 16_384
    rounds = 1 if smoke else 2
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "data.csv"
        _write_synthetic_csv(csv_path, n, seed=11)

        best = float("inf")
        stored = None
        for round_index in range(rounds):
            out = Path(tmp) / f"store{round_index}"
            started = time.perf_counter()
            stored = ingest_csv(csv_path, out, chunk_rows=chunk_rows)
            best = min(best, time.perf_counter() - started)
        assert stored is not None and stored.n_rows == n
    return BenchResult(
        name="store_ingest",
        params={"n_rows": n, "chunk_rows": chunk_rows, "rounds": rounds},
        metrics={
            "ingest_seconds": best,
            "rows_per_second": n / best,
        },
        gated=("ingest_seconds",),
    )


def _bench_store_scan(smoke: bool) -> BenchResult:
    """Chunked predicate scan over a store: first touch vs repeat."""
    from repro.store import StoredTable, write_store
    from repro.table.column import NumericColumn
    from repro.table.predicates import Comparison
    from repro.table.table import Table

    n = 150_000 if smoke else 600_000
    chunk_rows = 32_768
    rounds = 2 if smoke else 3
    rng = np.random.default_rng(17)
    table = Table(
        "scan",
        [NumericColumn(f"c{i}", rng.normal(0.0, 1.0, n)) for i in range(4)],
    )
    predicate = Comparison("c0", ">", 0.0)
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "store"
        write_store(table, root, chunk_rows=chunk_rows)

        started = time.perf_counter()
        stored = StoredTable(root)
        cold_matches = int(stored.scan_mask(predicate).sum())
        cold_seconds = time.perf_counter() - started

        warm_seconds, _ = _best_of(
            lambda: stored.scan_mask(predicate), rounds
        )
        assert cold_matches == int(predicate.mask(table).sum())
    return BenchResult(
        name="store_scan",
        params={"n_rows": n, "chunk_rows": chunk_rows, "rounds": rounds},
        metrics={
            "cold_scan_seconds": cold_seconds,
            "warm_scan_seconds": warm_seconds,
            "rows_per_second": n / warm_seconds,
        },
        # Cold includes filesystem cache luck; only the repeatable warm
        # scan gates the regression check.
        gated=("warm_scan_seconds",),
    )


def _bench_store_cascade(smoke: bool) -> BenchResult:
    """Persisted top-k cascade sample vs redrawing the priorities."""
    from repro.store import StoredTable, write_store
    from repro.table.column import NumericColumn
    from repro.table.sampling import SampleCascade
    from repro.table.table import Table

    n = 200_000 if smoke else 1_000_000
    k = 2_000
    chunk_rows = 32_768
    rounds = 3
    rng = np.random.default_rng(23)
    table = Table("cascade", [NumericColumn("v", rng.normal(0.0, 1.0, n))])
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "store"
        write_store(table, root, chunk_rows=chunk_rows)
        stored = StoredTable(root)

        topk_seconds, topk = _best_of(lambda: stored.top_k_sample(k), rounds)

        def redraw() -> np.ndarray:
            # What a store-less engine pays per registration: draw the
            # whole priority permutation, then take the bottom-k.
            cascade = SampleCascade(n, np.random.default_rng(0))
            return cascade.sample(k)

        redraw_seconds, _ = _best_of(redraw, rounds)
        assert np.array_equal(topk, stored.cascade().sample(k))
    return BenchResult(
        name="store_cascade_sample",
        params={"n_rows": n, "k": k, "chunk_rows": chunk_rows, "rounds": rounds},
        metrics={
            "topk_seconds": topk_seconds,
            "redraw_seconds": redraw_seconds,
            "topk_speedup": redraw_seconds / topk_seconds,
        },
        gated=("topk_seconds",),
    )


def run_store(smoke: bool) -> list[BenchResult]:
    """The out-of-core suite: ingest, pushdown scans, cascade sampling."""
    return [
        _bench_store_ingest(smoke),
        _bench_store_scan(smoke),
        _bench_store_cascade(smoke),
    ]


# ----------------------------------------------------------------------
# partition suite
# ----------------------------------------------------------------------


def run_partition(smoke: bool) -> list[BenchResult]:
    """The partitioned-store suite: zone-map pruning and parallel scans.

    Wraps ``benchmarks/bench_partition_scan.py``.  The pruned scan and
    the serial broad scan gate against the baseline; the parallel scan's
    timing is CPU-count noise on small hosts and travels ungated, as do
    the prune fraction and bit-identity flags (the script itself asserts
    the >= 50% prune floor, bit-identity everywhere, and the >= 2x
    ``scan_jobs=4`` floor on >= 4-CPU hosts).
    """
    script = _benchmarks_dir() / "bench_partition_scan.py"
    spec = importlib.util.spec_from_file_location(
        "repro_bench_partition_scan", script
    )
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)

    record = module.run_benchmark(smoke=smoke)
    return [
        BenchResult(
            name="partition_scan",
            params={
                "n_rows": record["n_rows"],
                "n_partitions": record["n_partitions"],
                "chunk_rows": record["chunk_rows"],
                "appended_rows": record["appended_rows"],
                "host_cpus": record["host_cpus"],
            },
            metrics={
                "build_seconds": float(record["build_seconds"]),
                "pruned_scan_seconds": float(record["pruned_scan_seconds"]),
                "unpruned_scan_seconds": float(
                    record["unpruned_scan_seconds"]
                ),
                "prune_fraction": float(record["prune_fraction"]),
                "serial_scan_seconds": float(record["serial_scan_seconds"]),
                "parallel_scan_seconds": float(
                    record["parallel_scan_seconds"]
                ),
                "parallel_speedup": float(record["parallel_speedup"]),
                "append_seconds": float(record["append_seconds"]),
                "pruning_identical": float(record["pruning_identical"]),
                "parallel_identical": float(record["parallel_identical"]),
            },
            gated=("pruned_scan_seconds", "serial_scan_seconds"),
        )
    ]


# ----------------------------------------------------------------------
# graph suite
# ----------------------------------------------------------------------


def _wide_mixed_table(n_rows: int, n_columns: int, seed: int):
    """An OECD-shaped workload: wide, correlated groups, missing cells.

    Every third column carries ~10% missing values and every twelfth is
    categorical, so the kernel's missing-aware and mixed-type paths are
    both on the clock.
    """
    from repro.table.column import CategoricalColumn, NumericColumn
    from repro.table.table import Table

    rng = np.random.default_rng(seed)
    base = rng.normal(0.0, 1.0, (n_rows, 8))
    columns = []
    for i in range(n_columns):
        if i % 12 == 11:
            labels = rng.choice(["low", "mid", "high", "top"], n_rows)
            columns.append(
                CategoricalColumn.from_labels(f"c{i}", list(labels))
            )
            continue
        values = base[:, i % 8] * rng.uniform(-2.0, 2.0) + rng.normal(
            0.0, 1.0, n_rows
        )
        if i % 3 == 0:
            values[rng.random(n_rows) < 0.1] = np.nan
        columns.append(NumericColumn(f"c{i}", values))
    return Table("wide", columns)


def _bench_graph_pairwise(smoke: bool) -> BenchResult:
    """Batched fused-code kernel vs the pre-PR scalar pair loop.

    The acceptance shape (300 columns × 10k rows, 1000-row dependency
    sample) is kept even in smoke mode — the batched build is
    sub-second; smoke only trims the scalar-loop reference's repetition.
    """
    from repro.graph.dependency import build_dependency_graph
    from repro.stats.mutual_info import pairwise_dependencies

    n_rows, n_columns, sample = 10_000, 300, 1_000
    rounds = 1 if smoke else 2
    table = _wide_mixed_table(n_rows, n_columns, seed=41)

    def legacy():
        # The pre-PR path: sample, then the O(m²) scalar pair loop.
        sampled = table.sample(sample, rng=np.random.default_rng(7))
        return pairwise_dependencies(sampled)

    def batched():
        return build_dependency_graph(table, sample=sample, seed=7)

    legacy_seconds, _ = _best_of(legacy, rounds)
    batched_seconds, graph = _best_of(batched, rounds)
    if graph is None or graph.n_columns != n_columns:
        raise AssertionError("batched graph build returned the wrong shape")
    return BenchResult(
        name="graph_pairwise_build",
        params={
            "n_rows": n_rows,
            "n_columns": n_columns,
            "sample": sample,
            "rounds": rounds,
        },
        metrics={
            "scalar_seconds": legacy_seconds,
            "batched_seconds": batched_seconds,
            "batched_speedup": legacy_seconds / batched_seconds,
            "n_pairs": n_columns * (n_columns - 1) / 2,
        },
        gated=("batched_seconds",),
    )


def _bench_graph_navigation(smoke: bool) -> BenchResult:
    """Warm navigation rebuilds vs a cold engine.

    Cold: empty caches — discretize everything, run the kernel.
    Recode: a different selection of the same table — codes come from
    the cache, only the kernel runs.  Warm: the same action path again —
    the graph memo answers without touching the kernel at all.
    """
    from repro.graph.codes import CodeCache
    from repro.graph.dependency import GraphBuilder
    from repro.service.cache import LRUCache

    n_rows, n_columns = (6_000, 120) if smoke else (10_000, 200)
    table = _wide_mixed_table(n_rows, n_columns, seed=43)
    rng = np.random.default_rng(11)
    zoom_a = np.sort(rng.choice(n_rows, n_rows // 3, replace=False))
    zoom_b = np.sort(rng.choice(n_rows, n_rows // 3, replace=False))

    started = time.perf_counter()
    builder = GraphBuilder(
        result_cache=LRUCache(max_size=64), code_cache=CodeCache()
    )
    cold = builder.build(table, row_indices=zoom_a, sample=1_000)
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    builder.build(table, row_indices=zoom_b, sample=1_000)
    recode_seconds = time.perf_counter() - started

    started = time.perf_counter()
    warm = builder.build(table, row_indices=zoom_a, sample=1_000)
    warm_seconds = time.perf_counter() - started
    if warm is not cold or builder.stats()["graph_cache_hits"] != 1:
        raise AssertionError(
            "graph memo missed on an identical action path — the "
            "navigation-reuse contract is broken"
        )
    return BenchResult(
        name="graph_navigation_rebuild",
        params={"n_rows": n_rows, "n_columns": n_columns, "sample": 1_000},
        metrics={
            "cold_seconds": cold_seconds,
            "recode_seconds": recode_seconds,
            "warm_seconds": warm_seconds,
            "warm_speedup": cold_seconds / warm_seconds,
            "recode_speedup": cold_seconds / recode_seconds,
        },
        gated=("cold_seconds", "recode_seconds"),
    )


def _bench_graph_store(smoke: bool) -> BenchResult:
    """Store-backed graph build vs the in-memory twin (bit-identical)."""
    from repro.graph.dependency import build_dependency_graph
    from repro.store import StoredTable, write_store

    n_rows, n_columns = (60_000, 40) if smoke else (250_000, 40)
    rounds = 2
    table = _wide_mixed_table(n_rows, n_columns, seed=47)
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "store"
        write_store(table, root, chunk_rows=16_384)
        stored = StoredTable(root)

        store_seconds, from_store = _best_of(
            lambda: build_dependency_graph(stored, sample=1_000), rounds
        )
        memory_seconds, from_memory = _best_of(
            lambda: build_dependency_graph(table, sample=1_000), rounds
        )
    identical = np.array_equal(from_store.weights, from_memory.weights)
    if not identical:
        raise AssertionError(
            "store-backed dependency graph diverged from the in-memory "
            "twin at the same seed — the residency contract is broken"
        )
    return BenchResult(
        name="graph_store_build",
        params={
            "n_rows": n_rows,
            "n_columns": n_columns,
            "sample": 1_000,
            "rounds": rounds,
        },
        metrics={
            "store_seconds": store_seconds,
            "memory_seconds": memory_seconds,
            "store_overhead": store_seconds / memory_seconds,
            "identical_results": float(identical),
        },
        gated=("store_seconds",),
    )


def run_graph(smoke: bool) -> list[BenchResult]:
    """The dependency-graph suite: kernel, navigation reuse, residency."""
    return [
        _bench_graph_pairwise(smoke),
        _bench_graph_navigation(smoke),
        _bench_graph_store(smoke),
    ]


#: suite name → runner.  ``run_suite`` and the CLI dispatch through this.
SUITES: dict[str, Callable[[bool], list[BenchResult]]] = {
    "chaos": run_chaos,
    "clustering": run_clustering,
    "graph": run_graph,
    "guide": run_guide,
    "mapping": run_mapping,
    "partition": run_partition,
    "scale": run_scale,
    "service": run_service,
    "store": run_store,
}

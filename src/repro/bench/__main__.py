"""``python -m repro.bench`` — see :mod:`repro.bench.runner`."""

import sys

from repro.bench.runner import main

if __name__ == "__main__":
    sys.exit(main())

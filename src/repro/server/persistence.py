"""Session persistence: save and replay explorations.

A demo session is a sequence of actions; persisting the *actions* (not
the maps) keeps files tiny and replays deterministically on the same
engine seed.  ``save_session`` serializes an explorer's history to JSON;
``replay_session`` reconstructs an equivalent explorer by re-running the
actions through the public API — so a saved exploration survives process
restarts, and a session can be handed to a colleague as a file.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.core.engine import Blaeu
from repro.core.navigation import Explorer

__all__ = ["save_session", "replay_session", "session_to_dict"]

_FORMAT = "blaeu.session/1"


def session_to_dict(table_name: str, explorer: Explorer) -> dict[str, object]:
    """The replayable description of an exploration."""
    steps: list[dict[str, object]] = []
    for state in explorer.states():
        action = state.action
        if action.startswith("open theme "):
            steps.append({"do": "open_theme", "theme": _quoted(action)})
        elif action.startswith("open columns "):
            steps.append({"do": "open_columns", "columns": list(state.columns)})
        elif action.startswith("zoom into "):
            region = action.split(" ", 2)[2].split(" ", 1)[0]
            steps.append({"do": "zoom", "region": region})
        elif action.startswith("project onto theme "):
            steps.append({"do": "project", "theme": _quoted(action)})
        elif action.startswith("project onto columns "):
            steps.append(
                {"do": "project_columns", "columns": list(state.columns)}
            )
        else:  # pragma: no cover - exhaustive over Explorer's actions
            raise ValueError(f"unknown action in history: {action!r}")
    return {
        "format": _FORMAT,
        "table": table_name,
        "seed": explorer.config.seed,
        "steps": steps,
    }


def save_session(
    path: str | Path, table_name: str, explorer: Explorer
) -> None:
    """Write the exploration to ``path`` as JSON, atomically.

    The payload goes to a temporary file in the destination directory
    first and is moved into place with :func:`os.replace`, so a crash
    mid-write leaves either the old file or the new one — never a
    truncated hybrid.
    """
    payload = session_to_dict(table_name, explorer)
    text = json.dumps(payload, indent=2, sort_keys=True)
    path = Path(path)
    descriptor, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:  # pragma: no cover - already renamed or gone
            pass
        raise


def replay_session(path: str | Path, engine: Blaeu) -> Explorer:
    """Reconstruct an explorer by replaying a saved session.

    The engine must already hold the session's table; with the same
    engine seed the replayed maps are identical to the saved run's.

    Caveat: the replaying engine must match the saving engine's map
    *caching* mode as well.  A cache-enabled engine seeds each build
    from its cache key (so results are independent of cache warmth),
    while a cache-free engine draws from the session RNG stream —
    replaying a file across the two modes can produce maps whose
    region ids differ from the recorded zoom targets.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("format") != _FORMAT:
        raise ValueError(
            f"not a blaeu session file (format {payload.get('format')!r})"
        )
    table_name = str(payload["table"])
    explorer = engine.explore(table_name)
    for step in payload["steps"]:
        verb = step["do"]
        if verb == "open_theme":
            explorer.open_theme(str(step["theme"]))
        elif verb == "open_columns":
            explorer.open_columns(tuple(step["columns"]))
        elif verb == "zoom":
            explorer.zoom(str(step["region"]))
        elif verb == "project":
            explorer.project(str(step["theme"]))
        elif verb == "project_columns":
            explorer.project_columns(tuple(step["columns"]))
        else:
            raise ValueError(f"unknown step {verb!r} in session file")
    return explorer


def _quoted(action: str) -> str:
    """Extract the 'quoted' theme name from an action string."""
    return action.split("'")[1]

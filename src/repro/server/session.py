"""Session management and request dispatch.

A :class:`Session` wraps one :class:`~repro.core.navigation.Explorer`;
the :class:`SessionManager` owns the engine, creates sessions on
``open``, routes every protocol command to the right session and renders
results as JSON payloads (via :mod:`repro.viz.export` for maps and
themes).  Engine-side failures never crash the dispatcher: they come
back as :class:`~repro.server.protocol.ErrorResponse`.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field

from repro.core.engine import Blaeu
from repro.core.navigation import Explorer, Highlight
from repro.core.pipeline import MapBuildError
from repro.server.protocol import (
    COMMANDS,
    ErrorResponse,
    ProtocolError,
    Request,
    Response,
    parse_request,
)
from repro.viz.export import export_map_json, export_themes_json

__all__ = ["Session", "SessionManager"]


@dataclass
class Session:
    """One user's exploration session."""

    session_id: str
    table_name: str
    explorer: Explorer
    #: Serializes commands against this session: the Explorer's state
    #: stack is not safe under concurrent mutation.
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)


class SessionManager:
    """Dispatches protocol requests onto engine sessions.

    Dispatch is thread-safe: the session registry is guarded by one
    lock, each session carries its own lock, and commands against
    *different* sessions run concurrently — the serving layer's worker
    pool relies on that to overlap slow map builds across clients.

    Known limitation: commands against the *same* session serialize on
    its lock while occupying a worker thread each, so one client
    pipelining many commands at one session can tie up several workers.
    Per-session work queues (one worker slot per session) are the
    planned fix when sharding lands.
    """

    def __init__(self, engine: Blaeu) -> None:
        self._engine = engine
        self._sessions: dict[str, Session] = {}
        self._counter = 0
        self._lock = threading.RLock()
        self._themes_lock = threading.Lock()
        self._reserved: set[str] = set()
        self._trace_recorder = None

    def set_trace_recorder(self, recorder) -> None:
        """Attach a :class:`~repro.guide.trace.TraceRecorder` to every
        session opened from now on (``None`` stops recording)."""
        self._trace_recorder = recorder

    @property
    def engine(self) -> Blaeu:
        """The underlying engine."""
        return self._engine

    def session_ids(self) -> tuple[str, ...]:
        """Active session ids."""
        with self._lock:
            return tuple(self._sessions)

    def new_session_id(self) -> str:
        """A fresh session id (``s1``, ``s2``, …)."""
        with self._lock:
            self._counter += 1
            return f"s{self._counter}"

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def handle_json(self, text: str) -> str:
        """Wire-format entry point: JSON line in, JSON line out."""
        try:
            request = parse_request(text)
        except ProtocolError as error:
            return ErrorResponse(error=str(error)).to_json()
        return self.handle(request).to_json()

    def handle(self, request: Request) -> Response | ErrorResponse:
        """Dispatch one parsed request."""
        handler = getattr(self, f"_handle_{request.command}", None)
        if handler is None:  # pragma: no cover - parse_request guards this
            return ErrorResponse(
                error=f"unhandled command {request.command!r}",
                command=request.command,
            )
        try:
            if "session" in COMMANDS.get(request.command, ()) and (
                request.command not in ("open", "close")
            ):
                session = self._require(request)
                with session.lock:
                    # Re-verify under the lock: a concurrent close +
                    # reopen may have replaced the id with a *new*
                    # session guarded by a different lock.
                    with self._lock:
                        if self._sessions.get(session.session_id) is not session:
                            raise KeyError(
                                f"no session {session.session_id!r}; it was "
                                "closed concurrently"
                            )
                    return handler(request)
            return handler(request)
        except MapBuildError as error:
            # A request the map pipeline rejects as posed (no active
            # columns, nothing to cluster): structurally a client
            # error, surfaced with a machine-readable code so the HTTP
            # layer can answer 400 without prose-matching.
            return ErrorResponse(
                error=str(error),
                command=request.command,
                code="map_build_invalid",
            )
        except (KeyError, ValueError, RuntimeError) as error:
            return ErrorResponse(error=str(error), command=request.command)

    # ------------------------------------------------------------------
    # Command handlers
    # ------------------------------------------------------------------

    def _handle_tables(self, request: Request) -> Response:
        return Response({"tables": list(self._engine.tables())})

    def _handle_catalog(self, request: Request) -> Response:
        return Response({"catalog": self._engine.database.catalog()})

    def _handle_themes(self, request: Request) -> Response:
        table = str(request.arg("table"))
        with self._themes_lock:
            themes = self._engine.themes(table)
        return Response(
            {"table": table, "themes": json.loads(export_themes_json(themes))}
        )

    def _handle_open(self, request: Request) -> Response:
        session_id = str(request.arg("session"))
        table = str(request.arg("table"))
        with self._lock:
            if session_id in self._sessions or session_id in self._reserved:
                raise ValueError(f"session {session_id!r} already exists")
            # Reserve the id so a concurrent open of the same id fails
            # fast instead of racing; the map build runs unlocked.
            self._reserved.add(session_id)
        try:
            explorer = self._engine.explore(table)
            if self._trace_recorder is not None:
                self._trace_recorder.attach(explorer, session_id)
            theme = request.arg("theme")
            if isinstance(theme, int):
                data_map = explorer.open_theme(theme)
            else:
                data_map = explorer.open_theme(str(theme))
            with self._lock:
                self._sessions[session_id] = Session(
                    session_id=session_id, table_name=table, explorer=explorer
                )
        finally:
            with self._lock:
                self._reserved.discard(session_id)
        return Response(
            {"session": session_id, "map": json.loads(export_map_json(data_map))}
        )

    def _handle_map(self, request: Request) -> Response:
        session = self._require(request)
        data_map = session.explorer.state.map
        return Response(
            {
                "session": session.session_id,
                "map": json.loads(export_map_json(data_map)),
            }
        )

    def _handle_zoom(self, request: Request) -> Response:
        session = self._require(request)
        region = str(request.arg("region"))
        data_map = session.explorer.zoom(region)
        return Response(
            {
                "session": session.session_id,
                "map": json.loads(export_map_json(data_map)),
            }
        )

    def _handle_project(self, request: Request) -> Response:
        session = self._require(request)
        theme = request.arg("theme")
        if isinstance(theme, int):
            data_map = session.explorer.project(theme)
        else:
            data_map = session.explorer.project(str(theme))
        return Response(
            {
                "session": session.session_id,
                "map": json.loads(export_map_json(data_map)),
            }
        )

    def _handle_highlight(self, request: Request) -> Response:
        session = self._require(request)
        region = str(request.arg("region"))
        columns = request.arg("columns")
        if columns is not None and not isinstance(columns, list):
            raise ValueError("'columns' must be a list of column names")
        highlight = session.explorer.highlight(
            region,
            columns=tuple(str(c) for c in columns) if columns else None,
        )
        return Response(
            {"session": session.session_id, "highlight": _highlight_payload(highlight)}
        )

    def _handle_rollback(self, request: Request) -> Response:
        session = self._require(request)
        data_map = session.explorer.rollback()
        return Response(
            {
                "session": session.session_id,
                "map": json.loads(export_map_json(data_map)),
            }
        )

    def _handle_sql(self, request: Request) -> Response:
        session = self._require(request)
        region = request.arg("region")
        sql = session.explorer.sql(str(region) if region is not None else None)
        return Response({"session": session.session_id, "sql": sql})

    def _handle_history(self, request: Request) -> Response:
        session = self._require(request)
        return Response(
            {
                "session": session.session_id,
                "history": list(session.explorer.history()),
            }
        )

    def _handle_suggest(self, request: Request) -> Response:
        session = self._require(request)
        limit = request.arg("limit", 5)
        if not isinstance(limit, int) or limit < 1:
            raise ValueError("'limit' must be a positive integer")
        suggestions = session.explorer.suggest(limit=limit)
        return Response(
            {
                "session": session.session_id,
                "suggestions": [
                    {
                        "action": s.action,
                        "target": s.target,
                        "score": round(s.score, 6),
                        "reason": s.reason,
                    }
                    for s in suggestions
                ],
            }
        )

    def _handle_close(self, request: Request) -> Response:
        session_id = str(request.arg("session"))
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                raise KeyError(f"no session {session_id!r}")
        # Wait for any in-flight command on the session before removing
        # it, so close never yanks an explorer out from under a zoom.
        with session.lock:
            with self._lock:
                if self._sessions.get(session_id) is not session:
                    raise KeyError(
                        f"no session {session_id!r}; it was closed "
                        "concurrently"
                    )
                del self._sessions[session_id]
        return Response({"closed": session_id})

    # ------------------------------------------------------------------
    # Count refinement (the service's background exact-count pass)
    # ------------------------------------------------------------------

    def needs_refine(self, session_id: str) -> bool:
        """Best-effort, lock-free probe: does the session's current map
        still carry approximate counts?

        Deliberately reads the explorer without its session lock (a
        stale answer is harmless — the caller only uses it to decide
        whether to schedule another refinement pass, and any
        map-bearing command re-triggers scheduling anyway), so it is
        safe to call from a latency-sensitive thread.
        """
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            return False
        return session.explorer.needs_refine

    def peek(self, session_id: str) -> Explorer | None:
        """The session's explorer, or ``None`` when absent — lock-free.

        The prefetch planner's read path: it never takes the session
        lock (a speculation must not delay interactive commands), so
        the state it reads may be one navigation behind.  That is fine —
        stale plans are discarded by the scheduler's generation check,
        and the builds they would have enqueued still land under valid
        cache keys.
        """
        with self._lock:
            session = self._sessions.get(session_id)
        return session.explorer if session is not None else None

    def refine_session(self, session_id: str) -> bool:
        """Upgrade a session's current map to exact counts.

        The expensive part — the exact chunked routing pass over the
        full selection — runs **outside** the session lock, so
        concurrent interactive commands on the same session are never
        stuck behind the very pass the two-phase design deferred.  The
        pass patches the shared cache; the state swap itself then
        happens under the lock via :meth:`Explorer.refine`, which at
        that point is a cache lookup.  Returns whether a refinement ran
        (the caller loops while it did: a navigation racing past the
        snapshot leaves a newer approximate state behind); a session
        that disappeared or already shows exact counts is a quiet
        no-op — refinement is best-effort by design.
        """
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            return False
        with session.lock:
            with self._lock:
                if self._sessions.get(session_id) is not session:
                    return False
            explorer = session.explorer
            if not explorer.needs_refine:
                return False
            state = explorer.state
        # The heavy pass, unlocked: patches the shared map cache.
        self._engine.map_builder.refine(
            explorer.table,
            state.columns,
            config=explorer.config,
            selection=state.selection,
            current_map=state.map,
        )
        with session.lock:
            with self._lock:
                if self._sessions.get(session_id) is not session:
                    return True
            if explorer.states() and explorer.state is state:
                explorer.refine()  # served from the patched cache
        return True

    def _require(self, request: Request) -> Session:
        session_id = str(request.arg("session"))
        with self._lock:
            try:
                return self._sessions[session_id]
            except KeyError:
                raise KeyError(
                    f"no session {session_id!r}; open one first "
                    f"(active: {list(self._sessions)})"
                ) from None


def _highlight_payload(highlight: Highlight) -> dict[str, object]:
    return {
        "region": highlight.region_id,
        "columns": list(highlight.columns),
        "n_rows": highlight.n_rows,
        "preview": [dict(row) for row in highlight.preview],
        "numeric": {
            name: {k: round(v, 4) for k, v in stats.items()}
            for name, stats in highlight.numeric_summaries.items()
        },
        "categories": {
            name: dict(counts)
            for name, counts in highlight.category_counts.items()
        },
    }

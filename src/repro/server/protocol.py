"""The client ↔ server message protocol.

Requests are JSON objects with a ``command`` plus command-specific
arguments; responses carry ``ok`` and either a payload or an error.  The
command set covers the UI's verbs exactly:

========== =====================================================
command     arguments
========== =====================================================
tables      —
catalog     —
themes      table
open        session, table, theme (name or index)
map         session
zoom        session, region
project     session, theme
highlight   session, region, columns (optional)
rollback    session
sql         session, region (optional)
history     session
suggest     session, limit (optional)
close       session
========== =====================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = [
    "ProtocolError",
    "Request",
    "Response",
    "ErrorResponse",
    "parse_request",
]

#: Commands the dispatcher understands, with their required arguments.
COMMANDS: dict[str, tuple[str, ...]] = {
    "tables": (),
    "catalog": (),
    "themes": ("table",),
    "open": ("session", "table", "theme"),
    "map": ("session",),
    "zoom": ("session", "region"),
    "project": ("session", "theme"),
    "highlight": ("session", "region"),
    "rollback": ("session",),
    "sql": ("session",),
    "history": ("session",),
    "suggest": ("session",),
    "close": ("session",),
}


class ProtocolError(ValueError):
    """A malformed or invalid client request."""


@dataclass(frozen=True)
class Request:
    """A parsed, validated client request."""

    command: str
    args: dict[str, object] = field(default_factory=dict)

    def arg(self, name: str, default: object = None) -> object:
        """The named argument (or ``default``)."""
        return self.args.get(name, default)

    def to_json(self) -> str:
        """Serialize back to wire format."""
        return json.dumps({"command": self.command, **self.args}, sort_keys=True)


@dataclass(frozen=True)
class Response:
    """A successful server response."""

    payload: dict[str, object]

    @property
    def ok(self) -> bool:
        """Always ``True`` for successful responses."""
        return True

    def to_json(self) -> str:
        """Serialize to wire format."""
        return json.dumps({"ok": True, **self.payload}, sort_keys=True, default=str)


@dataclass(frozen=True)
class ErrorResponse:
    """A failed server response.

    ``code`` optionally carries a machine-readable error class (e.g.
    ``"map_build_invalid"`` for requests the map pipeline rejects as
    posed), so HTTP clients can branch without parsing prose.
    """

    error: str
    command: str | None = None
    code: str | None = None

    @property
    def ok(self) -> bool:
        """Always ``False`` for error responses."""
        return False

    def to_json(self) -> str:
        """Serialize to wire format."""
        body: dict[str, object] = {"ok": False, "error": self.error}
        if self.command:
            body["command"] = self.command
        if self.code:
            body["code"] = self.code
        return json.dumps(body, sort_keys=True)


def parse_request(text: str) -> Request:
    """Parse and validate one JSON request line.

    Raises :class:`ProtocolError` on malformed JSON, unknown commands or
    missing required arguments.
    """
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"malformed JSON: {error}") from error
    if not isinstance(raw, dict):
        raise ProtocolError("request must be a JSON object")
    command = raw.pop("command", None)
    if not isinstance(command, str):
        raise ProtocolError("request must carry a string 'command'")
    if command not in COMMANDS:
        raise ProtocolError(
            f"unknown command {command!r}; known: {sorted(COMMANDS)}"
        )
    missing = [name for name in COMMANDS[command] if name not in raw]
    if missing:
        raise ProtocolError(
            f"command {command!r} is missing arguments: {missing}"
        )
    return Request(command=command, args=raw)

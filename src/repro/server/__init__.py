"""Session tier: the NodeJS layer of Figure 4, in process.

"The top layer of the server manages the sessions and relays the maps to
the clients."  This package reproduces that layer's observable behaviour:
a JSON request/response protocol (:mod:`repro.server.protocol`) and a
multi-session dispatcher (:mod:`repro.server.session`) that turns client
messages into engine calls and engine results into JSON payloads.  No
sockets are opened — the protocol is exercised in process, which is what
the architecture benchmark times end to end.

.. deprecated::
    The package-level re-exports moved behind the :mod:`repro.service`
    facade (``from repro.service import SessionManager``); importing
    them from ``repro.server`` still works for one release but raises a
    :class:`DeprecationWarning`.  The submodules
    (``repro.server.protocol`` etc.) are *not* deprecated — they are
    implementation homes, reached through the facade.
"""

from __future__ import annotations

import warnings

#: name → (submodule, attribute) for the lazily-resolved shim below.
_MOVED = {
    "ErrorResponse": ("repro.server.protocol", "ErrorResponse"),
    "ProtocolError": ("repro.server.protocol", "ProtocolError"),
    "Request": ("repro.server.protocol", "Request"),
    "Response": ("repro.server.protocol", "Response"),
    "parse_request": ("repro.server.protocol", "parse_request"),
    "Session": ("repro.server.session", "Session"),
    "SessionManager": ("repro.server.session", "SessionManager"),
    "replay_session": ("repro.server.persistence", "replay_session"),
    "save_session": ("repro.server.persistence", "save_session"),
}

__all__ = sorted(_MOVED)


def __getattr__(name: str) -> object:
    """The deprecation shim for names folded into ``repro.service``.

    Module-level ``__getattr__`` (PEP 562) means the warning fires only
    when one of the moved names is actually touched — importing the
    submodules directly stays silent, so internal code and the facade
    itself never warn.
    """
    try:
        module_name, attribute = _MOVED[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    warnings.warn(
        f"importing {name!r} from 'repro.server' is deprecated; "
        f"use 'from repro.service import {name}' instead",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module_name), attribute)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_MOVED))

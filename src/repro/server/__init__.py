"""Session tier: the NodeJS layer of Figure 4, in process.

"The top layer of the server manages the sessions and relays the maps to
the clients."  This package reproduces that layer's observable behaviour:
a JSON request/response protocol (:mod:`repro.server.protocol`) and a
multi-session dispatcher (:mod:`repro.server.session`) that turns client
messages into engine calls and engine results into JSON payloads.  No
sockets are opened — the protocol is exercised in process, which is what
the architecture benchmark times end to end.
"""

from repro.server.persistence import replay_session, save_session
from repro.server.protocol import (
    ErrorResponse,
    ProtocolError,
    Request,
    Response,
    parse_request,
)
from repro.server.session import Session, SessionManager

__all__ = [
    "ErrorResponse",
    "ProtocolError",
    "Request",
    "Response",
    "Session",
    "SessionManager",
    "parse_request",
    "replay_session",
    "save_session",
]

"""Out-of-sample assignment to medoids.

Blaeu clusters a *sample* but the map must describe the *whole*
selection: every unsampled tuple is attributed to its nearest medoid.
The same primitive extends CLARA's sample medoids to the full data.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.distance import distances_to_points

__all__ = ["assign_to_medoids", "assignment_cost"]


def assign_to_medoids(
    points: np.ndarray,
    medoid_points: np.ndarray,
    metric: str = "euclidean",
) -> np.ndarray:
    """Label each row of ``points`` with the index of its nearest medoid."""
    to_medoids = distances_to_points(points, medoid_points, metric)
    return np.argmin(to_medoids, axis=1).astype(np.intp)


def assignment_cost(
    points: np.ndarray,
    medoid_points: np.ndarray,
    metric: str = "euclidean",
) -> float:
    """Total distance from each point to its nearest medoid."""
    to_medoids = distances_to_points(points, medoid_points, metric)
    return float(to_medoids.min(axis=1).sum())

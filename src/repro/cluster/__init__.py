"""Clustering substrate: PAM, CLARA, silhouettes and friends.

The paper clusters twice — columns into themes and tuples into map
regions — and both times uses **Partitioning Around Medoids** (PAM,
Kaufman & Rousseeuw 1990) "because it is accurate, well established and
fast enough" (§3), switching to the sampling-based **CLARA** when the
data is too large, and choosing the number of clusters with the
**silhouette coefficient**, estimated "in a Monte-Carlo fashion".
Everything here is implemented from the original references on top of
NumPy; a Lloyd's k-means is included as the comparison baseline.
"""

from repro.cluster.distance import (
    euclidean_distances,
    gower_distances,
    manhattan_distances,
    pairwise_distances,
)
from repro.cluster.pam import Clustering, pam
from repro.cluster.clara import clara
from repro.cluster.kmeans import kmeans
from repro.cluster.silhouette import (
    mean_silhouette,
    monte_carlo_silhouette,
    silhouette_samples,
)
from repro.cluster.kselect import KSelection, select_k
from repro.cluster.assignment import assign_to_medoids
from repro.cluster.validation import (
    adjusted_rand_index,
    clustering_nmi,
    purity,
)

__all__ = [
    "Clustering",
    "KSelection",
    "adjusted_rand_index",
    "assign_to_medoids",
    "clara",
    "clustering_nmi",
    "euclidean_distances",
    "gower_distances",
    "kmeans",
    "manhattan_distances",
    "mean_silhouette",
    "monte_carlo_silhouette",
    "pairwise_distances",
    "pam",
    "purity",
    "select_k",
    "silhouette_samples",
]

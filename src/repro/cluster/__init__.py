"""Clustering substrate: PAM, CLARA, silhouettes and friends.

The paper clusters twice — columns into themes and tuples into map
regions — and both times uses **Partitioning Around Medoids** (PAM,
Kaufman & Rousseeuw 1990) "because it is accurate, well established and
fast enough" (§3), switching to the sampling-based **CLARA** when the
data is too large, and choosing the number of clusters with the
**silhouette coefficient**, estimated "in a Monte-Carlo fashion".
Everything here is implemented from the original references on top of
NumPy; a Lloyd's k-means is included as the comparison baseline.
"""

from repro.cluster.assignment import assign_to_medoids
from repro.cluster.clara import clara
from repro.cluster.distance import (
    euclidean_distances,
    gower_distances,
    manhattan_distances,
    pairwise_distances,
)
from repro.cluster.kmeans import kmeans
from repro.cluster.kselect import KSelection, select_k, select_k_points
from repro.cluster.pam import Clustering, pam
from repro.cluster.parallel import map_in_order, resolve_jobs
from repro.cluster.silhouette import (
    SharedSilhouette,
    mean_silhouette,
    monte_carlo_silhouette,
    silhouette_samples,
)
from repro.cluster.stages import (
    ClusterOutcome,
    ClusterParams,
    cluster_features,
    leaf_silhouettes,
    shared_distance_matrix,
)
from repro.cluster.validation import (
    adjusted_rand_index,
    clustering_nmi,
    purity,
)

__all__ = [
    "ClusterOutcome",
    "ClusterParams",
    "Clustering",
    "KSelection",
    "SharedSilhouette",
    "adjusted_rand_index",
    "assign_to_medoids",
    "clara",
    "cluster_features",
    "clustering_nmi",
    "euclidean_distances",
    "gower_distances",
    "kmeans",
    "leaf_silhouettes",
    "manhattan_distances",
    "map_in_order",
    "mean_silhouette",
    "monte_carlo_silhouette",
    "pairwise_distances",
    "pam",
    "purity",
    "resolve_jobs",
    "select_k",
    "select_k_points",
    "shared_distance_matrix",
    "silhouette_samples",
]

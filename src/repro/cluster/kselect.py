"""Silhouette-driven choice of the number of clusters k.

"We generate several partitionings with different numbers of clusters,
and keep the one with the best score" (§3).  :func:`select_k` does exactly
that: it runs the clusterer for each k in a range, scores each result with
the (exact or Monte-Carlo) silhouette, and returns every scored candidate
plus the winner — the candidates matter because Blaeu shows users the
quality of the partition they are looking at.

Both selectors share their distance work across the whole k sweep: the
matrix (or the Monte-Carlo subsample matrices) is computed **once per
feature matrix**, not once per candidate k — see
:class:`~repro.cluster.silhouette.SharedSilhouette`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.cluster.distance import validate_distance_matrix
from repro.cluster.pam import Clustering, pam
from repro.cluster.silhouette import SharedSilhouette, mean_silhouette
from repro.obs.trace import get_tracer

__all__ = ["KCandidate", "KSelection", "select_k", "select_k_points"]


@dataclass(frozen=True)
class KCandidate:
    """One evaluated value of k."""

    k: int
    clustering: Clustering
    silhouette: float


@dataclass(frozen=True)
class KSelection:
    """All evaluated candidates plus the winning one."""

    candidates: tuple[KCandidate, ...]
    best: KCandidate

    @property
    def k(self) -> int:
        """The selected number of clusters."""
        return self.best.k

    @property
    def clustering(self) -> Clustering:
        """The selected clustering."""
        return self.best.clustering

    def scores(self) -> dict[int, float]:
        """k → silhouette for every candidate (for the quality panel)."""
        return {c.k: c.silhouette for c in self.candidates}


def select_k(
    distances: np.ndarray,
    k_values: Sequence[int] = (2, 3, 4, 5, 6),
    rng: np.random.Generator | None = None,
) -> KSelection:
    """Pick k by exact silhouette over a precomputed distance matrix.

    Used for themes, where the "points" are columns and the matrix is the
    dependency-graph dissimilarity (small: one row per column).  The
    matrix is validated once up front; the per-k PAM runs and silhouette
    evaluations all reuse it as-is.  Ties favour the smaller k (simpler
    maps).
    """
    distances = validate_distance_matrix(distances)
    n = distances.shape[0]
    usable = [k for k in k_values if 2 <= k <= max(n - 1, 1)]
    if not usable:
        # Too few points to split: a single cluster is the only option.
        clustering = pam(distances, 1, rng=rng, validate=False)
        only = KCandidate(k=1, clustering=clustering, silhouette=0.0)
        return KSelection(candidates=(only,), best=only)

    tracer = get_tracer()
    candidates: list[KCandidate] = []
    for k in usable:
        with tracer.span("kselect.candidate") as span:
            clustering = pam(distances, k, rng=rng, validate=False)
            score = mean_silhouette(
                distances, clustering.labels, validate=False
            )
            if span.enabled:
                span.set("k", k)
                span.set("silhouette", round(score, 4))
        candidates.append(KCandidate(k=k, clustering=clustering, silhouette=score))
    best = max(candidates, key=lambda c: (c.silhouette, -c.k))
    return KSelection(candidates=tuple(candidates), best=best)


def select_k_points(
    points: np.ndarray,
    cluster_fn: Callable[[np.ndarray, int], Clustering],
    k_values: Sequence[int] = (2, 3, 4, 5, 6),
    n_subsamples: int = 8,
    subsample_size: int = 200,
    rng: np.random.Generator | None = None,
    exact_threshold: int | None = None,
    metric: str = "euclidean",
    dtype: object = None,
    shared: SharedSilhouette | None = None,
) -> KSelection:
    """Pick k for a point matrix, sharing distance work across the sweep.

    ``cluster_fn(points, k)`` supplies the clusterings (PAM on a sample or
    CLARA, depending on scale — the engine decides).  Scoring goes through
    one :class:`SharedSilhouette` built up front: below
    ``exact_threshold`` rows the full matrix is computed once and every k
    is scored exactly; above it the Monte-Carlo subsample matrices are
    drawn once and shared by all candidates.  This is the
    interaction-time path: scoring cost does not grow with the table.

    Callers that already hold distance structures (e.g. the mapping
    engine) pass their own ``shared`` scorer; it then *replaces* the
    scoring configuration entirely — ``n_subsamples``,
    ``subsample_size``, ``exact_threshold``, ``metric`` and ``dtype``
    are read only when this function builds the scorer itself.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    usable = [k for k in k_values if 2 <= k <= max(n - 1, 1)]
    if not usable:
        labels = np.zeros(n, dtype=np.intp)
        clustering = Clustering(
            labels=labels, medoids=np.zeros(1, dtype=np.intp), cost=0.0
        )
        only = KCandidate(k=1, clustering=clustering, silhouette=0.0)
        return KSelection(candidates=(only,), best=only)

    rng = rng or np.random.default_rng()
    if shared is None:
        shared = SharedSilhouette(
            points,
            n_subsamples=n_subsamples,
            subsample_size=subsample_size,
            metric=metric,
            exact_threshold=exact_threshold,
            rng=rng,
            dtype=dtype,
        )
    tracer = get_tracer()
    candidates: list[KCandidate] = []
    for k in usable:
        with tracer.span("kselect.candidate") as span:
            clustering = cluster_fn(points, k)
            score = shared.score(clustering.labels)
            if span.enabled:
                span.set("k", k)
                span.set("silhouette", round(score, 4))
        candidates.append(KCandidate(k=k, clustering=clustering, silhouette=score))
    best = max(candidates, key=lambda c: (c.silhouette, -c.k))
    return KSelection(candidates=tuple(candidates), best=best)

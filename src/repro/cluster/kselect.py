"""Silhouette-driven choice of the number of clusters k.

"We generate several partitionings with different numbers of clusters,
and keep the one with the best score" (§3).  :func:`select_k` does exactly
that: it runs the clusterer for each k in a range, scores each result with
the (exact or Monte-Carlo) silhouette, and returns every scored candidate
plus the winner — the candidates matter because Blaeu shows users the
quality of the partition they are looking at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.cluster.pam import Clustering, pam
from repro.cluster.silhouette import mean_silhouette, monte_carlo_silhouette

__all__ = ["KCandidate", "KSelection", "select_k", "select_k_points"]


@dataclass(frozen=True)
class KCandidate:
    """One evaluated value of k."""

    k: int
    clustering: Clustering
    silhouette: float


@dataclass(frozen=True)
class KSelection:
    """All evaluated candidates plus the winning one."""

    candidates: tuple[KCandidate, ...]
    best: KCandidate

    @property
    def k(self) -> int:
        """The selected number of clusters."""
        return self.best.k

    @property
    def clustering(self) -> Clustering:
        """The selected clustering."""
        return self.best.clustering

    def scores(self) -> dict[int, float]:
        """k → silhouette for every candidate (for the quality panel)."""
        return {c.k: c.silhouette for c in self.candidates}


def select_k(
    distances: np.ndarray,
    k_values: Sequence[int] = (2, 3, 4, 5, 6),
    rng: np.random.Generator | None = None,
) -> KSelection:
    """Pick k by exact silhouette over a precomputed distance matrix.

    Used for themes, where the "points" are columns and the matrix is the
    dependency-graph dissimilarity (small: one row per column).
    Ties favour the smaller k (simpler maps).
    """
    n = distances.shape[0]
    usable = [k for k in k_values if 2 <= k <= max(n - 1, 1)]
    if not usable:
        # Too few points to split: a single cluster is the only option.
        clustering = pam(distances, 1, rng=rng)
        only = KCandidate(k=1, clustering=clustering, silhouette=0.0)
        return KSelection(candidates=(only,), best=only)

    candidates: list[KCandidate] = []
    for k in usable:
        clustering = pam(distances, k, rng=rng)
        score = mean_silhouette(distances, clustering.labels)
        candidates.append(KCandidate(k=k, clustering=clustering, silhouette=score))
    best = max(candidates, key=lambda c: (c.silhouette, -c.k))
    return KSelection(candidates=tuple(candidates), best=best)


def select_k_points(
    points: np.ndarray,
    cluster_fn: Callable[[np.ndarray, int], Clustering],
    k_values: Sequence[int] = (2, 3, 4, 5, 6),
    n_subsamples: int = 8,
    subsample_size: int = 200,
    rng: np.random.Generator | None = None,
) -> KSelection:
    """Pick k for a point matrix using the Monte-Carlo silhouette.

    ``cluster_fn(points, k)`` supplies the clusterings (PAM on a sample or
    CLARA, depending on scale — the engine decides).  This is the
    interaction-time path: scoring cost does not grow with the table.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    usable = [k for k in k_values if 2 <= k <= max(n - 1, 1)]
    if not usable:
        labels = np.zeros(n, dtype=np.intp)
        clustering = Clustering(
            labels=labels, medoids=np.zeros(1, dtype=np.intp), cost=0.0
        )
        only = KCandidate(k=1, clustering=clustering, silhouette=0.0)
        return KSelection(candidates=(only,), best=only)

    rng = rng or np.random.default_rng()
    candidates: list[KCandidate] = []
    for k in usable:
        clustering = cluster_fn(points, k)
        score = monte_carlo_silhouette(
            points,
            clustering.labels,
            n_subsamples=n_subsamples,
            subsample_size=subsample_size,
            rng=rng,
        )
        candidates.append(KCandidate(k=k, clustering=clustering, silhouette=score))
    best = max(candidates, key=lambda c: (c.silhouette, -c.k))
    return KSelection(candidates=tuple(candidates), best=best)

"""Distance computations over feature matrices.

PAM and the silhouette both work on a dissimilarity matrix, so this module
is the substrate under all horizontal and vertical clustering.  It offers:

* dense pairwise **Euclidean** / **Manhattan** distances (vectorized),
* **Gower** distance for mixed numeric/binary features with missing
  values — the classic choice for k-medoids over mixed data and the
  natural companion of the paper's preprocessing (normalized continuous
  variables + dummy-coded categories).

Every dense kernel accepts an optional ``dtype``: ``float32`` halves the
memory traffic of the n×n matrices and roughly doubles throughput on
memory-bound shapes, at a bounded accuracy cost (see the accuracy tests).
The default stays ``float64``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "euclidean_distances",
    "manhattan_distances",
    "gower_distances",
    "pairwise_distances",
    "distances_to_points",
    "resolve_dtype",
]

#: dtypes the distance kernels may compute in.
_ALLOWED_DTYPES = (np.float32, np.float64)


def resolve_dtype(dtype: object) -> np.dtype:
    """Normalize a dtype knob (``None``/str/np.dtype) to float32/float64."""
    if dtype is None:
        return np.dtype(np.float64)
    resolved = np.dtype(dtype)
    if resolved.type not in _ALLOWED_DTYPES:
        raise ValueError(
            f"distance dtype must be float32 or float64, got {resolved}"
        )
    return resolved


def euclidean_distances(points: np.ndarray, dtype: object = None) -> np.ndarray:
    """Dense n×n Euclidean distance matrix.

    Uses the Gram-matrix expansion ``||a-b||² = ||a||² + ||b||² − 2a·b``
    with clipping against negative rounding; exact enough for clustering
    while an order of magnitude faster than pairwise loops.
    """
    points = _as_matrix(points, dtype)
    squared_norms = (points**2).sum(axis=1)
    gram = points @ points.T
    squared = squared_norms[:, None] + squared_norms[None, :] - 2.0 * gram
    np.maximum(squared, 0.0, out=squared)
    np.sqrt(squared, out=squared)
    np.fill_diagonal(squared, 0.0)
    return squared


def manhattan_distances(points: np.ndarray, dtype: object = None) -> np.ndarray:
    """Dense n×n Manhattan (L1) distance matrix.

    Accumulates one feature at a time into a single reused n×n scratch
    buffer: peak memory is two n×n arrays total (output + scratch), not a
    fresh broadcast temporary per feature.
    """
    points = _as_matrix(points, dtype)
    n, d = points.shape
    out = np.zeros((n, n), dtype=points.dtype)
    scratch = np.empty((n, n), dtype=points.dtype)
    for j in range(d):
        column = points[:, j]
        np.subtract(column[:, None], column[None, :], out=scratch)
        np.abs(scratch, out=scratch)
        out += scratch
    return out


def gower_distances(
    points: np.ndarray,
    numeric_mask: np.ndarray | None = None,
    ranges: np.ndarray | None = None,
    dtype: object = None,
) -> np.ndarray:
    """Gower's general dissimilarity for mixed features with missing values.

    For each feature, the per-pair contribution is ``|a−b| / range`` when
    numeric and ``a != b`` when binary/categorical; missing cells make a
    feature drop out of that pair's average.  Pairs with no shared present
    feature get the maximal distance 1.

    Parameters
    ----------
    points:
        n×d matrix; NaN marks missing cells.
    numeric_mask:
        Boolean length-d mask, ``True`` for numeric features (default all).
    ranges:
        Per-feature ranges for scaling; computed from the data if omitted.
    dtype:
        Output dtype; the accumulation itself stays float64 because the
        per-pair averages mix range-scaled magnitudes.
    """
    out_dtype = resolve_dtype(dtype)
    points = _as_matrix(points)
    n, d = points.shape
    if numeric_mask is None:
        numeric_mask = np.ones(d, dtype=bool)
    numeric_mask = np.asarray(numeric_mask, dtype=bool)
    if numeric_mask.shape != (d,):
        raise ValueError("numeric_mask must have one entry per feature")
    if ranges is None:
        with np.errstate(all="ignore"):
            highs = np.nanmax(points, axis=0)
            lows = np.nanmin(points, axis=0)
        ranges = np.where(np.isfinite(highs - lows), highs - lows, 0.0)
    ranges = np.asarray(ranges, dtype=np.float64)

    numerator = np.zeros((n, n), dtype=np.float64)
    weight = np.zeros((n, n), dtype=np.float64)
    for j in range(d):
        column = points[:, j]
        present = ~np.isnan(column)
        pair_present = present[:, None] & present[None, :]
        if numeric_mask[j]:
            if ranges[j] <= 0:
                contribution = np.zeros((n, n), dtype=np.float64)
            else:
                diff = np.abs(column[:, None] - column[None, :]) / ranges[j]
                contribution = np.where(pair_present, diff, 0.0)
        else:
            unequal = column[:, None] != column[None, :]
            contribution = np.where(pair_present, unequal.astype(np.float64), 0.0)
        numerator += contribution
        weight += pair_present
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.where(weight > 0, numerator / weight, 1.0)
    np.fill_diagonal(out, 0.0)
    return out.astype(out_dtype, copy=False)


def pairwise_distances(
    points: np.ndarray, metric: str = "euclidean", dtype: object = None
) -> np.ndarray:
    """Dispatch to a named metric (``euclidean``, ``manhattan``, ``gower``)."""
    if metric == "euclidean":
        return euclidean_distances(points, dtype=dtype)
    if metric == "manhattan":
        return manhattan_distances(points, dtype=dtype)
    if metric == "gower":
        return gower_distances(points, dtype=dtype)
    raise ValueError(f"unknown metric {metric!r}")


def distances_to_points(
    points: np.ndarray,
    references: np.ndarray,
    metric: str = "euclidean",
    dtype: object = None,
) -> np.ndarray:
    """n×m distances from each point to each reference point.

    The CLARA assignment step and out-of-sample medoid assignment both
    need point-to-medoid (not full pairwise) distances.
    """
    points = _as_matrix(points, dtype)
    references = _as_matrix(references, dtype)
    if points.shape[1] != references.shape[1]:
        raise ValueError(
            f"dimensionality mismatch: {points.shape[1]} vs {references.shape[1]}"
        )
    if metric == "euclidean":
        point_norms = (points**2).sum(axis=1)
        reference_norms = (references**2).sum(axis=1)
        squared = (
            point_norms[:, None]
            + reference_norms[None, :]
            - 2.0 * points @ references.T
        )
        np.maximum(squared, 0.0, out=squared)
        return np.sqrt(squared)
    if metric == "manhattan":
        out = np.zeros((points.shape[0], references.shape[0]), dtype=points.dtype)
        scratch = np.empty_like(out)
        for j in range(points.shape[1]):
            np.subtract(
                points[:, j][:, None], references[:, j][None, :], out=scratch
            )
            np.abs(scratch, out=scratch)
            out += scratch
        return out
    raise ValueError(f"unknown metric {metric!r} for point-to-point distances")


def _as_matrix(points: np.ndarray, dtype: object = None) -> np.ndarray:
    points = np.asarray(points, dtype=resolve_dtype(dtype))
    if points.ndim != 2:
        raise ValueError(f"expected a 2-d matrix, got shape {points.shape}")
    return points


def validate_distance_matrix(matrix: np.ndarray) -> np.ndarray:
    """Check symmetry, zero diagonal and non-negativity.

    Floating-point matrices keep their dtype (so float32 pipelines stay
    float32 end-to-end); everything else is promoted to float64.
    """
    matrix = np.asarray(matrix)
    if matrix.dtype.type not in _ALLOWED_DTYPES:
        matrix = matrix.astype(np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"distance matrix must be square, got {matrix.shape}")
    if matrix.size:
        atol = 1e-9 if matrix.dtype == np.float64 else 1e-4
        if not np.allclose(matrix, matrix.T, atol=atol):
            raise ValueError("distance matrix must be symmetric")
        if not np.allclose(np.diag(matrix), 0.0, atol=atol):
            raise ValueError("distance matrix must have a zero diagonal")
        if matrix.min() < -1e-12:
            raise ValueError("distance matrix must be non-negative")
    return matrix

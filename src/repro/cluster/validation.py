"""External clustering-quality indices (evaluation only).

These are not part of Blaeu's runtime — the paper's engine never sees
ground truth.  The benchmark harness uses them to quantify the claims:
ARI measures how well a sampled map matches the full-data map
(§3 "the loss of accuracy is minimal"), NMI measures recovery of planted
themes, purity is the human-friendly summary.
"""

from __future__ import annotations

import numpy as np

from repro.stats.entropy import joint_entropy, shannon_entropy

__all__ = ["adjusted_rand_index", "clustering_nmi", "purity", "contingency"]


def contingency(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Contingency matrix of two labelings (rows: a, columns: b)."""
    a = _as_codes(a)
    b = _as_codes(b)
    if a.shape != b.shape:
        raise ValueError(f"length mismatch: {a.shape[0]} vs {b.shape[0]}")
    n_a = int(a.max()) + 1 if a.size else 0
    n_b = int(b.max()) + 1 if b.size else 0
    table = np.zeros((n_a, n_b), dtype=np.int64)
    np.add.at(table, (a, b), 1)
    return table


def adjusted_rand_index(a: np.ndarray, b: np.ndarray) -> float:
    """Hubert & Arabie's adjusted Rand index in ``[-1, 1]`` (1 = identical).

    Chance-corrected: two random labelings score ~0.
    """
    table = contingency(a, b)
    n = table.sum()
    if n <= 1:
        return 1.0
    sum_cells = (_choose2(table)).sum()
    sum_rows = _choose2(table.sum(axis=1)).sum()
    sum_cols = _choose2(table.sum(axis=0)).sum()
    expected = sum_rows * sum_cols / _choose2(np.asarray([n])).sum()
    maximum = 0.5 * (sum_rows + sum_cols)
    if maximum == expected:
        # Both labelings are single-cluster (or otherwise degenerate):
        # identical by construction.
        return 1.0
    return float((sum_cells - expected) / (maximum - expected))


def clustering_nmi(a: np.ndarray, b: np.ndarray) -> float:
    """Normalized mutual information between labelings (max-normalized)."""
    a = _as_codes(a)
    b = _as_codes(b)
    if a.shape != b.shape:
        raise ValueError(f"length mismatch: {a.shape[0]} vs {b.shape[0]}")
    if a.size == 0:
        return 0.0
    h_a = shannon_entropy(a)
    h_b = shannon_entropy(b)
    ceiling = max(h_a, h_b)
    if ceiling <= 0:
        # Both single-cluster: identical partitions.
        return 1.0
    mi = max(0.0, h_a + h_b - joint_entropy(a, b))
    return float(min(1.0, mi / ceiling))


def purity(predicted: np.ndarray, truth: np.ndarray) -> float:
    """Fraction of points whose cluster's majority truth label matches theirs."""
    table = contingency(predicted, truth)
    total = table.sum()
    if total == 0:
        return 0.0
    return float(table.max(axis=1).sum() / total)


def _choose2(values: np.ndarray) -> np.ndarray:
    values = values.astype(np.float64)
    return values * (values - 1.0) / 2.0


def _as_codes(labels: np.ndarray) -> np.ndarray:
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError("labels must be one-dimensional")
    _, codes = np.unique(labels, return_inverse=True)
    return codes.astype(np.int64)

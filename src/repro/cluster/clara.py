"""CLARA — Clustering LARge Applications (Kaufman & Rousseeuw 1990, ch. 3).

"When the data is too large, Blaeu creates the maps with CLARA, a
sampling-based variant of the PAM algorithm" (§3).  CLARA draws several
modest samples, runs PAM on each, extends each sample's medoids to the
whole dataset, and keeps the medoid set with the lowest *full-data* cost.
The quadratic PAM work is confined to the sample, so the overall cost is
O(draws · (s² + k·n)) instead of PAM's O(k·n²).

The draws are independent, so they fan out across a thread pool
(``n_jobs``).  Each draw owns a child generator spawned from the caller's
RNG (``rng.spawn``), which makes the randomness a function of the draw
index alone — parallel runs are **bit-identical** to serial runs with the
same seed, whatever the worker count.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.distance import distances_to_points, pairwise_distances
from repro.cluster.pam import Clustering, pam
from repro.cluster.parallel import map_in_order
from repro.obs.trace import get_tracer

__all__ = ["clara"]


#: Kaufman & Rousseeuw's recommended sample size: 40 + 2k.
def default_sample_size(k: int) -> int:
    """The book's recommendation for the per-draw sample size."""
    return 40 + 2 * k


def clara(
    points: np.ndarray,
    k: int,
    n_draws: int = 5,
    sample_size: int | None = None,
    metric: str = "euclidean",
    rng: np.random.Generator | None = None,
    n_jobs: int | None = None,
    dtype: object = None,
) -> Clustering:
    """Cluster a large point matrix around ``k`` medoids via sampling.

    Parameters
    ----------
    points:
        n×d feature matrix (no NaN; preprocess first).
    k:
        Number of clusters.
    n_draws:
        Number of independent samples; the best full-data cost wins.
        Kaufman & Rousseeuw recommend 5.
    sample_size:
        Rows per draw; defaults to ``40 + 2k``.  Clamped to n.
    metric:
        ``euclidean`` or ``manhattan`` (must support point-to-medoid
        distances for the assignment step).
    rng:
        Source of sampling randomness.  Each draw gets its own child
        generator spawned from it, so results depend only on the seed —
        not on the worker count.
    n_jobs:
        Draw-level parallelism: ``None``/``1`` serial, ``0`` all cores,
        otherwise that many worker threads.
    dtype:
        Distance-kernel dtype (``float32`` opt-in; default float64).

    Returns
    -------
    Clustering
        ``medoids`` index the full ``points`` matrix; ``labels`` cover all
        n points; ``cost`` is the full-data cost of the winning draw;
        ``n_iterations`` counts the winning draw's SWAP exchanges.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be a 2-d matrix, got {points.shape}")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if n_draws < 1:
        raise ValueError(f"n_draws must be >= 1, got {n_draws}")
    rng = rng or np.random.default_rng()
    if sample_size is None:
        sample_size = default_sample_size(k)
    sample_size = min(max(sample_size, k), n)

    if sample_size >= n:
        # Sampling would be the identity; fall through to plain PAM.
        full = pam(
            pairwise_distances(points, metric, dtype=dtype),
            k,
            rng=rng,
            validate=False,
        )
        return full

    def run_draw(item: tuple[int, np.random.Generator]) -> Clustering:
        index, draw_rng = item
        with get_tracer().span("clara.draw") as span:
            sample_indices = draw_rng.choice(n, size=sample_size, replace=False)
            sample_indices.sort()
            sample = points[sample_indices]
            sample_result = pam(
                pairwise_distances(sample, metric, dtype=dtype),
                k,
                rng=draw_rng,
                validate=False,
            )
            medoid_rows = sample_indices[sample_result.medoids]

            to_medoids = distances_to_points(
                points, points[medoid_rows], metric, dtype=dtype
            )
            labels = np.argmin(to_medoids, axis=1).astype(np.intp)
            cost = float(to_medoids[np.arange(n), labels].sum())
            if span.enabled:
                span.set("draw", index)
                span.set("k", k)
                span.set("cost", cost)
            return Clustering(
                labels=labels,
                medoids=medoid_rows.astype(np.intp),
                cost=cost,
                n_iterations=sample_result.n_iterations,
            )

    # Spawn order (not completion order) fixes each draw's generator, so
    # the enumeration changes nothing about the random stream.
    draws = map_in_order(
        run_draw, list(enumerate(rng.spawn(n_draws))), n_jobs=n_jobs
    )

    # First strictly-better draw wins — the same tie-breaking a serial
    # loop applies, so the choice is independent of completion order.
    best = draws[0]
    for candidate in draws[1:]:
        if candidate.cost < best.cost:
            best = candidate
    return _relabel_by_size(best)


def _relabel_by_size(result: Clustering) -> Clustering:
    """Apply the same canonical (size-descending) ordering PAM uses."""
    sizes = np.bincount(result.labels, minlength=result.k)
    ranking = sorted(
        range(result.k),
        key=lambda c: (-int(sizes[c]), int(result.medoids[c])),
    )
    order = np.empty(result.k, dtype=np.intp)
    for new_id, old_id in enumerate(ranking):
        order[old_id] = new_id
    return Clustering(
        labels=order[result.labels],
        medoids=result.medoids[np.argsort(order)],
        cost=result.cost,
        n_iterations=result.n_iterations,
    )

"""CLARA — Clustering LARge Applications (Kaufman & Rousseeuw 1990, ch. 3).

"When the data is too large, Blaeu creates the maps with CLARA, a
sampling-based variant of the PAM algorithm" (§3).  CLARA draws several
modest samples, runs PAM on each, extends each sample's medoids to the
whole dataset, and keeps the medoid set with the lowest *full-data* cost.
The quadratic PAM work is confined to the sample, so the overall cost is
O(draws · (s² + k·n)) instead of PAM's O(k·n²).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.distance import distances_to_points, pairwise_distances
from repro.cluster.pam import Clustering, pam

__all__ = ["clara"]

#: Kaufman & Rousseeuw's recommended sample size: 40 + 2k.
def default_sample_size(k: int) -> int:
    """The book's recommendation for the per-draw sample size."""
    return 40 + 2 * k


def clara(
    points: np.ndarray,
    k: int,
    n_draws: int = 5,
    sample_size: int | None = None,
    metric: str = "euclidean",
    rng: np.random.Generator | None = None,
) -> Clustering:
    """Cluster a large point matrix around ``k`` medoids via sampling.

    Parameters
    ----------
    points:
        n×d feature matrix (no NaN; preprocess first).
    k:
        Number of clusters.
    n_draws:
        Number of independent samples; the best full-data cost wins.
        Kaufman & Rousseeuw recommend 5.
    sample_size:
        Rows per draw; defaults to ``40 + 2k``.  Clamped to n.
    metric:
        ``euclidean`` or ``manhattan`` (must support point-to-medoid
        distances for the assignment step).
    rng:
        Source of sampling randomness.

    Returns
    -------
    Clustering
        ``medoids`` index the full ``points`` matrix; ``labels`` cover all
        n points; ``cost`` is the full-data cost of the winning draw;
        ``n_iterations`` counts the winning draw's SWAP exchanges.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be a 2-d matrix, got {points.shape}")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if n_draws < 1:
        raise ValueError(f"n_draws must be >= 1, got {n_draws}")
    rng = rng or np.random.default_rng()
    if sample_size is None:
        sample_size = default_sample_size(k)
    sample_size = min(max(sample_size, k), n)

    if sample_size >= n:
        # Sampling would be the identity; fall through to plain PAM.
        full = pam(pairwise_distances(points, metric), k, rng=rng)
        return full

    best: Clustering | None = None
    for _ in range(n_draws):
        sample_indices = rng.choice(n, size=sample_size, replace=False)
        sample_indices.sort()
        sample = points[sample_indices]
        sample_result = pam(pairwise_distances(sample, metric), k, rng=rng)
        medoid_rows = sample_indices[sample_result.medoids]

        to_medoids = distances_to_points(points, points[medoid_rows], metric)
        labels = np.argmin(to_medoids, axis=1).astype(np.intp)
        cost = float(to_medoids[np.arange(n), labels].sum())
        if best is None or cost < best.cost:
            best = Clustering(
                labels=labels,
                medoids=medoid_rows.astype(np.intp),
                cost=cost,
                n_iterations=sample_result.n_iterations,
            )
    assert best is not None  # n_draws >= 1 guarantees at least one draw
    return _relabel_by_size(best)


def _relabel_by_size(result: Clustering) -> Clustering:
    """Apply the same canonical (size-descending) ordering PAM uses."""
    sizes = np.bincount(result.labels, minlength=result.k)
    ranking = sorted(
        range(result.k),
        key=lambda c: (-int(sizes[c]), int(result.medoids[c])),
    )
    order = np.empty(result.k, dtype=np.intp)
    for new_id, old_id in enumerate(ranking):
        order[old_id] = new_id
    return Clustering(
        labels=order[result.labels],
        medoids=result.medoids[np.argsort(order)],
        cost=result.cost,
        n_iterations=result.n_iterations,
    )

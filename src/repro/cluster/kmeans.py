"""Lloyd's k-means — the baseline clustering algorithm.

The paper reports choosing PAM from "a dozen clustering algorithms from
the literature"; k-means is the natural baseline for the comparison
benches (it is faster but mean-based, so its centers are not data points
and it is more sensitive to outliers — the properties that motivated the
authors' choice of medoids).  Initialization is k-means++ (Arthur &
Vassilvitskii 2007).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.distance import distances_to_points
from repro.cluster.pam import Clustering

__all__ = ["kmeans"]


def kmeans(
    points: np.ndarray,
    k: int,
    max_iter: int = 100,
    tol: float = 1e-6,
    rng: np.random.Generator | None = None,
) -> Clustering:
    """Cluster ``points`` into ``k`` groups with Lloyd's algorithm.

    Returns a :class:`~repro.cluster.pam.Clustering` for interface parity
    with PAM/CLARA; since k-means has no medoids, ``medoids`` holds the
    index of the point nearest each centroid and ``cost`` is the summed
    point-to-centroid Euclidean distance (not inertia), making costs
    comparable with PAM's.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be a 2-d matrix, got {points.shape}")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    rng = rng or np.random.default_rng()

    centroids = _kmeans_plus_plus(points, k, rng)
    labels = np.zeros(n, dtype=np.intp)
    n_iterations = 0
    for n_iterations in range(1, max_iter + 1):
        to_centroids = distances_to_points(points, centroids)
        labels = np.argmin(to_centroids, axis=1).astype(np.intp)
        new_centroids = centroids.copy()
        for cluster in range(k):
            members = points[labels == cluster]
            if members.shape[0]:
                new_centroids[cluster] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster at the point farthest from its
                # centroid (standard remedy; keeps k clusters alive).
                worst = int(
                    np.argmax(to_centroids[np.arange(n), labels])
                )
                new_centroids[cluster] = points[worst]
        shift = float(np.abs(new_centroids - centroids).max())
        centroids = new_centroids
        if shift <= tol:
            break

    to_centroids = distances_to_points(points, centroids)
    labels = np.argmin(to_centroids, axis=1).astype(np.intp)
    cost = float(to_centroids[np.arange(n), labels].sum())
    nearest_points = np.argmin(to_centroids, axis=0).astype(np.intp)
    return _canonicalize(
        Clustering(
            labels=labels,
            medoids=nearest_points,
            cost=cost,
            n_iterations=n_iterations,
        )
    )


def _kmeans_plus_plus(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: D²-weighted sampling of initial centroids."""
    n = points.shape[0]
    first = int(rng.integers(0, n))
    centroids = [points[first]]
    squared = distances_to_points(points, points[[first]]).ravel() ** 2
    for _ in range(1, k):
        total = squared.sum()
        if total <= 0:
            # All remaining points coincide with a centroid; pick uniformly.
            choice = int(rng.integers(0, n))
        else:
            choice = int(rng.choice(n, p=squared / total))
        centroids.append(points[choice])
        new_squared = (
            distances_to_points(points, points[[choice]]).ravel() ** 2
        )
        np.minimum(squared, new_squared, out=squared)
    return np.asarray(centroids)


def _canonicalize(result: Clustering) -> Clustering:
    """Relabel clusters by decreasing size for deterministic presentation."""
    sizes = np.bincount(result.labels, minlength=result.k)
    ranking = sorted(
        range(result.k),
        key=lambda c: (-int(sizes[c]), int(result.medoids[c])),
    )
    order = np.empty(result.k, dtype=np.intp)
    for new_id, old_id in enumerate(ranking):
        order[old_id] = new_id
    return Clustering(
        labels=order[result.labels],
        medoids=result.medoids[np.argsort(order)],
        cost=result.cost,
        n_iterations=result.n_iterations,
    )

"""Reusable cluster-stage primitives for the staged map pipeline.

The map pipeline (:mod:`repro.core.pipeline`) splits map construction
into memoizable stages.  The distance and clustering work those stages
run lives here, in the cluster package, so it can be reused by any
caller that holds a feature matrix — not just the map builder:

* :func:`shared_distance_matrix` — the Distances stage: one pairwise
  matrix per feature matrix at PAM scale (``None`` at CLARA scale,
  where no caller-visible matrix exists);
* :func:`cluster_features` — the Cluster stage: PAM over the shared
  matrix or CLARA at scale, k forced or chosen by the shared-distance
  silhouette sweep;
* :func:`leaf_silhouettes` — per-cluster silhouette quality, reusing
  the shared matrix when one exists (exact, zero extra distance work)
  and falling back to a bounded subsample otherwise.

All knobs arrive through one frozen :class:`ClusterParams`, so the
functions stay independent of the engine configuration object (the
cluster package sits *below* :mod:`repro.core`).

RNG contract: the three functions consume randomness from the passed
generator in a fixed order (CLARA-scale silhouette subsample draws,
then the per-k clustering runs, then the leaf-quality subsample).  The
pipeline relies on this to make staged, cache-warm builds bit-identical
to a single sequential pass over one generator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.clara import clara
from repro.cluster.distance import pairwise_distances
from repro.cluster.kselect import select_k_points
from repro.cluster.pam import Clustering, pam
from repro.cluster.silhouette import SharedSilhouette, silhouette_samples

__all__ = [
    "ClusterParams",
    "ClusterOutcome",
    "shared_distance_matrix",
    "cluster_features",
    "leaf_silhouettes",
]


@dataclass(frozen=True)
class ClusterParams:
    """The knobs the cluster stages read (a config-independent subset).

    Field meanings match their :class:`~repro.core.config.BlaeuConfig`
    namesakes; the map pipeline builds one of these from its config.
    """

    k_values: tuple[int, ...] = (2, 3, 4, 5, 6)
    clara_threshold: int = 1200
    clara_draws: int = 5
    clara_sample_size: int | None = None
    clara_jobs: int | None = None
    silhouette_subsamples: int = 8
    silhouette_subsample_size: int = 200
    silhouette_exact_threshold: int = 600
    dtype: str = "float64"


@dataclass(frozen=True)
class ClusterOutcome:
    """What the Cluster stage produces for one (matrix, k) request."""

    clustering: Clustering
    silhouette: float


def shared_distance_matrix(
    matrix: np.ndarray, params: ClusterParams
) -> np.ndarray | None:
    """The full pairwise matrix at PAM scale; ``None`` at CLARA scale.

    This is the Distances stage: the single most expensive reusable
    artifact of a map build.  It is computed once per (sample, columns)
    pair and shared by every candidate k, every silhouette evaluation
    and the per-leaf quality panel.  Above ``clara_threshold`` rows the
    engine clusters with CLARA, which never materializes an O(n²)
    matrix — the stage then has nothing to share and returns ``None``.
    """
    if matrix.shape[0] <= params.clara_threshold:
        return pairwise_distances(matrix, dtype=params.dtype)
    return None


def cluster_features(
    matrix: np.ndarray,
    params: ClusterParams,
    rng: np.random.Generator,
    forced_k: int | None = None,
    distances: np.ndarray | None = None,
) -> ClusterOutcome:
    """Cluster the vectors; return the clustering and its silhouette.

    ``distances`` is the Distances-stage artifact
    (:func:`shared_distance_matrix` of the same matrix): when present,
    every candidate k runs PAM on it and silhouettes are exact over it;
    when absent the CLARA path fans draws out over
    ``params.clara_jobs`` threads and the Monte-Carlo silhouette
    subsamples are drawn once for the whole k sweep.
    """
    n = matrix.shape[0]

    def cluster_fn(points: np.ndarray, k: int) -> Clustering:
        if distances is not None:
            return pam(distances, k, rng=rng, validate=False)
        return clara(
            points,
            k,
            n_draws=params.clara_draws,
            sample_size=params.clara_sample_size,
            rng=rng,
            n_jobs=params.clara_jobs,
            dtype=params.dtype,
        )

    shared = SharedSilhouette(
        matrix,
        n_subsamples=params.silhouette_subsamples,
        subsample_size=params.silhouette_subsample_size,
        exact_threshold=params.silhouette_exact_threshold,
        rng=rng,
        dtype=params.dtype,
        distances=distances,
    )

    if forced_k is not None:
        if not 1 <= forced_k <= n:
            raise ValueError(f"forced k={forced_k} out of range [1, {n}]")
        clustering = cluster_fn(matrix, forced_k)
        return ClusterOutcome(
            clustering=clustering, silhouette=shared.score(clustering.labels)
        )

    selection = select_k_points(
        matrix,
        cluster_fn,
        k_values=params.k_values,
        rng=rng,
        shared=shared,
    )
    return ClusterOutcome(
        clustering=selection.clustering, silhouette=selection.best.silhouette
    )


def leaf_silhouettes(
    matrix: np.ndarray,
    clustering: Clustering,
    params: ClusterParams,
    rng: np.random.Generator,
    distances: np.ndarray | None = None,
) -> dict[int, float]:
    """Per-cluster mean silhouette, from the shared matrix or a subsample.

    When the Distances stage built the full matrix it is reused as-is
    (exact per-leaf quality, zero extra distance work).  Otherwise a
    bounded subsample is drawn from ``rng`` — the one post-clustering
    consumer of stage randomness.
    """
    n = matrix.shape[0]
    if distances is not None:
        labels = clustering.labels
    else:
        cap = max(params.silhouette_subsample_size * 2, 400)
        if n > cap:
            chosen = rng.choice(n, size=cap, replace=False)
        else:
            chosen = np.arange(n)
        labels = clustering.labels[chosen]
    if np.unique(labels).size < 2:
        return {int(c): 0.0 for c in np.unique(clustering.labels)}
    if distances is None:
        distances = pairwise_distances(matrix[chosen], dtype=params.dtype)
    values = silhouette_samples(distances, labels, validate=False)
    return {
        int(cluster): float(values[labels == cluster].mean())
        for cluster in np.unique(labels)
    }

"""Silhouette coefficients — exact and Monte-Carlo (Rousseeuw 1987).

The silhouette drives two things in Blaeu: it tells users how crisp each
region is, and it selects the number of clusters k.  Because the exact
statistic is O(n²), the paper "computes the silhouette scores in a
Monte-Carlo fashion: it extracts a few sub-samples from the user's
selection, computes the clustering quality of those, and averages the
results" (§3).  Both estimators live here.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.distance import pairwise_distances, validate_distance_matrix

__all__ = ["silhouette_samples", "mean_silhouette", "monte_carlo_silhouette"]


def silhouette_samples(distances: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-point silhouette values ``s(i) = (b_i − a_i) / max(a_i, b_i)``.

    ``a_i`` is the mean distance to the point's own cluster (excluding
    itself), ``b_i`` the smallest mean distance to any other cluster.
    Points in singleton clusters get ``s(i) = 0`` by Rousseeuw's
    convention.  Values lie in ``[-1, 1]``.
    """
    distances = validate_distance_matrix(distances)
    labels = np.asarray(labels)
    n = distances.shape[0]
    if labels.shape != (n,):
        raise ValueError(
            f"labels shape {labels.shape} does not match matrix size {n}"
        )
    unique = np.unique(labels)
    if unique.size < 2:
        # A single cluster has no "next best" cluster; silhouette undefined,
        # reported as all-zero (neutral).
        return np.zeros(n, dtype=np.float64)

    # Mean distance from every point to every cluster, via label one-hots.
    sums = np.zeros((n, unique.size), dtype=np.float64)
    counts = np.zeros(unique.size, dtype=np.float64)
    for position, cluster in enumerate(unique):
        members = labels == cluster
        sums[:, position] = distances[:, members].sum(axis=1)
        counts[position] = members.sum()

    own_position = np.searchsorted(unique, labels)
    own_counts = counts[own_position]
    out = np.zeros(n, dtype=np.float64)

    # a_i: exclude the point itself from its own-cluster average.
    own_sums = sums[np.arange(n), own_position]
    singleton = own_counts <= 1
    with np.errstate(invalid="ignore", divide="ignore"):
        a = own_sums / np.maximum(own_counts - 1, 1)

    # b_i: min over other clusters of mean distance.
    with np.errstate(invalid="ignore", divide="ignore"):
        means = sums / counts[None, :]
    means[np.arange(n), own_position] = np.inf
    b = means.min(axis=1)

    denominator = np.maximum(a, b)
    valid = ~singleton & (denominator > 0)
    out[valid] = (b[valid] - a[valid]) / denominator[valid]
    return np.clip(out, -1.0, 1.0)


def mean_silhouette(distances: np.ndarray, labels: np.ndarray) -> float:
    """The average silhouette width — the paper's model-selection score."""
    values = silhouette_samples(distances, labels)
    return float(values.mean()) if values.size else 0.0


def cluster_silhouettes(
    distances: np.ndarray, labels: np.ndarray
) -> dict[int, float]:
    """Mean silhouette per cluster (shown to users in the region panel)."""
    values = silhouette_samples(distances, labels)
    labels = np.asarray(labels)
    return {
        int(cluster): float(values[labels == cluster].mean())
        for cluster in np.unique(labels)
    }


def monte_carlo_silhouette(
    points: np.ndarray,
    labels: np.ndarray,
    n_subsamples: int = 8,
    subsample_size: int = 200,
    metric: str = "euclidean",
    rng: np.random.Generator | None = None,
) -> float:
    """Monte-Carlo estimate of the mean silhouette.

    Draws ``n_subsamples`` random subsets of ``subsample_size`` points,
    computes each subset's exact mean silhouette (over the subset's own
    distance matrix), and averages.  Cost is
    O(n_subsamples · subsample_size²) independent of n — this is the
    estimator the paper uses at interaction time.

    Subsamples whose points all share one label are skipped (their
    silhouette is undefined); if every draw degenerates the result is 0.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    if points.ndim != 2:
        raise ValueError(f"points must be a 2-d matrix, got {points.shape}")
    if labels.shape != (points.shape[0],):
        raise ValueError("labels must align with points")
    if n_subsamples < 1:
        raise ValueError(f"n_subsamples must be >= 1, got {n_subsamples}")
    if subsample_size < 2:
        raise ValueError(f"subsample_size must be >= 2, got {subsample_size}")
    rng = rng or np.random.default_rng()
    n = points.shape[0]

    if subsample_size >= n:
        return mean_silhouette(pairwise_distances(points, metric), labels)

    estimates: list[float] = []
    for _ in range(n_subsamples):
        chosen = rng.choice(n, size=subsample_size, replace=False)
        sub_labels = labels[chosen]
        if np.unique(sub_labels).size < 2:
            continue
        sub_distances = pairwise_distances(points[chosen], metric)
        estimates.append(mean_silhouette(sub_distances, sub_labels))
    if not estimates:
        return 0.0
    return float(np.mean(estimates))

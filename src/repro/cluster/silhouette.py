"""Silhouette coefficients — exact and Monte-Carlo (Rousseeuw 1987).

The silhouette drives two things in Blaeu: it tells users how crisp each
region is, and it selects the number of clusters k.  Because the exact
statistic is O(n²), the paper "computes the silhouette scores in a
Monte-Carlo fashion: it extracts a few sub-samples from the user's
selection, computes the clustering quality of those, and averages the
results" (§3).  Both estimators live here, plus
:class:`SharedSilhouette` — the structure k selection scores every
candidate against: the distance matrices (full, or one per subsample)
are computed **once per feature matrix** and reused across all k.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.distance import pairwise_distances, validate_distance_matrix

__all__ = [
    "silhouette_samples",
    "mean_silhouette",
    "monte_carlo_silhouette",
    "SharedSilhouette",
]


def silhouette_samples(
    distances: np.ndarray, labels: np.ndarray, validate: bool = True
) -> np.ndarray:
    """Per-point silhouette values ``s(i) = (b_i − a_i) / max(a_i, b_i)``.

    ``a_i`` is the mean distance to the point's own cluster (excluding
    itself), ``b_i`` the smallest mean distance to any other cluster.
    Points in singleton clusters get ``s(i) = 0`` by Rousseeuw's
    convention.  Values lie in ``[-1, 1]``.  ``validate=False`` skips the
    O(n²) matrix check when the caller scores many labelings of one
    already-checked matrix.
    """
    if validate:
        distances = validate_distance_matrix(distances)
    else:
        distances = np.asarray(distances)
    labels = np.asarray(labels)
    n = distances.shape[0]
    if labels.shape != (n,):
        raise ValueError(
            f"labels shape {labels.shape} does not match matrix size {n}"
        )
    unique = np.unique(labels)
    if unique.size < 2:
        # A single cluster has no "next best" cluster; silhouette undefined,
        # reported as all-zero (neutral).
        return np.zeros(n, dtype=np.float64)

    # Mean distance from every point to every cluster, via label one-hots.
    sums = np.zeros((n, unique.size), dtype=np.float64)
    counts = np.zeros(unique.size, dtype=np.float64)
    for position, cluster in enumerate(unique):
        members = labels == cluster
        sums[:, position] = distances[:, members].sum(axis=1)
        counts[position] = members.sum()

    own_position = np.searchsorted(unique, labels)
    own_counts = counts[own_position]
    out = np.zeros(n, dtype=np.float64)

    # a_i: exclude the point itself from its own-cluster average.
    own_sums = sums[np.arange(n), own_position]
    singleton = own_counts <= 1
    with np.errstate(invalid="ignore", divide="ignore"):
        a = own_sums / np.maximum(own_counts - 1, 1)

    # b_i: min over other clusters of mean distance.
    with np.errstate(invalid="ignore", divide="ignore"):
        means = sums / counts[None, :]
    means[np.arange(n), own_position] = np.inf
    b = means.min(axis=1)

    denominator = np.maximum(a, b)
    valid = ~singleton & (denominator > 0)
    out[valid] = (b[valid] - a[valid]) / denominator[valid]
    return np.clip(out, -1.0, 1.0)


def mean_silhouette(
    distances: np.ndarray, labels: np.ndarray, validate: bool = True
) -> float:
    """The average silhouette width — the paper's model-selection score."""
    values = silhouette_samples(distances, labels, validate=validate)
    return float(values.mean()) if values.size else 0.0


def cluster_silhouettes(
    distances: np.ndarray, labels: np.ndarray
) -> dict[int, float]:
    """Mean silhouette per cluster (shown to users in the region panel)."""
    values = silhouette_samples(distances, labels)
    labels = np.asarray(labels)
    return {
        int(cluster): float(values[labels == cluster].mean())
        for cluster in np.unique(labels)
    }


def monte_carlo_silhouette(
    points: np.ndarray,
    labels: np.ndarray,
    n_subsamples: int = 8,
    subsample_size: int = 200,
    metric: str = "euclidean",
    rng: np.random.Generator | None = None,
) -> float:
    """Monte-Carlo estimate of the mean silhouette.

    Draws ``n_subsamples`` random subsets of ``subsample_size`` points,
    computes each subset's exact mean silhouette (over the subset's own
    distance matrix), and averages.  Cost is
    O(n_subsamples · subsample_size²) independent of n — this is the
    estimator the paper uses at interaction time.

    Subsamples whose points all share one label are skipped (their
    silhouette is undefined); if every draw degenerates the result is 0.
    """
    shared = SharedSilhouette(
        points,
        n_subsamples=n_subsamples,
        subsample_size=subsample_size,
        metric=metric,
        rng=rng,
    )
    return shared.score(labels)


class SharedSilhouette:
    """Silhouette scorer whose distance work is done once, not once per k.

    k selection evaluates the same point set under many labelings (one
    per candidate k).  The distance matrices those evaluations need
    depend only on the *points*, so this class computes them a single
    time at construction:

    * **exact mode** (``n <= max(exact_threshold, subsample_size)``): the
      full pairwise matrix, validated once; every :meth:`score` is the
      exact mean silhouette.
    * **sampled mode** (above the row threshold): ``n_subsamples`` index
      sets are drawn once and each subsample's distance matrix cached;
      :meth:`score` averages the exact silhouettes of the cached
      subsamples — the paper's Monte-Carlo estimator, minus the repeated
      matrix builds.

    A caller that already owns the full matrix (e.g. the mapping engine,
    which feeds it to PAM) passes it via ``distances`` and gets exact
    scoring for free.
    """

    def __init__(
        self,
        points: np.ndarray,
        n_subsamples: int = 8,
        subsample_size: int = 200,
        metric: str = "euclidean",
        exact_threshold: int | None = None,
        rng: np.random.Generator | None = None,
        dtype: object = None,
        distances: np.ndarray | None = None,
    ) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be a 2-d matrix, got {points.shape}")
        if n_subsamples < 1:
            raise ValueError(f"n_subsamples must be >= 1, got {n_subsamples}")
        if subsample_size < 2:
            raise ValueError(f"subsample_size must be >= 2, got {subsample_size}")
        n = points.shape[0]
        self.n_points = n
        threshold = max(
            exact_threshold if exact_threshold is not None else 0, subsample_size
        )

        self._full: np.ndarray | None = None
        self._subsamples: list[tuple[np.ndarray, np.ndarray]] = []
        if distances is not None:
            distances = np.asarray(distances)
            if distances.shape != (n, n):
                raise ValueError(
                    f"distances shape {distances.shape} does not match "
                    f"{n} points"
                )
            self._full = distances
        elif n <= threshold:
            self._full = pairwise_distances(points, metric, dtype=dtype)
        else:
            rng = rng or np.random.default_rng()
            for _ in range(n_subsamples):
                chosen = rng.choice(n, size=subsample_size, replace=False)
                sub_distances = pairwise_distances(
                    points[chosen], metric, dtype=dtype
                )
                self._subsamples.append((chosen, sub_distances))

    @property
    def exact(self) -> bool:
        """Whether scores are exact (full matrix) or Monte-Carlo."""
        return self._full is not None

    @property
    def matrix(self) -> np.ndarray | None:
        """The full distance matrix in exact mode (``None`` when sampled)."""
        return self._full

    def score(self, labels: np.ndarray) -> float:
        """Mean silhouette of ``labels`` over the precomputed distances."""
        labels = np.asarray(labels)
        if labels.shape != (self.n_points,):
            raise ValueError("labels must align with points")
        if self._full is not None:
            return mean_silhouette(self._full, labels, validate=False)
        estimates: list[float] = []
        for chosen, sub_distances in self._subsamples:
            sub_labels = labels[chosen]
            if np.unique(sub_labels).size < 2:
                continue
            estimates.append(
                mean_silhouette(sub_distances, sub_labels, validate=False)
            )
        if not estimates:
            return 0.0
        return float(np.mean(estimates))

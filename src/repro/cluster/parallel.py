"""Deterministic fan-out helpers for the clustering hot paths.

CLARA's draws are embarrassingly parallel: each one samples, runs PAM on
the sample, and extends the medoids to the full data — all pure NumPy,
which releases the GIL inside the heavy kernels (GEMM, reductions).  A
thread pool therefore gives real speedup without pickling the feature
matrix into worker processes.

The helpers here keep parallel execution *bit-identical* to serial: work
items are dispatched with their index and results are re-assembled in
submission order, so downstream "first best wins" tie-breaking sees the
exact sequence the serial loop would.
"""

from __future__ import annotations

import contextvars
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from repro.resilience.deadline import checkpoint

__all__ = ["resolve_jobs", "map_in_order"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(n_jobs: int | None, n_items: int | None = None) -> int:
    """Turn an ``n_jobs`` knob into a concrete worker count.

    ``None`` or ``1`` mean serial; ``0`` (and any negative value) means
    "all available cores".  The result is clamped to ``n_items`` when
    given — more workers than work is pure overhead.
    """
    if n_jobs is None:
        workers = 1
    elif n_jobs <= 0:
        workers = os.cpu_count() or 1
    else:
        workers = n_jobs
    if n_items is not None:
        workers = min(workers, max(n_items, 1))
    return max(workers, 1)


def map_in_order(
    fn: Callable[[T], R], items: Sequence[T], n_jobs: int | None = None
) -> list[R]:
    """``[fn(item) for item in items]``, optionally on a thread pool.

    Results come back in *submission order* regardless of completion
    order, and any worker exception propagates to the caller.  With one
    worker (or one item) this is a plain loop — no pool, no overhead —
    which also guarantees the serial path stays the reference behaviour.

    Each work item runs under its own copy of the caller's
    :mod:`contextvars` context (a single context cannot be entered by
    two threads at once), so context-local state — above all the
    current trace span — flows into the workers: spans opened inside
    ``fn`` parent to whatever span was current at the call site.
    """
    workers = resolve_jobs(n_jobs, n_items=len(items))
    if workers == 1 or len(items) <= 1:
        results = []
        for item in items:
            # Per-item deadline checkpoint: CLARA draws and k-selection
            # candidates abort between items, never mid-kernel.
            checkpoint("parallel.item")
            results.append(fn(item))
        return results
    contexts = [contextvars.copy_context() for _ in items]

    def checked(item: T) -> R:
        checkpoint("parallel.item")
        return fn(item)

    def run(pair: tuple[contextvars.Context, T]) -> R:
        context, item = pair
        return context.run(checked, item)

    with ThreadPoolExecutor(max_workers=workers) as executor:
        return list(executor.map(run, zip(contexts, items)))

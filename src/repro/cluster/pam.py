"""Partitioning Around Medoids (Kaufman & Rousseeuw 1990, ch. 2).

PAM is the paper's clustering workhorse for both themes and maps.  It
operates purely on a dissimilarity matrix, which is why Blaeu can apply it
to column dependency graphs and tuple feature spaces alike.

The implementation follows the book's two phases:

* **BUILD** — greedily pick k initial medoids, each maximizing the total
  dissimilarity *decrease* over the current configuration;
* **SWAP** — repeatedly evaluate every (medoid, non-medoid) exchange and
  perform the one with the largest cost reduction, until no exchange
  improves the cost.

Cost is the sum of dissimilarities from each point to its medoid (the
quantity the paper says PAM minimizes).  The SWAP evaluation is vectorized
over candidates, giving O(k·n²) per iteration without Python-loop overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.distance import validate_distance_matrix

__all__ = ["Clustering", "pam"]


@dataclass(frozen=True)
class Clustering:
    """The result of a medoid-based clustering.

    Attributes
    ----------
    labels:
        For each point, the index (``0..k-1``) of its cluster.
    medoids:
        For each cluster, the index of its medoid point.  For CLARA runs
        these index the *full* dataset, not the sample.
    cost:
        Total dissimilarity between points and their medoids.
    n_iterations:
        Number of SWAP exchanges performed (0 for degenerate cases).
    """

    labels: np.ndarray
    medoids: np.ndarray
    cost: float
    n_iterations: int = 0

    @property
    def k(self) -> int:
        """Number of clusters."""
        return int(self.medoids.shape[0])

    def sizes(self) -> np.ndarray:
        """Cluster sizes, indexed by cluster id."""
        return np.bincount(self.labels, minlength=self.k)

    def members(self, cluster: int) -> np.ndarray:
        """Point indices belonging to ``cluster``."""
        if not 0 <= cluster < self.k:
            raise IndexError(f"cluster {cluster} out of range [0, {self.k})")
        return np.flatnonzero(self.labels == cluster)


def pam(
    distances: np.ndarray,
    k: int,
    max_iter: int = 200,
    rng: np.random.Generator | None = None,
    validate: bool = True,
) -> Clustering:
    """Cluster the points of a dissimilarity matrix around ``k`` medoids.

    Parameters
    ----------
    distances:
        Symmetric n×n dissimilarity matrix with zero diagonal.
    k:
        Number of clusters, ``1 <= k <= n``.
    max_iter:
        Safety cap on SWAP exchanges (the algorithm normally converges in
        far fewer; each exchange strictly decreases the cost, so it cannot
        cycle).
    rng:
        Only used to break exact ties deterministically; PAM itself is
        deterministic given the matrix.
    validate:
        Check the matrix (symmetry, zero diagonal, non-negativity) before
        clustering.  Hot paths that build the matrix with
        :func:`~repro.cluster.distance.pairwise_distances` skip the O(n²)
        re-check by passing ``False``.
    """
    if validate:
        distances = validate_distance_matrix(distances)
    else:
        distances = np.asarray(distances)
    n = distances.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if k == n:
        labels = np.arange(n, dtype=np.intp)
        return Clustering(labels=labels, medoids=labels.copy(), cost=0.0)

    medoids = _build(distances, k)
    medoids, n_swaps = _swap(distances, medoids, max_iter)
    labels, cost = _assign(distances, medoids)
    order = _canonical_order(medoids, labels)
    return Clustering(
        labels=order[labels],
        medoids=medoids[np.argsort(order)],
        cost=cost,
        n_iterations=n_swaps,
    )


def _build(distances: np.ndarray, k: int) -> np.ndarray:
    """BUILD phase: greedy selection of k initial medoids."""
    n = distances.shape[0]
    # First medoid: the point minimizing total distance to all others.
    totals = distances.sum(axis=1)
    medoids = [int(np.argmin(totals))]
    # Distance from each point to its nearest chosen medoid.
    nearest = distances[:, medoids[0]].copy()
    while len(medoids) < k:
        # Gain of choosing candidate c: sum over points j of
        # max(nearest[j] - d(j, c), 0).
        gains = np.maximum(nearest[:, None] - distances, 0.0).sum(axis=0)
        gains[medoids] = -np.inf
        chosen = int(np.argmax(gains))
        medoids.append(chosen)
        np.minimum(nearest, distances[:, chosen], out=nearest)
    return np.asarray(medoids, dtype=np.intp)


def _swap(
    distances: np.ndarray, medoids: np.ndarray, max_iter: int
) -> tuple[np.ndarray, int]:
    """SWAP phase: steepest-descent medoid exchanges until local optimum."""
    medoids = medoids.copy()
    n = distances.shape[0]
    n_swaps = 0
    for _ in range(max_iter):
        medoid_distances = distances[:, medoids]  # n x k
        # For each point: nearest and second-nearest medoid distances.
        order = np.argsort(medoid_distances, axis=1)
        nearest_idx = order[:, 0]
        d_nearest = medoid_distances[np.arange(n), nearest_idx]
        if medoids.shape[0] > 1:
            second_idx = order[:, 1]
            d_second = medoid_distances[np.arange(n), second_idx]
        else:
            d_second = np.full(n, np.inf)

        best_delta = 0.0
        best_swap: tuple[int, int] | None = None
        is_medoid = np.zeros(n, dtype=bool)
        is_medoid[medoids] = True
        candidates = np.flatnonzero(~is_medoid)
        if candidates.size == 0:
            break

        d_candidates = distances[:, candidates]  # n x c
        for position in range(medoids.shape[0]):
            # Cost change of replacing medoid `position` by each candidate.
            loses_medoid = nearest_idx == position
            # Points whose nearest medoid is being removed move to
            # min(second nearest, candidate); others to
            # min(current nearest, candidate).
            floor = np.where(loses_medoid, d_second, d_nearest)
            new_d = np.minimum(d_candidates, floor[:, None])
            deltas = new_d.sum(axis=0) - d_nearest.sum()
            best_candidate = int(np.argmin(deltas))
            delta = float(deltas[best_candidate])
            if delta < best_delta - 1e-12:
                best_delta = delta
                best_swap = (position, int(candidates[best_candidate]))

        if best_swap is None:
            break
        position, replacement = best_swap
        medoids[position] = replacement
        n_swaps += 1
    return medoids, n_swaps


def _assign(
    distances: np.ndarray, medoids: np.ndarray
) -> tuple[np.ndarray, float]:
    """Assign each point to its nearest medoid; return labels and cost."""
    medoid_distances = distances[:, medoids]
    labels = np.argmin(medoid_distances, axis=1).astype(np.intp)
    # Medoids always belong to their own cluster (they are at distance 0
    # of themselves, so argmin already guarantees this absent ties).
    for position, medoid in enumerate(medoids):
        labels[medoid] = position
    cost = float(medoid_distances[np.arange(distances.shape[0]), labels].sum())
    return labels, cost


def _canonical_order(medoids: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Relabel clusters by decreasing size (ties: by medoid index).

    Gives deterministic, presentation-friendly cluster ids: cluster 0 is
    always the largest region on the map.
    """
    k = medoids.shape[0]
    sizes = np.bincount(labels, minlength=k)
    ranking = sorted(range(k), key=lambda c: (-int(sizes[c]), int(medoids[c])))
    order = np.empty(k, dtype=np.intp)
    for new_id, old_id in enumerate(ranking):
        order[old_id] = new_id
    return order

"""Column-code derivation and caching for dependency-graph builds.

Discretization is the graph stage's per-navigation fixed cost: every
zoom, theme edit, or selection re-examination needs the active columns
as integer codes.  This module makes that cost *once per table*:

* numeric **bin cuts** are derived from a deterministic row sample of
  the base table (seeded independently of the session RNG, so the same
  table yields the same cuts in every process and on every residency);
* a :class:`CodeCache` keyed by ``(table fingerprint, column, binning
  signature)`` keeps the derived artifact — the full code vector for
  in-memory tables, just the cuts for store-backed ones — so navigating
  to a new selection re-gathers cached codes by row index instead of
  re-discretizing;
* store-backed tables (:mod:`repro.store`) never materialize a full
  column: their codes are produced per request by pushdown-gathering
  exactly the needed rows and applying the cached cuts, or chunk by
  chunk for streaming whole-table builds.

Because cuts are a pure function of ``(fingerprint, column, binning
signature)``, a store-backed table and its in-memory twin produce
bit-identical codes for the same rows — the foundation of the
graph stage's cross-residency determinism guarantee.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.stats.batched import ColumnCodes
from repro.stats.discretize import (
    MISSING_BIN,
    apply_bin_cuts,
    equal_frequency_cuts,
    suggest_bin_count,
)
from repro.table.column import CategoricalColumn, Column, NumericColumn
from repro.table.sampling import uniform_sample

__all__ = [
    "CodeCache",
    "CodeEntry",
    "gather_codes",
    "is_store_backed",
    "iter_code_chunks",
]

#: In-memory tables larger than this cache bin cuts instead of full code
#: vectors, bounding a cache entry at the size of the cuts array.
_MAX_CACHED_CODE_ROWS = 1 << 18

#: Seed-stream tag separating the bin-cut sample from session randomness.
_CUT_SAMPLE_TAG = 0x9E3779B9


@dataclass(frozen=True)
class CodeEntry:
    """One column's cached code artifact.

    ``codes`` is the full-length code vector when it was cheap enough to
    keep (in-memory tables up to :data:`_MAX_CACHED_CODE_ROWS` rows);
    ``cuts`` alone suffices otherwise — codes are then derived per
    request from the gathered raw values.  Categorical columns on a
    store are pure pass-through (both fields ``None``): their codes ride
    along with every pushdown read.
    """

    n_codes: int
    codes: np.ndarray | None = None
    cuts: np.ndarray | None = None


class CodeCache:
    """A thread-safe LRU of :class:`CodeEntry` values.

    Keys are ``(table fingerprint, column name, binning signature)``
    tuples — content-addressed, never session-scoped, so every explorer
    sharing the cache reuses each other's discretization work.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self._max_entries = max_entries
        self._entries: OrderedDict[tuple, CodeEntry] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key: tuple) -> CodeEntry | None:
        """The cached entry, or ``None`` on miss (moves hits to MRU)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: tuple, entry: CodeEntry) -> None:
        """Insert (or refresh) an entry, evicting the LRU one if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = entry
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Hit/miss/size counters, snapshot under the lock."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._entries),
                "max_entries": self._max_entries,
            }


def gather_codes(
    table,
    names: Sequence[str],
    n_bins: int | None = None,
    bin_sample_size: int = 4096,
    seed: int = 42,
    cache: CodeCache | None = None,
    rows: np.ndarray | None = None,
) -> ColumnCodes:
    """Codes for ``names`` of ``table`` at ``rows`` (``None``: all rows).

    Derives (or recalls from ``cache``) each column's
    :class:`CodeEntry`, then assembles the requested rows into a
    :class:`~repro.stats.batched.ColumnCodes` matrix.  Store-backed
    tables gather only the requested rows of the needed columns —
    one pushdown read, no full-column materialization.
    """
    names = tuple(names)
    entries = resolve_entries(
        table,
        names,
        n_bins=n_bins,
        bin_sample_size=bin_sample_size,
        seed=seed,
        cache=cache,
    )
    n_out = int(rows.shape[0]) if rows is not None else table.n_rows
    matrix = np.empty((len(names), n_out), dtype=np.int32)

    raw_needed = [name for name in names if entries[name].codes is None]
    sub = None
    if raw_needed and is_store_backed(table):
        gather_at = (
            rows if rows is not None else np.arange(table.n_rows, dtype=np.intp)
        )
        sub = table.take_columns(raw_needed, gather_at)

    for index, name in enumerate(names):
        entry = entries[name]
        if entry.codes is not None:
            matrix[index] = (
                entry.codes if rows is None else entry.codes[rows]
            )
            continue
        column = sub.column(name) if sub is not None else table.column(name)
        if sub is None and rows is not None:
            column = column.take(rows)
        matrix[index] = _column_codes(column, entry)
    return ColumnCodes(
        names=names,
        codes=matrix,
        n_codes=tuple(entries[name].n_codes for name in names),
    )


def iter_code_chunks(
    table,
    names: Sequence[str],
    entries: dict[str, CodeEntry],
    chunk_rows: int | None = None,
    start: int = 0,
    stop: int | None = None,
) -> Iterator[np.ndarray]:
    """Yield ``(n_columns, chunk)`` code matrices from a chunked scan.

    The streaming complement of :func:`gather_codes`: a store-backed
    table's whole-table graph build feeds these chunks into
    :class:`~repro.stats.batched.StreamingPairwiseNMI`, keeping resident
    memory at one chunk of the named columns.  ``start``/``stop`` bound
    the scan to one partition's rows for the process-parallel build.
    """
    names = tuple(names)
    for _, _, chunk in table.iter_chunks(
        columns=names, chunk_rows=chunk_rows, start=start, stop=stop
    ):
        matrix = np.empty((len(names), chunk.n_rows), dtype=np.int32)
        for index, name in enumerate(names):
            matrix[index] = _column_codes(chunk.column(name), entries[name])
        yield matrix


def resolve_entries(
    table,
    names: Sequence[str],
    n_bins: int | None,
    bin_sample_size: int,
    seed: int,
    cache: CodeCache | None,
) -> dict[str, CodeEntry]:
    """Look up or derive the :class:`CodeEntry` of every named column."""
    fingerprint = table.fingerprint()
    signature = (n_bins, bin_sample_size, seed)
    entries: dict[str, CodeEntry] = {}
    missing: list[str] = []
    for name in names:
        entry = (
            cache.get((fingerprint, name, signature))
            if cache is not None
            else None
        )
        if entry is None:
            missing.append(name)
        else:
            entries[name] = entry
    if not missing:
        return entries

    cut_rows = _cut_sample_rows(table.n_rows, bin_sample_size, seed)
    store_backed = is_store_backed(table)
    sample = None
    if store_backed:
        numeric = [
            name for name in missing if table.kind(name).value == "numeric"
        ]
        if numeric:
            sample = table.take_columns(numeric, cut_rows)
    for name in missing:
        entry = _derive_entry(
            table, name, n_bins, cut_rows, sample, store_backed
        )
        entries[name] = entry
        if cache is not None:
            cache.put((fingerprint, name, signature), entry)
    return entries


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------


def is_store_backed(table) -> bool:
    """Whether a table executes as chunked scans (the store residency).

    The same duck-typed probe :mod:`repro.core.mapping` uses; the one
    shared definition keeps the gather and streaming paths agreeing on
    residency.
    """
    return getattr(table, "iter_chunks", None) is not None


def _cut_sample_rows(n_rows: int, bin_sample_size: int, seed: int) -> np.ndarray:
    """The deterministic row sample the numeric bin cuts derive from.

    Seeded by ``(tag, seed)`` only — independent of residency and of any
    session RNG stream — so the same table always produces the same
    cuts, which is what lets cached codes be shared across processes and
    lets store/memory twins agree bit for bit.
    """
    rng = np.random.default_rng((_CUT_SAMPLE_TAG, seed))
    return uniform_sample(n_rows, min(bin_sample_size, n_rows), rng)


def _derive_entry(
    table,
    name: str,
    n_bins: int | None,
    cut_rows: np.ndarray,
    sample,
    store_backed: bool,
) -> CodeEntry:
    """Compute one column's entry from the cut-sample rows."""
    if store_backed:
        if table.kind(name).value == "categorical":
            return CodeEntry(n_codes=len(table.categories(name)))
        column = sample.column(name)
        cuts = _numeric_cuts(column, n_bins)
        return CodeEntry(n_codes=len(cuts) + 1, cuts=cuts)

    column = table.column(name)
    if isinstance(column, CategoricalColumn):
        return CodeEntry(
            n_codes=len(column.categories), codes=column.codes
        )
    if not isinstance(column, NumericColumn):
        raise TypeError(f"unsupported column type {type(column).__name__}")
    cuts = _numeric_cuts(column.take(cut_rows), n_bins)
    entry = CodeEntry(n_codes=len(cuts) + 1, cuts=cuts)
    if len(column) <= _MAX_CACHED_CODE_ROWS:
        entry = CodeEntry(
            n_codes=entry.n_codes,
            codes=_numeric_apply(column, cuts),
            cuts=cuts,
        )
    return entry


def _numeric_cuts(column: NumericColumn, n_bins: int | None) -> np.ndarray:
    """Equal-frequency cuts of a numeric column's present sample values."""
    present = column.present_values()
    if present.size == 0:
        return np.empty(0, dtype=np.float64)
    if n_bins is None:
        n_bins = suggest_bin_count(present.size)
    return equal_frequency_cuts(present, n_bins)


def _numeric_apply(column: NumericColumn, cuts: np.ndarray) -> np.ndarray:
    """Codes of a numeric column under ``cuts`` (missing → ``-1``)."""
    codes = np.full(len(column), MISSING_BIN, dtype=np.int32)
    present = column.present_mask
    codes[present] = apply_bin_cuts(column.values[present], cuts)
    return codes


def _column_codes(column: Column, entry: CodeEntry) -> np.ndarray:
    """Codes of an already-gathered column under its entry."""
    if isinstance(column, CategoricalColumn):
        return column.codes.astype(np.int32, copy=False)
    assert entry.cuts is not None, "numeric column without cached cuts"
    return _numeric_apply(column, entry.cuts)

"""Partitioning the dependency graph into themes.

The paper's method: "Blaeu creates groups of mutually dependent columns.
To do so, it partitions the dependency graph with cluster analysis …
Partitioning Around Medoids" (§3).  :func:`pam_partition` is that method
(PAM over ``1 − dependency``, k chosen by silhouette).  Two classic
alternatives are provided for the benchmark comparisons:
:func:`threshold_components` (connected components after dropping weak
edges) and :func:`modularity_partition` (greedy modularity via networkx).
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.cluster.kselect import KSelection, select_k
from repro.graph.dependency import DependencyGraph

__all__ = ["pam_partition", "threshold_components", "modularity_partition"]


def pam_partition(
    graph: DependencyGraph,
    k_values: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
    rng: np.random.Generator | None = None,
) -> tuple[list[list[str]], KSelection]:
    """The paper's theme partition: PAM on graph dissimilarity.

    Returns the groups (each a list of column names, medoid first) and the
    full k-selection record (silhouette per candidate k).
    """
    dissimilarity = graph.dissimilarity()
    selection = select_k(dissimilarity, k_values=k_values, rng=rng)
    clustering = selection.clustering
    groups: list[list[str]] = []
    for cluster in range(clustering.k):
        members = clustering.members(cluster)
        medoid = int(clustering.medoids[cluster])
        ordered = [graph.columns[medoid]] + [
            graph.columns[m] for m in members if m != medoid
        ]
        groups.append(ordered)
    return groups, selection


def threshold_components(
    graph: DependencyGraph, min_weight: float = 0.3
) -> list[list[str]]:
    """Baseline: connected components of the graph above a weight threshold.

    Simple and parameter-sensitive — the benchmark shows where it breaks
    (a single bridge edge merges unrelated themes).
    """
    view = graph.to_networkx(min_weight=min_weight)
    components = [sorted(component) for component in nx.connected_components(view)]
    components.sort(key=lambda group: (-len(group), group[0]))
    return components


def modularity_partition(graph: DependencyGraph) -> list[list[str]]:
    """Baseline: greedy modularity communities on the weighted graph."""
    view = graph.to_networkx()
    if view.number_of_edges() == 0:
        return [[column] for column in graph.columns]
    communities = nx.algorithms.community.greedy_modularity_communities(
        view, weight="weight"
    )
    groups = [sorted(community) for community in communities]
    groups.sort(key=lambda group: (-len(group), group[0]))
    return groups

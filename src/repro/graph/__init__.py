"""Dependency graphs over table columns (the theme substrate).

Blaeu "generates a dependency graph, a weighted undirected graph in which
each vertex represents a column and each edge the statistical dependency
between two columns", then "partitions the dependency graph with cluster
analysis" (§3, Figure 2).  This package builds that graph (on mutual
information by default, correlation as the documented alternative) and
partitions it with PAM over the induced dissimilarity, alongside two
baselines used by the benchmarks.
"""

from repro.graph.codes import CodeCache
from repro.graph.dependency import (
    DependencyGraph,
    GraphBuilder,
    build_dependency_graph,
)
from repro.graph.partition import (
    modularity_partition,
    pam_partition,
    threshold_components,
)

__all__ = [
    "CodeCache",
    "DependencyGraph",
    "GraphBuilder",
    "build_dependency_graph",
    "modularity_partition",
    "pam_partition",
    "threshold_components",
]

"""Building the column dependency graph (paper §3, Figure 2).

Vertices are columns, edge weights are pairwise dependencies in
``[0, 1]`` (normalized mutual information by default; absolute Pearson/
Spearman correlation as the alternatives the paper mentions).  The graph
also exposes the *dissimilarity* view (``1 − weight``) that PAM needs.

Graphs are produced by a :class:`GraphBuilder`, which layers three kinds
of reuse over the batched NMI kernel (:mod:`repro.stats.batched`):

* **column codes** are cached per (table fingerprint, column, binning)
  in a :class:`~repro.graph.codes.CodeCache`, so navigating to a new
  selection gathers cached codes by row index instead of
  re-discretizing;
* **finished graphs** are memoized in an optional shared result cache
  (the service's map cache) keyed by (fingerprint, columns digest,
  measure, bins, sample, seed, selection rows) — a rollback or a second
  session landing on the same graph pays one dictionary lookup;
* **store-backed tables** build without materializing full columns:
  sampled builds pushdown-gather just the sampled rows, and whole-table
  NMI builds stream chunked scans through the accumulating kernel.
  (The correlation measures are the one exception: a whole-table
  pearson/spearman build gathers the numeric block — rank transforms
  do not stream — so pass ``sample`` on huge stores.)
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Literal, Sequence

import networkx as nx
import numpy as np

from repro.graph.codes import (
    CodeCache,
    gather_codes,
    is_store_backed,
    iter_code_chunks,
    resolve_entries,
)
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.resilience.deadline import checkpoint
from repro.stats.batched import StreamingPairwiseNMI, pairwise_nmi_matrix
from repro.stats.correlation import pairwise_correlation_matrix
from repro.table.column import NumericColumn
from repro.table.sampling import uniform_sample
from repro.table.table import Table

__all__ = [
    "DependencyGraph",
    "GraphBuilder",
    "build_dependency_graph",
    "DEFAULT_GRAPH_SEED",
    "DEFAULT_BIN_SAMPLE_SIZE",
]

Measure = Literal["nmi", "pearson", "spearman"]

#: Fallback seed when a caller provides neither ``rng`` nor ``seed`` —
#: the same root every other stage defaults to (``BlaeuConfig.seed``),
#: so repeated builds (and the cache keys derived from them) agree.
DEFAULT_GRAPH_SEED = 42

#: Default size of the deterministic row sample numeric bin cuts are
#: derived from (see :mod:`repro.graph.codes`).
DEFAULT_BIN_SAMPLE_SIZE = 4096


@dataclass(frozen=True)
class DependencyGraph:
    """A column dependency graph with its weight matrix.

    Attributes
    ----------
    columns:
        Vertex order; row/column ``i`` of the matrices refers to
        ``columns[i]``.
    weights:
        Symmetric dependency matrix in ``[0, 1]``, unit diagonal.
    measure:
        Which dependency measure produced the weights.
    """

    columns: tuple[str, ...]
    weights: np.ndarray
    measure: Measure = "nmi"

    @property
    def n_columns(self) -> int:
        """Number of vertices."""
        return len(self.columns)

    def dissimilarity(self) -> np.ndarray:
        """``1 − weights`` with a zero diagonal — PAM's input."""
        out = 1.0 - self.weights
        np.fill_diagonal(out, 0.0)
        return np.clip(out, 0.0, 1.0)

    def weight(self, a: str, b: str) -> float:
        """Dependency between two named columns."""
        i = self.columns.index(a)
        j = self.columns.index(b)
        return float(self.weights[i, j])

    def edges(self, min_weight: float = 0.0) -> list[tuple[str, str, float]]:
        """All edges at or above ``min_weight``, strongest first.

        Zero-weight pairs are non-edges and never listed.
        """
        out: list[tuple[str, str, float]] = []
        for i in range(self.n_columns):
            for j in range(i + 1, self.n_columns):
                weight = float(self.weights[i, j])
                if weight >= min_weight and weight > 0.0:
                    out.append((self.columns[i], self.columns[j], weight))
        out.sort(key=lambda edge: (-edge[2], edge[0], edge[1]))
        return out

    def to_networkx(self, min_weight: float = 0.0) -> nx.Graph:
        """A networkx view (used by the modularity baseline and rendering)."""
        graph = nx.Graph()
        graph.add_nodes_from(self.columns)
        for a, b, weight in self.edges(min_weight):
            graph.add_edge(a, b, weight=weight)
        return graph


class GraphBuilder:
    """Dependency-graph construction with navigation-aware reuse.

    One builder is shared per engine: its :class:`CodeCache` amortizes
    discretization across every explorer and navigation step, and an
    optional ``result_cache`` (any ``get(key)``/``put(key, value)``
    mapping — the service installs its shared map cache) memoizes
    finished graphs across sessions.

    When a result cache is installed, the build RNG is re-seeded from
    the cache key (the same convention as
    :func:`repro.core.mapping.build_map_cached`), so the graph an
    action path produces never depends on cache warmth.
    """

    def __init__(
        self,
        result_cache: object | None = None,
        code_cache: CodeCache | None = None,
        metrics: object | None = None,
    ) -> None:
        self._result_cache = result_cache
        self._code_cache = code_cache or CodeCache()
        self._metrics = metrics
        self._lock = threading.Lock()
        self._builds = 0
        self._result_hits = 0
        self._result_misses = 0
        self._last_build_seconds = 0.0

    @property
    def code_cache(self) -> CodeCache:
        """The per-column code cache."""
        return self._code_cache

    @property
    def result_cache(self) -> object | None:
        """The shared graph memo (``None`` when memoization is off)."""
        return self._result_cache

    def set_result_cache(self, cache: object | None) -> None:
        """Install (or remove) the shared graph result cache."""
        self._result_cache = cache

    def set_metrics(self, metrics: object | None) -> None:
        """Override the metric sink (tests isolating their counters).

        By default graph builds, memo hits/misses and code-cache
        hits/misses report into the process-global
        :func:`repro.obs.get_metrics` registry — the service and the
        CLI no longer wire anything.  ``None`` restores the default.
        """
        self._metrics = metrics

    def stats(self) -> dict[str, float]:
        """Build and cache counters (code-cache counters folded in)."""
        code = self._code_cache.stats()
        with self._lock:
            return {
                "builds": self._builds,
                "graph_cache_hits": self._result_hits,
                "graph_cache_misses": self._result_misses,
                "code_cache_hits": code["hits"],
                "code_cache_misses": code["misses"],
                "last_build_seconds": self._last_build_seconds,
            }

    def build(
        self,
        table: Table,
        columns: Sequence[str] | None = None,
        *,
        measure: Measure = "nmi",
        n_bins: int | None = None,
        sample: int | None = None,
        rng: np.random.Generator | None = None,
        seed: int = DEFAULT_GRAPH_SEED,
        row_indices: np.ndarray | None = None,
        n_jobs: int | None = None,
        bin_sample_size: int = DEFAULT_BIN_SAMPLE_SIZE,
    ) -> DependencyGraph:
        """Compute (or recall) the dependency graph of (part of) a table.

        Parameters mirror :func:`build_dependency_graph`;
        ``row_indices`` restricts the build to those base-table rows —
        the navigation path, where a zoomed selection's graph reuses
        the base table's cached codes.
        """
        names = (
            tuple(columns) if columns is not None else tuple(table.column_names)
        )
        if len(names) < 1:
            raise ValueError("dependency graph needs at least one column")
        if measure not in ("nmi", "pearson", "spearman"):
            raise ValueError(f"unknown dependency measure {measure!r}")

        started = time.perf_counter()
        with get_tracer().span("graph.build") as span:
            key = None
            if self._result_cache is not None:
                key = _graph_cache_key(
                    table,
                    names,
                    measure,
                    n_bins,
                    sample,
                    seed,
                    bin_sample_size,
                    row_indices,
                )
                hit = self._result_cache.get(key)
                if hit is not None:
                    with self._lock:
                        self._result_hits += 1
                    self._count("blaeu_graph_cache_hits_total")
                    if span.enabled:
                        span.set("cache_hit", True)
                    return hit  # type: ignore[return-value]
                with self._lock:
                    self._result_misses += 1
                self._count("blaeu_graph_cache_misses_total")
                rng = np.random.default_rng(_key_seed(key))
            if rng is None:
                rng = np.random.default_rng(seed)

            if span.enabled:
                span.set("cache_hit", False)
                span.set("measure", measure)
                span.set("n_columns", len(names))
            code_before = self._code_cache.stats()
            graph = self._build(
                table,
                names,
                measure,
                n_bins,
                sample,
                rng,
                seed,
                row_indices,
                n_jobs,
                bin_sample_size,
            )
            if key is not None:
                self._result_cache.put(key, graph)
            seconds = time.perf_counter() - started
            with self._lock:
                self._builds += 1
                self._last_build_seconds = seconds
            code_after = self._code_cache.stats()
            self._count("blaeu_graph_builds_total")
            self._registry().observe("blaeu_graph_build_seconds", seconds)
            self._count(
                "blaeu_graph_code_cache_hits_total",
                code_after["hits"] - code_before["hits"],
            )
            self._count(
                "blaeu_graph_code_cache_misses_total",
                code_after["misses"] - code_before["misses"],
            )
            return graph

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _registry(self):
        """The metric sink: the explicit override or the global registry."""
        return self._metrics if self._metrics is not None else get_metrics()

    def _count(self, name: str, by: int = 1) -> None:
        if by:
            self._registry().increment(name, by)

    def _build(
        self,
        table: Table,
        names: tuple[str, ...],
        measure: Measure,
        n_bins: int | None,
        sample: int | None,
        rng: np.random.Generator,
        seed: int,
        row_indices: np.ndarray | None,
        n_jobs: int | None,
        bin_sample_size: int,
    ) -> DependencyGraph:
        base = None
        if row_indices is not None:
            base = np.asarray(row_indices, dtype=np.intp)
        universe = base.shape[0] if base is not None else table.n_rows
        rows = base
        if sample is not None and sample < universe:
            picked = uniform_sample(universe, sample, rng)
            rows = base[picked] if base is not None else picked

        if measure == "nmi":
            weights = self._nmi_weights(
                table, names, n_bins, rows, n_jobs, bin_sample_size, seed
            )
        else:
            weights = self._correlation_weights(table, names, rows, measure)
        return DependencyGraph(columns=names, weights=weights, measure=measure)

    def _nmi_weights(
        self,
        table: Table,
        names: tuple[str, ...],
        n_bins: int | None,
        rows: np.ndarray | None,
        n_jobs: int | None,
        bin_sample_size: int,
        seed: int,
    ) -> np.ndarray:
        tracer = get_tracer()
        if rows is None and is_store_backed(table):
            # Whole-table build on a store: stream chunked pushdown
            # scans through the accumulating kernel — full columns are
            # never resident.
            with tracer.span("graph.codes"):
                entries = resolve_entries(
                    table,
                    names,
                    n_bins=n_bins,
                    bin_sample_size=bin_sample_size,
                    seed=seed,
                    cache=self._code_cache,
                )
            with tracer.span("graph.nmi") as span:
                n_codes = [entries[name].n_codes for name in names]
                streaming = StreamingPairwiseNMI(names, n_codes)
                chunks = 0
                partitions = getattr(table, "partitions", ())
                if (
                    getattr(table, "scan_jobs", None) not in (None, 1)
                    and len(partitions) > 1
                ):
                    # Partition-parallel accumulation: contingency
                    # counts are elementwise sums, so merging the
                    # per-partition accumulators in partition order is
                    # bit-identical to the serial chunk loop below.
                    from repro.store.parallel import (
                        nmi_task,
                        run_partition_tasks,
                    )

                    results = run_partition_tasks(
                        nmi_task,
                        [
                            (
                                str(table.root),
                                names,
                                n_codes,
                                entries,
                                partition.start,
                                partition.stop,
                                table.chunk_rows,
                            )
                            for partition in partitions
                        ],
                        table.scan_jobs,
                    )
                    for counts, _, read_chunks in results:
                        streaming.merge_counts(counts)
                        chunks += read_chunks
                else:
                    for chunk in iter_code_chunks(table, names, entries):
                        checkpoint("graph.nmi.chunk")
                        streaming.update(chunk)
                        chunks += 1
                if span.enabled:
                    span.set("streaming", True)
                    span.set("chunks", chunks)
                return streaming.finalize()
        with tracer.span("graph.codes"):
            codes = gather_codes(
                table,
                names,
                n_bins=n_bins,
                bin_sample_size=bin_sample_size,
                seed=seed,
                cache=self._code_cache,
                rows=rows,
            )
        with tracer.span("graph.nmi") as span:
            if span.enabled:
                span.set("streaming", False)
                span.set("rows", int(codes.codes.shape[1]))
            return pairwise_nmi_matrix(codes, n_jobs=n_jobs)

    def _correlation_weights(
        self,
        table: Table,
        names: tuple[str, ...],
        rows: np.ndarray | None,
        measure: Measure,
    ) -> np.ndarray:
        """Vectorized pearson/spearman weights over the numeric block.

        One masked-product correlation over the stacked numeric columns
        replaces the per-pair Python loop; categorical pairs keep
        weight 0, as before.
        """
        weights = np.eye(len(names), dtype=np.float64)
        numeric = [
            index
            for index, name in enumerate(names)
            if _is_numeric_column(table, name)
        ]
        if len(numeric) < 2:
            return weights
        numeric_names = [names[index] for index in numeric]
        block = _numeric_block(table, numeric_names, rows)
        correlation = np.abs(
            pairwise_correlation_matrix(block, rank=measure == "spearman")
        )
        np.fill_diagonal(correlation, 1.0)
        grid = np.ix_(numeric, numeric)
        weights[grid] = correlation
        return weights

def build_dependency_graph(
    table: Table,
    columns: Sequence[str] | None = None,
    measure: Measure = "nmi",
    n_bins: int | None = None,
    sample: int | None = None,
    rng: np.random.Generator | None = None,
    seed: int = DEFAULT_GRAPH_SEED,
    row_indices: np.ndarray | None = None,
    n_jobs: int | None = None,
    bin_sample_size: int = DEFAULT_BIN_SAMPLE_SIZE,
    code_cache: CodeCache | None = None,
    cache: object | None = None,
) -> DependencyGraph:
    """Compute the dependency graph of (a sample of) a table.

    A convenience front over :class:`GraphBuilder` for one-shot builds;
    long-lived callers (the engine, the service) hold a builder instead
    so codes and finished graphs are reused across calls.

    Parameters
    ----------
    table:
        Source table — in-memory or store-backed.
    columns:
        Vertices; defaults to every column.  Key columns should already be
        excluded by the caller (the engine drops them before calling).
    measure:
        ``nmi`` (paper's choice — handles mixed types and non-linear
        relationships), or ``pearson`` / ``spearman`` (numeric columns
        only; categorical pairs get weight 0).
    n_bins:
        Discretization override for the NMI estimator.
    sample:
        Estimate from a uniform sample of this many rows (the engine's
        interaction-time path for large tables).
    rng:
        Randomness for the row sample.  When omitted, a generator seeded
        by ``seed`` is used, so repeated builds agree — an unseeded
        default here used to make sampled builds irreproducible.
    seed:
        Root seed for the default ``rng`` and for the deterministic
        bin-cut sample; defaults to the engine-wide root
        (:data:`DEFAULT_GRAPH_SEED`).
    row_indices:
        Restrict the build to these base-table rows (a navigation
        selection); sampling applies within them.
    n_jobs:
        Thread fan-out of the batched NMI kernel (``None``/1 serial,
        0 all cores); results are identical at any setting.
    bin_sample_size:
        Rows in the deterministic bin-cut sample.
    code_cache / cache:
        Optional column-code cache and graph result cache (see
        :class:`GraphBuilder`).
    """
    builder = GraphBuilder(result_cache=cache, code_cache=code_cache)
    return builder.build(
        table,
        columns,
        measure=measure,
        n_bins=n_bins,
        sample=sample,
        rng=rng,
        seed=seed,
        row_indices=row_indices,
        n_jobs=n_jobs,
        bin_sample_size=bin_sample_size,
    )


# ----------------------------------------------------------------------
# Module internals
# ----------------------------------------------------------------------


def is_store_backed(table) -> bool:
    return getattr(table, "iter_chunks", None) is not None


def _is_numeric_column(table, name: str) -> bool:
    kind = getattr(table, "kind", None)
    if callable(kind):  # store-backed: answered from the manifest, no IO
        return kind(name).value == "numeric"
    return isinstance(table.column(name), NumericColumn)


def _numeric_block(
    table, names: list[str], rows: np.ndarray | None
) -> np.ndarray:
    """The named numeric columns stacked as ``(rows, columns)`` float64.

    Missing cells are NaN.  Store-backed tables gather only the
    requested rows of the named columns (one pushdown read).  With
    ``rows=None`` this materializes the whole numeric block — fine for
    the correlation measures' sampled path, deliberate for whole-table
    builds (Spearman's rank transform needs every row resident); the
    NMI path never comes through here.
    """
    if is_store_backed(table):
        gather_at = (
            rows if rows is not None else np.arange(table.n_rows, dtype=np.intp)
        )
        sub = table.take_columns(names, gather_at)
        return np.column_stack([sub.column(name).values for name in names])
    out = np.column_stack([table.column(name).values for name in names])
    return out if rows is None else out[rows]


def _graph_cache_key(
    table,
    names: tuple[str, ...],
    measure: Measure,
    n_bins: int | None,
    sample: int | None,
    seed: int,
    bin_sample_size: int,
    row_indices: np.ndarray | None,
) -> tuple:
    """The canonical memo key of one graph build.

    Content-addressed like the map cache: the table's fingerprint, a
    digest of the vertex set, every estimator knob, and (for
    selection-restricted builds) a digest of the row indices.
    """
    columns_digest = hashlib.sha256(
        "\x00".join(names).encode("utf-8")
    ).hexdigest()[:16]
    rows_digest = None
    if row_indices is not None:
        rows_digest = hashlib.sha256(
            np.ascontiguousarray(row_indices, dtype=np.int64).tobytes()
        ).hexdigest()[:16]
    return (
        "graph",
        table.fingerprint(),
        columns_digest,
        measure,
        n_bins,
        bin_sample_size,
        sample,
        seed,
        rows_digest,
    )


def _key_seed(key: tuple) -> int:
    """A deterministic RNG seed derived from a cache key.

    Same construction as :func:`repro.core.mapping.cache_key_seed`
    (duplicated here because :mod:`repro.core` sits *above* this
    package): cache-aware builds are seeded from their key, so results
    never depend on cache warmth.
    """
    digest = hashlib.sha256(repr(key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")

"""Building the column dependency graph (paper §3, Figure 2).

Vertices are columns, edge weights are pairwise dependencies in
``[0, 1]`` (normalized mutual information by default; absolute Pearson/
Spearman correlation as the alternatives the paper mentions).  The graph
also exposes the *dissimilarity* view (``1 − weight``) that PAM needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import networkx as nx
import numpy as np

from repro.stats.correlation import pearson, spearman
from repro.stats.mutual_info import pairwise_dependencies
from repro.table.column import NumericColumn
from repro.table.table import Table

__all__ = ["DependencyGraph", "build_dependency_graph"]

Measure = Literal["nmi", "pearson", "spearman"]


@dataclass(frozen=True)
class DependencyGraph:
    """A column dependency graph with its weight matrix.

    Attributes
    ----------
    columns:
        Vertex order; row/column ``i`` of the matrices refers to
        ``columns[i]``.
    weights:
        Symmetric dependency matrix in ``[0, 1]``, unit diagonal.
    measure:
        Which dependency measure produced the weights.
    """

    columns: tuple[str, ...]
    weights: np.ndarray
    measure: Measure = "nmi"

    @property
    def n_columns(self) -> int:
        """Number of vertices."""
        return len(self.columns)

    def dissimilarity(self) -> np.ndarray:
        """``1 − weights`` with a zero diagonal — PAM's input."""
        out = 1.0 - self.weights
        np.fill_diagonal(out, 0.0)
        return np.clip(out, 0.0, 1.0)

    def weight(self, a: str, b: str) -> float:
        """Dependency between two named columns."""
        i = self.columns.index(a)
        j = self.columns.index(b)
        return float(self.weights[i, j])

    def edges(self, min_weight: float = 0.0) -> list[tuple[str, str, float]]:
        """All edges at or above ``min_weight``, strongest first.

        Zero-weight pairs are non-edges and never listed.
        """
        out: list[tuple[str, str, float]] = []
        for i in range(self.n_columns):
            for j in range(i + 1, self.n_columns):
                weight = float(self.weights[i, j])
                if weight >= min_weight and weight > 0.0:
                    out.append((self.columns[i], self.columns[j], weight))
        out.sort(key=lambda edge: (-edge[2], edge[0], edge[1]))
        return out

    def to_networkx(self, min_weight: float = 0.0) -> nx.Graph:
        """A networkx view (used by the modularity baseline and rendering)."""
        graph = nx.Graph()
        graph.add_nodes_from(self.columns)
        for a, b, weight in self.edges(min_weight):
            graph.add_edge(a, b, weight=weight)
        return graph


def build_dependency_graph(
    table: Table,
    columns: Sequence[str] | None = None,
    measure: Measure = "nmi",
    n_bins: int | None = None,
    sample: int | None = None,
    rng: np.random.Generator | None = None,
) -> DependencyGraph:
    """Compute the dependency graph of (a sample of) a table.

    Parameters
    ----------
    table:
        Source table.
    columns:
        Vertices; defaults to every column.  Key columns should already be
        excluded by the caller (the engine drops them before calling).
    measure:
        ``nmi`` (paper's choice — handles mixed types and non-linear
        relationships), or ``pearson`` / ``spearman`` (numeric columns
        only; categorical pairs get weight 0).
    n_bins:
        Discretization override for the NMI estimator.
    sample:
        Estimate from a uniform sample of this many rows (the engine's
        interaction-time path for large tables).
    """
    names = tuple(columns) if columns is not None else table.column_names
    if len(names) < 1:
        raise ValueError("dependency graph needs at least one column")
    if sample is not None and sample < table.n_rows:
        table = table.sample(sample, rng=rng or np.random.default_rng())

    n = len(names)
    weights = np.eye(n, dtype=np.float64)
    if measure == "nmi":
        pairs = pairwise_dependencies(table, names, n_bins=n_bins)
        index = {name: i for i, name in enumerate(names)}
        for (a, b), value in pairs.items():
            weights[index[a], index[b]] = value
            weights[index[b], index[a]] = value
    elif measure in ("pearson", "spearman"):
        estimator = pearson if measure == "pearson" else spearman
        numeric = {
            c.name: c.values
            for c in table.columns
            if isinstance(c, NumericColumn) and c.name in names
        }
        for i, a in enumerate(names):
            for j in range(i + 1, n):
                b = names[j]
                if a in numeric and b in numeric:
                    value = abs(estimator(numeric[a], numeric[b]))
                else:
                    value = 0.0
                weights[i, j] = value
                weights[j, i] = value
    else:
        raise ValueError(f"unknown dependency measure {measure!r}")

    return DependencyGraph(columns=names, weights=weights, measure=measure)

"""Retry budgeting and jittered backoff for the supervisor proxy.

Retries must not amplify an outage: if every client retry spawned
another upstream attempt, a fleet at 2x capacity would see 4x traffic.
:class:`RetryBudget` is a token bucket refilled by *successful first
attempts* — each completed request deposits ``ratio`` tokens, each retry
spends one — so retries are capped at roughly ``ratio`` of live traffic
and dry up during a full outage instead of hammering it.

``jittered_backoff`` is decorrelated jitter over an exponential base;
pass an ``rng`` for deterministic tests.
"""

from __future__ import annotations

import random
import threading

__all__ = ["RetryBudget", "jittered_backoff"]


class RetryBudget:
    def __init__(self, *, ratio: float = 0.1, burst: float = 10.0):
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self._ratio = max(ratio, 0.0)
        self._burst = float(burst)
        self._tokens = float(burst)
        self._lock = threading.Lock()

    def record_request(self) -> None:
        """Deposit for one completed first attempt."""
        with self._lock:
            self._tokens = min(self._burst, self._tokens + self._ratio)

    def try_spend(self) -> bool:
        """Take one token for a retry; False means the budget is exhausted."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens


def jittered_backoff(
    attempt: int,
    *,
    base: float = 0.05,
    cap: float = 1.0,
    rng: random.Random | None = None,
) -> float:
    """Sleep span before retry ``attempt`` (0-based): full jitter over
    an exponentially growing window, capped at ``cap`` seconds."""
    window = min(cap, base * (2 ** max(attempt, 0)))
    draw = (rng or random).random()
    return window * (0.5 + 0.5 * draw)

"""Deterministic, seed-keyed fault injection for chaos tests and benches.

Production code is sprinkled with named *fault points*::

    fault_point("store.artifact.read")
    blob = corrupt_bytes("store.artifact.index", blob)

which are single ``None``-checks unless an injector is installed.  An
injector is a list of :class:`FaultSpec` rules — site glob, mode, rate,
and firing window — activated either programmatically
(:func:`install_faults`) or via the ``BLAEU_FAULTS`` env var, which is
how subprocess workers under the supervisor pick faults up::

    BLAEU_FAULTS='{"seed": 7, "faults": [
        {"site": "store.artifact.read", "mode": "error", "rate": 0.2},
        {"site": "worker.request", "mode": "kill", "after": 5, "count": 1}
    ]}'

Determinism: each spec keeps a per-site hit counter, and whether hit
*n* fires is decided by ``sha256(seed, site, n)`` — the same seed
produces the same firing pattern run over run, independent of wall
clock.  (Under concurrency the *assignment* of hit indices to threads
can vary, but the multiset of fired hits per N calls cannot.)

Modes:

``error``    raise :class:`InjectedFault` (an ``OSError``)
``latency``  sleep ``seconds`` then proceed
``torn``     truncate the blob at a fault point using :func:`corrupt_bytes`
``kill``     ``os._exit(137)`` — a worker crash, mid-request
``hang``     sleep ``seconds`` (default 3600) — a wedged worker
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass

from repro.obs.metrics import get_metrics

__all__ = [
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "clear_faults",
    "corrupt_bytes",
    "fault_point",
    "faults_from_env",
    "install_faults",
]

FAULTS_ENV = "BLAEU_FAULTS"

MODES = ("error", "latency", "torn", "kill", "hang")


class InjectedFault(OSError):
    """The error raised by ``error``-mode fault points.

    Subclasses ``OSError`` so production ``except OSError`` handlers —
    the ones chaos testing exists to exercise — treat it as a real IO
    failure.
    """


@dataclass(frozen=True)
class FaultSpec:
    site: str  # glob over fault-point names, e.g. "store.artifact.*"
    mode: str
    rate: float = 1.0  # probability a matching hit fires
    after: int = 0  # skip the first `after` matching hits
    count: int | None = None  # fire at most `count` times (None: unlimited)
    seconds: float = 0.0  # latency/hang duration

    def __post_init__(self):
        if self.mode not in MODES:
            raise ValueError(f"unknown fault mode {self.mode!r} (want one of {MODES})")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")


class FaultInjector:
    """Matches fault-point hits against specs, deterministically."""

    def __init__(self, specs: list[FaultSpec], *, seed: int = 0):
        self._specs = list(specs)
        self._seed = seed
        self._lock = threading.Lock()
        self._hits: dict[int, int] = {i: 0 for i in range(len(self._specs))}
        self._fired: dict[int, int] = {i: 0 for i in range(len(self._specs))}

    def _decides_to_fire(self, spec_index: int, spec: FaultSpec, hit: int) -> bool:
        if spec.rate >= 1.0:
            return True
        digest = hashlib.sha256(
            f"{self._seed}:{spec.site}:{spec_index}:{hit}".encode()
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return draw < spec.rate

    def fire(
        self, site: str, *, modes: tuple[str, ...] = MODES
    ) -> FaultSpec | None:
        """The spec that fires for this hit of ``site``, if any.

        ``modes`` filters which specs are considered, so a ``torn`` rule
        and an ``error`` rule on the same site keep independent budgets.
        """
        for index, spec in enumerate(self._specs):
            if spec.mode not in modes or not fnmatch.fnmatchcase(site, spec.site):
                continue
            with self._lock:
                hit = self._hits[index]
                self._hits[index] = hit + 1
                if hit < spec.after:
                    continue
                if spec.count is not None and self._fired[index] >= spec.count:
                    continue
                if not self._decides_to_fire(index, spec, hit):
                    continue
                self._fired[index] += 1
            get_metrics().increment_labeled(
                "blaeu_faults_injected_total", {"site": site, "mode": spec.mode}
            )
            return spec
        return None

    def fired(self, site_glob: str = "*") -> int:
        """Total fires across specs whose site pattern matches the glob."""
        with self._lock:
            return sum(
                fired
                for index, fired in self._fired.items()
                if fnmatch.fnmatchcase(self._specs[index].site, site_glob)
                or fnmatch.fnmatchcase(site_glob, self._specs[index].site)
            )


_INJECTOR: FaultInjector | None = None
_ENV_CHECKED = False
_INSTALL_LOCK = threading.Lock()


def parse_faults(payload: str) -> FaultInjector:
    """Build an injector from the ``BLAEU_FAULTS`` JSON document."""
    try:
        doc = json.loads(payload)
    except json.JSONDecodeError as error:
        raise ValueError(f"{FAULTS_ENV} is not valid JSON: {error}") from error
    if not isinstance(doc, dict) or not isinstance(doc.get("faults"), list):
        raise ValueError(f'{FAULTS_ENV} must look like {{"seed": N, "faults": [...]}}')
    specs = [FaultSpec(**entry) for entry in doc["faults"]]
    return FaultInjector(specs, seed=int(doc.get("seed", 0)))


def faults_from_env() -> FaultInjector | None:
    payload = os.environ.get(FAULTS_ENV, "").strip()
    if not payload:
        return None
    return parse_faults(payload)


def install_faults(injector: FaultInjector) -> FaultInjector:
    global _INJECTOR, _ENV_CHECKED
    with _INSTALL_LOCK:
        _INJECTOR = injector
        _ENV_CHECKED = True
    return injector


def clear_faults() -> None:
    global _INJECTOR, _ENV_CHECKED
    with _INSTALL_LOCK:
        _INJECTOR = None
        _ENV_CHECKED = True


def active_injector() -> FaultInjector | None:
    """The installed injector, lazily loading ``BLAEU_FAULTS`` once."""
    global _INJECTOR, _ENV_CHECKED
    if not _ENV_CHECKED:
        with _INSTALL_LOCK:
            if not _ENV_CHECKED:
                _INJECTOR = faults_from_env()
                _ENV_CHECKED = True
    return _INJECTOR


def fault_point(site: str) -> None:
    """Maybe inject a fault at ``site``; no-op when nothing is installed."""
    injector = active_injector()
    if injector is None:
        return
    spec = injector.fire(site, modes=("error", "latency", "kill", "hang"))
    if spec is None:
        return
    if spec.mode == "latency":
        time.sleep(spec.seconds)
    elif spec.mode == "error":
        raise InjectedFault(f"injected fault at {site}")
    elif spec.mode == "kill":
        os._exit(137)
    elif spec.mode == "hang":
        time.sleep(spec.seconds or 3600.0)


def corrupt_bytes(site: str, blob: bytes) -> bytes:
    """Truncate ``blob`` when a ``torn``-mode spec fires at ``site``."""
    injector = active_injector()
    if injector is None:
        return blob
    spec = injector.fire(site, modes=("torn",))
    if spec is None:
        return blob
    return blob[: len(blob) // 2]

"""A three-state circuit breaker for flaky dependencies.

Wraps the L2 disk artifact tier: consecutive IO errors (or calls slower
than ``latency_threshold``) trip the breaker **open**, after which calls
short-circuit without touching the disk — the cache serves L1 or
recomputes.  After ``recovery_time`` the breaker goes **half-open** and
lets a bounded number of probe calls through; enough successes close it,
any failure re-opens it.

Thread-safe (the artifact cache is hit from pool threads) and clocked by
an injectable ``clock`` so tests drive state transitions without
sleeping.  State transitions are counted on the global metrics registry
as ``blaeu_resilience_breaker_transitions_total{breaker,to}``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.obs.metrics import get_metrics

__all__ = ["BreakerOpenError", "BreakerStats", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Gauge encoding used by /metrics: closed=0, half_open=1, open=2.
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class BreakerOpenError(RuntimeError):
    """Raised by :meth:`CircuitBreaker.acquire` while the breaker is open."""


@dataclass(frozen=True)
class BreakerStats:
    state: str
    consecutive_failures: int
    opens: int
    short_circuits: int


class CircuitBreaker:
    def __init__(
        self,
        *,
        name: str = "breaker",
        failure_threshold: int = 3,
        recovery_time: float = 5.0,
        latency_threshold: float | None = None,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_time <= 0:
            raise ValueError("recovery_time must be positive")
        self.name = name
        self._failure_threshold = failure_threshold
        self._recovery_time = recovery_time
        self._latency_threshold = latency_threshold
        self._half_open_probes = max(half_open_probes, 1)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._opens = 0
        self._short_circuits = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._peek_state()

    def _peek_state(self) -> str:
        # Lazily promote open -> half_open once the recovery window has
        # elapsed; callers hold self._lock.
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self._recovery_time
        ):
            self._transition(HALF_OPEN)
            self._probes_in_flight = 0
            self._probe_successes = 0
        return self._state

    def _transition(self, state: str) -> None:
        if state == self._state:
            return
        self._state = state
        get_metrics().increment_labeled(
            "blaeu_resilience_breaker_transitions_total",
            {"breaker": self.name, "to": state},
        )

    def allow(self) -> bool:
        """True if a call may proceed; counts a short-circuit otherwise."""
        with self._lock:
            state = self._peek_state()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and self._probes_in_flight < self._half_open_probes:
                self._probes_in_flight += 1
                return True
            self._short_circuits += 1
            get_metrics().increment_labeled(
                "blaeu_resilience_breaker_short_circuits_total",
                {"breaker": self.name},
            )
            return False

    def record_success(self, seconds: float = 0.0) -> None:
        if (
            self._latency_threshold is not None
            and seconds > self._latency_threshold
        ):
            self.record_failure()
            return
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self._half_open_probes:
                    self._transition(CLOSED)
                    self._consecutive_failures = 0
            else:
                self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._open()
                return
            self._consecutive_failures += 1
            if (
                self._state == CLOSED
                and self._consecutive_failures >= self._failure_threshold
            ):
                self._open()

    def _open(self) -> None:
        self._transition(OPEN)
        self._opened_at = self._clock()
        self._opens += 1
        self._consecutive_failures = 0

    def stats(self) -> BreakerStats:
        with self._lock:
            return BreakerStats(
                state=self._peek_state(),
                consecutive_failures=self._consecutive_failures,
                opens=self._opens,
                short_circuits=self._short_circuits,
            )

"""Per-request deadlines carried through the stack via contextvars.

A :class:`Deadline` is an absolute expiry on the monotonic clock plus
the budget it was minted with.  The service sets one per request (from
the ``X-Blaeu-Deadline`` header or ``ServiceConfig.resilience``) and it
rides into worker threads for free: :meth:`WorkerPool.run` submits jobs
under ``contextvars.copy_context()`` and ``cluster.parallel.map_in_order``
copies the context per item, so a deadline set in the request coroutine
is visible at every cooperative :func:`checkpoint` below it.

Checkpoints are placed at stage boundaries and inside chunked loops
(store scans, streaming NMI, CLARA draws).  When no deadline is set the
checkpoint is a single contextvar read — cheap enough for per-chunk use.

Background work (count refinement, speculative prefetch) must *not*
inherit the foreground request's deadline: a prefetch build that starts
with 50ms left would abort pointlessly.  Such tasks call
:func:`clear_deadline` (or open their own :func:`deadline_scope`) first.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Callable, Iterator

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "checkpoint",
    "clear_deadline",
    "current_deadline",
    "deadline_scope",
    "set_deadline",
]


class DeadlineExceeded(RuntimeError):
    """Raised by :func:`checkpoint` when the current deadline has passed.

    The service maps this to a structured HTTP 504; background workers
    treat it as a cancellation, not an error.
    """

    def __init__(self, message: str, *, stage: str = "", budget: float | None = None):
        super().__init__(message)
        self.stage = stage
        self.budget = budget

    def __reduce__(self):
        # Default exception pickling drops keyword-only attributes; a
        # deadline abort raised inside a partition worker process must
        # reach the parent with its stage and budget intact (the
        # service's 504 Retry-After hint reads them).
        return (
            _rebuild_deadline_exceeded,
            (str(self), self.stage, self.budget),
        )


def _rebuild_deadline_exceeded(
    message: str, stage: str, budget: float | None
) -> "DeadlineExceeded":
    return DeadlineExceeded(message, stage=stage, budget=budget)


@dataclass(frozen=True)
class Deadline:
    """An absolute expiry on the monotonic clock.

    ``budget`` is the span the deadline was minted with — kept for error
    messages and ``Retry-After`` hints, never for expiry math.
    """

    expires_at: float
    budget: float

    @classmethod
    def after(
        cls, budget: float, *, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        return cls(expires_at=clock() + budget, budget=budget)

    def remaining(self, *, clock: Callable[[], float] = time.monotonic) -> float:
        """Seconds until expiry; negative once past it."""
        return self.expires_at - clock()

    def expired(self, *, clock: Callable[[], float] = time.monotonic) -> bool:
        return self.remaining(clock=clock) <= 0.0


_DEADLINE: ContextVar[Deadline | None] = ContextVar("blaeu_deadline", default=None)


def current_deadline() -> Deadline | None:
    return _DEADLINE.get()


def set_deadline(deadline: Deadline | None):
    """Install ``deadline`` in the current context; returns the reset token."""
    return _DEADLINE.set(deadline)


def reset_deadline(token) -> None:
    _DEADLINE.reset(token)


def clear_deadline() -> None:
    """Drop any inherited deadline in the current context.

    Called at the top of background tasks (refine, prefetch) whose
    context was copied from a foreground request.
    """
    _DEADLINE.set(None)


@contextmanager
def deadline_scope(
    budget: float | None, *, clock: Callable[[], float] = time.monotonic
) -> Iterator[Deadline | None]:
    """Run the body under a fresh deadline of ``budget`` seconds.

    ``budget=None`` clears any inherited deadline for the scope instead
    — the "no deadline" scope used by tests and maintenance paths.
    """
    deadline = None if budget is None else Deadline.after(budget, clock=clock)
    token = _DEADLINE.set(deadline)
    try:
        yield deadline
    finally:
        _DEADLINE.reset(token)


def checkpoint(stage: str = "", *, clock: Callable[[], float] = time.monotonic) -> None:
    """Raise :class:`DeadlineExceeded` if the current deadline has passed.

    No-op (one contextvar read) when no deadline is installed, so it is
    safe inside per-chunk loops.
    """
    deadline = _DEADLINE.get()
    if deadline is None:
        return
    if deadline.expires_at - clock() <= 0.0:
        where = f" at {stage}" if stage else ""
        raise DeadlineExceeded(
            f"deadline of {deadline.budget:.3f}s exceeded{where}",
            stage=stage,
            budget=deadline.budget,
        )

"""Resilience primitives for the serving stack.

Four small, composable pieces:

- :mod:`repro.resilience.deadline` — per-request budgets carried via
  contextvars, with cooperative checkpoints in expensive stages.
- :mod:`repro.resilience.retry` — retry budgets and jittered backoff
  for the supervisor proxy.
- :mod:`repro.resilience.breaker` — a circuit breaker around the L2
  disk artifact tier.
- :mod:`repro.resilience.faults` — deterministic, seed-keyed fault
  injection powering the chaos suite and ``chaos`` bench.
"""

from repro.resilience.breaker import BreakerOpenError, CircuitBreaker
from repro.resilience.deadline import (
    Deadline,
    DeadlineExceeded,
    checkpoint,
    clear_deadline,
    current_deadline,
    deadline_scope,
    set_deadline,
)
from repro.resilience.faults import (
    FaultInjector,
    FaultSpec,
    InjectedFault,
    clear_faults,
    corrupt_bytes,
    fault_point,
    install_faults,
)
from repro.resilience.retry import RetryBudget, jittered_backoff

__all__ = [
    "BreakerOpenError",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "RetryBudget",
    "checkpoint",
    "clear_deadline",
    "clear_faults",
    "corrupt_bytes",
    "current_deadline",
    "deadline_scope",
    "fault_point",
    "install_faults",
    "jittered_backoff",
    "set_deadline",
]

"""Reproduction of *Blaeu: Mapping and Navigating Large Tables with
Cluster Analysis* (Sellam, Cijvat, Koopmanschap, Kersten — VLDB 2016).

Blaeu guides casual users through large tables with a double cluster
analysis: columns are clustered into *themes* (via a mutual-information
dependency graph partitioned with PAM) and tuples are clustered into
hierarchical *data maps* (preprocess → PAM/CLARA → CART description),
which users navigate with four reversible actions — zoom, highlight,
project and rollback — implicitly composing Select-Project queries.

Quickstart::

    from repro import Blaeu
    from repro.datasets import hollywood

    engine = Blaeu()
    engine.register(hollywood())
    explorer = engine.explore("hollywood")
    print([t.name for t in explorer.themes()])
    data_map = explorer.open_theme(0)
    print(explorer.sql())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced figure and claim.
"""

from repro.core import (
    Blaeu,
    BlaeuConfig,
    DataMap,
    ExplorationConfig,
    Explorer,
    Highlight,
    MapBuilder,
    MapBuildError,
    Region,
    Theme,
    ThemeSet,
    build_map,
    extract_themes,
)
from repro.store import StoredTable, ingest_csv
from repro.table import Database, Table, read_csv

__version__ = "1.0.0"

#: The curated public surface.  ``Blaeu`` (the engine), ``Explorer``
#: (the navigation session), ``Database`` (the table registry),
#: ``build_map`` (the one-shot mapping entry point) and
#: ``ExplorationConfig`` (every engine knob; ``BlaeuConfig`` is its
#: historical name) are the five names the quickstart needs; the rest
#: are the supporting types those five hand back.  Serving-layer names
#: live in :mod:`repro.service`.
__all__ = [
    "Blaeu",
    "BlaeuConfig",
    "DataMap",
    "Database",
    "ExplorationConfig",
    "Explorer",
    "Highlight",
    "MapBuildError",
    "MapBuilder",
    "Region",
    "StoredTable",
    "Table",
    "Theme",
    "ThemeSet",
    "__version__",
    "build_map",
    "extract_themes",
    "ingest_csv",
    "read_csv",
]

"""An interactive terminal browser for Blaeu — the demo, in a console.

The paper demonstrates "fast, keyboard-free exploration"; a terminal has
only a keyboard, but the loop is the same: see the themes, open one,
look at the map, click (type) a region to zoom, highlight, project,
roll back.  The CLI is a thin translator from command lines to the
public :class:`~repro.core.navigation.Explorer` API — every feature it
uses is available to library users.

Run with::

    python -m repro <data.csv|store-dir> [more …]
    python -m repro --demo hollywood|countries|lofar
    python -m repro ingest <data.csv> <store-dir> [--name N] \
        [--chunk-rows R] [--delimiter D] [--priority-seed S] \
        [--partition-rows N] [--scan-jobs N] [--append]
    python -m repro store repartition <store-dir> \
        [--partition-rows N] [--scan-jobs N]
    python -m repro serve [--host H] [--port P] [--cache-size N] \
        [--cache-ttl S] [--workers N] [--threads T] [--cache-dir DIR] \
        [--trace] [--access-log] \
        (<data.csv|store-dir> … | --demo <name>)
    python -m repro trace <http://host:port | spans.jsonl> [--limit N] \
        [--export PATH]
    python -m repro guide (<data.csv|store-dir> … | --demo <name>) \
        [--table T] [--theme T | --columns a,b,c] [--limit N]

``serve`` boots the HTTP service (:mod:`repro.service`) instead of the
interactive shell.  ``ingest`` converts a CSV into an out-of-core store
directory (:mod:`repro.store`) that both the shell and the service can
open in place of a CSV — the rows then stay on disk and exploration
samples them in chunks.

Commands inside the session::

    tables                  list registered tables
    use <table>             select the table to explore
    themes                  show the theme view
    open <theme|#>          build the initial map for a theme
    map                     re-print the current map
    zoom <region>           drill into a region (e.g. zoom r0)
    refine                  upgrade approximate region counts to exact
    highlight <region> [col …]   inspect a region's tuples
    insight <region>        why is this region distinct?
    project <theme|#>       re-map the selection with another theme
    hist <column>           text histogram of a column in the selection
    sql [region]            the implicit query so far
    suggest [N]             ranked next actions for the current state
    history                 the action stack
    back                    rollback one step
    goto <#>                rollback to a history entry
    help                    this text
    quit                    leave
"""

from __future__ import annotations

import os
import shlex
import sys
from typing import Callable, Iterable, TextIO

from repro.core.config import BlaeuConfig
from repro.core.engine import Blaeu
from repro.core.navigation import Explorer
from repro.viz.charts import text_histogram
from repro.viz.render import render_map, render_region_panel, render_theme_view

__all__ = [
    "BlaeuShell",
    "guide_main",
    "ingest_main",
    "main",
    "serve_main",
    "store_main",
    "trace_main",
]

_DEMOS = ("hollywood", "countries", "lofar")


class BlaeuShell:
    """A line-oriented session over one engine.

    Parameters
    ----------
    engine:
        The engine with tables already registered.
    out:
        Stream for output (injected for tests).
    """

    def __init__(self, engine: Blaeu, out: TextIO | None = None) -> None:
        self._engine = engine
        self._out = out or sys.stdout
        self._explorer: Explorer | None = None
        self._table_name: str | None = None
        # The same registry the HTTP service exposes at /metrics backs
        # the shell's build reports: the shell is a composition root,
        # so it installs a fresh process-global registry and every
        # layer records into it from zero.
        from repro.obs.metrics import reset_metrics

        self._metrics = reset_metrics()
        tables = engine.tables()
        if len(tables) == 1:
            self._select_table(tables[0])

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self, lines: Iterable[str]) -> None:
        """Process command lines until exhaustion or ``quit``."""
        for line in lines:
            if not self.handle(line):
                break

    def handle(self, line: str) -> bool:
        """Process one command line; returns ``False`` on ``quit``."""
        try:
            words = shlex.split(line)
        except ValueError as error:
            self._print(f"parse error: {error}")
            return True
        if not words:
            return True
        command, *args = words
        handler: Callable[[list[str]], None] | None = getattr(
            self, f"_cmd_{command}", None
        )
        if command in ("quit", "exit"):
            self._print("bye")
            return False
        if handler is None:
            self._print(f"unknown command {command!r}; try 'help'")
            return True
        try:
            handler(args)
        except (KeyError, ValueError, RuntimeError, IndexError) as error:
            self._print(f"error: {error}")
        return True

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------

    def _cmd_help(self, args: list[str]) -> None:
        self._print(__doc__.split("Commands inside the session::", 1)[1])

    def _cmd_tables(self, args: list[str]) -> None:
        for name in self._engine.tables():
            table = self._engine.database.table(name)
            marker = "*" if name == self._table_name else " "
            residency = getattr(table, "residency", "memory")
            suffix = ""
            if residency == "store":
                n_partitions = len(getattr(table, "partitions", ()))
                skipped = getattr(table, "partitions_skipped", 0)
                suffix = f" [store, {n_partitions} partitions"
                if skipped:
                    suffix += f", {skipped} pruned"
                suffix += "]"
            self._print(
                f" {marker} {name}: {table.n_rows} rows x "
                f"{table.n_columns} columns{suffix}"
            )

    def _cmd_use(self, args: list[str]) -> None:
        if len(args) != 1:
            raise ValueError("usage: use <table>")
        self._select_table(args[0])
        self._print(f"exploring {args[0]!r}")

    def _cmd_themes(self, args: list[str]) -> None:
        self._print(render_theme_view(self._require_explorer().themes()))
        self._print(self._graph_report())

    def _cmd_open(self, args: list[str]) -> None:
        if len(args) != 1:
            raise ValueError("usage: open <theme name or index>")
        explorer = self._require_explorer()
        explorer.open_theme(_theme_ref(args[0]))
        self._print(render_map(explorer.state.map))
        self._print(self._map_report())

    def _cmd_map(self, args: list[str]) -> None:
        self._print(render_map(self._require_state().map))
        self._print(self._map_report())

    def _cmd_refine(self, args: list[str]) -> None:
        explorer = self._require_explorer()
        if not explorer.needs_refine:
            self._print("counts are already exact")
            return
        explorer.refine()
        self._print(render_map(explorer.state.map))
        self._print(self._map_report())

    def _cmd_zoom(self, args: list[str]) -> None:
        if len(args) != 1:
            raise ValueError("usage: zoom <region id>")
        explorer = self._require_explorer()
        explorer.zoom(args[0])
        self._print(render_map(explorer.state.map))
        self._print(self._map_report())

    def _cmd_highlight(self, args: list[str]) -> None:
        if not args:
            raise ValueError("usage: highlight <region id> [column …]")
        explorer = self._require_explorer()
        columns = tuple(args[1:]) or None
        highlight = explorer.highlight(args[0], columns=columns)
        self._print(render_region_panel(highlight))

    def _cmd_insight(self, args: list[str]) -> None:
        if len(args) != 1:
            raise ValueError("usage: insight <region id>")
        report = self._require_explorer().insights(args[0])
        self._print(report.describe())

    def _cmd_project(self, args: list[str]) -> None:
        if len(args) != 1:
            raise ValueError("usage: project <theme name or index>")
        explorer = self._require_explorer()
        explorer.project(_theme_ref(args[0]))
        self._print(render_map(explorer.state.map))
        self._print(self._map_report())

    def _cmd_hist(self, args: list[str]) -> None:
        if len(args) != 1:
            raise ValueError("usage: hist <column>")
        explorer = self._require_explorer()
        state = self._require_state()
        selection = explorer.table.select(state.selection)
        self._print(text_histogram(selection.column(args[0])))  # type: ignore[arg-type]

    def _cmd_sql(self, args: list[str]) -> None:
        explorer = self._require_explorer()
        region = args[0] if args else None
        self._print(explorer.sql(region))

    def _cmd_suggest(self, args: list[str]) -> None:
        if len(args) > 1 or (args and not args[0].isdigit()):
            raise ValueError("usage: suggest [limit]")
        limit = int(args[0]) if args else 5
        explorer = self._require_explorer()
        suggestions = explorer.suggest(limit=limit)
        if not suggestions:
            self._print("no suggestions for this state")
            return
        for index, suggestion in enumerate(suggestions, start=1):
            self._print(f" {index}. {suggestion.describe()}")

    def _cmd_history(self, args: list[str]) -> None:
        explorer = self._require_explorer()
        for index, state in enumerate(explorer.states()):
            self._print(f" [{index}] {state.action} ({state.n_rows} tuples)")

    def _cmd_back(self, args: list[str]) -> None:
        explorer = self._require_explorer()
        explorer.rollback()
        self._print(render_map(explorer.state.map))

    def _cmd_goto(self, args: list[str]) -> None:
        if len(args) != 1 or not args[0].isdigit():
            raise ValueError("usage: goto <history index>")
        explorer = self._require_explorer()
        explorer.goto(int(args[0]))
        self._print(render_map(explorer.state.map))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _select_table(self, name: str) -> None:
        self._explorer = self._engine.explore(name)
        self._table_name = name

    def _graph_report(self) -> str:
        """One line of graph-engine telemetry shown after the theme view.

        Reads the ``blaeu_graph_*_total`` counters the builder pushes
        into the shared metrics registry, so warm navigations visibly
        skip the build (cache hits go up, build time stays put).
        """
        stats = self._engine.graph_builder.stats()
        counter = self._metrics.counter
        return (
            f"graph: last build {stats['last_build_seconds'] * 1000.0:.0f} ms"
            f" | builds {counter('blaeu_graph_builds_total')}"
            f" | graph cache {counter('blaeu_graph_cache_hits_total')} hit /"
            f" {counter('blaeu_graph_cache_misses_total')} miss"
            f" | code cache {counter('blaeu_graph_code_cache_hits_total')}"
            f" hit / {counter('blaeu_graph_code_cache_misses_total')} miss"
        )

    def _map_report(self) -> str:
        """One line of map-pipeline telemetry shown after each map.

        Reads the ``blaeu_pipeline_*`` counters the builder pushes into
        the shared metrics registry plus the builder's per-stage
        timings, so warm navigations visibly re-enter the pipeline
        mid-way (stage hits go up, the skipped stages report no time).
        """
        from repro.core.pipeline import STAGES

        stats = self._engine.map_builder.stats()
        hits, misses = stats["stage_hits"], stats["stage_misses"]
        seconds = stats["last_stage_seconds"]
        per_stage = " ".join(
            f"{stage}={hits.get(stage, 0)}h/{misses.get(stage, 0)}m"
            f"({seconds.get(stage, 0.0) * 1000.0:.0f}ms)"
            for stage in STAGES
        )
        counter = self._metrics.counter
        return (
            f"pipeline: last build "
            f"{stats['last_build_seconds'] * 1000.0:.0f} ms"
            f" | builds {counter('blaeu_pipeline_builds_total')}"
            f" | map cache {counter('blaeu_pipeline_map_hits_total')} hit /"
            f" {counter('blaeu_pipeline_map_misses_total')} miss"
            f" | refinements {counter('blaeu_pipeline_refinements_total')}"
            f"\nstages: {per_stage}"
        )

    def _require_explorer(self) -> Explorer:
        if self._explorer is None:
            raise RuntimeError("no table selected; try 'tables' then 'use'")
        return self._explorer

    def _require_state(self):
        return self._require_explorer().state

    def _print(self, text: str) -> None:
        print(text, file=self._out)


def _theme_ref(word: str) -> str | int:
    return int(word) if word.isdigit() else word


def build_engine(argv: list[str]) -> Blaeu:
    """Construct the engine from CLI arguments (CSV paths or --demo)."""
    engine = Blaeu(BlaeuConfig())
    if argv and argv[0] == "--demo":
        if len(argv) < 2 or argv[1] not in _DEMOS:
            raise SystemExit(f"usage: python -m repro --demo {{{'|'.join(_DEMOS)}}}")
        name = argv[1]
        if name == "hollywood":
            from repro.datasets import hollywood

            engine.register(hollywood())
        elif name == "countries":
            from repro.datasets import oecd

            engine.register(oecd())
        else:
            from repro.datasets import lofar

            engine.register(lofar(n_rows=50_000))
        return engine
    if not argv:
        raise SystemExit(
            "usage: python -m repro <data.csv|store-dir> [more …] "
            f"| --demo {{{'|'.join(_DEMOS)}}}"
        )
    from pathlib import Path

    from repro.store import MANIFEST_NAME

    for path in argv:
        candidate = Path(path)
        if candidate.is_dir() and (candidate / MANIFEST_NAME).is_file():
            engine.load_store(candidate)
        else:
            engine.load_csv(path)
    return engine


def ingest_main(argv: list[str]) -> None:
    """The ``ingest`` subcommand: CSV → out-of-core store directory."""
    import argparse

    from repro.store import DEFAULT_CHUNK_ROWS, ingest_csv

    parser = argparse.ArgumentParser(
        prog="blaeu ingest",
        description=(
            "Convert a CSV into a columnar store directory that "
            "'python -m repro' and 'python -m repro serve' open in "
            "place of the CSV, keeping the rows on disk."
        ),
    )
    parser.add_argument("csv", help="source CSV file (read once, chunked)")
    parser.add_argument("out", help="target store directory (created)")
    parser.add_argument(
        "--name", default=None, help="table name (default: the file stem)"
    )
    parser.add_argument(
        "--delimiter", default=",", help="field separator (default ',')"
    )
    parser.add_argument(
        "--chunk-rows",
        type=int,
        default=DEFAULT_CHUNK_ROWS,
        help="records per ingestion chunk — the peak-memory bound "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--priority-seed",
        type=int,
        default=0,
        help="seed of the persisted multi-scale sampling priorities "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--partition-rows",
        type=int,
        default=None,
        metavar="N",
        help="rows per zone-mapped partition (default: the format "
        "default; with --append, the store's current granularity)",
    )
    parser.add_argument(
        "--scan-jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the zone-map pass (0 = all cores; "
        "default: serial)",
    )
    parser.add_argument(
        "--append",
        action="store_true",
        help="append the CSV's rows to an existing store at OUT instead "
        "of creating one (columns must match; the manifest records the "
        "previous fingerprint and bumps its version)",
    )
    args = parser.parse_args(argv)
    try:
        if args.append:
            from repro.store.ingest import append_csv

            table = append_csv(
                args.csv,
                args.out,
                delimiter=args.delimiter,
                chunk_rows=args.chunk_rows,
                partition_rows=args.partition_rows,
                scan_jobs=args.scan_jobs,
            )
        else:
            from repro.store.format import DEFAULT_PARTITION_ROWS

            table = ingest_csv(
                args.csv,
                args.out,
                name=args.name,
                delimiter=args.delimiter,
                chunk_rows=args.chunk_rows,
                priority_seed=args.priority_seed,
                partition_rows=args.partition_rows or DEFAULT_PARTITION_ROWS,
                scan_jobs=args.scan_jobs,
            )
    except (OSError, ValueError) as error:
        raise SystemExit(f"ingest failed: {error}") from None
    verb = "appended; now" if args.append else "ingested"
    print(
        f"{verb} {table.n_rows} rows x {table.n_columns} columns "
        f"in {args.out} (table {table.name!r}, "
        f"{len(table.partitions)} partitions, "
        f"fingerprint {table.fingerprint()[:12]}…)"
    )


def store_main(argv: list[str]) -> None:
    """The ``store`` subcommand: maintenance of store directories."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="blaeu store",
        description="Maintenance commands for columnar store directories.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    repart = sub.add_parser(
        "repartition",
        help="rebuild a store's partitions and zone maps (manifest "
        "only; data files are untouched)",
        description=(
            "Derive fresh range partitions with per-column zone maps "
            "from a store's column files and rewrite its manifest. "
            "Adds zone maps to stores written before partitioning "
            "existed, or changes the range size of current ones."
        ),
    )
    repart.add_argument("store", help="store directory (holds manifest.json)")
    repart.add_argument(
        "--partition-rows",
        type=int,
        default=None,
        metavar="N",
        help="rows per partition (default: keep the store's current "
        "granularity, or the format default when it has none)",
    )
    repart.add_argument(
        "--scan-jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the zone-map pass (0 = all cores; "
        "default: serial)",
    )
    args = parser.parse_args(argv)
    from repro.store.partitions import repartition

    try:
        manifest = repartition(
            args.store,
            partition_rows=args.partition_rows,
            scan_jobs=args.scan_jobs,
        )
    except (OSError, ValueError) as error:
        raise SystemExit(f"repartition failed: {error}") from None
    print(
        f"repartitioned {args.store}: {manifest.n_rows} rows in "
        f"{len(manifest.partitions)} partitions "
        f"(table {manifest.table!r})"
    )


def guide_main(argv: list[str]) -> None:
    """The ``guide`` subcommand: ranked next actions, one shot.

    Prints what :meth:`Explorer.suggest` would recommend — which theme
    to open (default), or, given ``--theme``/``--columns``, which
    zoom / projection / re-clustering of that map to try next.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="blaeu guide",
        description=(
            "Rank the suggested next exploration actions for a table "
            "(guided exploration, see repro.guide)."
        ),
    )
    parser.add_argument(
        "data", nargs="*", help="CSV files or store directories to register"
    )
    parser.add_argument(
        "--demo", choices=_DEMOS, help="use a bundled demo dataset"
    )
    parser.add_argument(
        "--table",
        default=None,
        help="table to guide (default: the only registered table)",
    )
    parser.add_argument(
        "--theme",
        default=None,
        help="suggest follow-ups of this theme's map (name or index)",
    )
    parser.add_argument(
        "--columns",
        default=None,
        metavar="A,B,C",
        help="suggest follow-ups of the map over these columns",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=5,
        help="suggestions to show (default %(default)s)",
    )
    args = parser.parse_args(argv)
    if args.demo and args.data:
        parser.error("give either data files or --demo, not both")
    if args.theme and args.columns:
        parser.error("give either --theme or --columns, not both")
    if args.limit < 1:
        parser.error("--limit must be at least 1")
    engine_argv = ["--demo", args.demo] if args.demo else list(args.data)
    if not engine_argv:
        parser.error("provide data files or --demo <name>")
    engine = build_engine(engine_argv)
    tables = engine.tables()
    table = args.table or (tables[0] if len(tables) == 1 else None)
    if table is None:
        parser.error(f"--table is required (registered: {list(tables)})")
    if table not in tables:
        raise SystemExit(f"no table {table!r}; registered: {list(tables)}")
    explorer = engine.explore(table)
    try:
        if args.columns:
            columns = tuple(
                name.strip() for name in args.columns.split(",") if name.strip()
            )
            explorer.open_columns(columns)
        elif args.theme is not None:
            explorer.open_theme(_theme_ref(args.theme))
    except (KeyError, ValueError) as error:
        raise SystemExit(f"guide failed: {error}") from None
    suggestions = explorer.suggest(limit=args.limit)
    if not suggestions:
        print("no suggestions for this state")
        return
    print(f"suggested next actions for {table!r}:")
    for index, suggestion in enumerate(suggestions, start=1):
        print(f" {index}. {suggestion.describe()}")


def serve_main(argv: list[str]) -> None:
    """The ``serve`` subcommand: boot the HTTP service over the data."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="blaeu serve",
        description="Serve Blaeu's protocol commands over HTTP.",
    )
    parser.add_argument("data", nargs="*", help="CSV files to register")
    parser.add_argument(
        "--demo", choices=_DEMOS, help="serve a bundled demo dataset"
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8787, help="bind port (0: pick free)"
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=256,
        help="shared map-cache capacity (entries)",
    )
    parser.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        help="map-cache entry lifetime in seconds (default: no expiry)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker *processes*; more than one boots the pre-fork "
        "supervisor over a shared on-disk artifact cache "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=4,
        help="worker threads per process for map builds "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="shared on-disk artifact cache (the L2 tier); created if "
        "missing.  Workers of one supervisor always share a cache dir "
        "(a temp dir when this flag is omitted)",
    )
    parser.add_argument(
        "--cache-disk-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="size budget of --cache-dir before LRU eviction "
        "(default 1 GiB)",
    )
    parser.add_argument(
        "--port-file",
        default=None,
        help=argparse.SUPPRESS,  # supervisor-internal port announcement
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record request traces (served at /trace, headers carry "
        "X-Blaeu-Trace)",
    )
    parser.add_argument(
        "--trace-buffer",
        type=int,
        default=512,
        help="spans retained in the trace ring buffer (default %(default)s)",
    )
    parser.add_argument(
        "--slow-op-threshold",
        type=float,
        default=None,
        metavar="SECONDS",
        help="log any span at least this slow (default: off)",
    )
    parser.add_argument(
        "--access-log",
        action="store_true",
        help="log one structured line per request to stderr",
    )
    parser.add_argument(
        "--prefetch",
        action="store_true",
        help="speculatively build the top suggested next maps into the "
        "shared cache after each served map (idle workers only)",
    )
    parser.add_argument(
        "--guide-top-n",
        type=int,
        default=3,
        help="suggestions per /suggestions response and actions warmed "
        "per speculation (default %(default)s)",
    )
    parser.add_argument(
        "--guide-prefetch-jobs",
        type=int,
        default=1,
        help="maximum concurrent speculative builds (default %(default)s)",
    )
    parser.add_argument(
        "--scan-jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes per store scan (0 = all cores; exported "
        "as BLAEU_SCAN_JOBS so every service worker's store-backed "
        "tables fan chunked scans out; default: serial)",
    )
    parser.add_argument(
        "--request-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request time budget; requests past it get a "
        "504 (clients can override per request with X-Blaeu-Deadline; "
        "default: no deadline)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="seconds to let in-flight requests finish on shutdown or "
        "worker restart (default 5)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="JSON",
        help='fault-injection spec ({"seed": N, "faults": [...]} JSON) '
        "exported as BLAEU_FAULTS to every worker — chaos testing only",
    )
    args = parser.parse_args(argv)
    if args.demo and args.data:
        parser.error("give either CSV files or --demo, not both")
    if args.demo:
        engine_argv = ["--demo", args.demo]
    elif args.data:
        engine_argv = list(args.data)
    else:
        parser.error("provide CSV files or --demo <name>")
    if args.workers < 1:
        parser.error("--workers must be at least 1")

    # Resilience knobs travel as environment variables: the service
    # config folds them in (single-worker mode) and supervisor workers
    # inherit them (multi-worker mode) — one spelling for both.
    if args.scan_jobs is not None:
        if args.scan_jobs < 0:
            parser.error("--scan-jobs must be >= 0")
        os.environ["BLAEU_SCAN_JOBS"] = str(args.scan_jobs)
    if args.request_deadline is not None:
        if args.request_deadline <= 0:
            parser.error("--request-deadline must be positive")
        os.environ["BLAEU_REQUEST_DEADLINE"] = str(args.request_deadline)
    if args.drain_timeout is not None:
        if args.drain_timeout < 0:
            parser.error("--drain-timeout must be non-negative")
        os.environ["BLAEU_DRAIN_TIMEOUT"] = str(args.drain_timeout)
    if args.faults is not None:
        from repro.resilience.faults import FAULTS_ENV, parse_faults

        try:
            parse_faults(args.faults)
        except ValueError as error:
            parser.error(f"--faults: {error}")
        os.environ[FAULTS_ENV] = args.faults

    if args.workers > 1:
        # Pre-fork mode: N single-process services behind a routing
        # front, sharing one artifact-cache directory so warm work
        # crosses process (and restart) boundaries.
        import tempfile

        from repro.service.supervisor import Supervisor

        cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="blaeu-cache-")
        worker_argv = [
            "--threads",
            str(args.threads),
            "--cache-size",
            str(args.cache_size),
            "--cache-dir",
            cache_dir,
        ]
        if args.cache_ttl is not None:
            worker_argv += ["--cache-ttl", str(args.cache_ttl)]
        if args.cache_disk_bytes is not None:
            worker_argv += ["--cache-disk-bytes", str(args.cache_disk_bytes)]
        if args.trace:
            worker_argv += ["--trace", "--trace-buffer", str(args.trace_buffer)]
        if args.slow_op_threshold is not None:
            worker_argv += ["--slow-op-threshold", str(args.slow_op_threshold)]
        if args.access_log:
            worker_argv += ["--access-log"]
        if args.prefetch:
            worker_argv += ["--prefetch"]
        worker_argv += ["--guide-top-n", str(args.guide_top_n)]
        worker_argv += ["--guide-prefetch-jobs", str(args.guide_prefetch_jobs)]
        worker_argv += engine_argv
        try:
            supervisor_kwargs = {}
            if args.drain_timeout is not None:
                supervisor_kwargs["drain_timeout"] = args.drain_timeout
            supervisor = Supervisor(
                worker_argv,
                n_workers=args.workers,
                host=args.host,
                port=args.port,
                **supervisor_kwargs,
            )
        except ValueError as error:  # pragma: no cover - guarded above
            parser.error(str(error))
        supervisor.run()
        return

    from repro.service.app import (
        BlaeuService,
        CacheConfig,
        GuideConfig,
        ServiceConfig,
    )
    from repro.store.artifacts import DEFAULT_MAX_BYTES

    try:
        cache = (
            CacheConfig(
                size=args.cache_size,
                ttl=args.cache_ttl,
                dir=args.cache_dir,
                disk_bytes=args.cache_disk_bytes or DEFAULT_MAX_BYTES,
            )
            if args.cache_dir
            else None
        )
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            cache=cache,
            cache_size=args.cache_size,
            cache_ttl=args.cache_ttl,
            workers=args.threads,
            # Admission bound scales with the pool so large --threads
            # values don't trip the max_pending >= workers invariant.
            max_pending=max(64, args.threads * 4),
            trace_enabled=args.trace,
            trace_buffer_size=args.trace_buffer,
            slow_op_threshold=args.slow_op_threshold,
            access_log=args.access_log,
            guide=GuideConfig(
                top_n=args.guide_top_n,
                prefetch=args.prefetch,
                prefetch_jobs=args.guide_prefetch_jobs,
            ),
        )
    except ValueError as error:
        parser.error(str(error))
    engine = build_engine(engine_argv)
    BlaeuService(engine, config).run(port_file=args.port_file)


def _group_span_dicts(
    spans: list[dict], limit: int
) -> list[dict[str, object]]:
    """Group exported span dicts into traces, newest first.

    Mirrors :meth:`repro.obs.trace.Tracer.traces` for spans re-read
    from a JSONL export (where only the dict form survives).
    """
    grouped: dict[str, list[dict]] = {}
    order: list[str] = []
    for span in spans:
        trace_id = str(span.get("trace_id", "?"))
        if trace_id not in grouped:
            grouped[trace_id] = []
            order.append(trace_id)
        grouped[trace_id].append(span)
    return [
        {
            "trace_id": trace_id,
            "spans": sorted(
                grouped[trace_id], key=lambda s: s.get("offset", 0.0)
            ),
        }
        for trace_id in reversed(order[-limit:])
    ]


def trace_main(argv: list[str]) -> None:
    """The ``trace`` subcommand: render recent traces as text trees."""
    import argparse
    import json

    from repro.obs.trace import render_trace

    parser = argparse.ArgumentParser(
        prog="blaeu trace",
        description=(
            "Fetch recent traces from a running service's /trace "
            "endpoint (give its base URL) or re-read a JSONL span "
            "export, and print each trace as a tree with the slowest "
            "span marked."
        ),
    )
    parser.add_argument(
        "source",
        help="service base URL (e.g. http://127.0.0.1:8787) or a "
        "spans .jsonl file",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=5,
        help="most recent traces to show (default %(default)s)",
    )
    parser.add_argument(
        "--export",
        metavar="PATH",
        default=None,
        help="also write the shown spans as JSONL to PATH",
    )
    args = parser.parse_args(argv)
    if args.limit < 1:
        parser.error("--limit must be at least 1")
    if args.source.startswith(("http://", "https://")):
        from urllib.error import URLError
        from urllib.request import urlopen

        url = args.source.rstrip("/") + f"/trace?limit={args.limit}"
        try:
            with urlopen(url) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except (URLError, OSError, ValueError) as error:
            raise SystemExit(f"trace fetch failed: {error}") from None
        traces = payload.get("traces", [])
        if not traces and not payload.get("enabled", True):
            raise SystemExit(
                "tracing is disabled on that service; "
                "restart it with 'blaeu serve --trace'"
            )
    else:
        try:
            with open(args.source, encoding="utf-8") as handle:
                spans = [
                    json.loads(line) for line in handle if line.strip()
                ]
        except (OSError, ValueError) as error:
            raise SystemExit(f"could not read spans: {error}") from None
        traces = _group_span_dicts(spans, args.limit)
    if args.export:
        with open(args.export, "w", encoding="utf-8") as handle:
            for trace in traces:
                for span in trace.get("spans", []):
                    handle.write(json.dumps(span) + "\n")
    if not traces:
        print("no traces retained")
        return
    for trace in traces:
        print(render_trace(trace))
        print()


def main(argv: list[str] | None = None) -> None:
    """Entry point for ``python -m repro``."""
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "serve":
        serve_main(argv[1:])
        return
    if argv and argv[0] == "ingest":
        ingest_main(argv[1:])
        return
    if argv and argv[0] == "store":
        store_main(argv[1:])
        return
    if argv and argv[0] == "trace":
        trace_main(argv[1:])
        return
    if argv and argv[0] == "guide":
        guide_main(argv[1:])
        return
    if argv and argv[0] == "bench":
        from repro.bench.runner import main as bench_main

        sys.exit(bench_main(argv[1:]))
    engine = build_engine(argv)
    shell = BlaeuShell(engine)
    print("blaeu — type 'help' for commands, 'quit' to leave")
    try:
        while True:
            line = input("blaeu> ")
            if not shell.handle(line):
                break
    except (EOFError, KeyboardInterrupt):
        print()

"""The serving layer: a concurrent HTTP front-end over the engine.

The paper's architecture (Figure 4) puts a server between the browser
and the DBMS; this package is that tier, grown for the ROADMAP's
"heavy traffic" north star:

* :mod:`repro.service.cache` — an LRU+TTL result cache shared across
  sessions, so two users navigating to the same place reuse one
  clustering run.
* :mod:`repro.service.pool` — a bounded worker pool that keeps slow
  map builds off the event loop.
* :mod:`repro.service.metrics` — request counters and latency
  histograms, rendered at ``/metrics``.
* :mod:`repro.service.http` — a stdlib-only ``asyncio`` HTTP/1.1
  server.
* :mod:`repro.service.app` — the wiring: engine + session manager +
  cache + pool behind JSON endpoints, with graceful shutdown.
"""

from repro.service.app import BlaeuService, ServiceConfig
from repro.service.cache import CacheStats, LRUCache
from repro.service.metrics import Metrics
from repro.service.pool import PoolSaturatedError, WorkerPool

__all__ = [
    "BlaeuService",
    "ServiceConfig",
    "CacheStats",
    "LRUCache",
    "Metrics",
    "WorkerPool",
    "PoolSaturatedError",
]

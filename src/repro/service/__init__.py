"""The serving layer: a concurrent HTTP front-end over the engine.

The paper's architecture (Figure 4) puts a server between the browser
and the DBMS; this package is that tier, grown for the ROADMAP's
"heavy traffic" north star:

* :mod:`repro.service.cache` — the in-memory LRU+TTL result cache and
  the memory/disk :class:`TieredCache` that stacks it over the shared
  on-disk :class:`~repro.store.artifacts.ArtifactCache`.
* :mod:`repro.service.pool` — a bounded worker pool that keeps slow
  map builds off the event loop.
* :mod:`repro.service.http` — a stdlib-only ``asyncio`` HTTP/1.1
  server.
* :mod:`repro.service.app` — the wiring: engine + session manager +
  cache tiers + pool behind the versioned ``/v1`` JSON API, with
  graceful shutdown.
* :mod:`repro.service.routing` / :mod:`repro.service.supervisor` — the
  multi-process tier: consistent-hash placement of table fingerprints
  and the pre-fork supervisor behind ``blaeu serve --workers N``.

This package is also the *facade* for the session tier: the
``repro.server`` entry points (session management, protocol parsing,
session persistence) are re-exported here, which is where new code
should import them from (``repro.server`` itself warns).
"""

from repro.server.persistence import replay_session, save_session
from repro.server.protocol import (
    ErrorResponse,
    ProtocolError,
    Request,
    Response,
    parse_request,
)
from repro.server.session import Session, SessionManager
from repro.service.app import (
    BlaeuService,
    CacheConfig,
    GuideConfig,
    PoolConfig,
    ServiceConfig,
    TraceConfig,
)
from repro.service.cache import (
    CacheStats,
    LRUCache,
    TieredCache,
    TieredCacheStats,
)
from repro.service.metrics import Metrics
from repro.service.pool import PoolSaturatedError, WorkerPool
from repro.service.routing import HashRing
from repro.service.supervisor import Supervisor, SupervisorError

__all__ = [
    "BlaeuService",
    "CacheConfig",
    "CacheStats",
    "ErrorResponse",
    "GuideConfig",
    "HashRing",
    "LRUCache",
    "Metrics",
    "PoolConfig",
    "PoolSaturatedError",
    "ProtocolError",
    "Request",
    "Response",
    "ServiceConfig",
    "Session",
    "SessionManager",
    "Supervisor",
    "SupervisorError",
    "TieredCache",
    "TieredCacheStats",
    "TraceConfig",
    "WorkerPool",
    "parse_request",
    "replay_session",
    "save_session",
]
